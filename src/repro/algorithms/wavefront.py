"""Wavefront alignment (WFA) for edit distance -- algorithm-family
extension.

The wavefront algorithm [72] (by the SMX authors' group; the engine of
WFA-GPU [1] and the inspiration for the paper's Fig. 2 trade-off
discussion) computes exact alignment in O(n*s) time and memory, where
``s`` is the alignment *score* rather than the sequence length: instead
of filling the DP matrix, it tracks -- per score ``s`` and diagonal
``k = j - i`` -- the furthest-reaching cell, extending greedily along
exact matches. For similar sequences (small s) it touches a vanishing
fraction of the matrix while staying exact, complementing the banded /
X-drop heuristics.

This implementation covers the unit-cost edit model (the WFA paper's
"edit wavefront"); the recurrence over furthest-reaching offsets
``M[s][k] = max(M[s-1][k-1]+1, M[s-1][k]+1, M[s-1][k+1])`` followed by
match extension, with full traceback through the stored wavefronts.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Aligner, AlignerResult, DPStats
from repro.dp.alignment import Alignment, compress_ops
from repro.errors import AlignmentError, ConfigurationError
from repro.scoring.model import ScoringModel


def _check_edit_model(model: ScoringModel,
                      what: str = "the wavefront aligner") -> None:
    checks = (model.smax == 0, model.smin == -1, model.gap_i == -1,
              model.gap_d == -1)
    if not all(checks):
        raise ConfigurationError(
            f"{what} implements the unit-cost edit model; "
            f"got smax={model.smax}, smin={model.smin}, "
            f"I={model.gap_i}, D={model.gap_d}"
        )


class WavefrontAligner(Aligner):
    """Exact edit-distance alignment in O(n*s) (WFA, edit flavour).

    The returned score is ``-edit_distance`` (consistent with the
    library's score-maximizing convention).
    """

    name = "wavefront"
    exact = True

    def __init__(self, max_score: int | None = None) -> None:
        self.max_score = max_score

    def _sweep(self, q_codes: np.ndarray, r_codes: np.ndarray,
               ) -> tuple[int, list[dict[int, int]], int]:
        """Run wavefronts until (n, m) is reached.

        Returns ``(distance, wavefronts, cells_touched)`` where
        ``wavefronts[s]`` maps diagonal -> furthest reference offset
        *after* match extension.
        """
        n, m = len(q_codes), len(r_codes)
        target_k = m - n
        limit = self.max_score if self.max_score is not None else n + m
        cells = 0

        def extend(k: int, j: int) -> tuple[int, int]:
            i = j - k
            count = 0
            while i < n and j < m and q_codes[i] == r_codes[j]:
                i += 1
                j += 1
                count += 1
            return j, count

        start_j, matched = extend(0, 0)
        cells += matched + 1
        wavefronts: list[dict[int, int]] = [{0: start_j}]
        if start_j >= m and start_j - 0 >= n and target_k == 0:
            return 0, wavefronts, cells
        if n == 0 or m == 0:
            # Pure-gap alignment: distance is the leftover length.
            return max(n, m), wavefronts, cells

        for score in range(1, limit + 1):
            previous = wavefronts[-1]
            lo = min(previous) - 1
            hi = max(previous) + 1
            current: dict[int, int] = {}
            for k in range(lo, hi + 1):
                candidates = []
                if k - 1 in previous:          # deletion (consume ref)
                    candidates.append(previous[k - 1] + 1)
                if k in previous:              # mismatch
                    candidates.append(previous[k] + 1)
                if k + 1 in previous:          # insertion (consume query)
                    candidates.append(previous[k + 1])
                if not candidates:
                    continue
                j = max(candidates)
                i = j - k
                if i < 0 or i > n or j > m:
                    # Clip wavefront points that left the matrix.
                    if i > n or j > m:
                        j = min(j, m)
                        i = j - k
                        if i < 0 or i > n:
                            continue
                    else:
                        continue
                j, matched = extend(k, j)
                cells += matched + 1
                current[k] = j
            wavefronts.append(current)
            if current.get(target_k, -1) >= m:
                return score, wavefronts, cells
        raise AlignmentError(
            f"alignment exceeds max_score={limit}"
        )

    def _traceback(self, q_codes: np.ndarray, r_codes: np.ndarray,
                   distance: int, wavefronts: list[dict[int, int]],
                   ) -> list[tuple[int, str]]:
        n, m = len(q_codes), len(r_codes)
        ops: list[str] = []

        def emit_matches(j_high: int, j_low: int) -> None:
            """Matches covering ref offsets (j_low, j_high] on one diag."""
            ops.extend("=" * max(0, j_high - j_low))

        k = m - n
        j = m
        for score in range(distance, 0, -1):
            previous = wavefronts[score - 1]
            # Undo match extension down to the entry point of this
            # wavefront step, then pick the predecessor that reaches it.
            from_del = previous.get(k - 1, -(1 << 30)) + 1
            from_mis = previous.get(k, -(1 << 30)) + 1
            from_ins = previous.get(k + 1, -(1 << 30))
            entry = max(from_del, from_mis, from_ins)
            emit_matches(j, entry)
            if entry == from_mis:
                ops.append("X")
                j = entry - 1
            elif entry == from_del:
                ops.append("D")
                k -= 1
                j = entry - 1
            else:
                ops.append("I")
                k += 1
                j = entry
        # score 0: leading matches along diagonal k == 0.
        emit_matches(j, 0)
        ops.reverse()
        return compress_ops(ops)

    def align(self, q_codes: np.ndarray, r_codes: np.ndarray,
              model: ScoringModel) -> AlignerResult:
        _check_edit_model(model)
        n, m = len(q_codes), len(r_codes)
        if n == 0 or m == 0:
            # Match the api.align empty-input contract (the FullAligner
            # degenerate path): an all-gap CIGAR plus the path_cells
            # meta of the single-row/column traceback path.
            cigar = [(m, "D")] if m else ([(n, "I")] if n else [])
            alignment = Alignment(score=-(n + m), cigar=cigar,
                                  query_len=n, ref_len=m,
                                  meta={"path_cells": n + m + 1})
            return AlignerResult(alignment=alignment, score=-(n + m),
                                 stats=DPStats(blocks=1))
        distance, wavefronts, cells = self._sweep(q_codes, r_codes)
        cigar = self._traceback(q_codes, r_codes, distance, wavefronts)
        alignment = Alignment(score=-distance, cigar=cigar, query_len=n,
                              ref_len=m)
        alignment.validate(q_codes, r_codes, model)
        stored = sum(len(w) for w in wavefronts)
        stats = DPStats(cells_computed=cells, cells_stored=stored,
                        blocks=1)
        return AlignerResult(alignment=alignment, score=-distance,
                             stats=stats)

    def compute_score(self, q_codes: np.ndarray, r_codes: np.ndarray,
                      model: ScoringModel) -> AlignerResult:
        _check_edit_model(model)
        n, m = len(q_codes), len(r_codes)
        if n == 0 or m == 0:
            return AlignerResult(alignment=None, score=-(n + m),
                                 stats=DPStats(blocks=1))
        distance, wavefronts, cells = self._sweep(q_codes, r_codes)
        peak = max(len(w) for w in wavefronts)
        stats = DPStats(cells_computed=cells, cells_stored=2 * peak,
                        blocks=1)
        return AlignerResult(alignment=None, score=-distance, stats=stats)
