"""X-drop alignment heuristic (BLAST-style, paper Sec. 2.3).

Cells whose score falls more than ``x`` below the best score seen so far
are pruned; the active column interval of each row shrinks from both
sides and the whole computation terminates early when every cell drops.
For global alignment this behaves like an adaptive band whose width
follows the score landscape: cheap on similar sequences, aggressive on
dissimilar ones (possibly dropping the alignment altogether, the
behaviour the paper exploits for pre-filtering).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import NEG_INF, Aligner, AlignerResult, DPStats
from repro.dp.alignment import Alignment
from repro.dp.traceback import traceback_full
from repro.errors import AlignmentError
from repro.scoring.model import ScoringModel


class XdropAligner(Aligner):
    """Global alignment with X-drop pruning.

    Args:
        xdrop: Absolute score drop threshold. Mutually exclusive with
            ``fraction``.
        fraction: Threshold as a fraction of ``theta * max(n, m)`` --
            the paper's "Xdrop of 8%" style parameterisation.
    """

    name = "xdrop"
    exact = False

    def __init__(self, xdrop: int | None = None,
                 fraction: float | None = None) -> None:
        if (xdrop is None) == (fraction is None):
            raise AlignmentError("specify exactly one of xdrop / fraction")
        self.xdrop = xdrop
        self.fraction = fraction
        if fraction is not None:
            self.name = f"xdrop-{fraction:.0%}"
        else:
            self.name = f"xdrop-x{xdrop}"

    def _threshold(self, n: int, m: int, model: ScoringModel) -> int:
        if self.xdrop is not None:
            return self.xdrop
        return max(1, int(round(self.fraction * model.theta * max(n, m))))

    def _run(self, q_codes: np.ndarray, r_codes: np.ndarray,
             model: ScoringModel, keep_matrix: bool,
             ) -> tuple[np.ndarray | None, int | None, DPStats, bool]:
        n, m = len(q_codes), len(r_codes)
        threshold = self._threshold(n, m, model)
        prune_floor = int(NEG_INF) // 2
        row = np.arange(m + 1, dtype=np.int64) * model.gap_d
        best = int(row.max())
        row[row < best - threshold] = NEG_INF
        matrix = None
        if keep_matrix:
            matrix = np.full((n + 1, m + 1), NEG_INF, dtype=np.int64)
            matrix[0] = row
        alive = row > prune_floor
        lo = int(np.argmax(alive))
        hi = int(m - np.argmax(alive[::-1]))
        cells = hi - lo + 1
        max_width = cells
        offsets = np.arange(m + 1, dtype=np.int64) * model.gap_d
        dropped = False
        for i in range(1, n + 1):
            scores = model.substitution_row(int(q_codes[i - 1]),
                                            r_codes).astype(np.int64)
            g = np.full(m + 1, NEG_INF, dtype=np.int64)
            if lo == 0:
                g[0] = i * model.gap_i
            np.maximum(row[:-1] + scores, row[1:] + model.gap_i, out=g[1:])
            new_row = np.maximum.accumulate(g - offsets) + offsets
            # The active interval may extend one column right per row and
            # shrink arbitrarily as cells drop below best - x.
            window_hi = min(m, hi + 1)
            new_row[:lo] = NEG_INF
            new_row[window_hi + 1:] = NEG_INF
            best = max(best, int(new_row.max()))
            new_row[new_row < best - threshold] = NEG_INF
            row = new_row
            if keep_matrix:
                matrix[i] = row
            alive = row > prune_floor
            if not alive.any():
                dropped = True
                break
            lo = int(np.argmax(alive))
            hi = int(m - np.argmax(alive[::-1]))
            cells += hi - lo + 1
            max_width = max(max_width, hi - lo + 1)
        score = None
        if not dropped and int(row[m]) > prune_floor:
            score = int(row[m])
        stats = DPStats(cells_computed=cells,
                        cells_stored=cells if keep_matrix else max_width,
                        blocks=1)
        return matrix, score, stats, dropped or score is None

    def align(self, q_codes: np.ndarray, r_codes: np.ndarray,
              model: ScoringModel) -> AlignerResult:
        matrix, score, stats, failed = self._run(q_codes, r_codes, model,
                                                 keep_matrix=True)
        if failed:
            return AlignerResult(alignment=None, score=None, stats=stats,
                                 failed=True,
                                 failure_reason="alignment dropped")
        try:
            cigar, path = traceback_full(matrix, q_codes, r_codes, model)
        except AlignmentError as exc:
            return AlignerResult(alignment=None, score=score, stats=stats,
                                 failed=True, failure_reason=str(exc))
        alignment = Alignment(score=score, cigar=cigar,
                              query_len=len(q_codes), ref_len=len(r_codes),
                              meta={"path_cells": len(path)})
        return AlignerResult(alignment=alignment, score=score, stats=stats)

    def compute_score(self, q_codes: np.ndarray, r_codes: np.ndarray,
                      model: ScoringModel) -> AlignerResult:
        _, score, stats, failed = self._run(q_codes, r_codes, model,
                                            keep_matrix=False)
        return AlignerResult(alignment=None, score=score, stats=stats,
                             failed=failed,
                             failure_reason="alignment dropped" if failed
                             else "")
