"""Local (Smith-Waterman) and semi-global alignment modes.

The paper positions SMX as *universal*: the same DP engine serves
global alignment (Needleman-Wunsch, the default elsewhere in this
library), local alignment (Smith-Waterman [94]), and the semi-global
"infix" mode read mappers use (query consumed entirely, reference
gaps at both ends free). Both reuse the vectorized prefix-scan row
kernel; the local mode's clamp-at-zero composes with it because a gap
chain extended out of a clamped cell can never beat the clamp.

Local alignment requires at least one positive substitution score
(otherwise the empty alignment always wins), so the edit model is
rejected -- use a gap model or a substitution matrix.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Aligner, AlignerResult, DPStats
from repro.dp.alignment import Alignment, compress_ops
from repro.errors import AlignmentError, ConfigurationError
from repro.scoring.model import ScoringModel


def _require_positive_scores(model: ScoringModel) -> None:
    if model.smax <= 0:
        raise ConfigurationError(
            "local alignment needs a positive match score; the edit "
            "model only ever produces the empty alignment"
        )


def local_traceback(matrix: np.ndarray, q_codes: np.ndarray,
                    r_codes: np.ndarray, model: ScoringModel) -> Alignment:
    """Smith-Waterman traceback over a clamped-at-zero local matrix.

    Shared by :class:`LocalAligner` and the batched vector engine so
    both produce bit-identical CIGARs: the start cell is the *first*
    maximum in row-major order and ties break diagonal, then up
    (insertion), then left (deletion) -- the library-wide priority.
    """
    end = np.unravel_index(int(np.argmax(matrix)), matrix.shape)
    i, j = int(end[0]), int(end[1])
    score = int(matrix[i, j])
    end_i, end_j = i, j
    ops: list[str] = []
    while matrix[i, j] != 0:
        here = int(matrix[i, j])
        if i > 0 and j > 0:
            sub = model.substitution(int(q_codes[i - 1]),
                                     int(r_codes[j - 1]))
            if here == int(matrix[i - 1, j - 1]) + sub:
                ops.append("=" if q_codes[i - 1] == r_codes[j - 1]
                           else "X")
                i, j = i - 1, j - 1
                continue
        if i > 0 and here == int(matrix[i - 1, j]) + model.gap_i:
            ops.append("I")
            i -= 1
        elif j > 0 and here == int(matrix[i, j - 1]) + model.gap_d:
            ops.append("D")
            j -= 1
        else:  # pragma: no cover - matrix is ours, always consistent
            raise AlignmentError(
                f"local traceback stuck at ({i}, {j})"
            )
    ops.reverse()
    return Alignment(
        score=score, cigar=compress_ops(ops),
        query_len=end_i - i, ref_len=end_j - j,
        meta={"query_start": i, "query_end": end_i,
              "ref_start": j, "ref_end": end_j, "mode": "local"})


def semiglobal_traceback(matrix: np.ndarray, q_codes: np.ndarray,
                         r_codes: np.ndarray,
                         model: ScoringModel) -> Alignment:
    """Infix-mode traceback from the first maximum of the last row.

    Shared by :class:`SemiGlobalAligner` and the batched vector engine
    (same tie-break priority as :func:`local_traceback`).
    """
    n = len(q_codes)
    j = int(np.argmax(matrix[-1]))
    score = int(matrix[-1, j])
    end_j = j
    i = n
    ops: list[str] = []
    while i > 0:
        here = int(matrix[i, j])
        if j > 0:
            sub = model.substitution(int(q_codes[i - 1]),
                                     int(r_codes[j - 1]))
            if here == int(matrix[i - 1, j - 1]) + sub:
                ops.append("=" if q_codes[i - 1] == r_codes[j - 1]
                           else "X")
                i, j = i - 1, j - 1
                continue
        if here == int(matrix[i - 1, j]) + model.gap_i:
            ops.append("I")
            i -= 1
        elif j > 0 and here == int(matrix[i, j - 1]) + model.gap_d:
            ops.append("D")
            j -= 1
        else:  # pragma: no cover - defensive
            raise AlignmentError(
                f"semiglobal traceback stuck at ({i}, {j})"
            )
    ops.reverse()
    return Alignment(
        score=score, cigar=compress_ops(ops), query_len=n,
        ref_len=end_j - j,
        meta={"ref_start": j, "ref_end": end_j, "mode": "semiglobal"})


class LocalAligner(Aligner):
    """Exact Smith-Waterman local alignment.

    Finds the highest-scoring pair of *substrings*; the returned
    CIGAR covers only the aligned region, with its coordinates in
    ``alignment.meta`` (``query_start/end``, ``ref_start/end``).
    """

    name = "local"
    exact = True

    def __init__(self, max_cells: int = 32_000_000) -> None:
        self.max_cells = max_cells

    def _matrix(self, q_codes: np.ndarray, r_codes: np.ndarray,
                model: ScoringModel) -> np.ndarray:
        _require_positive_scores(model)
        n, m = len(q_codes), len(r_codes)
        if (n + 1) * (m + 1) > self.max_cells:
            raise AlignmentError(
                f"local DP of {(n + 1) * (m + 1)} cells exceeds "
                f"max_cells={self.max_cells}"
            )
        matrix = np.zeros((n + 1, m + 1), dtype=np.int64)
        offsets = np.arange(m + 1, dtype=np.int64) * model.gap_d
        for i in range(1, n + 1):
            scores = model.substitution_row(int(q_codes[i - 1]),
                                            r_codes).astype(np.int64)
            g = np.zeros(m + 1, dtype=np.int64)
            np.maximum(matrix[i - 1, :-1] + scores,
                       matrix[i - 1, 1:] + model.gap_i, out=g[1:])
            row = np.maximum.accumulate(g - offsets) + offsets
            np.maximum(row, 0, out=matrix[i])
        return matrix

    def compute_score(self, q_codes: np.ndarray, r_codes: np.ndarray,
                      model: ScoringModel) -> AlignerResult:
        matrix = self._matrix(q_codes, r_codes, model)
        n, m = len(q_codes), len(r_codes)
        stats = DPStats(cells_computed=n * m, cells_stored=m + 1, blocks=1)
        return AlignerResult(alignment=None, score=int(matrix.max()),
                             stats=stats)

    def align(self, q_codes: np.ndarray, r_codes: np.ndarray,
              model: ScoringModel) -> AlignerResult:
        matrix = self._matrix(q_codes, r_codes, model)
        n, m = len(q_codes), len(r_codes)
        alignment = local_traceback(matrix, q_codes, r_codes, model)
        stats = DPStats(cells_computed=n * m, cells_stored=n * m, blocks=1)
        return AlignerResult(alignment=alignment, score=alignment.score,
                             stats=stats)


class SemiGlobalAligner(Aligner):
    """Glocal / infix alignment: the whole query against a reference
    window with free reference overhangs (the read-mapping mode).

    The first DP row is all zeros (free leading reference gap) and the
    score is the maximum of the last row (free trailing gap). The CIGAR
    consumes the entire query; ``meta['ref_start']``/``'ref_end'``
    locate the matched reference window.
    """

    name = "semiglobal"
    exact = True

    def __init__(self, max_cells: int = 32_000_000) -> None:
        self.max_cells = max_cells

    def _matrix(self, q_codes: np.ndarray, r_codes: np.ndarray,
                model: ScoringModel) -> np.ndarray:
        n, m = len(q_codes), len(r_codes)
        if (n + 1) * (m + 1) > self.max_cells:
            raise AlignmentError(
                f"semiglobal DP of {(n + 1) * (m + 1)} cells exceeds "
                f"max_cells={self.max_cells}"
            )
        matrix = np.empty((n + 1, m + 1), dtype=np.int64)
        matrix[0] = 0
        offsets = np.arange(m + 1, dtype=np.int64) * model.gap_d
        for i in range(1, n + 1):
            scores = model.substitution_row(int(q_codes[i - 1]),
                                            r_codes).astype(np.int64)
            g = np.empty(m + 1, dtype=np.int64)
            g[0] = i * model.gap_i
            np.maximum(matrix[i - 1, :-1] + scores,
                       matrix[i - 1, 1:] + model.gap_i, out=g[1:])
            matrix[i] = np.maximum.accumulate(g - offsets) + offsets
        return matrix

    def compute_score(self, q_codes: np.ndarray, r_codes: np.ndarray,
                      model: ScoringModel) -> AlignerResult:
        matrix = self._matrix(q_codes, r_codes, model)
        n, m = len(q_codes), len(r_codes)
        stats = DPStats(cells_computed=n * m, cells_stored=m + 1, blocks=1)
        return AlignerResult(alignment=None, score=int(matrix[-1].max()),
                             stats=stats)

    def align(self, q_codes: np.ndarray, r_codes: np.ndarray,
              model: ScoringModel) -> AlignerResult:
        matrix = self._matrix(q_codes, r_codes, model)
        n, m = len(q_codes), len(r_codes)
        alignment = semiglobal_traceback(matrix, q_codes, r_codes, model)
        stats = DPStats(cells_computed=n * m, cells_stored=n * m, blocks=1)
        return AlignerResult(alignment=alignment, score=alignment.score,
                             stats=stats)
