"""Practical sequence-alignment algorithms with work accounting."""

from repro.algorithms.adaptive import AdaptiveBandAligner
from repro.algorithms.affine import AffineAligner, AffineGapPenalties
from repro.algorithms.banded import BandedAligner, band_intervals
from repro.algorithms.base import NEG_INF, Aligner, AlignerResult, DPStats
from repro.algorithms.full import FullAligner
from repro.algorithms.hirschberg import HirschbergAligner
from repro.algorithms.local import LocalAligner, SemiGlobalAligner
from repro.algorithms.wavefront import WavefrontAligner
from repro.algorithms.window import WindowAligner
from repro.algorithms.xdrop import XdropAligner

__all__ = [
    "AdaptiveBandAligner",
    "AffineAligner",
    "AffineGapPenalties",
    "LocalAligner",
    "SemiGlobalAligner",
    "Aligner",
    "AlignerResult",
    "BandedAligner",
    "DPStats",
    "FullAligner",
    "HirschbergAligner",
    "NEG_INF",
    "WavefrontAligner",
    "WindowAligner",
    "XdropAligner",
    "band_intervals",
]
