"""Affine-gap alignment (Gotoh's algorithm) -- model-family extension.

The paper's SMX configurations use linear gap models (Sec. 2.2), but
the alignment-model *family* it targets ("including weighted gaps and
substitution matrices") conventionally extends to affine gaps
(open + extend), used by BLAST, Minimap2 and DIAMOND in production.
This module provides the exact software substrate for that extension:
Gotoh's three-matrix recurrence,

    H[i][j] = max(H[i-1][j-1] + S(q,r), E[i][j], F[i][j])
    E[i][j] = max(H[i][j-1] + open + extend, E[i][j-1] + extend)   (del)
    F[i][j] = max(H[i-1][j] + open + extend, F[i-1][j] + extend)   (ins)

row-vectorized with the same prefix-scan trick as the linear kernel
(the E chain unrolls to a running maximum). It serves as the gold
reference for a future affine SMX encoding and as the baseline for
affine-model experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import NEG_INF, Aligner, AlignerResult, DPStats
from repro.dp.alignment import Alignment, compress_ops
from repro.errors import AlignmentError, ConfigurationError
from repro.scoring.model import ScoringModel


@dataclass(frozen=True)
class AffineGapPenalties:
    """Affine gap parameters: a gap of length L costs
    ``open + L * extend`` (both non-positive)."""

    open: int
    extend: int

    def __post_init__(self) -> None:
        if self.open > 0 or self.extend > 0:
            raise ConfigurationError(
                f"affine penalties must be non-positive, got "
                f"open={self.open}, extend={self.extend}"
            )

    def cost(self, length: int) -> int:
        """Score contribution of one gap run of the given length."""
        return self.open + length * self.extend if length else 0


def affine_traceback(h: np.ndarray, e: np.ndarray, f: np.ndarray,
                     q_codes: np.ndarray, r_codes: np.ndarray,
                     model: ScoringModel,
                     penalties: AffineGapPenalties) -> Alignment:
    """Three-state Gotoh traceback over the H/E/F matrices.

    Shared by :class:`AffineAligner` and the batched vector engine so
    both produce bit-identical CIGARs; the tie-break order is diagonal,
    then the deletion chain (E), then the insertion chain (F).
    """
    n, m = len(q_codes), len(r_codes)
    ops: list[str] = []
    i, j = n, m
    state = "H"
    gap_ext = penalties.extend
    first = penalties.open + gap_ext
    while i > 0 or j > 0:
        if state == "H":
            if i > 0 and j > 0 and h[i, j] == h[i - 1, j - 1] \
                    + model.substitution(int(q_codes[i - 1]),
                                         int(r_codes[j - 1])):
                ops.append("=" if q_codes[i - 1] == r_codes[j - 1]
                           else "X")
                i -= 1
                j -= 1
            elif j > 0 and h[i, j] == e[i, j]:
                state = "E"
            elif i > 0 and h[i, j] == f[i, j]:
                state = "F"
            else:
                raise AlignmentError(
                    f"affine traceback stuck at H({i},{j})"
                )
        elif state == "E":
            ops.append("D")
            if e[i, j] == e[i, j - 1] + gap_ext and j > 1:
                j -= 1                     # keep extending
            else:
                assert e[i, j] == h[i, j - 1] + first
                j -= 1
                state = "H"
        else:  # state == "F"
            ops.append("I")
            if f[i, j] == f[i - 1, j] + gap_ext and i > 1:
                i -= 1
            else:
                assert f[i, j] == h[i - 1, j] + first
                i -= 1
                state = "H"
    ops.reverse()
    return Alignment(score=int(h[-1, -1]), cigar=compress_ops(ops),
                     query_len=n, ref_len=m)


class AffineAligner(Aligner):
    """Exact global alignment under an affine gap model (Gotoh 1982).

    The substitution scores come from the supplied :class:`ScoringModel`
    (its linear gap penalties are ignored); gaps use ``penalties``.
    """

    name = "affine"
    exact = True

    def __init__(self, penalties: AffineGapPenalties,
                 max_cells: int = 16_000_000) -> None:
        self.penalties = penalties
        self.max_cells = max_cells

    # -- matrix computation ----------------------------------------------

    def _matrices(self, q_codes: np.ndarray, r_codes: np.ndarray,
                  model: ScoringModel,
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        n, m = len(q_codes), len(r_codes)
        if (n + 1) * (m + 1) > self.max_cells:
            raise AlignmentError(
                f"affine DP of {(n + 1) * (m + 1)} cells exceeds "
                f"max_cells={self.max_cells}"
            )
        gap_open = self.penalties.open
        gap_ext = self.penalties.extend
        first = gap_open + gap_ext

        h = np.full((n + 1, m + 1), NEG_INF, dtype=np.int64)
        e = np.full((n + 1, m + 1), NEG_INF, dtype=np.int64)
        f = np.full((n + 1, m + 1), NEG_INF, dtype=np.int64)
        h[0, 0] = 0
        if m:
            e[0, 1:] = gap_open + gap_ext * np.arange(1, m + 1)
            h[0, 1:] = e[0, 1:]
        if n:
            f[1:, 0] = gap_open + gap_ext * np.arange(1, n + 1)
            h[1:, 0] = f[1:, 0]

        offsets = np.arange(m + 1, dtype=np.int64) * gap_ext
        for i in range(1, n + 1):
            scores = model.substitution_row(int(q_codes[i - 1]),
                                            r_codes).astype(np.int64)
            f[i, 1:] = np.maximum(h[i - 1, 1:] + first,
                                  f[i - 1, 1:] + gap_ext)
            diag = h[i - 1, :-1] + scores
            # E chain: E[j] = max_{k<j}(H[i][k] + open) + (j-k)*ext.
            # H[i][j] depends on E[i][j] which depends on H[i][j-1]:
            # resolve with a left-to-right running max over
            # g[j] = max(diag[j], F[i][j]) -- the non-E candidates --
            # because E only ever extends from some H[i][k] that itself
            # came from a non-E candidate or the row border.
            g = np.empty(m + 1, dtype=np.int64)
            g[0] = h[i, 0]
            np.maximum(diag, f[i, 1:], out=g[1:])
            opened = g + gap_open - offsets
            running = np.maximum.accumulate(opened[:-1])
            e[i, 1:] = running + offsets[1:]
            h[i, 1:] = np.maximum(g[1:], e[i, 1:])
        return h, e, f

    def score_matrix(self, q_codes: np.ndarray, r_codes: np.ndarray,
                     model: ScoringModel) -> np.ndarray:
        """The H (best-score) matrix; mainly for tests."""
        return self._matrices(q_codes, r_codes, model)[0]

    # -- public API --------------------------------------------------------

    def compute_score(self, q_codes: np.ndarray, r_codes: np.ndarray,
                      model: ScoringModel) -> AlignerResult:
        n, m = len(q_codes), len(r_codes)
        h, _, _ = self._matrices(q_codes, r_codes, model)
        stats = DPStats(cells_computed=3 * n * m, cells_stored=3 * (m + 1),
                        blocks=1)
        return AlignerResult(alignment=None, score=int(h[-1, -1]),
                             stats=stats)

    def align(self, q_codes: np.ndarray, r_codes: np.ndarray,
              model: ScoringModel) -> AlignerResult:
        n, m = len(q_codes), len(r_codes)
        h, e, f = self._matrices(q_codes, r_codes, model)
        alignment = affine_traceback(h, e, f, q_codes, r_codes, model,
                                     self.penalties)
        stats = DPStats(cells_computed=3 * n * m, cells_stored=3 * n * m,
                        blocks=1)
        return AlignerResult(alignment=alignment, score=alignment.score,
                             stats=stats)

    def rescore_cigar(self, alignment: Alignment, q_codes: np.ndarray,
                      r_codes: np.ndarray, model: ScoringModel) -> int:
        """Score a CIGAR under the affine model (gap runs priced
        open + L*extend); validates sequence consumption."""
        i = j = 0
        score = 0
        for count, op in alignment.cigar:
            if op in ("=", "X"):
                for _ in range(count):
                    score += model.substitution(int(q_codes[i]),
                                                int(r_codes[j]))
                    i += 1
                    j += 1
            elif op == "I":
                score += self.penalties.cost(count)
                i += count
            elif op == "D":
                score += self.penalties.cost(count)
                j += count
            else:
                raise AlignmentError(f"unknown CIGAR op {op!r}")
        if i != len(q_codes) or j != len(r_codes):
            raise AlignmentError("CIGAR does not consume the sequences")
        return score
