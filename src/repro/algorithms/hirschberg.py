"""Hirschberg's linear-space alignment (paper Sec. 2.3).

Divide-and-conquer over the query: two O(m)-memory half passes locate
the optimal crossing column of the middle row, then each half is solved
recursively. Total work is ~2x the full matrix while memory stays
linear -- the compute/memory trade-off SMX-2D accelerates so well in
Sec. 9 (large score-only DP-blocks, no traceback storage).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Aligner, AlignerResult, DPStats
from repro.dp.alignment import Alignment
from repro.dp.dense import nw_last_row, nw_matrix
from repro.dp.traceback import merge_cigars, traceback_full
from repro.scoring.model import ScoringModel


class HirschbergAligner(Aligner):
    """Exact alignment in O(min(n, m)) memory.

    Args:
        base_cells: Subproblems at or below this many cells are solved
            with the dense DP directly (recursion cut-off). Larger values
            trade memory for fewer recursion levels, mirroring how the
            SMX implementation sizes its leaf DP-blocks.
    """

    name = "hirschberg"
    exact = True

    def __init__(self, base_cells: int = 4096) -> None:
        self.base_cells = max(4, base_cells)

    def align(self, q_codes: np.ndarray, r_codes: np.ndarray,
              model: ScoringModel) -> AlignerResult:
        stats = DPStats()
        cigar = self._solve(q_codes, r_codes, model, stats)
        alignment = Alignment(score=0, cigar=cigar, query_len=len(q_codes),
                              ref_len=len(r_codes))
        alignment.score = alignment.rescore(q_codes, r_codes, model)
        stats.cells_stored = max(stats.cells_stored,
                                 min(len(q_codes), len(r_codes)) + 1)
        return AlignerResult(alignment=alignment, score=alignment.score,
                             stats=stats)

    def compute_score(self, q_codes: np.ndarray, r_codes: np.ndarray,
                      model: ScoringModel) -> AlignerResult:
        n, m = len(q_codes), len(r_codes)
        score = int(nw_last_row(q_codes, r_codes, model)[-1])
        stats = DPStats(cells_computed=n * m, cells_stored=m + 1, blocks=1)
        return AlignerResult(alignment=None, score=score, stats=stats)

    def _solve(self, q: np.ndarray, r: np.ndarray, model: ScoringModel,
               stats: DPStats) -> list[tuple[int, str]]:
        n, m = len(q), len(r)
        if n == 0:
            return [(m, "D")] if m else []
        if m == 0:
            return [(n, "I")]
        if n * m <= self.base_cells or n == 1:
            matrix = nw_matrix(q, r, model)
            cigar, _ = traceback_full(matrix, q, r, model)
            stats.cells_computed += n * m
            stats.blocks += 1
            return cigar
        mid = n // 2
        forward = nw_last_row(q[:mid], r, model)
        backward = nw_last_row(q[mid:][::-1], r[::-1], model)
        stats.cells_computed += n * m
        stats.blocks += 2
        split = int(np.argmax(forward + backward[::-1]))
        left = self._solve(q[:mid], r[:split], model, stats)
        right = self._solve(q[mid:], r[split:], model, stats)
        return merge_cigars([left, right])
