"""Full (exhaustive) Needleman-Wunsch alignment.

Computes and, for traceback, stores the complete DP-matrix: the accuracy
gold standard and the worst-case memory/compute point of Fig. 2.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Aligner, AlignerResult, DPStats
from repro.dp.dense import nw_matrix, nw_score
from repro.dp.traceback import alignment_from_matrix
from repro.scoring.model import ScoringModel


class FullAligner(Aligner):
    """Exact full-matrix alignment (classic NW, paper Sec. 2.1)."""

    name = "full"
    exact = True

    def __init__(self, max_cells: int = 64_000_000) -> None:
        self.max_cells = max_cells

    def align(self, q_codes: np.ndarray, r_codes: np.ndarray,
              model: ScoringModel) -> AlignerResult:
        n, m = len(q_codes), len(r_codes)
        matrix = nw_matrix(q_codes, r_codes, model, max_cells=self.max_cells)
        alignment = alignment_from_matrix(matrix, q_codes, r_codes, model)
        stats = DPStats(cells_computed=n * m, cells_stored=n * m, blocks=1)
        return AlignerResult(alignment=alignment, score=alignment.score,
                             stats=stats)

    def compute_score(self, q_codes: np.ndarray, r_codes: np.ndarray,
                      model: ScoringModel) -> AlignerResult:
        n, m = len(q_codes), len(r_codes)
        score = nw_score(q_codes, r_codes, model)
        stats = DPStats(cells_computed=n * m, cells_stored=m + 1, blocks=1)
        return AlignerResult(alignment=None, score=score, stats=stats)
