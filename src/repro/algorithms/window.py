"""GACT-style window heuristic (Darwin's aligner; paper Sec. 3 and 11).

The alignment is built greedily from (0, 0): a W x W window of the DP
matrix is computed, a traceback is run from the window's far corner, and
only the first ``W - O`` path steps are committed (the overlap ``O``
absorbs path uncertainty near the frontier). The next window starts at
the commit point. Memory is O(W^2) regardless of sequence length.

This is fast but *not* exact: once the true optimal path drifts outside
a window, the heuristic commits to a wrong corridor and never recovers.
The paper shows exactly this (zero recall on long noisy ONT reads with
W=320, O=128, Fig. 14), which is the motivation for SMX's flexibility
argument.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Aligner, AlignerResult, DPStats
from repro.dp.alignment import Alignment
from repro.dp.dense import nw_matrix
from repro.dp.traceback import merge_cigars, traceback_full
from repro.errors import AlignmentError
from repro.scoring.model import ScoringModel


class WindowAligner(Aligner):
    """Greedy fixed-window alignment (GACT heuristic).

    Args:
        window: Window edge length ``W`` (paper comparison uses 320).
        overlap: Overlap ``O`` between consecutive windows (paper: 128).
    """

    name = "window"
    exact = False

    def __init__(self, window: int = 320, overlap: int = 128) -> None:
        if not 0 <= overlap < window:
            raise AlignmentError(
                f"overlap {overlap} must be in [0, window={window})"
            )
        self.window = window
        self.overlap = overlap
        self.name = f"window-W{window}-O{overlap}"

    def align(self, q_codes: np.ndarray, r_codes: np.ndarray,
              model: ScoringModel) -> AlignerResult:
        n, m = len(q_codes), len(r_codes)
        stats = DPStats(cells_stored=self.window * self.window)
        parts: list[list[tuple[int, str]]] = []
        i = j = 0
        commit = self.window - self.overlap
        while i < n or j < m:
            wq = q_codes[i:i + self.window]
            wr = r_codes[j:j + self.window]
            wn, wm = len(wq), len(wr)
            matrix = nw_matrix(wq, wr, model)
            stats.cells_computed += wn * wm
            stats.blocks += 1
            terminal = (i + wn >= n) and (j + wm >= m)
            try:
                cigar, path = traceback_full(matrix, wq, wr, model)
            except AlignmentError as exc:  # pragma: no cover - defensive
                return AlignerResult(alignment=None, score=None, stats=stats,
                                     failed=True, failure_reason=str(exc))
            if terminal:
                parts.append(cigar)
                i += wn
                j += wm
                break
            # Commit the path prefix that stays within the first
            # (W - O) rows AND columns; the rest is recomputed by the
            # next window.
            committed: list[str] = []
            ci, cj = 0, 0
            for count, op in cigar:
                for _ in range(count):
                    di = 1 if op in ("=", "X", "I") else 0
                    dj = 1 if op in ("=", "X", "D") else 0
                    if ci + di > commit or cj + dj > commit:
                        break
                    ci += di
                    cj += dj
                    committed.append(op)
                else:
                    continue
                break
            if ci == 0 and cj == 0:
                return AlignerResult(
                    alignment=None, score=None, stats=stats, failed=True,
                    failure_reason="window made no progress (path escaped)")
            compressed: list[tuple[int, str]] = []
            for op in committed:
                if compressed and compressed[-1][1] == op:
                    compressed[-1] = (compressed[-1][0] + 1, op)
                else:
                    compressed.append((1, op))
            parts.append(compressed)
            i += ci
            j += cj
        alignment = Alignment(score=0, cigar=merge_cigars(parts),
                              query_len=n, ref_len=m)
        try:
            alignment.score = alignment.rescore(q_codes, r_codes, model)
        except AlignmentError as exc:
            return AlignerResult(alignment=None, score=None, stats=stats,
                                 failed=True, failure_reason=str(exc))
        return AlignerResult(alignment=alignment, score=alignment.score,
                             stats=stats)

    def compute_score(self, q_codes: np.ndarray, r_codes: np.ndarray,
                      model: ScoringModel) -> AlignerResult:
        # The window heuristic must traceback every window to find the
        # next anchor, so score-only saves nothing (paper Sec. 3: the
        # traceback of each window is mandatory).
        return self.align(q_codes, r_codes, model)
