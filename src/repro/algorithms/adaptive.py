"""Adaptive banded alignment (Suzuki-Kasahara style) -- heuristic
extension.

A fixed-*width* band whose position shifts as the computation advances:
after each row the band moves right if the score landscape leans that
way (the right band edge scores at least as well as the left), and
stays put otherwise. This follows the adaptive-banded DP of Suzuki &
Kasahara [98] that the paper lists among the practical heuristics SMX
must support; its DP-blocks are exactly the narrow row-strips the
SMX-2D worker decomposition handles.

Work is O(n * width) regardless of sequence length; exactness holds
whenever the optimal path stays inside the moving corridor.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import NEG_INF, Aligner, AlignerResult, DPStats
from repro.dp.alignment import Alignment
from repro.dp.traceback import traceback_full
from repro.errors import AlignmentError
from repro.scoring.model import ScoringModel


class AdaptiveBandAligner(Aligner):
    """Banded alignment with a score-steered moving band.

    Args:
        width: Band width in cells (the paper's SIMD baselines typically
            use vector-width multiples; any positive width works).
    """

    name = "adaptive-band"
    exact = False

    def __init__(self, width: int = 128) -> None:
        if width < 2:
            raise AlignmentError(f"band width must be >= 2, got {width}")
        self.width = width
        self.name = f"adaptive-band-w{width}"

    def _run(self, q_codes: np.ndarray, r_codes: np.ndarray,
             model: ScoringModel, keep_matrix: bool,
             ) -> tuple[np.ndarray | None, int | None, DPStats]:
        n, m = len(q_codes), len(r_codes)
        width = min(self.width, m + 1)
        row = np.full(m + 1, NEG_INF, dtype=np.int64)
        lo = 0
        hi = min(m, width - 1)
        row[lo:hi + 1] = np.arange(lo, hi + 1) * model.gap_d
        matrix = None
        if keep_matrix:
            matrix = np.full((n + 1, m + 1), NEG_INF, dtype=np.int64)
            matrix[0] = row
        cells = hi - lo + 1
        offsets = np.arange(m + 1, dtype=np.int64) * model.gap_d
        prune_floor = int(NEG_INF) // 2
        for i in range(1, n + 1):
            # Steer: drift right when the right edge is at least as
            # promising as the left (and the diagonal still needs it).
            if int(row[hi]) >= int(row[lo]) and hi < m:
                lo += 1
                hi += 1
            scores = model.substitution_row(int(q_codes[i - 1]),
                                            r_codes).astype(np.int64)
            g = np.full(m + 1, NEG_INF, dtype=np.int64)
            if lo == 0:
                g[0] = i * model.gap_i
            np.maximum(row[:-1] + scores, row[1:] + model.gap_i, out=g[1:])
            new_row = np.maximum.accumulate(g - offsets) + offsets
            new_row[:lo] = NEG_INF
            new_row[hi + 1:] = NEG_INF
            row = new_row
            cells += hi - lo + 1
            if keep_matrix:
                matrix[i] = row
        score = int(row[m]) if int(row[m]) > prune_floor else None
        stats = DPStats(cells_computed=cells,
                        cells_stored=cells if keep_matrix else width,
                        blocks=1)
        return matrix, score, stats

    def align(self, q_codes: np.ndarray, r_codes: np.ndarray,
              model: ScoringModel) -> AlignerResult:
        matrix, score, stats = self._run(q_codes, r_codes, model,
                                         keep_matrix=True)
        if score is None:
            return AlignerResult(alignment=None, score=None, stats=stats,
                                 failed=True,
                                 failure_reason="band drifted off (n, m)")
        try:
            cigar, path = traceback_full(matrix, q_codes, r_codes, model)
        except AlignmentError as exc:
            return AlignerResult(alignment=None, score=score, stats=stats,
                                 failed=True, failure_reason=str(exc))
        alignment = Alignment(score=score, cigar=cigar,
                              query_len=len(q_codes), ref_len=len(r_codes),
                              meta={"path_cells": len(path)})
        return AlignerResult(alignment=alignment, score=score, stats=stats)

    def compute_score(self, q_codes: np.ndarray, r_codes: np.ndarray,
                      model: ScoringModel) -> AlignerResult:
        _, score, stats = self._run(q_codes, r_codes, model,
                                    keep_matrix=False)
        return AlignerResult(alignment=None, score=score, stats=stats,
                             failed=score is None,
                             failure_reason="band drifted off"
                             if score is None else "")
