"""Common interface for practical alignment algorithms (paper Sec. 2.3).

Every algorithm reports :class:`DPStats` alongside its alignment so the
compute/store/accuracy trade-offs of Fig. 2 can be measured directly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.dp.alignment import Alignment
from repro.scoring.model import ScoringModel


@dataclass
class DPStats:
    """Work and memory accounting for one alignment.

    Attributes:
        cells_computed: DP-elements evaluated (including recomputation).
        cells_stored: Peak DP-elements resident for traceback purposes.
        blocks: DP-block computations issued (1 for monolithic algorithms;
            Hirschberg/X-drop issue many, which is what SMX-2D offloads).
    """

    cells_computed: int = 0
    cells_stored: int = 0
    blocks: int = 0

    def add(self, other: "DPStats") -> None:
        self.cells_computed += other.cells_computed
        self.cells_stored = max(self.cells_stored, other.cells_stored)
        self.blocks += other.blocks

    def fractions_of(self, n: int, m: int) -> tuple[float, float]:
        """(computed, stored) as fractions of the full n*m matrix."""
        total = max(1, n * m)
        return (self.cells_computed / total, self.cells_stored / total)


@dataclass
class AlignerResult:
    """An alignment (or score) together with its work accounting."""

    alignment: Alignment | None
    score: int | None
    stats: DPStats
    failed: bool = False
    failure_reason: str = ""
    meta: dict = field(default_factory=dict)


class Aligner(abc.ABC):
    """Base class for pairwise alignment algorithms.

    Subclasses implement :meth:`align` (full alignment with traceback)
    and :meth:`compute_score` (score only, which lets heuristics skip all
    traceback storage). Heuristic aligners may return a *suboptimal*
    result or a failure; exact aligners never do.
    """

    #: Short identifier used in reports ("full", "banded", ...).
    name: str = "aligner"
    #: Whether the algorithm guarantees the optimal score.
    exact: bool = False

    @abc.abstractmethod
    def align(self, q_codes: np.ndarray, r_codes: np.ndarray,
              model: ScoringModel) -> AlignerResult:
        """Compute a full alignment (CIGAR + score) with traceback."""

    @abc.abstractmethod
    def compute_score(self, q_codes: np.ndarray, r_codes: np.ndarray,
                      model: ScoringModel) -> AlignerResult:
        """Compute the alignment score only (no traceback storage)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


#: Sentinel for cells outside a band / pruned by X-drop. Far below any
#: reachable score yet safe from int64 underflow in additions.
NEG_INF = np.int64(-(1 << 40))
