"""Banded alignment heuristic (paper Sec. 2.3).

Only a corridor of cells around the main diagonal is computed; cells
outside the band are treated as unreachable (``NEG_INF``). The band
follows the rectangle's diagonal (slope m/n), so sequences of unequal
length are handled. The result is exact whenever the optimal path stays
inside the band, and a lower bound otherwise -- which is precisely the
accuracy trade-off Fig. 2 quantifies.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import NEG_INF, Aligner, AlignerResult, DPStats
from repro.dp.alignment import Alignment
from repro.dp.traceback import traceback_full
from repro.errors import AlignmentError
from repro.scoring.model import ScoringModel


def band_intervals(n: int, m: int, width: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-row inclusive column intervals ``[lo_i, hi_i]`` of the band.

    The half-width is widened to at least ``ceil(m / n)`` so consecutive
    rows always overlap and the corridor from (0, 0) to (n, m) is
    connected.
    """
    if n == 0:
        return np.zeros(1, dtype=np.int64), np.full(1, m, dtype=np.int64)
    slope = m / n
    half = max(int(width), int(np.ceil(slope)), 1)
    centers = np.round(np.arange(n + 1) * slope).astype(np.int64)
    lo = np.maximum(centers - half, 0)
    hi = np.minimum(centers + half, m)
    return lo, hi


class BandedAligner(Aligner):
    """Heuristic banded NW with a fixed (relative or absolute) width.

    Args:
        width: Band half-width in cells. Mutually exclusive with
            ``fraction``.
        fraction: Band half-width as a fraction of the longer sequence
            (e.g. 0.1 for the "banded 10%" configuration).
    """

    name = "banded"
    exact = False

    def __init__(self, width: int | None = None,
                 fraction: float | None = None) -> None:
        if (width is None) == (fraction is None):
            raise AlignmentError("specify exactly one of width / fraction")
        self.width = width
        self.fraction = fraction
        if fraction is not None:
            self.name = f"banded-{fraction:.0%}"
        else:
            self.name = f"banded-w{width}"

    def _half_width(self, n: int, m: int) -> int:
        if self.width is not None:
            return self.width
        return max(1, int(round(self.fraction * max(n, m))))

    def _run(self, q_codes: np.ndarray, r_codes: np.ndarray,
             model: ScoringModel, keep_matrix: bool,
             ) -> tuple[np.ndarray | None, np.ndarray, int, DPStats]:
        n, m = len(q_codes), len(r_codes)
        lo, hi = band_intervals(n, m, self._half_width(n, m))
        row = np.full(m + 1, NEG_INF, dtype=np.int64)
        row[lo[0]:hi[0] + 1] = np.arange(lo[0], hi[0] + 1) * model.gap_d
        matrix = None
        if keep_matrix:
            matrix = np.full((n + 1, m + 1), NEG_INF, dtype=np.int64)
            matrix[0] = row
        cells = int(hi[0] - lo[0] + 1)
        offsets = np.arange(m + 1, dtype=np.int64) * model.gap_d
        for i in range(1, n + 1):
            scores = model.substitution_row(int(q_codes[i - 1]),
                                            r_codes).astype(np.int64)
            g = np.full(m + 1, NEG_INF, dtype=np.int64)
            g[0] = i * model.gap_i if lo[i] == 0 else NEG_INF
            np.maximum(row[:-1] + scores, row[1:] + model.gap_i, out=g[1:])
            new_row = np.maximum.accumulate(g - offsets) + offsets
            new_row[:lo[i]] = NEG_INF
            new_row[hi[i] + 1:] = NEG_INF
            row = new_row
            cells += int(hi[i] - lo[i] + 1)
            if keep_matrix:
                matrix[i] = row
        stats = DPStats(cells_computed=cells,
                        cells_stored=cells if keep_matrix
                        else int((hi - lo + 1).max()),
                        blocks=1)
        return matrix, row, int(row[m]), stats

    def align(self, q_codes: np.ndarray, r_codes: np.ndarray,
              model: ScoringModel) -> AlignerResult:
        matrix, _, score, stats = self._run(q_codes, r_codes, model,
                                            keep_matrix=True)
        if score <= int(NEG_INF) // 2:
            return AlignerResult(alignment=None, score=None, stats=stats,
                                 failed=True,
                                 failure_reason="band excluded (n, m)")
        try:
            cigar, path = traceback_full(matrix, q_codes, r_codes, model)
        except AlignmentError as exc:
            return AlignerResult(alignment=None, score=score, stats=stats,
                                 failed=True, failure_reason=str(exc))
        alignment = Alignment(score=score, cigar=cigar,
                              query_len=len(q_codes), ref_len=len(r_codes),
                              meta={"path_cells": len(path)})
        return AlignerResult(alignment=alignment, score=score, stats=stats)

    def compute_score(self, q_codes: np.ndarray, r_codes: np.ndarray,
                      model: ScoringModel) -> AlignerResult:
        _, _, score, stats = self._run(q_codes, r_codes, model,
                                       keep_matrix=False)
        failed = score <= int(NEG_INF) // 2
        return AlignerResult(alignment=None,
                             score=None if failed else score,
                             stats=stats, failed=failed,
                             failure_reason="band too narrow" if failed
                             else "")
