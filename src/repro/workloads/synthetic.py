"""Synthetic sequence-pair generation with realistic error models.

The paper evaluates on real PacBio-HiFi, ONT, and UniProt datasets; we
have no network access, so pairs are *simulated*: a reference sequence
is drawn uniformly, then a query is derived by applying a per-technology
error profile (substitution / insertion / deletion rates). This
exercises the same code paths (band widths, drop behaviour, traceback
length, recall) as real reads -- what the experiments actually measure.
All generation is deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.encoding.alphabet import AMINO_ACIDS, PROTEIN, Alphabet
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ErrorProfile:
    """Per-base error rates applied when deriving a query from a reference.

    Rates are independent probabilities per reference position; the total
    (``sub + ins + del``) approximates the technology's error rate.
    """

    substitution: float
    insertion: float
    deletion: float

    def __post_init__(self) -> None:
        total = self.substitution + self.insertion + self.deletion
        if not 0.0 <= total < 1.0:
            raise ConfigurationError(
                f"total error rate {total:.3f} must be in [0, 1)"
            )

    @property
    def total(self) -> float:
        return self.substitution + self.insertion + self.deletion


#: PacBio HiFi: ~1% total error, indel-leaning.
PACBIO_HIFI = ErrorProfile(substitution=0.004, insertion=0.003,
                           deletion=0.003)
#: ONT long reads: ~7% total error, deletion-heavy.
ONT_NANOPORE = ErrorProfile(substitution=0.030, insertion=0.017,
                            deletion=0.023)
#: Human-typing-style errors for ASCII text.
TYPO = ErrorProfile(substitution=0.02, insertion=0.01, deletion=0.01)
#: Error-free (identity) profile.
PERFECT = ErrorProfile(substitution=0.0, insertion=0.0, deletion=0.0)


@dataclass
class SequencePair:
    """A query/reference pair plus generation metadata."""

    q_codes: np.ndarray
    r_codes: np.ndarray
    meta: dict = field(default_factory=dict)

    @property
    def n(self) -> int:
        return len(self.q_codes)

    @property
    def m(self) -> int:
        return len(self.r_codes)

    @property
    def cells(self) -> int:
        return self.n * self.m


def mutate(codes: np.ndarray, profile: ErrorProfile, alphabet: Alphabet,
           rng: np.random.Generator) -> tuple[np.ndarray, int]:
    """Apply an error profile to a code sequence.

    Substituted characters are guaranteed to differ from the original
    (a substitution that lands on the same letter would be invisible).

    Returns:
        ``(mutated_codes, edits_applied)``.
    """
    out: list[int] = []
    edits = 0
    rolls = rng.random(len(codes))
    for index, code in enumerate(codes):
        roll = rolls[index]
        if roll < profile.deletion:
            edits += 1
            continue
        roll -= profile.deletion
        if roll < profile.insertion:
            out.append(int(alphabet.random(1, rng)[0]))
            out.append(int(code))
            edits += 1
            continue
        roll -= profile.insertion
        if roll < profile.substitution:
            replacement = int(alphabet.random(1, rng)[0])
            while replacement == int(code):
                replacement = int(alphabet.random(1, rng)[0])
            out.append(replacement)
            edits += 1
            continue
        out.append(int(code))
    return np.asarray(out, dtype=np.uint8), edits


def apply_structural_variant(codes: np.ndarray, rng: np.random.Generator,
                             min_len: int = 150,
                             max_len: int = 500) -> tuple[np.ndarray, int]:
    """Delete one long contiguous chunk (a structural variant).

    Long-read datasets contain such events; they are what defeats
    fixed-window heuristics (the paper's zero-recall GACT result),
    while wide bands and exact algorithms absorb them.

    Returns:
        ``(codes_with_deletion, deleted_length)`` (no-op on sequences
        too short to host the variant).
    """
    max_len = min(max_len, len(codes) // 3)
    if max_len < min_len:
        return codes, 0
    length = int(rng.integers(min_len, max_len + 1))
    start = int(rng.integers(0, len(codes) - length))
    return np.delete(codes, slice(start, start + length)), length


def random_pair(alphabet: Alphabet, length: int, profile: ErrorProfile,
                rng: np.random.Generator,
                length_jitter: float = 0.0,
                sv_prob: float = 0.0) -> SequencePair:
    """Draw a reference and derive an error-profiled query from it.

    Args:
        sv_prob: Probability that the query additionally carries one
            long structural deletion (see
            :func:`apply_structural_variant`).
    """
    if length_jitter:
        low = max(8, int(length * (1.0 - length_jitter)))
        high = int(length * (1.0 + length_jitter)) + 1
        length = int(rng.integers(low, high))
    r_codes = alphabet.random(length, rng)
    q_codes, edits = mutate(r_codes, profile, alphabet, rng)
    sv_len = 0
    if sv_prob and rng.random() < sv_prob:
        q_codes, sv_len = apply_structural_variant(q_codes, rng)
    return SequencePair(q_codes=q_codes, r_codes=r_codes,
                        meta={"edits": edits, "profile": profile,
                              "alphabet": alphabet.name,
                              "sv_length": sv_len})


def random_protein_pair(length: int, divergence: float,
                        rng: np.random.Generator) -> SequencePair:
    """A protein pair over the 20 amino-acid letters.

    ``divergence`` is the total error rate split 70/15/15 between
    substitutions and indels, loosely matching pairwise identities of
    database search hits.
    """
    letters = np.frombuffer(AMINO_ACIDS.encode(), dtype=np.uint8) - 65
    r_codes = letters[rng.integers(0, len(letters), size=length)]
    profile = ErrorProfile(substitution=0.70 * divergence,
                           insertion=0.15 * divergence,
                           deletion=0.15 * divergence)
    # Mutate within the amino-acid letter set, then codes stay valid
    # 6-bit protein codes.
    out: list[int] = []
    edits = 0
    rolls = rng.random(length)
    for index, code in enumerate(r_codes):
        roll = rolls[index]
        if roll < profile.deletion:
            edits += 1
            continue
        roll -= profile.deletion
        if roll < profile.insertion:
            out.append(int(letters[rng.integers(0, len(letters))]))
            out.append(int(code))
            edits += 1
            continue
        roll -= profile.insertion
        if roll < profile.substitution:
            replacement = int(letters[rng.integers(0, len(letters))])
            out.append(replacement)
            edits += replacement != int(code)
            continue
        out.append(int(code))
    q_codes = np.asarray(out, dtype=np.uint8)
    return SequencePair(q_codes=q_codes, r_codes=r_codes.astype(np.uint8),
                        meta={"edits": edits, "alphabet": PROTEIN.name,
                              "divergence": divergence})
