"""Dataset builders standing in for the paper's evaluation datasets.

Paper Sec. 7 uses three real datasets: PacBio-HiFi reads (~15 kbp), ONT
Nanopore reads (~50 kbp), and UniProt protein query hits. The builders
here synthesize pairs with the corresponding length and error statistics
(see DESIGN.md, "Substitutions"). A global ``scale`` parameter shrinks
lengths proportionally so benchmarks finish on a laptop while keeping
the length *ratios* between datasets intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.encoding.alphabet import ASCII, DNA, DNA4, Alphabet
from repro.workloads.synthetic import (
    ONT_NANOPORE,
    PACBIO_HIFI,
    TYPO,
    ErrorProfile,
    SequencePair,
    random_pair,
    random_protein_pair,
)


@dataclass
class Dataset:
    """A named collection of sequence pairs."""

    name: str
    pairs: list[SequencePair]
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    @property
    def total_cells(self) -> int:
        return sum(pair.cells for pair in self.pairs)

    @property
    def mean_length(self) -> float:
        if not self.pairs:
            return 0.0
        return float(np.mean([pair.m for pair in self.pairs]))


def pacbio_like(n_pairs: int = 20, scale: float = 1.0,
                seed: int = 20250705, alphabet: Alphabet = DNA4,
                ) -> Dataset:
    """PacBio-HiFi-like DNA pairs: ~15 kbp, ~1% error."""
    rng = np.random.default_rng(seed)
    length = max(64, int(15_000 * scale))
    pairs = [random_pair(alphabet, length, PACBIO_HIFI, rng,
                         length_jitter=0.2) for _ in range(n_pairs)]
    return Dataset(name="pacbio", pairs=pairs,
                   meta={"profile": "pacbio-hifi", "scale": scale,
                         "nominal_length": length})


def ont_like(n_pairs: int = 20, scale: float = 1.0, seed: int = 20250706,
             alphabet: Alphabet = DNA, sv_prob: float = 0.0) -> Dataset:
    """ONT-Nanopore-like DNA pairs: ~50 kbp, ~7% error.

    ``sv_prob`` adds long structural deletions to that fraction of the
    reads -- the events that break fixed-window heuristics (Fig. 2 /
    Fig. 14 recall series).
    """
    rng = np.random.default_rng(seed)
    length = max(64, int(50_000 * scale))
    pairs = [random_pair(alphabet, length, ONT_NANOPORE, rng,
                         length_jitter=0.3, sv_prob=sv_prob)
             for _ in range(n_pairs)]
    return Dataset(name="ont", pairs=pairs,
                   meta={"profile": "ont-nanopore", "scale": scale,
                         "nominal_length": length, "sv_prob": sv_prob})


def uniprot_like(n_pairs: int = 50, scale: float = 1.0,
                 seed: int = 20250707) -> Dataset:
    """UniProt-search-like protein pairs: 200-1000 aa, mixed divergence."""
    rng = np.random.default_rng(seed)
    pairs = []
    for _ in range(n_pairs):
        length = max(32, int(rng.integers(200, 1001) * scale))
        divergence = float(rng.uniform(0.10, 0.50))
        pairs.append(random_protein_pair(length, divergence, rng))
    return Dataset(name="uniprot", pairs=pairs,
                   meta={"profile": "uniprot-query", "scale": scale})


def ascii_like(n_pairs: int = 20, length: int = 2000, seed: int = 20250708,
               ) -> Dataset:
    """ASCII text pairs with typo-style errors (spell-check use case)."""
    rng = np.random.default_rng(seed)
    pairs = [random_pair(ASCII, length, TYPO, rng, length_jitter=0.1)
             for _ in range(n_pairs)]
    return Dataset(name="ascii", pairs=pairs,
                   meta={"profile": "typo", "length": length})


def fixed_length_pairs(alphabet: Alphabet, length: int, n_pairs: int,
                       error_rate: float, seed: int = 1234) -> Dataset:
    """Uniform-length pairs for the DP-block sweeps of Fig. 9/10.

    The error rate is split 50/25/25 between substitutions and indels.
    """
    rng = np.random.default_rng(seed)
    profile = ErrorProfile(substitution=0.50 * error_rate,
                           insertion=0.25 * error_rate,
                           deletion=0.25 * error_rate)
    pairs = [random_pair(alphabet, length, profile, rng)
             for _ in range(n_pairs)]
    return Dataset(name=f"{alphabet.name}-{length}", pairs=pairs,
                   meta={"length": length, "error_rate": error_rate})
