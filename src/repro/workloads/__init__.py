"""Synthetic workload and dataset generation."""

from repro.workloads.datasets import (
    Dataset,
    ascii_like,
    fixed_length_pairs,
    ont_like,
    pacbio_like,
    uniprot_like,
)
from repro.workloads.synthetic import (
    ONT_NANOPORE,
    PACBIO_HIFI,
    PERFECT,
    TYPO,
    ErrorProfile,
    SequencePair,
    mutate,
    random_pair,
    random_protein_pair,
)

__all__ = [
    "Dataset",
    "ErrorProfile",
    "ONT_NANOPORE",
    "PACBIO_HIFI",
    "PERFECT",
    "SequencePair",
    "TYPO",
    "ascii_like",
    "fixed_length_pairs",
    "mutate",
    "ont_like",
    "pacbio_like",
    "random_pair",
    "random_protein_pair",
    "uniprot_like",
]
