"""Reference-genome and read-sampling utilities for the mapper app.

Generates a random reference, samples reads from known positions with a
sequencing-error profile, and keeps the ground truth so mapping
accuracy is measurable (the paper's datasets provide this implicitly
through their read simulators).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.encoding.alphabet import DNA, Alphabet
from repro.errors import ConfigurationError
from repro.workloads.synthetic import ErrorProfile, mutate


@dataclass
class SampledRead:
    """A read plus where it truly came from."""

    codes: np.ndarray
    true_position: int
    true_end: int
    edits: int
    read_id: int = 0

    @property
    def length(self) -> int:
        return len(self.codes)


@dataclass
class ReadSet:
    """A reference genome with reads sampled from it."""

    genome: np.ndarray
    reads: list[SampledRead] = field(default_factory=list)

    @property
    def genome_length(self) -> int:
        return len(self.genome)


def random_genome(length: int, seed: int = 42,
                  alphabet: Alphabet = DNA) -> np.ndarray:
    """A uniform random reference sequence."""
    if length < 1:
        raise ConfigurationError("genome length must be positive")
    rng = np.random.default_rng(seed)
    return alphabet.random(length, rng)


def sample_reads(genome: np.ndarray, n_reads: int, read_length: int,
                 profile: ErrorProfile, seed: int = 4242,
                 alphabet: Alphabet = DNA) -> ReadSet:
    """Draw error-profiled reads from random genome positions."""
    if read_length > len(genome):
        raise ConfigurationError(
            f"read length {read_length} exceeds genome "
            f"length {len(genome)}"
        )
    rng = np.random.default_rng(seed)
    reads = []
    for read_id in range(n_reads):
        start = int(rng.integers(0, len(genome) - read_length + 1))
        fragment = genome[start:start + read_length]
        codes, edits = mutate(fragment, profile, alphabet, rng)
        reads.append(SampledRead(codes=codes, true_position=start,
                                 true_end=start + read_length,
                                 edits=edits, read_id=read_id))
    return ReadSet(genome=genome, reads=reads)
