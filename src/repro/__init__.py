"""SMX: heterogeneous architecture for universal sequence alignment
acceleration -- a functional + cycle-level Python reproduction of the
MICRO 2025 paper.

Quickstart::

    from repro import dna_edit_config, SmxSystem

    config = dna_edit_config()
    system = SmxSystem(config)
    q = config.encode("ACGTACGTAC")
    r = config.encode("ACGTTCGTAC")
    result = system.align(q, r)
    print(result.score, result.alignment.cigar_string)

The package splits into:

- :mod:`repro.core` -- the paper's contribution: SMX-PE datapath,
  SMX-1D ISA, SMX-2D coprocessor, heterogeneous system and pipelines;
- :mod:`repro.dp`, :mod:`repro.algorithms` -- the DP substrate and the
  practical algorithm family (full / banded / X-drop / Hirschberg /
  window);
- :mod:`repro.encoding`, :mod:`repro.scoring` -- alphabets, packing,
  differential encoding, scoring models and substitution matrices;
- :mod:`repro.sim` -- the cycle-level timing substrate (core model,
  cache hierarchy, event queue, multicore SoC);
- :mod:`repro.baselines` -- KSW2-SIMD, GMX, DPX, GACT, and the
  published state-of-the-art comparison points;
- :mod:`repro.workloads`, :mod:`repro.analysis` -- synthetic datasets
  and evaluation metrics / area model / reporting.
"""

from repro.algorithms import (
    BandedAligner,
    FullAligner,
    HirschbergAligner,
    WindowAligner,
    XdropAligner,
)
from repro.config import (
    AlignmentConfig,
    ascii_config,
    dna_edit_config,
    dna_gap_config,
    protein_config,
    standard_configs,
)
from repro.core import (
    CoprocParams,
    CoprocessorSim,
    EngineParams,
    Smx1D,
    SmxConfig,
    SmxState,
    SmxSystem,
    SystemResult,
)
from repro.core.pipelines import (
    SmxHirschbergPipeline,
    SmxProteinFullPipeline,
    SmxXdropPipeline,
)
from repro.dp import Alignment
from repro.errors import (
    AlignmentError,
    ConfigurationError,
    DeadlineExceeded,
    EncodingError,
    OffloadError,
    PoisonPairError,
    RangeError,
    ResilienceError,
    SimulationError,
    SmxError,
)
from repro.exec import BatchConfig, BatchEngine
from repro.workloads import (
    Dataset,
    ont_like,
    pacbio_like,
    uniprot_like,
)

__version__ = "1.0.0"

__all__ = [
    "Alignment",
    "AlignmentConfig",
    "AlignmentError",
    "BandedAligner",
    "BatchConfig",
    "BatchEngine",
    "ConfigurationError",
    "CoprocParams",
    "CoprocessorSim",
    "Dataset",
    "DeadlineExceeded",
    "EncodingError",
    "EngineParams",
    "FullAligner",
    "HirschbergAligner",
    "OffloadError",
    "PoisonPairError",
    "RangeError",
    "ResilienceError",
    "SimulationError",
    "Smx1D",
    "SmxConfig",
    "SmxError",
    "SmxHirschbergPipeline",
    "SmxProteinFullPipeline",
    "SmxState",
    "SmxSystem",
    "SmxXdropPipeline",
    "SystemResult",
    "WindowAligner",
    "XdropAligner",
    "ascii_config",
    "dna_edit_config",
    "dna_gap_config",
    "ont_like",
    "pacbio_like",
    "protein_config",
    "standard_configs",
    "uniprot_like",
    "__version__",
]
