"""Analytic out-of-order / in-order core cost model.

A kernel is summarised as an :class:`InstructionMix`; the core model
turns it into cycles by taking the binding structural constraint
(front-end width or the most contended port), then adding branch
mispredictions and memory stalls from the cache model. This abstraction
matches how gem5 results are usually *explained*, and parameters are
taken from the paper's Table 1 (evaluation core) and Table 2 (physical
design core).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.sim.cache import MemoryHierarchy, check_positive


@dataclass
class InstructionMix:
    """Dynamic instruction counts of one kernel invocation."""

    int_ops: float = 0.0
    simd_ops: float = 0.0
    smx_ops: float = 0.0
    loads: float = 0.0
    stores: float = 0.0
    branches: float = 0.0
    mispredictions: float = 0.0

    @property
    def total(self) -> float:
        return (self.int_ops + self.simd_ops + self.smx_ops + self.loads
                + self.stores + self.branches)

    def scaled(self, factor: float) -> "InstructionMix":
        return InstructionMix(
            int_ops=self.int_ops * factor,
            simd_ops=self.simd_ops * factor,
            smx_ops=self.smx_ops * factor,
            loads=self.loads * factor,
            stores=self.stores * factor,
            branches=self.branches * factor,
            mispredictions=self.mispredictions * factor,
        )

    def plus(self, other: "InstructionMix") -> "InstructionMix":
        return InstructionMix(
            int_ops=self.int_ops + other.int_ops,
            simd_ops=self.simd_ops + other.simd_ops,
            smx_ops=self.smx_ops + other.smx_ops,
            loads=self.loads + other.loads,
            stores=self.stores + other.stores,
            branches=self.branches + other.branches,
            mispredictions=self.mispredictions + other.mispredictions,
        )


@dataclass(frozen=True)
class CoreParams:
    """Structural parameters of a core (issue widths and port counts)."""

    name: str = "ooo-8w"
    issue_width: int = 8
    int_ports: int = 4
    simd_ports: int = 1
    #: Two SMX issue slots: smx.v and smx.h of one column dual-issue
    #: (the paper notes they can even merge on dual-write-port cores).
    smx_ports: int = 2
    load_ports: int = 2
    store_ports: int = 1
    branch_ports: int = 2
    misprediction_penalty: int = 14
    frequency_ghz: float = 1.0

    def __post_init__(self) -> None:
        for attr in ("issue_width", "int_ports", "simd_ports", "smx_ports",
                     "load_ports", "store_ports", "branch_ports",
                     "frequency_ghz"):
            check_positive(attr, getattr(self, attr))


#: The paper's gem5 evaluation core (Table 1): 8-wide OoO at 1 GHz.
GEM5_OOO = CoreParams()

#: The paper's physical-design core (Table 2): in-order single-issue.
RTL_INORDER = CoreParams(name="inorder-1w", issue_width=1, int_ports=1,
                         simd_ports=1, smx_ports=1, load_ports=1,
                         store_ports=1, branch_ports=1,
                         misprediction_penalty=5)


@dataclass
class CoreModel:
    """Turns instruction mixes plus memory behaviour into cycles."""

    params: CoreParams = field(default_factory=lambda: GEM5_OOO)
    memory: MemoryHierarchy = field(default_factory=MemoryHierarchy)

    def compute_cycles(self, mix: InstructionMix) -> float:
        """Structural (port/width-bound) cycles, no memory stalls."""
        p = self.params
        bound = max(
            mix.total / p.issue_width,
            mix.int_ops / p.int_ports,
            mix.simd_ops / p.simd_ports,
            mix.smx_ops / p.smx_ports,
            mix.loads / p.load_ports,
            mix.stores / p.store_ports,
            mix.branches / p.branch_ports,
        )
        return bound + mix.mispredictions * p.misprediction_penalty

    def kernel_cycles(self, mix: InstructionMix, bytes_streamed: float = 0.0,
                      working_set_bytes: int = 0,
                      random_accesses: float = 0.0,
                      random_working_set_bytes: int = 0) -> float:
        """Total cycles of a kernel: structure + memory.

        Streaming stalls and dependent (random) access latency are taken
        from the cache model; on an OoO core streaming stalls partially
        overlap computation, so only the excess over compute is charged.
        """
        compute = self.compute_cycles(mix)
        stream = self.memory.stream_stall_cycles(bytes_streamed,
                                                 working_set_bytes)
        chase = self.memory.random_access_cycles(
            random_accesses, random_working_set_bytes or working_set_bytes)
        if self.params.issue_width > 1:
            # OoO: streaming overlaps; dependent chains do not.
            return max(compute, stream) + chase
        return compute + stream + chase

    def with_memory(self, memory: MemoryHierarchy) -> "CoreModel":
        return replace(self, memory=memory)
