"""Task-level multicore scheduling (complements the analytic SoC model).

The analytic :func:`repro.sim.soc.multicore_scaling` assumes perfectly
divisible work; real alignment workloads are *tasks* (one per read
pair) with a heavy-tailed length distribution, so load balance matters
at low task-to-core ratios. This module schedules concrete task lists
onto cores with the classic LPT (longest processing time first)
heuristic and applies the shared-DRAM ceiling, reporting imbalance --
the effect visible when a few ultra-long ONT reads dominate a batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush

from repro.errors import ConfigurationError
from repro.obs import Observability, get_logger, get_obs
from repro.sim.cache import MemoryHierarchy

_LOG = get_logger("scheduler")


@dataclass(frozen=True)
class Task:
    """One schedulable unit (e.g. one read-pair alignment)."""

    cycles: float
    dram_bytes: float = 0.0
    task_id: int = 0

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ConfigurationError("task cycles must be positive")


@dataclass
class ScheduleReport:
    """Outcome of scheduling a task list on an SMX multicore."""

    n_cores: int
    makespan: float
    per_core_cycles: list[float]
    assignments: list[list[int]]
    dram_cycles: float
    dram_bound: bool
    total_cycles: float

    @property
    def speedup(self) -> float:
        return self.total_cycles / self.makespan if self.makespan else 0.0

    @property
    def efficiency(self) -> float:
        return self.speedup / self.n_cores

    @property
    def imbalance(self) -> float:
        """Max-over-mean per-core load (1.0 = perfectly balanced)."""
        busiest = max(self.per_core_cycles)
        mean = sum(self.per_core_cycles) / self.n_cores
        return busiest / mean if mean else 0.0


def schedule_lpt(tasks: list[Task], n_cores: int) -> list[list[int]]:
    """Longest-processing-time-first assignment of tasks to cores.

    Returns, per core, the list of task indices assigned to it.
    """
    if n_cores < 1:
        raise ConfigurationError("n_cores must be >= 1")
    order = sorted(range(len(tasks)), key=lambda i: -tasks[i].cycles)
    heap: list[tuple[float, int]] = [(0.0, core) for core in range(n_cores)]
    assignments: list[list[int]] = [[] for _ in range(n_cores)]
    for index in order:
        load, core = heappop(heap)
        assignments[core].append(index)
        heappush(heap, (load + tasks[index].cycles, core))
    return assignments


def multicore_makespan(tasks: list[Task], n_cores: int,
                       hierarchy: MemoryHierarchy | None = None,
                       shared_traffic_fraction: float = 0.25,
                       obs: Observability | None = None,
                       ) -> ScheduleReport:
    """Makespan of a task list on ``n_cores`` core+SMX-2D pairs.

    Per-core compute comes from the LPT schedule; the aggregate DRAM
    demand (the shared fraction of each task's traffic) imposes a
    bandwidth floor on the makespan.
    """
    if not tasks:
        raise ConfigurationError("empty task list")
    hierarchy = hierarchy or MemoryHierarchy()
    assignments = schedule_lpt(tasks, n_cores)
    per_core = [sum(tasks[i].cycles for i in bucket)
                for bucket in assignments]
    dram_bytes = sum(task.dram_bytes for task in tasks) \
        * shared_traffic_fraction
    dram_cycles = dram_bytes / hierarchy.dram_bandwidth_bytes_per_cycle
    busiest = max(per_core)
    makespan = max(busiest, dram_cycles)
    report = ScheduleReport(
        n_cores=n_cores, makespan=makespan, per_core_cycles=per_core,
        assignments=assignments, dram_cycles=dram_cycles,
        dram_bound=dram_cycles > busiest,
        total_cycles=sum(task.cycles for task in tasks))
    metrics = (obs or get_obs()).metrics
    if metrics.enabled:
        metrics.counter("sched.runs").inc()
        metrics.counter("sched.tasks").inc(len(tasks))
        metrics.gauge("sched.makespan_cycles", cores=n_cores).set(makespan)
        metrics.gauge("sched.imbalance", cores=n_cores).set(
            report.imbalance)
        metrics.gauge("sched.dram_cycles", cores=n_cores).set(dram_cycles)
        core_load = metrics.distribution("sched.core_load_cycles")
        for load in per_core:
            core_load.observe(load)
    _LOG.debug("LPT: %d tasks on %d cores, makespan %.0f (%s-bound, "
               "imbalance %.3f)", len(tasks), n_cores, makespan,
               "dram" if report.dram_bound else "compute",
               report.imbalance)
    return report


def scaling_with_tasks(tasks: list[Task],
                       core_counts: list[int] | None = None,
                       hierarchy: MemoryHierarchy | None = None,
                       ) -> list[ScheduleReport]:
    """Schedule the same task list across several core counts."""
    core_counts = core_counts or [1, 2, 4, 8]
    return [multicore_makespan(tasks, cores, hierarchy)
            for cores in core_counts]
