"""Cache-hierarchy timing model (paper Table 1 memory system).

The simulator does not model individual cache lines; it models the
first-order effect that drives the paper's Fig. 9 shapes: *where a
kernel's working set lives* determines the per-line cost of streaming
its data. A kernel whose rows fit in L1 pays nothing extra; once the
working set spills to L2/LLC/DRAM every streamed line pays that level's
latency, amortized by the memory-level parallelism an out-of-order core
extracts. DRAM additionally enforces a bandwidth ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.obs import get_obs

LINE_BYTES = 64


@dataclass(frozen=True)
class CacheLevel:
    """One level of the hierarchy."""

    name: str
    size_bytes: int          # capacity (DRAM: effectively unbounded)
    load_latency: int        # cycles per line fetch when data lives here


@dataclass(frozen=True)
class MemoryHierarchy:
    """A stack of cache levels plus DRAM bandwidth.

    Defaults follow the paper's gem5 configuration (Table 1): 64 KB L1D
    (3 cycles), 1 MB private L2, 1 MB/core shared LLC, DDR4 at
    23.9 GB/s. All clocks are 1 GHz, so GB/s == bytes/cycle.
    """

    levels: tuple[CacheLevel, ...] = (
        CacheLevel("L1D", 64 * 1024, 3),
        CacheLevel("L2", 1024 * 1024, 16),
        CacheLevel("LLC", 8 * 1024 * 1024, 42),
        CacheLevel("DRAM", 1 << 62, 120),
    )
    dram_bandwidth_bytes_per_cycle: float = 23.9
    #: Memory-level parallelism: concurrent outstanding line fetches an
    #: OoO core sustains on a streaming access pattern.
    streaming_mlp: float = 8.0
    #: MLP on dependent/pointer-chasing patterns (traceback walks).
    pointer_chase_mlp: float = 1.0

    def residence(self, working_set_bytes: int) -> CacheLevel:
        """The innermost level that holds the whole working set."""
        for level in self.levels:
            if working_set_bytes <= level.size_bytes:
                return level
        return self.levels[-1]  # pragma: no cover - DRAM is unbounded

    def stream_stall_cycles(self, bytes_streamed: float,
                            working_set_bytes: int) -> float:
        """Stall cycles for streaming ``bytes_streamed`` sequentially.

        L1-resident data is considered fully pipelined (zero stall); a
        larger working set pays its residence level's line latency per
        line, divided by the streaming MLP, and never less than the
        DRAM bandwidth bound when DRAM-resident.
        """
        level = self.residence(working_set_bytes)
        metrics = get_obs().metrics
        if level.name == "L1D":
            if metrics.enabled:
                metrics.counter("mem.stream_requests",
                                level=level.name).inc()
            return 0.0
        lines = bytes_streamed / LINE_BYTES
        stall = lines * level.load_latency / self.streaming_mlp
        if level.name == "DRAM":
            stall = max(stall,
                        bytes_streamed / self.dram_bandwidth_bytes_per_cycle)
        if metrics.enabled:
            metrics.counter("mem.stream_requests", level=level.name).inc()
            metrics.counter("mem.stream_bytes").inc(bytes_streamed)
            metrics.counter("mem.stream_stall_cycles").inc(stall)
        return stall

    def random_access_cycles(self, n_accesses: float,
                             working_set_bytes: int) -> float:
        """Latency cost of *dependent* random accesses.

        Unlike streaming, a dependent chain (traceback walks, per-cell
        substitution-matrix gathers) exposes the full load-to-use
        latency of whatever level the data lives in -- including L1.
        """
        level = self.residence(working_set_bytes)
        cycles = n_accesses * level.load_latency / self.pointer_chase_mlp
        metrics = get_obs().metrics
        if metrics.enabled:
            metrics.counter("mem.random_accesses",
                            level=level.name).inc(n_accesses)
            metrics.counter("mem.random_stall_cycles").inc(cycles)
        return cycles


def check_positive(name: str, value: float) -> None:
    """Shared validation helper for machine parameters."""
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
