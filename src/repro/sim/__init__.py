"""Cycle-level timing substrate: core model, caches, events, SoC."""

from repro.sim.cache import LINE_BYTES, CacheLevel, MemoryHierarchy
from repro.sim.clock import EventQueue, ResourceTimeline
from repro.sim.cpu import (
    GEM5_OOO,
    RTL_INORDER,
    CoreModel,
    CoreParams,
    InstructionMix,
)
from repro.sim.scheduler import (
    ScheduleReport,
    Task,
    multicore_makespan,
    scaling_with_tasks,
    schedule_lpt,
)
from repro.sim.soc import ScalingPoint, SocParams, multicore_scaling
from repro.sim.stats import CoprocReport, PhaseBreakdown, RunTiming

__all__ = [
    "ScheduleReport",
    "Task",
    "multicore_makespan",
    "scaling_with_tasks",
    "schedule_lpt",
    "CacheLevel",
    "CoprocReport",
    "CoreModel",
    "CoreParams",
    "EventQueue",
    "GEM5_OOO",
    "InstructionMix",
    "LINE_BYTES",
    "MemoryHierarchy",
    "PhaseBreakdown",
    "ResourceTimeline",
    "RTL_INORDER",
    "RunTiming",
    "ScalingPoint",
    "SocParams",
    "multicore_scaling",
]
