"""Multicore SoC scaling model (paper Sec. 9.1, Fig. 12 left).

The evaluated SoC replicates core + SMX-2D pairs behind private L2s and
a shared LLC/DRAM. Because SMX working sets (tile borders and packed
sequences) fit the private caches, the only shared bottleneck is DRAM
bandwidth plus a mild coherence/interconnect cost that grows with the
traffic each core emits -- which is why the X-drop workload, with its
many small blocks and frequent core-coprocessor exchanges, scales
slightly worse than Hirschberg or full protein alignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.sim.cache import MemoryHierarchy


@dataclass(frozen=True)
class SocParams:
    """Shared-resource parameters of the multicore model."""

    hierarchy: MemoryHierarchy = field(default_factory=MemoryHierarchy)
    #: Fraction of coprocessor L2 traffic that spills past the private
    #: L2 into the shared fabric (borders stream; sequences hit).
    shared_traffic_fraction: float = 0.25
    #: Interconnect/coherence overhead per additional core, applied to
    #: the shared-traffic time (models arbitration queuing).
    contention_per_core: float = 0.02


@dataclass
class ScalingPoint:
    cores: int
    cycles: float
    speedup: float
    efficiency: float


def multicore_scaling(single_core_cycles: float, traffic_bytes: float,
                      core_counts: list[int] | None = None,
                      params: SocParams | None = None) -> list[ScalingPoint]:
    """Project a workload's scaling across core counts.

    Args:
        single_core_cycles: Cycles for the whole workload on one core
            (with its private coprocessor).
        traffic_bytes: Total bytes the workload moves through the
            core-coprocessor-L2 path (from the DES reports); only the
            ``shared_traffic_fraction`` of it hits shared resources.
    """
    params = params or SocParams()
    if single_core_cycles <= 0:
        raise ConfigurationError("single_core_cycles must be positive")
    core_counts = core_counts or [1, 2, 4, 8]
    shared_bytes = traffic_bytes * params.shared_traffic_fraction
    bandwidth = params.hierarchy.dram_bandwidth_bytes_per_cycle
    serial_shared = shared_bytes / bandwidth
    points = []
    for cores in core_counts:
        compute = single_core_cycles / cores
        # How loaded the shared fabric is at this core count determines
        # the queuing overhead each extra core adds.
        fabric_load = min(1.0, serial_shared / max(1.0, compute))
        queuing = (compute * params.contention_per_core * (cores - 1)
                   * fabric_load)
        cycles = max(compute, serial_shared) + queuing
        speedup = single_core_cycles / cycles
        points.append(ScalingPoint(cores=cores, cycles=cycles,
                                   speedup=speedup,
                                   efficiency=speedup / cores))
    return points
