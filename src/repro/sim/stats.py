"""Timing-report containers shared by the simulator layers."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CoprocReport:
    """Outcome of one SMX-2D coprocessor simulation run."""

    total_cycles: int = 0
    engine_busy_cycles: int = 0
    engine_issues: int = 0
    tiles_computed: int = 0
    lines_loaded: int = 0
    lines_stored: int = 0
    port_busy_cycles: int = 0
    jobs_completed: int = 0
    job_completion_times: list[int] = field(default_factory=list)

    @property
    def engine_utilization(self) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return min(1.0, self.engine_busy_cycles / self.total_cycles)

    @property
    def port_occupancy(self) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return min(1.0, self.port_busy_cycles / self.total_cycles)

    @property
    def bytes_transferred(self) -> int:
        return 64 * (self.lines_loaded + self.lines_stored)

    def to_dict(self) -> dict:
        """JSON-serializable view (fields + derived ratios)."""
        return {
            "total_cycles": self.total_cycles,
            "engine_busy_cycles": self.engine_busy_cycles,
            "engine_issues": self.engine_issues,
            "tiles_computed": self.tiles_computed,
            "lines_loaded": self.lines_loaded,
            "lines_stored": self.lines_stored,
            "port_busy_cycles": self.port_busy_cycles,
            "jobs_completed": self.jobs_completed,
            "engine_utilization": self.engine_utilization,
            "port_occupancy": self.port_occupancy,
            "bytes_transferred": self.bytes_transferred,
        }


@dataclass
class PhaseBreakdown:
    """Core vs. coprocessor time split of a heterogeneous execution."""

    core_cycles: float = 0.0
    coproc_cycles: float = 0.0
    overlapped_cycles: float = 0.0

    @property
    def core_busy_fraction(self) -> float:
        # A zero-length overlap window means nothing executed; the core
        # cannot have been busy for any fraction of it.
        if self.overlapped_cycles <= 0:
            return 0.0
        return min(1.0, self.core_cycles / self.overlapped_cycles)


@dataclass
class RunTiming:
    """Cycles and derived rates of one measured implementation run."""

    name: str
    cycles: float
    cells: int = 0
    alignments: int = 0
    frequency_ghz: float = 1.0
    extra: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.cycles / (self.frequency_ghz * 1e9)

    @property
    def gcups(self) -> float:
        """Giga DP-cells updated per second."""
        if self.seconds <= 0:
            return 0.0
        return self.cells / self.seconds / 1e9

    @property
    def alignments_per_second(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.alignments / self.seconds

    def speedup_over(self, baseline: "RunTiming") -> float:
        if self.cycles <= 0:
            # Zero-cycle self against a real baseline is infinitely
            # faster; against a zero-cycle baseline the two are equal
            # (1.0), not infinitely apart.
            return 1.0 if baseline.cycles <= 0 else float("inf")
        return baseline.cycles / self.cycles
