"""Small discrete-event scheduling utilities.

The SMX-2D coprocessor simulation is event-driven at DP-tile
granularity; these helpers keep that simulation honest: a time-ordered
event queue and single-slot resource timelines (the SMX-engine issue
port and the L2 request port are both 1-op-per-cycle resources).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError


@dataclass(order=True)
class _Event:
    time: int
    seq: int
    payload: Any = field(compare=False)


class EventQueue:
    """A priority queue of (time, payload) events with FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[_Event] = []
        self._seq = 0
        self.now = 0

    def push(self, time: int, payload: Any) -> None:
        if time < self.now:
            raise SimulationError(
                f"event scheduled at {time} before current time {self.now}"
            )
        heapq.heappush(self._heap, _Event(int(time), self._seq, payload))
        self._seq += 1

    def pop(self) -> tuple[int, Any]:
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        event = heapq.heappop(self._heap)
        self.now = event.time
        return event.time, event.payload

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __len__(self) -> int:
        return len(self._heap)


class ResourceTimeline:
    """A resource that accepts one operation per ``interval`` cycles.

    ``acquire(t)`` returns the actual grant time (>= t) and advances the
    timeline; contention shows up as the difference. Tracks busy cycles
    for utilization reporting.
    """

    def __init__(self, name: str, interval: int = 1) -> None:
        if interval < 1:
            raise SimulationError(f"interval must be >= 1, got {interval}")
        self.name = name
        self.interval = interval
        self.next_free = 0
        self.busy_cycles = 0
        self.grants = 0

    def acquire(self, time: int) -> int:
        grant = max(int(time), self.next_free)
        self.next_free = grant + self.interval
        self.busy_cycles += self.interval
        self.grants += 1
        return grant

    def utilization(self, span: int) -> float:
        if span <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / span)
