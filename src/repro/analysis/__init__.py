"""Metrics, area/power modelling, and report formatting."""

from repro.analysis.area import (
    SMX1D_AREA_MM2,
    SMX2D_AREA_MM2,
    SMX2D_CORE_FRACTION,
    SMX_ENGINE_AREA_MM2,
    SMX_POWER_MW,
    SMX_WORKER_AREA_MM2,
    AreaBreakdown,
    scale_area,
    smx_area_breakdown,
    smx_power_mw,
)
from repro.analysis.metrics import (
    DIAMOND_ALIGNMENT_SHARE,
    MINIMAP2_ALIGNMENT_SHARE,
    RecallStats,
    amdahl_speedup,
    diamond_endtoend_speedup,
    gcups,
    minimap2_endtoend_speedups,
)
from repro.analysis.reporting import (
    bench_scale,
    format_table,
    results_dir,
    write_report,
)

__all__ = [
    "AreaBreakdown",
    "DIAMOND_ALIGNMENT_SHARE",
    "MINIMAP2_ALIGNMENT_SHARE",
    "RecallStats",
    "SMX1D_AREA_MM2",
    "SMX2D_AREA_MM2",
    "SMX2D_CORE_FRACTION",
    "SMX_ENGINE_AREA_MM2",
    "SMX_POWER_MW",
    "SMX_WORKER_AREA_MM2",
    "amdahl_speedup",
    "bench_scale",
    "diamond_endtoend_speedup",
    "format_table",
    "gcups",
    "minimap2_endtoend_speedups",
    "results_dir",
    "scale_area",
    "smx_area_breakdown",
    "smx_power_mw",
    "write_report",
]
