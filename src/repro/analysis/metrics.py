"""Evaluation metrics: GCUPS, recall, speedups, Amdahl projections."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


def gcups(cells: int, cycles: float, frequency_ghz: float = 1.0) -> float:
    """Giga DP-cells updated per second at the given clock."""
    if cycles <= 0:
        return 0.0
    return cells / (cycles / (frequency_ghz * 1e9)) / 1e9


@dataclass
class RecallStats:
    """Dataset-level accuracy of a (possibly heuristic) algorithm.

    ``recall`` follows the paper's definition: the fraction of pairs for
    which the algorithm recovers the *optimal* alignment score.
    """

    total: int = 0
    exact: int = 0
    failed: int = 0
    suboptimal: int = 0

    def record(self, found_score: int | None, optimal_score: int) -> None:
        self.total += 1
        if found_score is None:
            self.failed += 1
        elif found_score == optimal_score:
            self.exact += 1
        else:
            if found_score > optimal_score:
                raise ConfigurationError(
                    f"found score {found_score} exceeds optimum "
                    f"{optimal_score}: gold reference is wrong"
                )
            self.suboptimal += 1

    @property
    def recall(self) -> float:
        return self.exact / self.total if self.total else 0.0


def amdahl_speedup(phase_fraction: float, phase_speedup: float) -> float:
    """End-to-end speedup when one phase is accelerated (Sec. 9.3).

    >>> round(amdahl_speedup(0.73, 274.0), 1)  # Minimap2 alignment phase
    3.7
    """
    if not 0.0 <= phase_fraction <= 1.0:
        raise ConfigurationError("phase_fraction must be in [0, 1]")
    if phase_speedup <= 0:
        raise ConfigurationError("phase_speedup must be positive")
    return 1.0 / ((1.0 - phase_fraction) + phase_fraction / phase_speedup)


#: Published end-to-end phase shares (paper Sec. 9.3).
MINIMAP2_ALIGNMENT_SHARE = (0.70, 0.76)   # of total runtime, PacBio
DIAMOND_ALIGNMENT_SHARE = 0.99


def minimap2_endtoend_speedups(kernel_speedup: float,
                               ) -> tuple[float, float]:
    """End-to-end Minimap2 speedup range for a given kernel speedup."""
    low, high = MINIMAP2_ALIGNMENT_SHARE
    return (amdahl_speedup(low, kernel_speedup),
            amdahl_speedup(high, kernel_speedup))


def diamond_endtoend_speedup(kernel_speedup: float) -> float:
    """End-to-end DIAMOND speedup for a given kernel speedup."""
    return amdahl_speedup(DIAMOND_ALIGNMENT_SHARE, kernel_speedup)
