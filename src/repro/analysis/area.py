"""Area and power model (paper Sec. 10, Fig. 13).

We cannot run synthesis, so the model is *calibrated*: the paper's
post-PnR numbers at GlobalFoundries 22FDX are the anchors, and every
derived quantity (percent of core area, GCUPS/mm^2, technology-scaled
comparisons) is computed from them. Component areas are additionally
decomposed per-PE/per-worker so alternative engine configurations
(e.g. 2 or 8 workers) produce consistent estimates.

Technology scaling uses Stillmaker-Baas style factors [97], calibrated
to the paper's own example (GACT: 1.34 mm^2 at 40 nm ~= 0.30 mm^2 at
22 nm, a 4.47x factor).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

# ---------------------------------------------------------------------------
# Calibration anchors (paper Sec. 10, all mm^2 at 22 nm, 1 GHz post-PnR)
# ---------------------------------------------------------------------------

#: SMX-1D functional unit ("comparable to a 2-cycle 64-bit multiplier").
SMX1D_AREA_MM2 = 0.0152
#: One SMX-engine (the four PE arrays + pipeline registers + submat regs).
SMX_ENGINE_AREA_MM2 = 0.1136
#: One SMX-worker (control + border SRAM).
SMX_WORKER_AREA_MM2 = 0.0369
#: Full SMX-2D coprocessor with 4 workers.
SMX2D_AREA_MM2 = 0.3280
#: SMX-2D's share of the full processor (Sec. 10: 29.66%).
SMX2D_CORE_FRACTION = 0.2966
#: SMX-1D's share of the full processor (Sec. 10: 1.37%).
SMX1D_CORE_FRACTION = 0.0137
#: Reported power at 20% gate activity (mW).
SMX_POWER_MW = 0.342
#: L1 data cache (32 KB) equivalence: SMX-2D ~= 2.13x the L1D.
SMX2D_OVER_L1D = 2.13

#: Relative area per square unit vs 22 nm for common nodes, in the
#: Stillmaker-Baas style; 40 nm -> 22 nm calibrated to the paper's
#: GACT example (4.47x).
_NODE_AREA_FACTOR = {
    7: 0.24,
    12: 0.45,
    16: 0.60,
    22: 1.00,
    28: 1.70,
    40: 4.47,
    65: 10.2,
    180: 72.0,
}


def scale_area(area_mm2: float, from_nm: int, to_nm: int = 22) -> float:
    """Scale a published area between technology nodes.

    >>> round(scale_area(1.34, 40, 22), 2)  # the paper's GACT example
    0.3
    """
    for node in (from_nm, to_nm):
        if node not in _NODE_AREA_FACTOR:
            raise ConfigurationError(
                f"no scaling factor for {node} nm; known: "
                f"{sorted(_NODE_AREA_FACTOR)}"
            )
    return area_mm2 * _NODE_AREA_FACTOR[to_nm] / _NODE_AREA_FACTOR[from_nm]


@dataclass(frozen=True)
class AreaBreakdown:
    """Component areas of an SMX-enhanced processor (mm^2 at 22 nm)."""

    smx1d: float
    engine: float
    workers_total: float
    glue: float
    n_workers: int

    @property
    def smx2d(self) -> float:
        return self.engine + self.workers_total + self.glue

    @property
    def smx_total(self) -> float:
        return self.smx1d + self.smx2d

    @property
    def processor_total(self) -> float:
        """Total processor area implied by the calibrated fractions."""
        return self.smx2d / SMX2D_CORE_FRACTION

    @property
    def smx2d_fraction(self) -> float:
        return self.smx2d / self.processor_total

    @property
    def smx1d_fraction(self) -> float:
        return self.smx1d / self.processor_total

    def rows(self) -> list[tuple[str, float, float]]:
        """(component, mm^2, % of processor) rows for reporting."""
        total = self.processor_total
        per_worker = self.workers_total / self.n_workers
        return [
            ("SMX-1D unit", self.smx1d, 100 * self.smx1d / total),
            ("SMX-Engine", self.engine, 100 * self.engine / total),
            (f"SMX-Workers ({self.n_workers} x {per_worker:.4f})",
             self.workers_total, 100 * self.workers_total / total),
            ("SMX-2D memory controller / glue", self.glue,
             100 * self.glue / total),
            ("SMX-2D total", self.smx2d, 100 * self.smx2d / total),
            ("SMX total", self.smx_total, 100 * self.smx_total / total),
            ("Processor total", total, 100.0),
        ]


def smx_area_breakdown(n_workers: int = 4) -> AreaBreakdown:
    """Calibrated area breakdown for an SMX design with ``n_workers``.

    The 4-worker point reproduces the paper's numbers exactly; other
    worker counts scale the worker SRAM/control linearly (the ablation
    Fig. 10 motivates).
    """
    if n_workers < 1:
        raise ConfigurationError("n_workers must be >= 1")
    glue = SMX2D_AREA_MM2 - SMX_ENGINE_AREA_MM2 - 4 * SMX_WORKER_AREA_MM2
    return AreaBreakdown(smx1d=SMX1D_AREA_MM2, engine=SMX_ENGINE_AREA_MM2,
                         workers_total=n_workers * SMX_WORKER_AREA_MM2,
                         glue=glue, n_workers=n_workers)


def smx_power_mw(activity: float = 0.20) -> float:
    """Power estimate, linear in gate activity around the 20% anchor."""
    if not 0.0 <= activity <= 1.0:
        raise ConfigurationError("activity must be in [0, 1]")
    return SMX_POWER_MW * activity / 0.20
