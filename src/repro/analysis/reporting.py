"""Plain-text table rendering for benchmark reports.

Every benchmark writes a paper-style table (the rows/series of the
corresponding figure) both to stdout and to ``results/<exp>.md``; this
module keeps the formatting in one place.
"""

from __future__ import annotations

import os
from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render a GitHub-markdown table with aligned columns."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(h.ljust(w) for h, w in
                                   zip(headers, widths)) + " |")
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in str_rows:
        lines.append("| " + " | ".join(c.ljust(w) for c, w in
                                       zip(row, widths)) + " |")
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.2f}"
    return str(cell)


def results_dir() -> str:
    """The directory benchmark reports are written to (created lazily)."""
    path = os.environ.get("SMX_RESULTS_DIR",
                          os.path.join(os.getcwd(), "results"))
    os.makedirs(path, exist_ok=True)
    return path


def write_report(name: str, sections: list[str]) -> str:
    """Write a benchmark report and return its path."""
    path = os.path.join(results_dir(), f"{name}.md")
    body = "\n\n".join(sections) + "\n"
    with open(path, "w") as handle:
        handle.write(body)
    return path


def bench_scale() -> float:
    """Global benchmark scale factor from ``SMX_BENCH_SCALE``.

    1.0 reproduces the paper's nominal sizes; smaller values shrink
    sequence lengths proportionally for quick runs. The default (0.2)
    keeps the full benchmark suite under ~15 minutes on one laptop core.
    """
    return float(os.environ.get("SMX_BENCH_SCALE", "0.2"))
