"""Benchmark report output: markdown tables + machine-readable JSON.

Every benchmark writes a paper-style table (the rows/series of the
corresponding figure) both to stdout and to ``results/<exp>.md``, and a
structured sibling ``results/<exp>.json`` in the shared
:mod:`repro.obs.reports` schema; this module keeps the formatting and
the (atomic) file handling in one place.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Sequence

from repro.core.atomicio import atomic_write_text
from repro.errors import ConfigurationError
from repro.obs import reports as _reports


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render a GitHub-markdown table with aligned columns."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(h.ljust(w) for h, w in
                                   zip(headers, widths)) + " |")
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in str_rows:
        lines.append("| " + " | ".join(c.ljust(w) for c, w in
                                       zip(row, widths)) + " |")
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.2f}"
    return str(cell)


def results_dir() -> str:
    """The directory benchmark reports are written to (created lazily)."""
    path = os.environ.get("SMX_RESULTS_DIR",
                          os.path.join(os.getcwd(), "results"))
    os.makedirs(path, exist_ok=True)
    return path


def _atomic_write(path: str, body: str) -> str:
    """Write ``body`` to ``path`` atomically (temp file + ``os.replace``)
    so an interrupted benchmark never leaves a truncated report."""
    return atomic_write_text(path, body)


def write_report(name: str, sections: list[str]) -> str:
    """Write a benchmark report and return its path."""
    path = os.path.join(results_dir(), f"{name}.md")
    body = "\n\n".join(sections) + "\n"
    return _atomic_write(path, body)


def write_json_report(name: str, *, params: dict | None = None,
                      metrics: dict | None = None,
                      timings: Iterable[Any] | None = None,
                      tables: dict | None = None,
                      extra: dict | None = None) -> str:
    """Write ``results/<name>.json`` in the shared run-report schema.

    The sibling of :func:`write_report` for machines: assembles a
    :func:`repro.obs.reports.run_report` document (params, metrics
    snapshot, timing rows, git SHA, timestamp) and writes it atomically.
    Returns the path.
    """
    report = _reports.run_report(name, params=params, metrics=metrics,
                                 timings=timings, tables=tables,
                                 extra=extra)
    path = os.path.join(results_dir(), f"{name}.json")
    return _atomic_write(path, json.dumps(report, indent=2,
                                          default=str) + "\n")


def bench_scale() -> float:
    """Global benchmark scale factor from ``SMX_BENCH_SCALE``.

    1.0 reproduces the paper's nominal sizes; smaller values shrink
    sequence lengths proportionally for quick runs. The default (0.2)
    keeps the full benchmark suite under ~15 minutes on one laptop core.

    Raises:
        ConfigurationError: if ``SMX_BENCH_SCALE`` is not a positive
            finite number.
    """
    raw = os.environ.get("SMX_BENCH_SCALE", "0.2")
    try:
        scale = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"SMX_BENCH_SCALE must be a number, got {raw!r}") from None
    if not scale > 0 or scale != scale or scale == float("inf"):
        raise ConfigurationError(
            f"SMX_BENCH_SCALE must be a positive finite number, "
            f"got {raw!r}")
    return scale
