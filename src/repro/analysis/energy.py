"""Energy model (extension of the paper's Sec. 10 power figure).

The paper reports one number -- 0.342 mW at 20% gate activity for the
whole SMX add-on at 22 nm / 1 GHz. We decompose it: power splits across
components in proportion to their area (a standard first-order
assumption for synthesized logic at equal activity), giving per-cell
and per-alignment energy estimates and an energy-efficiency comparison
against the software baseline (whose core power we parameterize).

All derived numbers are clearly model outputs, not measurements; they
let the benchmarks report GCUPS/W-style metrics consistently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.area import SMX_POWER_MW, smx_area_breakdown
from repro.core.engine import EngineParams
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class EnergyParams:
    """Power assumptions (mW at 1 GHz, 22 nm)."""

    #: Whole-SMX power at the calibration activity (paper Sec. 10).
    smx_power_mw: float = SMX_POWER_MW
    calibration_activity: float = 0.20
    #: A single-issue in-order RISC-V core at 22 nm (typical published
    #: figures for comparable edge cores).
    core_power_mw: float = 25.0
    #: The 8-wide OoO evaluation core (Table 1 class).
    big_core_power_mw: float = 250.0

    def __post_init__(self) -> None:
        if not 0 < self.calibration_activity <= 1:
            raise ConfigurationError("calibration activity must be in (0,1]")


def smx_component_power_mw(activity: float = 0.20,
                           params: EnergyParams | None = None,
                           ) -> dict[str, float]:
    """Per-component SMX power, area-proportional at equal activity."""
    params = params or EnergyParams()
    if not 0 <= activity <= 1:
        raise ConfigurationError("activity must be in [0, 1]")
    breakdown = smx_area_breakdown()
    total_area = breakdown.smx_total
    total_power = params.smx_power_mw * activity \
        / params.calibration_activity
    return {
        "smx1d": total_power * breakdown.smx1d / total_area,
        "engine": total_power * breakdown.engine / total_area,
        "workers": total_power * breakdown.workers_total / total_area,
        "glue": total_power * breakdown.glue / total_area,
        "total": total_power,
    }


def energy_per_cell_pj(ew: int, utilization: float = 0.9,
                       params: EnergyParams | None = None) -> float:
    """SMX-2D energy per DP-cell (picojoules).

    At 1 GHz, power in mW equals energy in pJ per cycle; a cycle
    computes ``utilization * VL^2`` cells.
    """
    params = params or EnergyParams()
    if not 0 < utilization <= 1:
        raise ConfigurationError("utilization must be in (0, 1]")
    engine = EngineParams()
    cells_per_cycle = engine.peak_cells_per_cycle(ew) * utilization
    # Engine active: full activity for the coprocessor components.
    power = smx_component_power_mw(activity=1.0, params=params)
    coproc_pj_per_cycle = power["engine"] + power["workers"] + power["glue"]
    return coproc_pj_per_cycle / cells_per_cycle


def software_energy_per_cell_pj(cells_per_cycle: float,
                                params: EnergyParams | None = None,
                                ) -> float:
    """Baseline CPU energy per DP-cell (big OoO core running SIMD)."""
    params = params or EnergyParams()
    if cells_per_cycle <= 0:
        raise ConfigurationError("cells_per_cycle must be positive")
    return params.big_core_power_mw / cells_per_cycle


def efficiency_gain(ew: int, simd_cells_per_cycle: float = 1.8,
                    utilization: float = 0.9,
                    params: EnergyParams | None = None) -> float:
    """Energy-per-cell advantage of SMX-2D over the SIMD baseline.

    This combines the throughput gap with the power gap -- the reason
    DSA-class efficiency survives inside a flexible design (the paper's
    flexibility-vs-efficiency discussion).
    """
    smx = energy_per_cell_pj(ew, utilization=utilization, params=params)
    software = software_energy_per_cell_pj(simd_cells_per_cycle,
                                           params=params)
    return software / smx
