"""Admission control and weighted-fair scheduling for the daemon.

The SMX paper's load-shedding argument (drop work *early*, when the
cost model already knows a deadline cannot be met, instead of burning
the budget and failing late) moves one level up here: the daemon prices
every job against its declared deadline and the queue already ahead of
it **before accepting it**, so a doomed job is rejected at admission --
with a structured :class:`JobRejected` carrying the predicted cost --
and never starts a single shard.

Accepted jobs then drain through :class:`FairPicker`, a stride
scheduler over per-tenant lanes: each tenant advances a virtual "pass"
clock by ``1 / priority`` per job served, and the lane with the
smallest pass goes next. A burst from one tenant therefore cannot
starve another -- the burster's pass races ahead and the quiet tenant's
next job wins -- while a priority-3 tenant drains three jobs for every
one of a priority-1 tenant under sustained load. The picker is fully
deterministic (ties break on tenant name), which the service tests
lean on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.prof import CostModel


@dataclass
class AdmissionPolicy:
    """Knobs for the admission decision.

    Attributes:
        max_queue_depth: Reject (``queue-full``) once this many jobs
            are already admitted and waiting.
        safety: Multiplier on the predicted wait+run time before it is
            compared to the job's deadline (same pessimism knob as the
            engine-level ``shed_safety``).
        max_backlog_s: Optional cap on predicted backlog seconds; when
            set, a job that would push the backlog past it is rejected
            (``backlog``) even without its own deadline.
    """

    max_queue_depth: int = 64
    safety: float = 1.5
    max_backlog_s: float | None = None


@dataclass(frozen=True)
class JobRejected:
    """One structured rejection (also the ``job_rejected`` event body).

    ``predicted_s`` is the cost model's estimate for the job itself;
    ``queue_depth`` and the backlog captured in ``reason`` record the
    state the decision was made against, so a rejection can always be
    reconciled after the fact.
    """

    job_id: str
    tenant: str
    reason: str
    predicted_s: float
    deadline_s: float | None
    queue_depth: int

    def to_dict(self) -> dict:
        return {"job_id": self.job_id, "tenant": self.tenant,
                "reason": self.reason,
                "predicted_s": round(self.predicted_s, 6),
                "deadline_s": self.deadline_s,
                "queue_depth": self.queue_depth}


class AdmissionController:
    """Prices jobs and decides accept/reject at the spool boundary."""

    def __init__(self, policy: AdmissionPolicy | None = None,
                 cost_model: CostModel | None = None) -> None:
        self.policy = policy or AdmissionPolicy()
        self.cost_model = cost_model or CostModel(
            seconds_per_cell=CostModel.DEFAULT_SECONDS_PER_CELL)

    def price(self, job) -> float:
        """Predicted wall seconds to run ``job`` (sum over its pairs,
        sized by raw string lengths -- admission never encodes)."""
        return sum(
            self.cost_model.estimate((len(query), len(reference))).seconds
            for query, reference in job.pairs)

    def decide(self, job, *, queue_depth: int,
               backlog_s: float) -> JobRejected | None:
        """Accept (None) or reject (a :class:`JobRejected`) one job.

        Args:
            job: The parsed :class:`~repro.service.protocol.JobSpec`.
            queue_depth: Jobs already admitted and waiting.
            backlog_s: Predicted seconds of work already queued ahead.
        """
        policy = self.policy
        predicted = self.price(job)
        if queue_depth >= policy.max_queue_depth:
            return JobRejected(
                job_id=job.job_id, tenant=job.tenant,
                reason="queue-full", predicted_s=predicted,
                deadline_s=job.deadline_s, queue_depth=queue_depth)
        if (policy.max_backlog_s is not None
                and backlog_s + predicted > policy.max_backlog_s):
            return JobRejected(
                job_id=job.job_id, tenant=job.tenant, reason="backlog",
                predicted_s=predicted, deadline_s=job.deadline_s,
                queue_depth=queue_depth)
        if (job.deadline_s is not None
                and (backlog_s + predicted) * policy.safety
                > job.deadline_s):
            return JobRejected(
                job_id=job.job_id, tenant=job.tenant, reason="deadline",
                predicted_s=predicted, deadline_s=job.deadline_s,
                queue_depth=queue_depth)
        return None


class FairPicker:
    """Deterministic stride scheduler over per-tenant priority lanes."""

    def __init__(self) -> None:
        self._lanes: dict[str, list] = {}
        self._pass: dict[str, float] = {}
        self._weight: dict[str, float] = {}
        self._virtual = 0.0

    def __len__(self) -> int:
        return sum(len(lane) for lane in self._lanes.values())

    def add(self, tenant: str, priority: int, item) -> None:
        """Enqueue ``item`` on ``tenant``'s lane (FIFO within a lane).

        A lane's weight is the priority of its most recent job; a
        tenant re-joining after idling starts at the current virtual
        time, not its stale pass, so idling never banks credit.
        """
        lane = self._lanes.setdefault(tenant, [])
        if not lane:
            self._pass[tenant] = max(
                self._pass.get(tenant, 0.0), self._virtual)
        self._weight[tenant] = float(max(1, priority))
        lane.append(item)

    def depths(self) -> dict[str, int]:
        """Pending jobs per tenant (non-empty lanes only) -- the
        telemetry layer's ``service.queue_depth{tenant=...}`` source."""
        return {tenant: len(lane)
                for tenant, lane in self._lanes.items() if lane}

    def pop(self):
        """Dequeue from the lane with the smallest pass (ties break on
        tenant name); returns ``(tenant, item)`` or None when empty."""
        candidates = [(self._pass[tenant], tenant)
                      for tenant, lane in self._lanes.items() if lane]
        if not candidates:
            return None
        _, tenant = min(candidates)
        item = self._lanes[tenant].pop(0)
        self._virtual = self._pass[tenant]
        self._pass[tenant] += 1.0 / self._weight[tenant]
        return tenant, item
