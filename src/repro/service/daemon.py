"""The alignment service daemon: lease, price, run, settle, resume.

``repro serve`` drives one :class:`AlignmentDaemon` over a
:class:`~repro.service.spool.JobSpool`:

1. **Ingest** -- every pending job file is parsed
   (:mod:`repro.service.protocol`; unparseable files settle as
   ``malformed`` rejections) and priced by the
   :class:`~repro.service.admission.AdmissionController` against its
   declared deadline and the backlog already admitted. Rejected jobs
   settle immediately with a ``.rejected.json`` record and exactly one
   ``job_rejected`` event -- they never start a shard. Accepted jobs
   join the weighted-fair picker.
2. **Run** -- the picked job is leased (atomic rename into
   ``running/``) and executed by a
   :class:`~repro.resilience.SupervisedEngine` with an incremental
   ``smx-outcome/1`` checkpoint beside it, streaming the same
   ``smx-events/1`` telemetry ``repro monitor`` already renders.
3. **Settle** -- checkpoint and job file move to ``done/``.

Crash safety is inherited, not bolted on: a SIGKILL at any instant
leaves either a pending file (re-ingested next start), or a running
file plus its last checkpoint (:meth:`AlignmentDaemon.recover` resumes
it from the incomplete remainder -- bit-identical to an uninterrupted
run, see :mod:`repro.resilience.supervisor`), or a settled record.
No state lives anywhere but the spool.
"""

from __future__ import annotations

import os
import time

from repro import obs as obs_module
from repro.config import standard_configs
from repro.errors import ConfigurationError, EncodingError
from repro.exec.engine import BatchConfig
from repro.service.admission import (
    AdmissionController,
    AdmissionPolicy,
    FairPicker,
)
from repro.service.spool import JobSpool


class AlignmentDaemon:
    """One daemon process serving jobs from one spool.

    Args:
        spool: The durable queue to serve (or a root path).
        obs: Observability context; the daemon emits ``job_*`` events
            and ``service.*`` metrics through it, and hands it to every
            engine run so per-shard telemetry lands in the same stream.
        policy: Admission knobs (queue depth, safety factor).
        cost_model: Pricing model for admission; defaults to the
            conservative built-in rate.
        max_unit_pairs: Checkpoint granularity forwarded to
            :class:`~repro.resilience.ResilienceConfig` -- smaller
            units mean finer-grained resume at a little more checkpoint
            I/O.
        plan: Optional chaos plan forwarded to every engine run (tests
            use ``kill_at_unit`` to SIGKILL the daemon deterministically
            mid-job).
        telemetry: Optional
            :class:`~repro.obs.timeseries.TimeSeriesStore` ticked once
            per serve-loop iteration; every sealed window runs through
            the anomaly ``detector`` (structured ``alert`` events) and
            triggers a flush of ``telemetry_path`` (the store's JSON
            document) and ``metrics_path`` (Prometheus textfile), both
            write-then-rename.
        detector: Anomaly detector fed each sealed window; defaults to
            :class:`~repro.obs.anomaly.AnomalyDetector` when
            ``telemetry`` is given.
    """

    def __init__(self, spool: JobSpool | str, *,
                 obs: "obs_module.Observability | None" = None,
                 policy: AdmissionPolicy | None = None,
                 cost_model=None, max_unit_pairs: int | None = 32,
                 plan=None, telemetry=None, detector=None,
                 telemetry_path: str | None = None,
                 metrics_path: str | None = None) -> None:
        self.spool = (spool if isinstance(spool, JobSpool)
                      else JobSpool(spool))
        self.obs = obs if obs is not None else obs_module.get_obs()
        self.admission = AdmissionController(policy, cost_model)
        self.max_unit_pairs = max_unit_pairs
        self.plan = plan
        self.picker = FairPicker()
        self.telemetry = telemetry
        if detector is None and telemetry is not None:
            from repro.obs.anomaly import AnomalyDetector
            detector = AnomalyDetector()
        self.detector = detector
        self.telemetry_path = telemetry_path
        self.metrics_path = metrics_path
        self._backlog_s = 0.0
        self._predicted: dict[str, float] = {}
        self._running_tenant: str | None = None
        self._gauged_tenants: set[str] = set()
        self._last_depths: dict[str, int] | None = None
        self.settled = 0
        self.alerts = 0

    # -- events / metrics ----------------------------------------------

    def _emit(self, kind: str, **fields) -> None:
        self.obs.events.emit(kind, **fields)

    def _gauge_depth(self) -> None:
        """Refresh ``service.queue_depth`` (pending + running): the
        unlabeled total plus one gauge per tenant. Tenants that drain
        to empty are gauged back to zero, not left stale."""
        depths = self.picker.depths()
        if self._running_tenant is not None:
            depths[self._running_tenant] = \
                depths.get(self._running_tenant, 0) + 1
        total = sum(depths.values())
        self.obs.metrics.gauge("service.queue_depth").set(total)
        for tenant in self._gauged_tenants - set(depths):
            self.obs.metrics.gauge("service.queue_depth",
                                   tenant=tenant).set(0)
        for tenant, depth in depths.items():
            self.obs.metrics.gauge("service.queue_depth",
                                   tenant=tenant).set(depth)
        self._gauged_tenants |= set(depths)
        if depths != self._last_depths:
            self._last_depths = dict(depths)
            self._emit("queue", depth=total,
                       tenants={t: depths[t] for t in sorted(depths)})

    # -- telemetry ------------------------------------------------------

    def sample_telemetry(self, *, flush: bool = False) -> list:
        """Tick the time-series store once (one serve-loop sample).

        Sealed windows run through the anomaly detector; each alert is
        re-emitted as a structured ``alert`` event. Window seals (or
        ``flush=True``) persist the store document and the Prometheus
        textfile atomically. Returns the sealed windows.
        """
        if self.telemetry is None:
            return []
        self._gauge_depth()
        sealed = self.telemetry.tick(self.obs.metrics)
        for window in sealed:
            if self.detector is None:
                continue
            for alert in self.detector.ingest_window(window):
                self.alerts += 1
                self._emit("alert", **alert.to_dict())
        if sealed or flush:
            if self.telemetry_path:
                self.telemetry.save(self.telemetry_path)
            if self.metrics_path:
                from repro.obs import export
                export.write_textfile(self.metrics_path,
                                      self.obs.metrics)
        return sealed

    # -- recovery ------------------------------------------------------

    def recover(self) -> list[str]:
        """Re-admit jobs orphaned in ``running/`` by a dead daemon.

        Orphans skip admission (they were already admitted once) and
        rejoin the fair picker carrying their running path, so the run
        step resumes from the on-disk checkpoint instead of starting
        over. Returns the recovered job ids.
        """
        from repro.service import protocol
        recovered = []
        for running_path in self.spool.orphaned():
            try:
                job = protocol.load_job(running_path)
            except ValueError as exc:
                stem = os.path.basename(running_path)[:-len(".json")]
                self.spool.fail(running_path, stem,
                                {"job_id": stem, "reason": "malformed",
                                 "detail": str(exc)})
                self.obs.metrics.counter("service.jobs",
                                         verdict="failed").inc()
                self._emit("job_failed", job_id=stem,
                           reason="malformed", detail=str(exc))
                continue
            predicted = self.admission.price(job)
            self._predicted[job.job_id] = predicted
            self._backlog_s += predicted
            self.picker.add(job.tenant, job.priority,
                            (job, running_path))
            recovered.append(job.job_id)
            self._emit("job_pending", job_id=job.job_id,
                       tenant=job.tenant, recovered=True,
                       predicted_s=round(predicted, 6))
        self._gauge_depth()
        return recovered

    # -- ingest --------------------------------------------------------

    def ingest(self) -> int:
        """Admit (or reject) every pending job; returns admitted count."""
        from repro.service import protocol
        admitted = 0
        for pending_path in self.spool.pending_jobs():
            try:
                job = protocol.load_job(pending_path)
            except ValueError as exc:
                self.spool.discard_malformed(pending_path, str(exc))
                self.obs.metrics.counter("service.jobs",
                                         verdict="rejected").inc()
                self._emit("job_rejected",
                           job_id=os.path.basename(pending_path),
                           reason="malformed", detail=str(exc))
                continue
            if job.job_id in self._predicted:
                # Already admitted on an earlier loop (its pending file
                # lingers until leased): re-admitting would double the
                # backlog and inflate the queue-depth gauge.
                continue
            if job.config not in standard_configs():
                self._reject(pending_path, job, reason="bad-config")
                continue
            verdict = self.admission.decide(
                job, queue_depth=len(self.picker),
                backlog_s=self._backlog_s)
            if verdict is not None:
                self._reject(pending_path, job, record=verdict.to_dict())
                continue
            predicted = self.admission.price(job)
            self._predicted[job.job_id] = predicted
            self._backlog_s += predicted
            self.picker.add(job.tenant, job.priority,
                            (job, pending_path))
            admitted += 1
            self._emit("job_pending", job_id=job.job_id,
                       tenant=job.tenant,
                       predicted_s=round(predicted, 6),
                       queue_depth=len(self.picker))
        self._gauge_depth()
        return admitted

    def _reject(self, pending_path: str, job, *, reason: str = "",
                record: dict | None = None) -> None:
        if record is None:
            record = {"job_id": job.job_id, "tenant": job.tenant,
                      "reason": reason,
                      "predicted_s": 0.0, "deadline_s": job.deadline_s,
                      "queue_depth": len(self.picker)}
        self.spool.reject(pending_path, job.job_id, record)
        self.obs.metrics.counter("service.jobs", verdict="rejected",
                                 tenant=job.tenant).inc()
        self._emit("job_rejected", **record)

    # -- run -----------------------------------------------------------

    def run_next(self) -> bool:
        """Lease and run the fair picker's next job; True when one ran."""
        picked = self.picker.pop()
        if picked is None:
            return False
        _, (job, path) = picked
        self._backlog_s = max(
            0.0, self._backlog_s - self._predicted.pop(job.job_id, 0.0))
        self._gauge_depth()
        in_running = os.sep + "running" + os.sep in path
        running_path = path if in_running else self.spool.lease(path)
        if running_path is None:  # lost the lease race
            return True
        self._run_job(running_path, job, resumed=in_running)
        return True

    def _run_job(self, running_path: str, job, *,
                 resumed: bool) -> None:
        from repro.resilience import (
            ResilienceConfig,
            SupervisedEngine,
            outcome_io,
        )
        checkpoint = self.spool.checkpoint_path(job.job_id)
        resume = None
        if resumed and os.path.exists(checkpoint):
            try:
                loaded = outcome_io.load(checkpoint)
                if not loaded.complete:
                    resume = loaded
            except ValueError:
                resume = None  # unreadable checkpoint: start over
        self._emit("job_start", job_id=job.job_id, tenant=job.tenant,
                   pairs=len(job.pairs), engine=job.engine,
                   resumed=resume is not None)
        started = time.perf_counter()
        self._running_tenant = job.tenant
        self._gauge_depth()
        try:
            config = standard_configs()[job.config]
            encoded = [(config.encode(query), config.encode(reference))
                       for query, reference in job.pairs]
            batch = BatchConfig(engine=job.engine, mode=job.mode,
                                traceback=job.traceback,
                                workers=job.workers)
            engine = SupervisedEngine(
                config, batch,
                ResilienceConfig(max_unit_pairs=self.max_unit_pairs,
                                 validate=self.plan is not None),
                obs=self.obs, plan=self.plan, tenant=job.tenant)
            outcome = engine.run(encoded, checkpoint_path=checkpoint,
                                 resume=resume)
        except (ConfigurationError, EncodingError, ValueError) as exc:
            self.spool.fail(running_path, job.job_id,
                            {"job_id": job.job_id, "tenant": job.tenant,
                             "reason": type(exc).__name__,
                             "detail": str(exc)})
            self.settled += 1
            self.obs.metrics.counter("service.jobs", verdict="failed",
                                     tenant=job.tenant).inc()
            self._emit("job_failed", job_id=job.job_id,
                       reason=type(exc).__name__, detail=str(exc))
            return
        finally:
            self._running_tenant = None
            self._gauge_depth()
        elapsed = time.perf_counter() - started
        self.spool.complete(running_path, job.job_id)
        self.settled += 1
        self.obs.metrics.counter("service.jobs", verdict="done",
                                 tenant=job.tenant).inc()
        self.obs.metrics.distribution(
            "service.job_latency_s", tenant=job.tenant).observe(elapsed)
        self._emit("job_done", job_id=job.job_id, tenant=job.tenant,
                   completed=outcome.completed(),
                   failures=len(outcome.failures),
                   elapsed_s=round(elapsed, 6))

    # -- the executive loop --------------------------------------------

    def serve(self, *, max_jobs: int | None = None,
              idle_exit_s: float | None = None,
              poll_s: float = 0.2) -> int:
        """Serve until ``max_jobs`` are settled or the spool stays
        idle for ``idle_exit_s`` seconds; returns jobs settled."""
        self.recover()
        last_activity = time.monotonic()
        while True:
            self.ingest()
            worked = self.run_next()
            self.sample_telemetry()
            if worked:
                last_activity = time.monotonic()
                if max_jobs is not None and self.settled >= max_jobs:
                    self.sample_telemetry(flush=True)
                    return self.settled
                continue
            if (idle_exit_s is not None
                    and time.monotonic() - last_activity > idle_exit_s):
                self.sample_telemetry(flush=True)
                return self.settled
            time.sleep(poll_s)
