"""The ``smx-job/1`` wire format: one alignment job, one JSON file.

A job is the unit the daemon leases, prices, runs, and settles: a batch
of (query, reference) sequence pairs plus the engine knobs the client
would otherwise pass to ``repro align`` and the service-level fields
admission control needs (tenant, priority, deadline). Jobs travel
through the spool (:mod:`repro.service.spool`) as single files, so the
protocol is deliberately flat -- every field a JSON scalar or a list of
two-string pairs -- and versioned by the ``schema`` key so a future
``smx-job/2`` can coexist in the same spool.

Validation happens at parse time: :func:`job_from_dict` raises
``ValueError`` with one actionable message for anything malformed, and
the daemon turns that into a ``.rejected.json`` record instead of
crashing the loop.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field

from repro.core.atomicio import atomic_write_json

SCHEMA = "smx-job/1"

#: Engines ``repro align --batch`` accepts; mirrored here so a typo'd
#: job is rejected at admission, not mid-run.
ENGINES = ("scalar", "vector", "wavefront", "bitparallel", "auto")


def new_job_id() -> str:
    """A sortable, collision-safe job id (``job-<hex12>``)."""
    return f"job-{uuid.uuid4().hex[:12]}"


@dataclass
class JobSpec:
    """One alignment job as submitted by a client.

    Attributes:
        job_id: Unique id; doubles as the spool filename stem.
        pairs: ``(query, reference)`` sequence strings to align.
        config: Alignment configuration preset name.
        engine: Batch engine (``scalar``/``vector``/``wavefront``/
            ``bitparallel``/``auto``; ``bitparallel`` jobs must be
            submitted with ``traceback=False``).
        mode: Alignment mode (currently always ``global``).
        traceback: Whether to compute CIGARs.
        tenant: Client identity for the fair scheduler's lanes.
        priority: Scheduling weight (>= 1; higher drains faster).
        deadline_s: Client's latency budget; admission rejects the job
            up front when the cost model predicts it cannot be met.
        workers: Worker threads/processes for this job's batch.
        submitted_at: Client wall-clock submission time (epoch s).
    """

    job_id: str
    pairs: list[tuple[str, str]]
    config: str = "dna-edit"
    engine: str = "vector"
    mode: str = "global"
    traceback: bool = True
    tenant: str = "default"
    priority: int = 1
    deadline_s: float | None = None
    workers: int = 1
    submitted_at: float = field(default_factory=lambda: time.time())


def job_to_dict(job: JobSpec) -> dict:
    return {
        "schema": SCHEMA,
        "job_id": job.job_id,
        "pairs": [[query, reference] for query, reference in job.pairs],
        "config": job.config,
        "engine": job.engine,
        "mode": job.mode,
        "traceback": bool(job.traceback),
        "tenant": job.tenant,
        "priority": int(job.priority),
        "deadline_s": job.deadline_s,
        "workers": int(job.workers),
        "submitted_at": float(job.submitted_at),
    }


def job_from_dict(document: dict) -> JobSpec:
    """Parse and validate one job; ``ValueError`` when malformed."""
    if not isinstance(document, dict):
        raise ValueError("job document must be a JSON object")
    schema = document.get("schema")
    if schema != SCHEMA:
        raise ValueError(f"unknown job schema {schema!r} "
                         f"(expected {SCHEMA})")
    job_id = document.get("job_id")
    if not isinstance(job_id, str) or not job_id:
        raise ValueError("job_id must be a non-empty string")
    raw_pairs = document.get("pairs")
    if not isinstance(raw_pairs, list) or not raw_pairs:
        raise ValueError("pairs must be a non-empty list")
    pairs: list[tuple[str, str]] = []
    for index, entry in enumerate(raw_pairs):
        if (not isinstance(entry, (list, tuple)) or len(entry) != 2
                or not all(isinstance(s, str) and s for s in entry)):
            raise ValueError(
                f"pairs[{index}] must be [query, reference] "
                f"non-empty strings")
        pairs.append((entry[0], entry[1]))
    engine = document.get("engine", "vector")
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, "
                         f"got {engine!r}")
    if engine == "bitparallel" and bool(document.get("traceback", True)):
        raise ValueError(
            "engine 'bitparallel' is score-only; submit the job with "
            "traceback=false or pick another engine")
    priority = document.get("priority", 1)
    if not isinstance(priority, int) or priority < 1:
        raise ValueError(f"priority must be an integer >= 1, "
                         f"got {priority!r}")
    deadline_s = document.get("deadline_s")
    if deadline_s is not None:
        deadline_s = float(deadline_s)
        if not deadline_s > 0:
            raise ValueError(f"deadline_s must be positive, "
                             f"got {deadline_s!r}")
    workers = document.get("workers", 1)
    if not isinstance(workers, int) or workers < 1:
        raise ValueError(f"workers must be an integer >= 1, "
                         f"got {workers!r}")
    return JobSpec(
        job_id=job_id, pairs=pairs,
        config=str(document.get("config", "dna-edit")),
        engine=engine, mode=str(document.get("mode", "global")),
        traceback=bool(document.get("traceback", True)),
        tenant=str(document.get("tenant", "default")),
        priority=priority, deadline_s=deadline_s, workers=workers,
        submitted_at=float(document.get("submitted_at", 0.0)))


def dump_job(path: str, job: JobSpec) -> str:
    """Atomically write one job file (write-then-rename)."""
    return atomic_write_json(path, job_to_dict(job), sort_keys=True)


def load_job(path: str) -> JobSpec:
    """Read and validate a job file; ``ValueError`` when malformed."""
    with open(path, encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{os.path.basename(path)}: not valid JSON "
                f"({exc.msg})") from None
    try:
        return job_from_dict(document)
    except ValueError as exc:
        raise ValueError(f"{os.path.basename(path)}: {exc}") from None
