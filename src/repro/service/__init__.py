"""Alignment-as-a-service: durable queue, admission control, daemon.

``repro.service`` turns the batch engine into a long-running service:
clients drop ``smx-job/1`` JSON files into a spool directory
(:mod:`~repro.service.spool`), and ``repro serve`` runs an
:class:`~repro.service.daemon.AlignmentDaemon` that admits jobs against
a cost model (:mod:`~repro.service.admission`), drains them through the
fault-tolerant :class:`~repro.resilience.SupervisedEngine` with
crash-safe incremental checkpoints, and settles outcomes back into the
spool. Every layer is plain files and atomic renames -- a SIGKILL at
any instant loses no accepted work.
"""

from __future__ import annotations

from repro.service.admission import (
    AdmissionController,
    AdmissionPolicy,
    FairPicker,
    JobRejected,
)
from repro.service.daemon import AlignmentDaemon
from repro.service.protocol import (
    SCHEMA,
    JobSpec,
    dump_job,
    job_from_dict,
    job_to_dict,
    load_job,
    new_job_id,
)
from repro.service.spool import JobSpool

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AlignmentDaemon",
    "FairPicker",
    "JobRejected",
    "JobSpec",
    "JobSpool",
    "SCHEMA",
    "dump_job",
    "job_from_dict",
    "job_to_dict",
    "load_job",
    "new_job_id",
]
