"""File-backed durable job queue with atomic-rename leasing.

Layout under one spool root::

    spool/
      tmp/        in-flight writes (never read)
      pending/    submitted jobs waiting for admission + lease
      running/    leased jobs, plus their incremental checkpoints
      done/       settled records: outcome / rejected / failed JSON

Every transition is a single ``os.replace`` (atomic on POSIX within a
filesystem), which gives the queue its crash-safety story for free:

- a submitter that dies mid-write leaves garbage only in ``tmp/``;
- a job is either in ``pending/`` or ``running/``, never both and
  never half-moved, so two daemons racing for the same file resolve
  by whoever's rename wins (the loser sees ``FileNotFoundError``);
- a daemon SIGKILL'd mid-run leaves the job file and its last
  checkpoint in ``running/``; the next daemon finds both via
  :meth:`JobSpool.orphaned` and resumes instead of recomputing.

Nothing here knows what a job *means* -- that is
:mod:`repro.service.protocol` -- so the spool is reusable for any
one-file-per-item work queue.
"""

from __future__ import annotations

import os

from repro.core.atomicio import atomic_move, atomic_write_json

_STATES = ("tmp", "pending", "running", "done")


class JobSpool:
    """One durable spool rooted at ``root`` (directories made lazily)."""

    def __init__(self, root: str) -> None:
        self.root = root
        for state in _STATES:
            os.makedirs(os.path.join(root, state), exist_ok=True)

    def _dir(self, state: str) -> str:
        return os.path.join(self.root, state)

    def _job_file(self, state: str, job_id: str) -> str:
        return os.path.join(self._dir(state), f"{job_id}.json")

    # -- submission ----------------------------------------------------

    def submit(self, job) -> str:
        """Write one job into ``pending/`` (atomic; visible all at
        once). Returns the pending path."""
        from repro.service import protocol
        tmp_path = self._job_file("tmp", job.job_id)
        atomic_write_json(tmp_path, protocol.job_to_dict(job),
                          sort_keys=True)
        pending = self._job_file("pending", job.job_id)
        return atomic_move(tmp_path, pending)

    def pending_jobs(self) -> list[str]:
        """Pending job file paths, oldest submission first (mtime,
        then name for a stable tie-break)."""
        directory = self._dir("pending")
        entries = []
        for name in os.listdir(directory):
            if not name.endswith(".json"):
                continue
            path = os.path.join(directory, name)
            try:
                mtime = os.stat(path).st_mtime
            except FileNotFoundError:  # raced with a lease
                continue
            entries.append((mtime, name, path))
        return [path for _, _, path in sorted(entries)]

    def depth(self) -> int:
        """Jobs currently waiting in ``pending/``."""
        return sum(1 for name in os.listdir(self._dir("pending"))
                   if name.endswith(".json"))

    # -- lease / settle ------------------------------------------------

    def lease(self, pending_path: str) -> str | None:
        """Atomically claim one pending job (rename into ``running/``).

        Returns the running path, or None when another worker won the
        race (the pending file vanished first).
        """
        name = os.path.basename(pending_path)
        running = os.path.join(self._dir("running"), name)
        try:
            os.replace(pending_path, running)
        except FileNotFoundError:
            return None
        return running

    def orphaned(self) -> list[str]:
        """Job files left in ``running/`` by a dead daemon, sorted."""
        directory = self._dir("running")
        return sorted(
            os.path.join(directory, name)
            for name in os.listdir(directory)
            if name.endswith(".json")
            and not name.endswith(".outcome.json"))

    def checkpoint_path(self, job_id: str) -> str:
        """Where a job's incremental checkpoint lives while running."""
        return os.path.join(self._dir("running"),
                            f"{job_id}.outcome.json")

    def outcome_path(self, job_id: str) -> str:
        """Where a settled job's final outcome lives."""
        return os.path.join(self._dir("done"), f"{job_id}.outcome.json")

    def complete(self, running_path: str, job_id: str) -> str:
        """Settle a finished job: move checkpoint then job file into
        ``done/`` (checkpoint first, so a crash between the two leaves
        the job visibly unsettled, never silently done)."""
        checkpoint = self.checkpoint_path(job_id)
        if os.path.exists(checkpoint):
            atomic_move(checkpoint, self.outcome_path(job_id))
        return atomic_move(
            running_path, self._job_file("done", job_id))

    def reject(self, pending_path: str, job_id: str,
               record: dict) -> str:
        """Settle a rejected job: record first, then move the job file
        out of ``pending/`` into ``done/``."""
        path = os.path.join(self._dir("done"),
                            f"{job_id}.rejected.json")
        atomic_write_json(path, record, sort_keys=True)
        atomic_move(pending_path, self._job_file("done", job_id))
        return path

    def fail(self, running_path: str, job_id: str, record: dict) -> str:
        """Settle a job that errored before/outside the engine."""
        path = os.path.join(self._dir("done"), f"{job_id}.failed.json")
        atomic_write_json(path, record, sort_keys=True)
        atomic_move(running_path, self._job_file("done", job_id))
        return path

    def discard_malformed(self, pending_path: str, reason: str) -> str:
        """Settle an unparseable pending file with a rejected record
        keyed by its filename stem."""
        stem = os.path.basename(pending_path)
        if stem.endswith(".json"):
            stem = stem[:-len(".json")]
        path = os.path.join(self._dir("done"), f"{stem}.rejected.json")
        atomic_write_json(path, {"job_id": stem, "reason": "malformed",
                                 "detail": reason}, sort_keys=True)
        atomic_move(pending_path,
                    os.path.join(self._dir("done"), f"{stem}.json"))
        return path
