"""The SMX heterogeneous system: core + SMX-1D ISA + SMX-2D coprocessor.

This is the library's primary public interface. It bundles:

- the **functional** paths: exact scores and alignments through the SMX
  dataflow (tile borders + recompute traceback), bit-identical to the
  gold DP;
- the **timing** paths: cycle estimates for the four implementations the
  paper evaluates in Fig. 9 (SIMD baseline, SMX-1D, SMX-2D, SMX), built
  from the analytic core model and the coprocessor's discrete-event
  simulation.

Implementations (paper Sec. 7):

=========  ==========================================================
name        meaning
=========  ==========================================================
``simd``    KSW2-style 128-bit SIMD software (baseline)
``smx1d``   SMX-1D ISA only: column instructions on the core
``smx2d``   SMX-2D coprocessor + *plain* core for pre/post processing
``smx``     SMX-2D for DP-blocks + SMX-1D for pack/traceback/reduction
=========  ==========================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.ksw2 import ksw2_alignment_timing, ksw2_score_timing
from repro.config import AlignmentConfig
from repro.core.coprocessor import CoprocParams, CoprocessorSim
from repro.core.traceback import (
    TileBorderStore,
    compute_tile_borders,
    traceback_with_recompute,
)
from repro.core.worker import BlockJob, memory_footprint_bytes
from repro.dp.alignment import Alignment
from repro.dp.dense import nw_score
from repro.encoding.differential import score_from_shifted_borders
from repro.errors import OffloadError
from repro.obs import Observability, get_logger, get_obs
from repro.sim.cpu import CoreModel, InstructionMix
from repro.sim.stats import CoprocReport, RunTiming

_LOG = get_logger("system")

IMPLEMENTATIONS = ("simd", "smx1d", "smx2d", "smx")


@dataclass(frozen=True)
class SmxKernelCosts:
    """Instruction-count constants of the SMX software kernels.

    These describe the *shape* of the inner loops (instructions per
    column step, per packed word, per traceback step); the core model
    turns them into cycles. They are the Python analogue of reading the
    paper's kernel assembly.
    """

    # SMX-1D column sweep (smx.v + smx.h per VL-element column).
    smx_per_column: float = 2.0
    int_per_column: float = 3.0     # csrw reference, pointer bumps
    loads_per_column: float = 0.3   # packed dh read, amortized
    stores_per_column: float = 0.3
    branches_per_column: float = 1.0
    misp_per_column: float = 0.02
    strip_overhead_int: float = 16.0
    # Consecutive smx.v results chain through the dv' register, so the
    # functional unit's latency bounds column throughput: single-cycle
    # for the comparator-based match/mismatch path, longer when each
    # column reads the smx_submat SRAM (paper Sec. 4.3.3).
    smx1d_fu_latency: float = 1.0
    smx1d_fu_latency_submat: float = 4.0
    # Full-alignment extra: one packed dv word stored per column step.
    align_stores_per_column: float = 1.0
    # Sequence packing (smx.pack handles 8 chars).
    pack_chars_per_op: float = 8.0
    pack_int_per_op: float = 2.0
    # SMX-1D-assisted traceback, per path step.
    tb1d_int_per_step: float = 4.0
    tb1d_branches_per_step: float = 1.0
    tb1d_misp_per_step: float = 0.15
    tb1d_loads_per_step: float = 0.3
    # Scalar (no SMX-1D) tile recompute, per recomputed cell.
    scalar_recompute_int_per_cell: float = 4.0
    scalar_recompute_loads_per_cell: float = 0.3
    # Score reduction without smx.redsum: unpack + add per element.
    scalar_reduce_int_per_element: float = 2.0
    # Per-block offload control (CSR writes, worker poll).
    offload_int_per_block: float = 40.0


@dataclass
class WorkloadTiming:
    """Aggregate timing of a stream of DP-block jobs on one core+coproc."""

    name: str
    total_cycles: float
    core_cycles: float
    coproc_report: CoprocReport | None
    cells: int
    alignments: int
    frequency_ghz: float = 1.0
    sampled_scale: float = 1.0
    extra: dict = field(default_factory=dict)

    @property
    def core_busy_fraction(self) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return min(1.0, self.core_cycles / self.total_cycles)

    @property
    def engine_utilization(self) -> float:
        if self.coproc_report is None or self.total_cycles <= 0:
            return 0.0
        return min(1.0, self.coproc_report.engine_busy_cycles
                   * self.sampled_scale / self.total_cycles)

    @property
    def gcups(self) -> float:
        seconds = self.total_cycles / (self.frequency_ghz * 1e9)
        return self.cells / seconds / 1e9 if seconds > 0 else 0.0

    @property
    def alignments_per_second(self) -> float:
        seconds = self.total_cycles / (self.frequency_ghz * 1e9)
        return self.alignments / seconds if seconds > 0 else 0.0

    def to_run_timing(self) -> RunTiming:
        return RunTiming(name=self.name, cycles=self.total_cycles,
                         cells=self.cells, alignments=self.alignments,
                         frequency_ghz=self.frequency_ghz,
                         extra=dict(self.extra))


@dataclass
class SystemResult:
    """Functional output of one heterogeneous alignment."""

    score: int
    alignment: Alignment | None
    cells_computed: int
    cells_recomputed: int
    border_elements_stored: int


class SmxSystem:
    """One SMX-enhanced core: functional behaviour + timing models.

    Args:
        config: Alignment configuration (alphabet, model, EW).
        core: Analytic core model (defaults to the paper's 8-wide OoO).
        coproc: SMX-2D parameters (defaults to 4 workers).
        max_sim_tiles: Discrete-event simulation budget; larger
            workloads are simulated at reduced scale and extrapolated
            (steady-state throughput is size-independent, which the
            tests verify).
    """

    def __init__(self, config: AlignmentConfig,
                 core: CoreModel | None = None,
                 coproc: CoprocParams | None = None,
                 costs: SmxKernelCosts | None = None,
                 max_sim_tiles: int = 400_000,
                 obs: Observability | None = None) -> None:
        self.config = config
        self.core = core or CoreModel()
        self.coproc = coproc or CoprocParams()
        self.costs = costs or SmxKernelCosts()
        self.max_sim_tiles = max_sim_tiles
        self.obs = obs or get_obs()

    # ------------------------------------------------------------------
    # Functional paths
    # ------------------------------------------------------------------

    def score(self, q_codes: np.ndarray, r_codes: np.ndarray) -> SystemResult:
        """Score-only offload: block borders + redsum reconstruction."""
        from repro.dp.delta import block_border_deltas

        n, m = len(q_codes), len(r_codes)
        dvp_out, dhp_out = block_border_deltas(q_codes, r_codes,
                                               self.config.model)
        # The core reconstructs the score from the right-column verticals
        # (top-row horizontals of a standalone block are all gap_d).
        score = score_from_shifted_borders(
            np.zeros(m, dtype=np.int64), dvp_out, self.config.shift)
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter("system.scores").inc()
            metrics.counter("system.cells_computed").inc(n * m)
        return SystemResult(score=score, alignment=None,
                            cells_computed=n * m, cells_recomputed=0,
                            border_elements_stored=n + m)

    def align(self, q_codes: np.ndarray, r_codes: np.ndarray) -> SystemResult:
        """Full alignment: SMX-2D border sweep + SMX-1D tile-recompute
        traceback (paper Fig. 8a)."""
        n, m = len(q_codes), len(r_codes)
        if n == 0 or m == 0:
            raise OffloadError("cannot offload an empty DP-block")
        with self.obs.tracer.host_span("system.align", n=n, m=m):
            store = compute_tile_borders(q_codes, r_codes,
                                         self.config.model,
                                         self.config.vl)
            alignment, recomputed = traceback_with_recompute(
                store, q_codes, r_codes, self.config.model)
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter("system.alignments").inc()
            metrics.counter("system.cells_computed").inc(n * m)
            metrics.counter("system.cells_recomputed").inc(recomputed)
        return SystemResult(score=alignment.score, alignment=alignment,
                            cells_computed=n * m,
                            cells_recomputed=recomputed,
                            border_elements_stored=store.stored_elements)

    def gold_score(self, q_codes: np.ndarray, r_codes: np.ndarray) -> int:
        """Reference score (dense DP), for cross-validation."""
        return nw_score(q_codes, r_codes, self.config.model)

    # ------------------------------------------------------------------
    # Coprocessor simulation with scale-down sampling
    # ------------------------------------------------------------------

    def simulate_coproc(self, jobs: list[BlockJob],
                        ) -> tuple[CoprocReport, float]:
        """Run the SMX-2D DES, down-scaling huge workloads.

        Returns the report plus the cycle multiplier to apply (1.0 when
        simulated exactly). Down-scaling shrinks every block by the same
        linear factor and multiplies cycles back by its square; the
        steady-state cells/cycle of the engine is size-invariant, so the
        extrapolation is faithful for the large blocks that trigger it.
        """
        total_tiles = sum(job.total_tiles for job in jobs)
        if total_tiles <= self.max_sim_tiles:
            return CoprocessorSim(self.coproc, obs=self.obs).run(jobs), 1.0
        factor = math.sqrt(self.max_sim_tiles / total_tiles)
        vl = self.config.vl
        floor = vl * 8  # keep at least one full supertile per axis
        scaled = []
        for job in jobs:
            scaled.append(BlockJob(
                n=max(floor, int(job.n * factor)),
                m=max(floor, int(job.m * factor)),
                ew=job.ew, store_tile_borders=job.store_tile_borders,
                job_id=job.job_id))
        report = CoprocessorSim(self.coproc, obs=self.obs).run(scaled)
        scaled_tiles = sum(job.total_tiles for job in scaled)
        multiplier = total_tiles / scaled_tiles
        _LOG.debug("coproc workload down-scaled %.2fx (%d -> %d tiles)",
                   multiplier, total_tiles, scaled_tiles)
        return report, multiplier

    # ------------------------------------------------------------------
    # Per-implementation timing
    # ------------------------------------------------------------------

    def _smx1d_sweep_mix(self, n: int, m: int,
                         full_alignment: bool) -> InstructionMix:
        costs = self.costs
        vl = self.config.vl
        strips = (n + vl - 1) // vl
        columns = strips * m
        stores = costs.stores_per_column
        if full_alignment:
            stores += costs.align_stores_per_column
        return InstructionMix(
            smx_ops=columns * costs.smx_per_column,
            int_ops=(columns * costs.int_per_column
                     + strips * costs.strip_overhead_int),
            loads=columns * costs.loads_per_column,
            stores=columns * stores,
            branches=columns * costs.branches_per_column,
            mispredictions=columns * costs.misp_per_column,
        )

    def _smx1d_chain_cycles(self, n: int, m: int) -> float:
        """Dependency-chain bound of the SMX-1D sweep (one smx.v result
        feeds the next column's operand)."""
        vl = self.config.vl
        columns = ((n + vl - 1) // vl) * m
        latency = (self.costs.smx1d_fu_latency_submat
                   if self.config.uses_submat
                   else self.costs.smx1d_fu_latency)
        return columns * latency

    def smx1d_score_timing(self, n: int, m: int) -> RunTiming:
        """SMX-1D implementation, score only (Fig. 9 top rows)."""
        ew = self.config.ew
        mix = self._smx1d_sweep_mix(n, m, full_alignment=False)
        working_set = int(m * ew / 8) + 64
        streamed = (n / self.config.vl) * m * ew / 8 * 2
        cycles = max(
            self.core.kernel_cycles(mix, bytes_streamed=streamed,
                                    working_set_bytes=working_set),
            self._smx1d_chain_cycles(n, m))
        return RunTiming(name="smx1d-score", cycles=cycles, cells=n * m,
                         alignments=1,
                         frequency_ghz=self.core.params.frequency_ghz)

    def smx1d_alignment_timing(self, n: int, m: int) -> RunTiming:
        """SMX-1D implementation with traceback over the stored deltas."""
        ew = self.config.ew
        costs = self.costs
        mix = self._smx1d_sweep_mix(n, m, full_alignment=True)
        delta_bytes = n * m * 2 * ew / 8
        working_set = int(delta_bytes)
        streamed = delta_bytes + (n / self.config.vl) * m * ew / 8 * 2
        sweep = max(
            self.core.kernel_cycles(mix, bytes_streamed=streamed,
                                    working_set_bytes=working_set),
            self._smx1d_chain_cycles(n, m))
        steps = n + m
        tb_mix = InstructionMix(
            smx_ops=steps / self.config.vl * 2,
            int_ops=steps * costs.tb1d_int_per_step,
            loads=steps * costs.tb1d_loads_per_step,
            branches=steps * costs.tb1d_branches_per_step,
            mispredictions=steps * costs.tb1d_misp_per_step)
        traceback = self.core.kernel_cycles(
            tb_mix, random_accesses=steps * costs.tb1d_loads_per_step,
            random_working_set_bytes=working_set)
        return RunTiming(name="smx1d-align", cycles=sweep + traceback,
                         cells=n * m, alignments=1,
                         frequency_ghz=self.core.params.frequency_ghz,
                         extra={"sweep_cycles": sweep,
                                "traceback_cycles": traceback})

    def _pack_mix(self, chars: int) -> InstructionMix:
        costs = self.costs
        ops = chars / costs.pack_chars_per_op
        return InstructionMix(smx_ops=ops, loads=ops, stores=ops,
                              int_ops=ops * costs.pack_int_per_op)

    def _core_score_post_mix(self, n: int, use_smx1d: bool) -> InstructionMix:
        """Score reconstruction from the stored right border."""
        costs = self.costs
        vl = self.config.vl
        words = (n + vl - 1) // vl
        if use_smx1d:
            return InstructionMix(smx_ops=words, loads=words,
                                  int_ops=words + 4)
        return InstructionMix(loads=words,
                              int_ops=n * costs.scalar_reduce_int_per_element)

    def _core_traceback_mix(self, n: int, m: int,
                            use_smx1d: bool) -> InstructionMix:
        """Tile-recompute traceback on the core (paper Fig. 8a)."""
        costs = self.costs
        vl = self.config.vl
        path_tiles = (n + m + vl - 1) // vl + 1
        steps = n + m
        if use_smx1d:
            # Each crossed tile is recomputed with VL smx.v/smx.h columns.
            return InstructionMix(
                smx_ops=path_tiles * vl * costs.smx_per_column,
                int_ops=(path_tiles * vl * costs.int_per_column
                         + steps * costs.tb1d_int_per_step),
                loads=path_tiles * 4 + steps * costs.tb1d_loads_per_step,
                branches=steps * costs.tb1d_branches_per_step,
                mispredictions=steps * costs.tb1d_misp_per_step)
        recompute_cells = path_tiles * vl * vl
        return InstructionMix(
            int_ops=(recompute_cells * costs.scalar_recompute_int_per_cell
                     + steps * costs.tb1d_int_per_step),
            loads=(recompute_cells * costs.scalar_recompute_loads_per_cell
                   + steps * costs.tb1d_loads_per_step),
            branches=(recompute_cells * 0.5
                      + steps * costs.tb1d_branches_per_step),
            mispredictions=steps * costs.tb1d_misp_per_step)

    def coproc_workload_timing(self, shapes: list[tuple[int, int]],
                               mode: str, impl: str,
                               name: str | None = None,
                               extra_core_cycles_per_block: float
                               | list[float] = 0.0,
                               skip_standard_post: bool = False,
                               pack_per_block: bool = True,
                               ) -> WorkloadTiming:
        """Timing of a stream of DP-blocks through SMX-2D (+ core).

        Core work (packing, score reduction or traceback, offload
        control) overlaps coprocessor compute across blocks (paper
        Fig. 8b); the pipeline total is the max of the two, plus the
        serial fill of the first block's preprocessing.

        Args:
            shapes: (n, m) of each DP-block.
            mode: ``"score"`` or ``"align"``.
            impl: ``"smx"`` (core uses SMX-1D) or ``"smx2d"`` (plain core).
            extra_core_cycles_per_block: Algorithm-specific core work
                (e.g. Hirschberg split scans, X-drop checks); a scalar
                applied to every block, or one value per block.
            skip_standard_post: Suppress the default per-block score
                reduction / traceback core work; pipelines that model
                their own core work per block set this.
        """
        if mode not in ("score", "align"):
            raise OffloadError(f"unknown mode {mode!r}")
        if impl not in ("smx", "smx2d"):
            raise OffloadError(f"implementation {impl!r} has no coprocessor")
        use_smx1d = impl == "smx"
        ew = self.config.ew
        jobs = [BlockJob(n=n, m=m, ew=ew,
                         store_tile_borders=(mode == "align"), job_id=i)
                for i, (n, m) in enumerate(shapes)]
        report, multiplier = self.simulate_coproc(jobs)
        coproc_cycles = report.total_cycles * multiplier

        if isinstance(extra_core_cycles_per_block, (int, float)):
            extra_list = [float(extra_core_cycles_per_block)] * len(shapes)
        else:
            extra_list = list(extra_core_cycles_per_block)
            if len(extra_list) != len(shapes):
                raise OffloadError(
                    f"{len(extra_list)} extra-core entries for "
                    f"{len(shapes)} blocks"
                )
        core_cycles = 0.0
        for (n, m), extra in zip(shapes, extra_list):
            mix = (self._pack_mix(n + m) if pack_per_block
                   else InstructionMix())
            mix = mix.plus(InstructionMix(
                int_ops=self.costs.offload_int_per_block))
            if skip_standard_post:
                core_cycles += self.core.compute_cycles(mix)
            elif mode == "score":
                mix = mix.plus(self._core_score_post_mix(n, use_smx1d))
                core_cycles += self.core.compute_cycles(mix)
            else:
                mix = mix.plus(self._core_traceback_mix(n, m, use_smx1d))
                # The traceback touches only the borders of the tiles on
                # the alignment path; the *whole* border store sets the
                # residence level those reads hit.
                border_bytes = memory_footprint_bytes(
                    BlockJob(n=n, m=m, ew=ew, store_tile_borders=True))
                vl = self.config.vl
                path_tiles = (n + m + vl - 1) // vl + 1
                path_bytes = path_tiles * 2 * vl * ew / 8
                core_cycles += self.core.kernel_cycles(
                    mix, bytes_streamed=path_bytes,
                    working_set_bytes=border_bytes)
            core_cycles += extra

        fill = self.core.compute_cycles(self._pack_mix(shapes[0][0]
                                                       + shapes[0][1]))
        total = max(core_cycles, coproc_cycles) + fill
        cells = sum(n * m for n, m in shapes)
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter("system.blocks_offloaded").inc(len(shapes))
            metrics.counter("system.workloads").inc()
            metrics.gauge("system.core_cycles").set(core_cycles)
            metrics.gauge("system.coproc_cycles").set(coproc_cycles)
        return WorkloadTiming(
            name=name or f"{impl}-{mode}", total_cycles=total,
            core_cycles=core_cycles, coproc_report=report, cells=cells,
            alignments=len(shapes),
            frequency_ghz=self.core.params.frequency_ghz,
            sampled_scale=multiplier,
            extra={"coproc_cycles": coproc_cycles,
                   "bytes_transferred": report.bytes_transferred
                   * multiplier})

    def implementation_timing(self, n: int, m: int, mode: str, impl: str,
                              batch: int = 8) -> RunTiming:
        """Fig. 9 entry point: one (implementation, mode, size) cell.

        Coprocessor implementations are measured in steady state over a
        batch of identical blocks (the coprocessor needs >= n_workers
        blocks in flight to reach its utilization); per-alignment cycles
        are the batch total divided by the batch size.
        """
        if impl == "simd":
            if mode == "score":
                return ksw2_score_timing(n, m, self.core,
                                         uses_submat=self.config.uses_submat)
            return ksw2_alignment_timing(n, m, self.core,
                                         uses_submat=self.config.uses_submat)
        if impl == "smx1d":
            if mode == "score":
                return self.smx1d_score_timing(n, m)
            return self.smx1d_alignment_timing(n, m)
        if impl in ("smx2d", "smx"):
            workload = self.coproc_workload_timing(
                [(n, m)] * batch, mode=mode, impl=impl)
            timing = workload.to_run_timing()
            timing.name = f"{impl}-{mode}"
            timing.cycles = workload.total_cycles / batch
            timing.cells = n * m
            timing.alignments = 1
            timing.extra["engine_utilization"] = workload.engine_utilization
            timing.extra["core_busy"] = workload.core_busy_fraction
            return timing
        raise OffloadError(f"unknown implementation {impl!r}")
