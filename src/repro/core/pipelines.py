"""SMX-accelerated practical algorithms (paper Sec. 9, Fig. 11-12).

Each pipeline maps one practical alignment algorithm onto the
heterogeneous system: it decomposes the algorithm's work into the
DP-block stream the core offloads to SMX-2D, models the algorithm's own
core-side work (splits, drop checks, traceback), and provides the
matching software (KSW2-SIMD) baseline for speedup reporting:

- :class:`SmxHirschbergPipeline` -- exact linear-memory alignment;
  SMX-2D excels at its large score-only blocks (paper: ~390x on DNA).
- :class:`SmxXdropPipeline` -- banded alignment with X-drop, processed
  in supertile-width column chunks (paper: ~256x, extra CPU-coprocessor
  communication).
- :class:`SmxProteinFullPipeline` -- full protein-vs-protein scoring
  with BLOSUM (paper: ~744x; the SIMD baseline suffers the per-cell
  substitution-matrix gather).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.hirschberg import HirschbergAligner
from repro.algorithms.xdrop import XdropAligner
from repro.baselines.ksw2 import ksw2_alignment_timing, ksw2_score_timing
from repro.core.system import SmxSystem, WorkloadTiming
from repro.core.worker import supertile_span
from repro.errors import ConfigurationError
from repro.sim.cpu import InstructionMix
from repro.workloads.datasets import Dataset


@dataclass
class PipelineTiming:
    """SMX-vs-software timing of one pipeline over one dataset."""

    name: str
    smx: WorkloadTiming
    baseline_cycles: float
    pairs: int

    @property
    def speedup(self) -> float:
        if self.smx.total_cycles <= 0:
            return float("inf")
        return self.baseline_cycles / self.smx.total_cycles

    @property
    def smx_alignments_per_second(self) -> float:
        return self.smx.alignments_per_second

    @property
    def baseline_alignments_per_second(self) -> float:
        seconds = self.baseline_cycles / (self.smx.frequency_ghz * 1e9)
        return self.pairs / seconds if seconds > 0 else 0.0


class SmxHirschbergPipeline:
    """Hirschberg's divide-and-conquer on the heterogeneous system.

    The recursion's forward/backward half-passes become large score-only
    DP-blocks; leaves small enough for direct traceback become
    full-alignment blocks. Block geometry assumes balanced splits (the
    expected case for the near-diagonal alignments of read datasets).
    """

    name = "hirschberg"

    def __init__(self, system: SmxSystem, leaf_cells: int = 256 * 256
                 ) -> None:
        self.system = system
        self.leaf_cells = leaf_cells

    def block_shapes(self, n: int, m: int) -> list[tuple[int, int, bool]]:
        """(rows, cols, is_leaf) of every DP-block the recursion issues."""
        shapes: list[tuple[int, int, bool]] = []
        stack = [(n, m)]
        while stack:
            rows, cols = stack.pop()
            if rows < 1 or cols < 1:
                continue
            if rows * cols <= self.leaf_cells or rows == 1:
                shapes.append((max(1, rows), max(1, cols), True))
                continue
            top = rows // 2
            bottom = rows - top
            shapes.append((top, cols, False))
            shapes.append((bottom, cols, False))
            stack.append((top, cols // 2))
            stack.append((bottom, cols - cols // 2))
        return shapes

    def timing(self, dataset: Dataset) -> PipelineTiming:
        system = self.system
        shapes: list[tuple[int, int]] = []
        extra: list[float] = []
        baseline = 0.0
        for pair in dataset:
            # Sequences are packed once per pair, not per block.
            pair_start = len(shapes)
            for rows, cols, is_leaf in self.block_shapes(pair.n, pair.m):
                shapes.append((rows, cols))
                if is_leaf:
                    # Leaf traceback on the core with SMX-1D recompute.
                    mix = system._core_traceback_mix(rows, cols,
                                                     use_smx1d=True)
                    extra.append(system.core.compute_cycles(mix))
                    baseline += ksw2_alignment_timing(
                        rows, cols, system.core,
                        uses_submat=system.config.uses_submat).cycles
                else:
                    # Split scan: one pass over the returned border row.
                    mix = InstructionMix(int_ops=2.0 * cols,
                                         loads=cols / 8.0)
                    extra.append(system.core.compute_cycles(mix))
                    baseline += ksw2_score_timing(
                        rows, cols, system.core,
                        uses_submat=system.config.uses_submat).cycles
            extra[pair_start] += system.core.compute_cycles(
                system._pack_mix(pair.n + pair.m))
        smx = system.coproc_workload_timing(
            shapes, mode="score", impl="smx", name="hirschberg-smx",
            extra_core_cycles_per_block=extra, skip_standard_post=True,
            pack_per_block=False)
        smx.alignments = len(dataset)
        return PipelineTiming(name=self.name, smx=smx,
                              baseline_cycles=baseline, pairs=len(dataset))

    def functional(self, pair, model):
        """Exact alignment (score-validated in tests)."""
        return HirschbergAligner().align(pair.q_codes, pair.r_codes, model)


class SmxXdropPipeline:
    """Banded alignment with X-drop on the heterogeneous system.

    The band is processed left-to-right in chunks whose width matches
    one supertile row (paper Sec. 9: "columns sized by the supertile's
    width"); after each chunk the core inspects the returned border to
    apply the drop test, then dispatches the next chunk -- the frequent
    CPU-coprocessor interaction that makes this pipeline's overheads
    visible (Fig. 11/12).
    """

    name = "xdrop"

    def __init__(self, system: SmxSystem, band_fraction: float = 0.10,
                 xdrop_fraction: float = 0.08) -> None:
        if not 0.0 < band_fraction <= 1.0:
            raise ConfigurationError("band_fraction must be in (0, 1]")
        self.system = system
        self.band_fraction = band_fraction
        self.xdrop_fraction = xdrop_fraction

    def chunk_cols(self) -> int:
        """Block width: one supertile of tiles."""
        config = self.system.config
        return supertile_span(config.ew) * config.vl

    def block_shapes(self, n: int, m: int) -> list[tuple[int, int]]:
        config = self.system.config
        band = max(2 * config.vl,
                   int(round(self.band_fraction * max(n, m))))
        band = min(band, n)
        chunk = self.chunk_cols()
        shapes = []
        for start in range(0, m, chunk):
            shapes.append((band, min(chunk, m - start)))
        return shapes

    def timing(self, dataset: Dataset) -> PipelineTiming:
        system = self.system
        vl = system.config.vl
        shapes: list[tuple[int, int]] = []
        extra: list[float] = []
        baseline = 0.0
        for pair in dataset:
            pair_shapes = self.block_shapes(pair.n, pair.m)
            band = pair_shapes[0][0]
            pair_start = len(shapes)
            for index, (rows, cols) in enumerate(pair_shapes):
                shapes.append((rows, cols))
                # Drop check: redsum the chunk's border + compare.
                mix = InstructionMix(smx_ops=rows / vl,
                                     int_ops=rows / vl + 8.0,
                                     branches=2.0, mispredictions=0.1)
                cycles = system.core.compute_cycles(mix)
                if index == len(pair_shapes) - 1:
                    # Band traceback with SMX-1D tile recompute.
                    tb = system._core_traceback_mix(pair.n, pair.m,
                                                    use_smx1d=True)
                    cycles += system.core.compute_cycles(tb)
                extra.append(cycles)
            # Software baseline: banded sweep (band rows x m columns)
            # with direction storage and traceback.
            extra[pair_start] += system.core.compute_cycles(
                system._pack_mix(pair.n + pair.m))
            baseline += ksw2_alignment_timing(
                band, pair.m, system.core,
                uses_submat=system.config.uses_submat).cycles
        smx = system.coproc_workload_timing(
            shapes, mode="align", impl="smx", name="xdrop-smx",
            extra_core_cycles_per_block=extra, skip_standard_post=True,
            pack_per_block=False)
        smx.alignments = len(dataset)
        return PipelineTiming(name=self.name, smx=smx,
                              baseline_cycles=baseline, pairs=len(dataset))

    def functional(self, pair, model):
        return XdropAligner(fraction=self.xdrop_fraction).align(
            pair.q_codes, pair.r_codes, model)


class SmxProteinFullPipeline:
    """Full protein-vs-protein scoring (DIAMOND-style inner loop).

    Whole score-only DP-blocks stream through SMX-2D; the core merely
    reduces the returned border with ``smx.redsum`` -- which is why
    Fig. 12 shows a near-idle core next to a saturated engine.
    """

    name = "protein-full"

    def __init__(self, system: SmxSystem) -> None:
        if not system.config.uses_submat:
            raise ConfigurationError(
                "protein pipeline requires a substitution-matrix config"
            )
        self.system = system

    def timing(self, dataset: Dataset) -> PipelineTiming:
        system = self.system
        shapes = [(pair.n, pair.m) for pair in dataset]
        baseline = sum(
            ksw2_score_timing(n, m, system.core, uses_submat=True).cycles
            for n, m in shapes)
        smx = system.coproc_workload_timing(
            shapes, mode="score", impl="smx", name="protein-full-smx")
        return PipelineTiming(name=self.name, smx=smx,
                              baseline_cycles=baseline, pairs=len(dataset))

    def functional(self, pair, model):
        from repro.algorithms.full import FullAligner
        return FullAligner().compute_score(pair.q_codes, pair.r_codes,
                                           model)
