"""SMX-worker geometry: DP-block -> supertile -> tile decomposition.

A worker owns one DP-block at a time. To exploit memory locality it
groups the tiles that share reference/query cache lines into
*supertiles* (paper Fig. 7): with 64-byte lines and EW-bit characters a
line holds ``512 / EW`` characters, i.e. ``(512 / EW) / VL = 8`` tiles
along each axis for every element width. A supertile is therefore an
(up to) 8x8 grid of tiles processed along antidiagonals, with one
load/store burst per supertile instead of per tile.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.encoding.packing import lanes_for
from repro.errors import ConfigurationError
from repro.sim.cache import LINE_BYTES


def supertile_span(ew: int) -> int:
    """Tiles per supertile edge: characters-per-line / VL (= 8 for all EW)."""
    chars_per_line = (LINE_BYTES * 8) // ew
    return max(1, chars_per_line // lanes_for(ew))


def tiles_for(length: int, ew: int) -> int:
    """Tiles needed to cover ``length`` characters at this EW."""
    vl = lanes_for(ew)
    return (length + vl - 1) // vl


@dataclass(frozen=True)
class BlockJob:
    """One DP-block offload request (what the core hands a worker).

    Attributes:
        n / m: Block dimensions in DP-elements.
        ew: Element width.
        store_tile_borders: Full-alignment mode -- every tile's output
            borders are written back for later traceback recompute.
            Score-only mode stores only block-edge borders.
        job_id: Caller-assigned identifier (reported back in timings).
    """

    n: int
    m: int
    ew: int
    store_tile_borders: bool = False
    job_id: int = 0

    def __post_init__(self) -> None:
        if self.n <= 0 or self.m <= 0:
            raise ConfigurationError(
                f"DP-block must be non-empty, got {self.n}x{self.m}"
            )

    @property
    def tile_rows(self) -> int:
        return tiles_for(self.n, self.ew)

    @property
    def tile_cols(self) -> int:
        return tiles_for(self.m, self.ew)

    @property
    def total_tiles(self) -> int:
        return self.tile_rows * self.tile_cols

    @property
    def cells(self) -> int:
        return self.n * self.m


@dataclass(frozen=True)
class SupertileTask:
    """One supertile of a block: an st_rows x st_cols patch of tiles."""

    st_rows: int
    st_cols: int
    ew: int
    store_tile_borders: bool

    @property
    def tiles(self) -> int:
        return self.st_rows * self.st_cols

    @property
    def load_lines(self) -> int:
        """Cache lines fetched before compute: one line each of query and
        reference characters, plus the supertile's top dh' and left dv'
        border words (each edge packs into one line at every EW)."""
        return 4

    @property
    def store_lines(self) -> int:
        """Cache lines written after compute.

        Score-only: the supertile's right dv' and bottom dh' edges
        (consumed by the neighbouring supertiles). Full-alignment: also
        every internal tile border (2 x VL x EW bits = 8 bytes per tile),
        the data traceback recompute later reads.
        """
        lines = 2
        if self.store_tile_borders:
            border_bytes = self.tiles * 2 * 8
            lines += (border_bytes + LINE_BYTES - 1) // LINE_BYTES
        return lines


def supertiles_of(job: BlockJob) -> list[SupertileTask]:
    """Row-major supertile decomposition of a block.

    Row-major order guarantees that the west and north neighbours of a
    supertile are complete before it starts, so a single worker never
    stalls on cross-supertile dependencies (only intra-supertile
    pipeline bubbles and memory remain -- what multiple workers hide).
    """
    span = supertile_span(job.ew)
    tasks = []
    for row_start in range(0, job.tile_rows, span):
        st_rows = min(span, job.tile_rows - row_start)
        for col_start in range(0, job.tile_cols, span):
            st_cols = min(span, job.tile_cols - col_start)
            tasks.append(SupertileTask(
                st_rows=st_rows, st_cols=st_cols, ew=job.ew,
                store_tile_borders=job.store_tile_borders))
    return tasks


def antidiagonal_order(rows: int, cols: int) -> list[tuple[int, int]]:
    """Tile coordinates in wavefront (antidiagonal) issue order."""
    order = []
    for diag in range(rows + cols - 1):
        row_lo = max(0, diag - cols + 1)
        row_hi = min(rows - 1, diag)
        for row in range(row_lo, row_hi + 1):
            order.append((row, diag - row))
    return order


def memory_footprint_bytes(job: BlockJob) -> int:
    """Bytes of delta state the block leaves in memory.

    Score-only blocks keep one border row + column; full-alignment
    blocks keep every tile border: ``2 * VL * EW`` bits per tile. For
    comparison, SMX-1D keeps the full delta field (``2 * EW`` bits per
    cell) and 32-bit software keeps ``4`` bytes per cell -- the 32x /
    256x reductions quoted in paper Sec. 5.
    """
    vl = lanes_for(job.ew)
    if not job.store_tile_borders:
        edge_elements = job.n + job.m
        return (edge_elements * job.ew + 7) // 8
    return job.total_tiles * 2 * vl * job.ew // 8
