"""SMX-1D instruction-trace generation and replay.

The timing model summarises kernels as instruction *mixes*; this module
makes the instruction *stream* explicit: it emits the exact RISC-V-like
sequence a compiler would generate for a DP-block sweep (paper Fig. 4b)
and replays it on the architectural model, so the ISA semantics are
testable end-to-end at the level a verification engineer would use.

The traced subset:

=============  ====================================================
``li``          load immediate into a register
``mv``          register move
``csrw``        write an SMX CSR from a register
``ld`` / ``sd`` 64-bit load/store at ``base + offset``
``smx.v``       column-vector instruction (rd, rs1=dv, rs2=dh)
``smx.h``       column-horizontal instruction
``smx.redsum``  packed-lane sum
=============  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import AlignmentConfig
from repro.core.isa import Smx1D, broadcast_code
from repro.core.registers import SmxState
from repro.encoding.packing import pack_word
from repro.errors import SimulationError

#: Memory layout of the traced kernel: the dh' spill array base.
DH_BASE = 0x1000


@dataclass(frozen=True)
class Instruction:
    """One traced instruction."""

    op: str
    rd: str | None = None
    rs1: str | None = None
    rs2: str | None = None
    imm: int | None = None
    comment: str = ""

    def render(self) -> str:
        if self.op == "li":
            text = f"li      {self.rd}, {self.imm:#x}"
        elif self.op == "mv":
            text = f"mv      {self.rd}, {self.rs1}"
        elif self.op == "csrw":
            text = f"csrw    {self.rd}, {self.rs1}"
        elif self.op in ("ld", "sd"):
            reg = self.rd if self.op == "ld" else self.rs1
            text = f"{self.op}      {reg}, {self.imm}(x0)"
        elif self.op == "smx.redsum":
            text = f"smx.redsum {self.rd}, {self.rs1}"
        else:
            text = f"{self.op}   {self.rd}, {self.rs1}, {self.rs2}"
        if self.comment:
            text = f"{text:<40}# {self.comment}"
        return text


@dataclass
class Trace:
    """An instruction stream plus the lane counts smx ops ran with."""

    instructions: list[Instruction] = field(default_factory=list)
    lane_hints: dict[int, int] = field(default_factory=dict)

    def append(self, instruction: Instruction,
               lanes: int | None = None) -> None:
        if lanes is not None:
            self.lane_hints[len(self.instructions)] = lanes
        self.instructions.append(instruction)

    def render(self) -> str:
        return "\n".join(ins.render() for ins in self.instructions)

    def count(self, op: str) -> int:
        return sum(1 for ins in self.instructions if ins.op == op)

    def __len__(self) -> int:
        return len(self.instructions)


def block_sweep_trace(config: AlignmentConfig, q_codes: np.ndarray,
                      r_codes: np.ndarray) -> Trace:
    """Emit the SMX-1D instruction stream sweeping one DP-block.

    Strips of VL rows; per column: reference CSR write, dh' load,
    ``smx.v`` / ``smx.h``, dh' store, dv register rotation -- exactly
    the loop body the timing model's per-column constants describe.
    """
    ew, vl = config.ew, config.vl
    n, m = len(q_codes), len(r_codes)
    trace = Trace()
    for strip_start in range(0, n, vl):
        lanes = min(vl, n - strip_start)
        strip_q = q_codes[strip_start:strip_start + lanes]
        strip_id = strip_start // vl
        trace.append(Instruction(
            "li", rd="x1", imm=pack_word(strip_q, ew),
            comment=f"strip {strip_id}: packed query rows "
                    f"{strip_start}..{strip_start + lanes - 1}"))
        trace.append(Instruction("csrw", rd="smx_query", rs1="x1"))
        trace.append(Instruction(
            "li", rd="x2", imm=0, comment="dv' column register (zero "
                                          "borders)"))
        for j in range(m):
            trace.append(Instruction(
                "li", rd="x1", imm=broadcast_code(int(r_codes[j]), ew),
                comment=f"reference[{j}] broadcast"))
            trace.append(Instruction("csrw", rd="smx_reference", rs1="x1"))
            trace.append(Instruction("ld", rd="x3", imm=DH_BASE + 8 * j,
                                     comment="dh' in"))
            trace.append(Instruction("smx.v", rd="x4", rs1="x2", rs2="x3"),
                         lanes=lanes)
            trace.append(Instruction("smx.h", rd="x5", rs1="x2", rs2="x3"),
                         lanes=lanes)
            trace.append(Instruction("sd", rs1="x5", imm=DH_BASE + 8 * j,
                                     comment="dh' out"))
            trace.append(Instruction("mv", rd="x2", rs1="x4"))
    trace.append(Instruction("smx.redsum", rd="x6", rs1="x2",
                             comment="partial score of last strip"),
                 lanes=min(vl, n - (n - 1) // vl * vl))
    return trace


class TraceExecutor:
    """Replays a :class:`Trace` against the architectural model.

    Registers and data memory are plain dictionaries; SMX instructions
    delegate to the bit-accurate :class:`~repro.core.isa.Smx1D` unit.
    """

    def __init__(self, config: AlignmentConfig) -> None:
        self.unit = Smx1D(SmxState.for_config(config))
        self.registers: dict[str, int] = {"x0": 0}
        self.memory: dict[int, int] = {}

    def read(self, name: str) -> int:
        if name not in self.registers:
            raise SimulationError(f"read of unwritten register {name}")
        return self.registers[name]

    def execute(self, trace: Trace) -> None:
        for index, ins in enumerate(trace.instructions):
            lanes = trace.lane_hints.get(index)
            if ins.op == "li":
                self.registers[ins.rd] = ins.imm
            elif ins.op == "mv":
                self.registers[ins.rd] = self.read(ins.rs1)
            elif ins.op == "csrw":
                self.unit.write_csr(ins.rd, self.read(ins.rs1))
            elif ins.op == "ld":
                self.registers[ins.rd] = self.memory.get(ins.imm, 0)
            elif ins.op == "sd":
                self.memory[ins.imm] = self.read(ins.rs1)
            elif ins.op == "smx.v":
                self.registers[ins.rd] = self.unit.smx_v(
                    self.read(ins.rs1), self.read(ins.rs2), lanes=lanes)
            elif ins.op == "smx.h":
                self.registers[ins.rd] = self.unit.smx_h(
                    self.read(ins.rs1), self.read(ins.rs2), lanes=lanes)
            elif ins.op == "smx.redsum":
                self.registers[ins.rd] = self.unit.smx_redsum(
                    self.read(ins.rs1), lanes=lanes)
            else:
                raise SimulationError(f"unknown traced op {ins.op!r}")

    def dh_row(self, m: int) -> np.ndarray:
        """The dh' spill array after execution (shifted values)."""
        return np.array([self.memory.get(DH_BASE + 8 * j, 0)
                         for j in range(m)], dtype=np.int64)
