"""SMX-1D architectural state (paper Sec. 4.2).

Three 64-bit architectural registers plus the 78x64-bit ``smx_submat``
memory:

- ``smx_query`` / ``smx_reference``: packed VL-character operand strings;
- ``smx_config``: element width, score mode, and the (shifted) penalties;
- ``smx_submat``: the packed 26x26x6-bit substitution matrix.

``smx_config`` is modelled with an explicit bit layout so the state can
round-trip through a CSR read/write exactly like hardware:

====  =====================================================
bits  field
====  =====================================================
1:0   EW select (0->2b, 1->4b, 2->6b, 3->8b)
2     score mode (0 = match/mismatch, 1 = substitution matrix)
15:8  shifted match score  (theta, unsigned 8-bit)
23:16 shifted mismatch score (unsigned 8-bit)
31:24 gap_i as two's-complement 8-bit
39:32 gap_d as two's-complement 8-bit
====  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import AlignmentConfig
from repro.encoding.packing import lanes_for
from repro.errors import ConfigurationError, EncodingError
from repro.scoring.model import SubstitutionMatrixModel
from repro.scoring.submat import SUBMAT_TOTAL_WORDS, SubstitutionMatrix

#: EW-select encoding used in smx_config bits 1:0.
EW_SELECT = {2: 0, 4: 1, 6: 2, 8: 3}
EW_DECODE = {v: k for k, v in EW_SELECT.items()}

MODE_MATCH_MISMATCH = 0
MODE_SUBMAT = 1

_WORD_MASK = (1 << 64) - 1


def _signed8(value: int) -> int:
    """Encode a signed value into 8-bit two's complement."""
    if not -128 <= value <= 127:
        raise EncodingError(f"value {value} does not fit signed 8 bits")
    return value & 0xFF


def _unsigned8(value: int) -> int:
    if not 0 <= value <= 255:
        raise EncodingError(f"value {value} does not fit unsigned 8 bits")
    return value


def _decode_signed8(raw: int) -> int:
    raw &= 0xFF
    return raw - 256 if raw >= 128 else raw


@dataclass(frozen=True)
class SmxConfig:
    """Decoded view of the ``smx_config`` register.

    Shifted scores are stored (what the PEs consume): ``match_sp`` is
    ``theta`` and ``mismatch_sp`` is ``X - I - D``.
    """

    ew: int
    mode: int
    match_sp: int
    mismatch_sp: int
    gap_i: int
    gap_d: int

    def __post_init__(self) -> None:
        if self.ew not in EW_SELECT:
            raise ConfigurationError(f"invalid EW {self.ew}")
        if self.mode not in (MODE_MATCH_MISMATCH, MODE_SUBMAT):
            raise ConfigurationError(f"invalid mode {self.mode}")

    @property
    def vl(self) -> int:
        return lanes_for(self.ew)

    def encode(self) -> int:
        """Pack into the 64-bit CSR image."""
        word = EW_SELECT[self.ew]
        word |= self.mode << 2
        word |= _unsigned8(self.match_sp) << 8
        word |= _unsigned8(self.mismatch_sp) << 16
        word |= _signed8(self.gap_i) << 24
        word |= _signed8(self.gap_d) << 32
        return word

    @staticmethod
    def decode(word: int) -> "SmxConfig":
        """Unpack a CSR image (inverse of :meth:`encode`)."""
        return SmxConfig(
            ew=EW_DECODE[word & 0x3],
            mode=(word >> 2) & 0x1,
            match_sp=(word >> 8) & 0xFF,
            mismatch_sp=(word >> 16) & 0xFF,
            gap_i=_decode_signed8(word >> 24),
            gap_d=_decode_signed8(word >> 32),
        )

    @staticmethod
    def from_alignment_config(config: AlignmentConfig) -> "SmxConfig":
        """Derive the CSR contents for one of the library's presets."""
        model = config.model
        if isinstance(model, SubstitutionMatrixModel):
            return SmxConfig(ew=config.ew, mode=MODE_SUBMAT,
                             match_sp=model.theta, mismatch_sp=0,
                             gap_i=model.gap_i, gap_d=model.gap_d)
        shift = model.gap_i + model.gap_d
        return SmxConfig(ew=config.ew, mode=MODE_MATCH_MISMATCH,
                         match_sp=model.match - shift,
                         mismatch_sp=model.mismatch - shift,
                         gap_i=model.gap_i, gap_d=model.gap_d)


@dataclass
class SmxState:
    """Full architectural state of one SMX-1D unit.

    ``query`` and ``reference`` are raw 64-bit register images; the
    config register is kept decoded (with :meth:`csr_read` /
    :meth:`csr_write` providing the raw view). The submat memory is
    78 64-bit words, all zeros until loaded.
    """

    config: SmxConfig
    query: int = 0
    reference: int = 0
    submat: list[int] = field(
        default_factory=lambda: [0] * SUBMAT_TOTAL_WORDS)

    CSR_NAMES = ("smx_config", "smx_query", "smx_reference")

    def csr_write(self, name: str, value: int) -> None:
        value &= _WORD_MASK
        if name == "smx_config":
            self.config = SmxConfig.decode(value)
        elif name == "smx_query":
            self.query = value
        elif name == "smx_reference":
            self.reference = value
        else:
            raise ConfigurationError(f"unknown CSR {name!r}")

    def csr_read(self, name: str) -> int:
        if name == "smx_config":
            return self.config.encode()
        if name == "smx_query":
            return self.query
        if name == "smx_reference":
            return self.reference
        raise ConfigurationError(f"unknown CSR {name!r}")

    def load_submat(self, matrix: SubstitutionMatrix, gap_i: int,
                    gap_d: int) -> None:
        """Serialize a substitution matrix into the smx_submat memory."""
        self.submat = matrix.pack_words(gap_i, gap_d)

    def submat_lookup(self, ref_code: int, query_code: int) -> int:
        """Shifted score ``S'`` from the packed memory (paper Sec. 4.3.3).

        The hardware reads the 3 words of column ``ref_code`` and
        extracts the 6-bit entry at ``query_code``.
        """
        if not 0 <= ref_code < 26 or not 0 <= query_code < 26:
            raise EncodingError(
                f"submat codes ({ref_code}, {query_code}) out of range"
            )
        stream = 0
        for word_index in range(3):
            stream |= self.submat[ref_code * 3 + word_index] << (
                64 * word_index)
        return (stream >> (6 * query_code)) & 0x3F

    @staticmethod
    def for_config(config: AlignmentConfig) -> "SmxState":
        """Build a ready-to-run state for a preset (loads submat if any)."""
        state = SmxState(config=SmxConfig.from_alignment_config(config))
        model = config.model
        if isinstance(model, SubstitutionMatrixModel):
            state.load_submat(model.matrix, model.gap_i, model.gap_d)
        return state
