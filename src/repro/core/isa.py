"""SMX-1D instruction semantics (paper Sec. 4.2-4.3).

Bit-accurate register-to-register models of the four instructions:

- ``smx.v rd, rs1, rs2`` -- compute a column vector of VL shifted deltas;
- ``smx.h rd, rs1, rs2`` -- compute the column's outgoing scalar ``dh'``;
- ``smx.redsum rd, rs1`` -- sum the VL packed lanes of ``rs1``;
- ``smx.pack rd, rs1`` -- pack 8 ASCII characters into EW-bit codes.

All operands and results are 64-bit integers (register images). The
:class:`Smx1D` unit bundles the architectural state with execution
counters, and :func:`smx1d_block_borders` is the reference software
kernel that sweeps a whole DP-block with these instructions (the
"SMX-1D implementation" of the paper's Fig. 9 evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.pe import pe_column
from repro.core.registers import MODE_SUBMAT, SmxState
from repro.encoding.packing import element_mask, lanes_for, pack_word, unpack_word
from repro.errors import EncodingError, RangeError

_WORD_MASK = (1 << 64) - 1

#: ASCII -> 2-bit DNA code map used by smx.pack at EW in (2, 4).
_DNA_CODES = {ord("A"): 0, ord("C"): 1, ord("G"): 2, ord("T"): 3,
              ord("a"): 0, ord("c"): 1, ord("g"): 2, ord("t"): 3}


@dataclass
class InstructionCounters:
    """Dynamic instruction counts of one SMX-1D execution context."""

    smx_v: int = 0
    smx_h: int = 0
    smx_redsum: int = 0
    smx_pack: int = 0
    csr_writes: int = 0

    @property
    def smx_total(self) -> int:
        return (self.smx_v + self.smx_h + self.smx_redsum + self.smx_pack
                + self.csr_writes)

    def reset(self) -> None:
        self.smx_v = self.smx_h = self.smx_redsum = 0
        self.smx_pack = self.csr_writes = 0


class Smx1D:
    """One SMX-1D functional unit bound to its architectural state."""

    def __init__(self, state: SmxState) -> None:
        self.state = state
        self.counters = InstructionCounters()

    # -- S' generation (paper Sec. 4.3.3) ------------------------------------

    def _s_prime_lane(self, query_code: int, ref_code: int) -> int:
        config = self.state.config
        if config.mode == MODE_SUBMAT:
            return self.state.submat_lookup(ref_code, query_code)
        return (config.match_sp if query_code == ref_code
                else config.mismatch_sp)

    def _column_operands(self, lanes: int) -> tuple[list[int], list[int]]:
        """Unpack query/reference lanes and produce the S' vector."""
        config = self.state.config
        query = unpack_word(self.state.query, config.ew, lanes)
        reference = unpack_word(self.state.reference, config.ew, lanes)
        s_prime = [self._s_prime_lane(q, r)
                   for q, r in zip(query, reference)]
        return query, s_prime

    # -- instructions ---------------------------------------------------------

    def smx_v(self, rs1: int, rs2: int, lanes: int | None = None) -> int:
        """Column-vector instruction: packed ``dv'`` out (paper Fig. 6).

        ``rs1`` carries the incoming packed ``dv'`` vector, ``rs2`` the
        scalar ``dh'`` in its low EW bits. ``lanes`` (default VL) models
        the tail of a block whose height is not a VL multiple; hardware
        achieves the same by padding, software by masking.
        """
        config = self.state.config
        vl = lanes if lanes is not None else config.vl
        dv_in = unpack_word(rs1 & _WORD_MASK, config.ew, vl)
        dh_in = (rs2 & _WORD_MASK) & element_mask(config.ew)
        _, s_prime = self._column_operands(vl)
        dv_out, _ = pe_column(dv_in, dh_in, s_prime, config.ew)
        self.counters.smx_v += 1
        return pack_word(dv_out, config.ew)

    def smx_h(self, rs1: int, rs2: int, lanes: int | None = None) -> int:
        """Scalar-horizontal instruction: the column's final ``dh'``."""
        config = self.state.config
        vl = lanes if lanes is not None else config.vl
        dv_in = unpack_word(rs1 & _WORD_MASK, config.ew, vl)
        dh_in = (rs2 & _WORD_MASK) & element_mask(config.ew)
        _, s_prime = self._column_operands(vl)
        _, dh_out = pe_column(dv_in, dh_in, s_prime, config.ew)
        self.counters.smx_h += 1
        return dh_out

    def smx_redsum(self, rs1: int, lanes: int | None = None) -> int:
        """Sum of the VL packed lanes (score-reconstruction support)."""
        config = self.state.config
        vl = lanes if lanes is not None else config.vl
        values = unpack_word(rs1 & _WORD_MASK, config.ew, vl)
        self.counters.smx_redsum += 1
        return sum(values)

    def smx_pack(self, rs1: int) -> int:
        """Pack 8 ASCII bytes of ``rs1`` into 8 EW-bit codes.

        The character mapping follows the element width: 2/4-bit use the
        DNA encoding (ACGT -> 0..3), 6-bit maps letters to ``ord - 'A'``,
        8-bit is the identity.
        """
        config = self.state.config
        ew = config.ew
        packed = 0
        for byte_index in range(8):
            byte = (rs1 >> (8 * byte_index)) & 0xFF
            if ew in (2, 4):
                if byte not in _DNA_CODES:
                    raise EncodingError(
                        f"smx.pack: byte {byte:#x} is not a DNA character"
                    )
                code = _DNA_CODES[byte]
            elif ew == 6:
                letter = byte & ~0x20  # fold case
                if not 0x41 <= letter <= 0x5A:
                    raise EncodingError(
                        f"smx.pack: byte {byte:#x} is not a letter"
                    )
                code = letter - 0x41
            else:
                code = byte
            packed |= code << (ew * byte_index)
        self.counters.smx_pack += 1
        return packed & _WORD_MASK

    def write_csr(self, name: str, value: int) -> None:
        """CSR write with accounting (csrw in the instruction stream)."""
        self.state.csr_write(name, value)
        self.counters.csr_writes += 1


def broadcast_code(code: int, ew: int) -> int:
    """Replicate one EW-bit code across all VL lanes of a word.

    Software uses this to feed a single reference character to every
    comparator lane when sweeping a column.
    """
    vl = lanes_for(ew)
    return pack_word([code] * vl, ew)


def smx1d_block_borders(unit: Smx1D, q_codes: np.ndarray,
                        r_codes: np.ndarray,
                        dvp_in: np.ndarray | None = None,
                        dhp_in: np.ndarray | None = None,
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Sweep a DP-block with SMX-1D instructions; return shifted borders.

    The block is processed in horizontal strips of VL rows (Fig. 4b).
    Within a strip the dv' column vector lives in a register; the running
    dh' values along the strip's bottom edge live in a software array
    (memory), consumed by the next strip. Instruction counts accumulate
    in ``unit.counters`` and feed the timing model.

    This is the *functional* reference of the SMX-1D software kernel;
    equivalence with :func:`repro.dp.delta.block_border_deltas` is the
    core ISA correctness property.
    """
    config = unit.state.config
    ew, vl = config.ew, config.vl
    n, m = len(q_codes), len(r_codes)
    if dvp_in is None:
        dvp_in = np.zeros(n, dtype=np.int64)
    if dhp_in is None:
        dhp_in = np.zeros(m, dtype=np.int64)
    max_value = element_mask(ew)
    if (np.asarray(dvp_in) > max_value).any() or \
            (np.asarray(dhp_in) > max_value).any():
        raise RangeError("input borders exceed the configured element width")

    dh_mem = [int(v) for v in dhp_in]
    dvp_out = np.empty(n, dtype=np.int64)
    for strip_start in range(0, n, vl):
        lanes = min(vl, n - strip_start)
        strip_q = q_codes[strip_start:strip_start + lanes]
        unit.write_csr("smx_query", pack_word(strip_q, ew))
        dv_reg = pack_word(dvp_in[strip_start:strip_start + lanes], ew)
        for j in range(m):
            unit.write_csr("smx_reference",
                           broadcast_code(int(r_codes[j]), ew))
            dh_in = dh_mem[j]
            new_dv = unit.smx_v(dv_reg, dh_in, lanes=lanes)
            dh_mem[j] = unit.smx_h(dv_reg, dh_in, lanes=lanes)
            dv_reg = new_dv
        dvp_out[strip_start:strip_start + lanes] = unpack_word(
            dv_reg, ew, lanes)
    return dvp_out, np.asarray(dh_mem, dtype=np.int64)


def smx1d_block_score(unit: Smx1D, q_codes: np.ndarray,
                      r_codes: np.ndarray) -> int:
    """Standalone-block score via the SMX-1D kernel plus ``smx.redsum``.

    For a standalone block the top-row horizontals are all ``D``, so
    ``M[n][m] = m*D + sum_i dv[i][m] = m*D + n*I + sum_i dv'[i][m]``:
    redsum the packed right-border words and add the constant shift
    terms (paper Sec. 6, score-only path).
    """
    config = unit.state.config
    n, m = len(q_codes), len(r_codes)
    dvp_out, _ = smx1d_block_borders(unit, q_codes, r_codes)
    total = 0
    for start in range(0, n, config.vl):
        lanes = min(config.vl, n - start)
        word = pack_word(dvp_out[start:start + lanes], config.ew)
        total += unit.smx_redsum(word, lanes=lanes)
    return total + n * config.gap_i + m * config.gap_d
