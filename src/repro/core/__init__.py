"""SMX core: PE datapath, SMX-1D ISA, SMX-2D coprocessor, and the
heterogeneous system model (the paper's primary contribution)."""

from repro.core.coprocessor import CoprocParams, CoprocessorSim
from repro.core.engine import DEFAULT_PIPELINE_LATENCY, EngineParams
from repro.core.isa import (
    InstructionCounters,
    Smx1D,
    broadcast_code,
    smx1d_block_borders,
    smx1d_block_score,
)
from repro.core.pe import pe_column, pe_datapath, pe_datapath_vec, pe_reference
from repro.core.registers import (
    MODE_MATCH_MISMATCH,
    MODE_SUBMAT,
    SmxConfig,
    SmxState,
)
from repro.core.system import (
    IMPLEMENTATIONS,
    SmxKernelCosts,
    SmxSystem,
    SystemResult,
    WorkloadTiming,
)
from repro.core.tile import TileResult, compute_tile, compute_tile_bit
from repro.core.traceback import (
    TileBorderStore,
    compute_tile_borders,
    traceback_with_recompute,
)
from repro.core.worker import (
    BlockJob,
    SupertileTask,
    antidiagonal_order,
    memory_footprint_bytes,
    supertile_span,
    supertiles_of,
    tiles_for,
)

__all__ = [
    "BlockJob",
    "CoprocParams",
    "CoprocessorSim",
    "DEFAULT_PIPELINE_LATENCY",
    "EngineParams",
    "IMPLEMENTATIONS",
    "InstructionCounters",
    "MODE_MATCH_MISMATCH",
    "MODE_SUBMAT",
    "Smx1D",
    "SmxConfig",
    "SmxKernelCosts",
    "SmxState",
    "SmxSystem",
    "SupertileTask",
    "SystemResult",
    "TileBorderStore",
    "TileResult",
    "WorkloadTiming",
    "antidiagonal_order",
    "broadcast_code",
    "compute_tile",
    "compute_tile_bit",
    "compute_tile_borders",
    "memory_footprint_bytes",
    "pe_column",
    "pe_datapath",
    "pe_datapath_vec",
    "pe_reference",
    "smx1d_block_borders",
    "smx1d_block_score",
    "supertile_span",
    "supertiles_of",
    "tiles_for",
    "traceback_with_recompute",
]
