"""Register-level SMX-2D offload interface (paper Sec. 5.1 flow).

This is the *driver's* view of the coprocessor: a flat 64-bit-word
memory shared by core and device, per-worker memory-mapped
configuration registers, and the offload protocol the paper describes
-- the core writes reference/query addresses, sizes and delta-buffer
addresses, kicks the worker, polls for completion, and reads the
packed border words back to finish the score (``smx.redsum``) or run
the traceback.

The device model is *functional* (results are bit-exact against the
gold DP; timing lives in :mod:`repro.core.coprocessor`), so this layer
is what an RTL verification environment would diff traces against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

from repro.config import AlignmentConfig
from repro.dp.delta import block_border_deltas
from repro.encoding.packing import pack_sequence, unpack_sequence
from repro.errors import OffloadError, SimulationError

_WORD_MASK = (1 << 64) - 1


class Memory:
    """Flat word-addressable memory shared by core and coprocessor.

    Addresses are byte addresses, 8-byte aligned; unwritten words read
    as zero (like zero-initialised DRAM).
    """

    def __init__(self) -> None:
        self._words: dict[int, int] = {}

    @staticmethod
    def _check(address: int) -> None:
        if address < 0 or address % 8:
            raise SimulationError(
                f"address {address:#x} is not 8-byte aligned"
            )

    def load(self, address: int) -> int:
        self._check(address)
        return self._words.get(address, 0)

    def store(self, address: int, value: int) -> None:
        self._check(address)
        self._words[address] = value & _WORD_MASK

    def store_words(self, address: int, words: list[int]) -> int:
        """Store a word run; returns the first address past it."""
        for offset, word in enumerate(words):
            self.store(address + 8 * offset, word)
        return address + 8 * len(words)

    def load_words(self, address: int, count: int) -> list[int]:
        return [self.load(address + 8 * offset) for offset in range(count)]

    def store_packed(self, address: int, codes: np.ndarray, ew: int) -> int:
        """Pack a code/delta sequence at EW bits and store it."""
        return self.store_words(address, pack_sequence(codes, ew))

    def load_packed(self, address: int, length: int, ew: int) -> np.ndarray:
        from repro.encoding.packing import lanes_for
        words = (length + lanes_for(ew) - 1) // lanes_for(ew)
        return unpack_sequence(self.load_words(address, words), ew, length)


class WorkerStatus(IntEnum):
    """Value of a worker's STATUS register."""

    IDLE = 0
    RUNNING = 1
    DONE = 2
    ERROR = 3


#: Names of the per-worker configuration registers (paper Sec. 5.1:
#: "reference/query addresses, sizes, delta matrix addresses, and other
#: parameters").
WORKER_REGISTERS = (
    "query_addr", "ref_addr", "query_len", "ref_len",
    "dvp_in_addr", "dhp_in_addr", "dvp_out_addr", "dhp_out_addr",
    "mode",
)

MODE_SCORE = 0
MODE_ALIGN = 1


@dataclass
class _WorkerState:
    registers: dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in WORKER_REGISTERS})
    status: WorkerStatus = WorkerStatus.IDLE


class Smx2DDevice:
    """The memory-mapped SMX-2D coprocessor, functional model.

    Typical driver sequence::

        device.write_register(0, "query_addr", q_addr)
        ...                                   # all registers
        device.start(0)
        while device.poll(0) != WorkerStatus.DONE: ...
        dvp = memory.load_packed(dvp_out, n, config.ew)
    """

    def __init__(self, config: AlignmentConfig, memory: Memory,
                 n_workers: int = 4) -> None:
        if n_workers < 1:
            raise OffloadError("device needs at least one worker")
        self.config = config
        self.memory = memory
        self.workers = [_WorkerState() for _ in range(n_workers)]

    def _worker(self, worker_id: int) -> _WorkerState:
        if not 0 <= worker_id < len(self.workers):
            raise OffloadError(
                f"worker {worker_id} out of range "
                f"(device has {len(self.workers)})"
            )
        return self.workers[worker_id]

    def write_register(self, worker_id: int, name: str, value: int) -> None:
        worker = self._worker(worker_id)
        if name not in worker.registers:
            raise OffloadError(f"unknown worker register {name!r}")
        if worker.status == WorkerStatus.RUNNING:
            raise OffloadError(
                f"worker {worker_id} is busy; registers are locked"
            )
        worker.registers[name] = int(value)

    def read_register(self, worker_id: int, name: str) -> int:
        worker = self._worker(worker_id)
        if name not in worker.registers:
            raise OffloadError(f"unknown worker register {name!r}")
        return worker.registers[name]

    def start(self, worker_id: int) -> None:
        """Kick one DP-block computation (completes before poll here;
        the cycle-level model supplies the latency)."""
        worker = self._worker(worker_id)
        regs = worker.registers
        n = regs["query_len"]
        m = regs["ref_len"]
        if n <= 0 or m <= 0:
            worker.status = WorkerStatus.ERROR
            raise OffloadError(f"bad block shape {n}x{m}")
        worker.status = WorkerStatus.RUNNING
        ew = self.config.ew
        q_codes = self.memory.load_packed(regs["query_addr"], n, ew)
        r_codes = self.memory.load_packed(regs["ref_addr"], m, ew)
        dvp_in = self.memory.load_packed(regs["dvp_in_addr"], n, ew) \
            .astype(np.int64)
        dhp_in = self.memory.load_packed(regs["dhp_in_addr"], m, ew) \
            .astype(np.int64)
        dvp_out, dhp_out = block_border_deltas(
            q_codes, r_codes, self.config.model, dvp_in=dvp_in,
            dhp_in=dhp_in)
        self.memory.store_packed(regs["dvp_out_addr"],
                                 dvp_out.astype(np.uint8), ew)
        self.memory.store_packed(regs["dhp_out_addr"],
                                 dhp_out.astype(np.uint8), ew)
        worker.status = WorkerStatus.DONE

    def poll(self, worker_id: int) -> WorkerStatus:
        return self._worker(worker_id).status

    def clear(self, worker_id: int) -> None:
        """Acknowledge completion, returning the worker to IDLE."""
        worker = self._worker(worker_id)
        if worker.status == WorkerStatus.RUNNING:  # pragma: no cover
            raise OffloadError("cannot clear a running worker")
        worker.status = WorkerStatus.IDLE


def offload_score(config: AlignmentConfig, q_codes: np.ndarray,
                  r_codes: np.ndarray, worker_id: int = 0) -> int:
    """End-to-end Sec. 6 score flow through the register interface.

    Packs the operands into shared memory, programs a worker, waits for
    DONE, reads the right-border words back and reconstructs the score
    with the redsum identity -- the complete software path a driver
    implements.
    """
    from repro.encoding.differential import score_from_shifted_borders

    memory = Memory()
    device = Smx2DDevice(config, memory)
    n, m = len(q_codes), len(r_codes)
    layout = {
        "query_addr": 0x0000, "ref_addr": 0x4000,
        "dvp_in_addr": 0x8000, "dhp_in_addr": 0xC000,
        "dvp_out_addr": 0x10000, "dhp_out_addr": 0x14000,
    }
    memory.store_packed(layout["query_addr"], q_codes, config.ew)
    memory.store_packed(layout["ref_addr"], r_codes, config.ew)
    memory.store_packed(layout["dvp_in_addr"],
                        np.zeros(n, dtype=np.uint8), config.ew)
    memory.store_packed(layout["dhp_in_addr"],
                        np.zeros(m, dtype=np.uint8), config.ew)
    for name, value in layout.items():
        device.write_register(worker_id, name, value)
    device.write_register(worker_id, "query_len", n)
    device.write_register(worker_id, "ref_len", m)
    device.write_register(worker_id, "mode", MODE_SCORE)
    device.start(worker_id)
    if device.poll(worker_id) != WorkerStatus.DONE:  # pragma: no cover
        raise OffloadError("worker did not complete")
    dvp_out = memory.load_packed(layout["dvp_out_addr"], n, config.ew)
    device.clear(worker_id)
    return score_from_shifted_borders(np.zeros(m, dtype=np.int64),
                                      dvp_out.astype(np.int64),
                                      config.shift)
