"""SMX-engine model: the pipelined 2D array of SMX-PEs (paper Sec. 5.2).

The engine contains one VL x VL PE array per element width (32x32,
16x16, 10x10, 8x8) and accepts one DP-tile per cycle. Antidiagonal
segmentation registers give a pipeline latency that grows with array
size; the paper's physical design (Sec. 7) reports 7/5/4/3 cycles for
EW = 2/4/6/8 at the 1 GHz target, which we adopt as defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.encoding.packing import ELEMENT_WIDTHS, lanes_for
from repro.errors import ConfigurationError

#: Post-PnR pipeline depth per element width (paper Sec. 7).
DEFAULT_PIPELINE_LATENCY = {2: 7, 4: 5, 6: 4, 8: 3}


@dataclass(frozen=True)
class EngineParams:
    """Static configuration of one SMX-engine."""

    pipeline_latency: dict[int, int] = field(
        default_factory=lambda: dict(DEFAULT_PIPELINE_LATENCY))
    frequency_ghz: float = 1.0

    def __post_init__(self) -> None:
        for ew in ELEMENT_WIDTHS:
            if ew not in self.pipeline_latency:
                raise ConfigurationError(f"missing pipeline latency for EW={ew}")
            if self.pipeline_latency[ew] < 1:
                raise ConfigurationError(
                    f"pipeline latency for EW={ew} must be >= 1"
                )

    def latency(self, ew: int) -> int:
        """Cycles from tile issue to border availability."""
        return self.pipeline_latency[ew]

    def tile_dim(self, ew: int) -> int:
        """Edge length of the PE array used at this element width."""
        return lanes_for(ew)

    def cells_per_tile(self, ew: int) -> int:
        return self.tile_dim(ew) ** 2

    def peak_cells_per_cycle(self, ew: int) -> int:
        """Peak throughput: one full tile per cycle (paper: 1024 for EW=2)."""
        return self.cells_per_tile(ew)

    def peak_gcups(self, ew: int) -> float:
        """Peak GCUPS at this EW (Table 3's SMX rows)."""
        return self.peak_cells_per_cycle(ew) * self.frequency_ghz
