"""SMX-2D coprocessor timing simulation (paper Sec. 5).

A discrete-event model at DP-tile granularity. The coprocessor owns:

- one **SMX-engine**: accepts one tile per cycle, returns borders after
  the EW-dependent pipeline latency;
- ``n_workers`` **SMX-workers**: each drives one DP-block at a time,
  decomposed into supertiles (load burst -> wavefront of tile issues ->
  store burst);
- one **memory controller**: a single L2 request port (one 64-byte line
  per cycle, fixed L2 latency), shared by all workers -- the paper's
  "single L2 request port with an arbiter".

Workers contend for the engine at tile granularity through a global
time-ordered event queue, so one worker's dependency bubbles and memory
waits are filled by other workers' ready tiles -- the effect behind
Fig. 10's utilization-vs-workers curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import EngineParams
from repro.core.worker import (
    BlockJob,
    SupertileTask,
    antidiagonal_order,
    supertiles_of,
)
from repro.errors import ConfigurationError
from repro.obs import CAT_ENGINE, CAT_JOB, CAT_MEMORY, Observability, \
    get_logger, get_obs
from repro.sim.clock import EventQueue, ResourceTimeline
from repro.sim.stats import CoprocReport

_LOG = get_logger("coprocessor")


@dataclass(frozen=True)
class CoprocParams:
    """Static configuration of one SMX-2D coprocessor."""

    n_workers: int = 4
    l2_latency: int = 20
    engine: EngineParams = field(default_factory=EngineParams)
    #: Issue the next supertile's loads while the current one computes.
    prefetch: bool = False

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigurationError("coprocessor needs at least 1 worker")
        if self.l2_latency < 1:
            raise ConfigurationError("l2_latency must be >= 1")


class _WorkerState:
    """Mutable per-worker bookkeeping during a simulation run."""

    __slots__ = ("worker_id", "job", "supertiles", "st_index", "order",
                 "order_index", "completion", "data_ready", "task",
                 "prefetched_ready", "job_start")

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.job: BlockJob | None = None
        self.supertiles: list[SupertileTask] = []
        self.st_index = 0
        self.task: SupertileTask | None = None
        self.order: list[tuple[int, int]] = []
        self.order_index = 0
        self.completion: dict[tuple[int, int], int] = {}
        self.data_ready = 0
        self.prefetched_ready: int | None = None
        self.job_start = 0


class CoprocessorSim:
    """Cycle-level simulation of one SMX-2D coprocessor.

    Usage::

        sim = CoprocessorSim(CoprocParams(n_workers=4))
        report = sim.run([BlockJob(n=10_000, m=10_000, ew=2)])
    """

    def __init__(self, params: CoprocParams | None = None,
                 obs: Observability | None = None) -> None:
        self.params = params or CoprocParams()
        self.obs = obs or get_obs()

    def run(self, jobs: list[BlockJob]) -> CoprocReport:
        """Simulate the coprocessor processing ``jobs`` to completion.

        Jobs are pulled from a shared FIFO by idle workers, matching the
        paper's usage where the core keeps every worker fed.
        """
        if not jobs:
            return CoprocReport()
        params = self.params
        queue = EventQueue()
        engine = ResourceTimeline("smx-engine", interval=1)
        port = ResourceTimeline("l2-port", interval=1)
        report = CoprocReport()
        job_fifo = list(jobs)
        job_done_time: dict[int, int] = {}
        last_activity = 0

        workers = [_WorkerState(i) for i in range(params.n_workers)]

        metrics = self.obs.metrics
        tracer = self.obs.tracer
        tracing = tracer.enabled
        tiles_ctr = metrics.counter("coproc.tiles_computed")
        loads_ctr = metrics.counter("coproc.lines_loaded")
        stores_ctr = metrics.counter("coproc.lines_stored")
        jobs_ctr = metrics.counter("coproc.jobs_completed")
        job_dist = metrics.distribution("coproc.job_cycles")
        worker_tracks = [tracer.track("smx-workers", f"worker {i}")
                         for i in range(params.n_workers)]
        engine_tracks = [tracer.track("smx-engine", f"worker {i}")
                         for i in range(params.n_workers)]
        _LOG.debug("coproc run: %d jobs on %d workers (prefetch=%s)",
                   len(jobs), params.n_workers, params.prefetch)

        def issue_memory(time: int, lines: int, is_load: bool) -> int:
            """Push ``lines`` requests through the shared L2 port.

            Returns the arrival time of the last response (loads) /
            write acknowledgement (stores).
            """
            nonlocal last_activity
            response = time
            for _ in range(lines):
                grant = port.acquire(time)
                response = max(response, grant + params.l2_latency)
            if is_load:
                report.lines_loaded += lines
                loads_ctr.inc(lines)
            else:
                report.lines_stored += lines
                stores_ctr.inc(lines)
            last_activity = max(last_activity, response)
            return response

        def start_job(worker: _WorkerState, time: int) -> None:
            if not job_fifo:
                return
            worker.job = job_fifo.pop(0)
            worker.supertiles = supertiles_of(worker.job)
            worker.st_index = 0
            worker.prefetched_ready = None
            worker.job_start = time
            start_supertile(worker, time)

        def start_supertile(worker: _WorkerState, time: int) -> None:
            task = worker.supertiles[worker.st_index]
            worker.task = task
            if worker.prefetched_ready is not None:
                data_ready = max(time, worker.prefetched_ready)
                worker.prefetched_ready = None
            else:
                data_ready = issue_memory(time, task.load_lines,
                                          is_load=True)
            if params.prefetch and worker.st_index + 1 < len(
                    worker.supertiles):
                nxt = worker.supertiles[worker.st_index + 1]
                worker.prefetched_ready = issue_memory(
                    data_ready, nxt.load_lines, is_load=True)
            if tracing and data_ready > time:
                tracer.complete("load", worker_tracks[worker.worker_id],
                                time, data_ready - time, cat=CAT_MEMORY,
                                lines=task.load_lines,
                                supertile=worker.st_index)
            worker.order = antidiagonal_order(task.st_rows, task.st_cols)
            worker.order_index = 0
            worker.completion = {}
            worker.data_ready = data_ready
            queue.push(data_ready, ("tile", worker.worker_id))

        def tile_ready(worker: _WorkerState, coords: tuple[int, int]) -> int:
            row, col = coords
            ready = worker.data_ready
            if row > 0:
                ready = max(ready, worker.completion[(row - 1, col)])
            if col > 0:
                ready = max(ready, worker.completion[(row, col - 1)])
            return ready

        def handle_tile(worker: _WorkerState, time: int) -> None:
            nonlocal last_activity
            coords = worker.order[worker.order_index]
            grant = engine.acquire(time)
            done = grant + params.engine.latency(worker.task.ew)
            worker.completion[coords] = done
            last_activity = max(last_activity, done)
            report.tiles_computed += 1
            tiles_ctr.inc()
            if tracing:
                # One span per engine issue slot: summing these per
                # worker reconstructs engine_busy_cycles exactly.
                tracer.complete("tile", engine_tracks[worker.worker_id],
                                grant, engine.interval, cat=CAT_ENGINE)
            worker.order_index += 1
            if worker.order_index < len(worker.order):
                nxt = worker.order[worker.order_index]
                queue.push(max(tile_ready(worker, nxt), grant + 1),
                           ("tile", worker.worker_id))
            else:
                compute_end = max(worker.completion.values())
                if tracing:
                    tracer.complete(
                        "compute", worker_tracks[worker.worker_id],
                        worker.data_ready,
                        compute_end - worker.data_ready,
                        tiles=len(worker.order),
                        supertile=worker.st_index)
                queue.push(compute_end, ("store", worker.worker_id))

        def handle_store(worker: _WorkerState, time: int) -> None:
            done = issue_memory(time, worker.task.store_lines, is_load=False)
            if tracing:
                tracer.complete("store", worker_tracks[worker.worker_id],
                                time, done - time, cat=CAT_MEMORY,
                                lines=worker.task.store_lines,
                                supertile=worker.st_index)
            worker.st_index += 1
            if worker.st_index < len(worker.supertiles):
                start_supertile(worker, done)
            else:
                job = worker.job
                job_done_time[job.job_id] = done
                report.jobs_completed += 1
                jobs_ctr.inc()
                job_dist.observe(done - worker.job_start)
                if tracing:
                    tracer.complete(
                        f"job {job.job_id}",
                        worker_tracks[worker.worker_id],
                        worker.job_start, done - worker.job_start,
                        cat=CAT_JOB, n=job.n, m=job.m, ew=job.ew)
                worker.job = None
                start_job(worker, done)

        for worker in workers:
            start_job(worker, 0)

        while queue:
            time, (kind, worker_id) = queue.pop()
            worker = workers[worker_id]
            if kind == "tile":
                handle_tile(worker, time)
            else:
                handle_store(worker, time)

        report.total_cycles = last_activity
        report.engine_busy_cycles = engine.busy_cycles
        report.engine_issues = engine.grants
        report.port_busy_cycles = port.busy_cycles
        report.job_completion_times = [job_done_time[j.job_id] for j in jobs
                                       if j.job_id in job_done_time]
        metrics.gauge("coproc.total_cycles").set(report.total_cycles)
        metrics.gauge("coproc.engine_busy_cycles").set(
            report.engine_busy_cycles)
        metrics.gauge("coproc.port_busy_cycles").set(
            report.port_busy_cycles)
        metrics.counter("coproc.runs").inc()
        profiler = self.obs.profiler
        if profiler.enabled:
            # Discrete-event phases interleave across workers, so the
            # simulator attributes by absolute path instead of a live
            # phase stack: compute cycles carry the jobs' DP cells,
            # memory-port cycles carry the modeled line traffic.
            from repro.sim.cache import LINE_BYTES
            profiler.add(("sim.coproc", "compute"), calls=1,
                         cycles=report.engine_busy_cycles,
                         cells=sum(job.cells for job in jobs))
            profiler.add(("sim.coproc", "memory"), calls=1,
                         cycles=report.port_busy_cycles,
                         bytes_moved=LINE_BYTES * (report.lines_loaded
                                                   + report.lines_stored))
        _LOG.debug("coproc done: %d cycles, %d tiles, engine %.1f%%",
                   report.total_cycles, report.tiles_computed,
                   100 * report.engine_utilization)
        return report

    def peak_cells_per_cycle(self, ew: int) -> int:
        return self.params.engine.peak_cells_per_cycle(ew)
