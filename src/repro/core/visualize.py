"""Text rendering of the SMX dataflow (paper Fig. 8a, in ASCII).

Draws a DP-block as its tile grid and marks which DP-elements the
heterogeneous execution touches: stored tile *borders* (the only data
SMX-2D writes back), the alignment *path*, and the tiles the core
*recomputes* during traceback. Used by examples and documentation; the
renderer is pure and deterministic, so it is also unit-testable.
"""

from __future__ import annotations

import numpy as np

from repro.config import AlignmentConfig
from repro.core.traceback import compute_tile_borders, traceback_with_recompute
from repro.errors import ConfigurationError

#: Glyphs: border cell, recomputed interior, path cell, untouched.
GLYPH_BORDER = "o"
GLYPH_RECOMPUTE = "+"
GLYPH_PATH = "@"
GLYPH_IDLE = "."


def render_block_dataflow(config: AlignmentConfig, q_codes: np.ndarray,
                          r_codes: np.ndarray,
                          max_cells: int = 10_000) -> str:
    """Fig. 8a as text: run the real dataflow and mark every cell.

    Cells on the traceback path render ``@``, recomputed tile interiors
    ``+``, stored borders ``o``, untouched cells ``.``. One character
    per DP-element, so keep inputs small (the default cap is 100x100).
    """
    n, m = len(q_codes), len(r_codes)
    if n * m > max_cells:
        raise ConfigurationError(
            f"visualization of {n * m} cells exceeds max_cells="
            f"{max_cells}; this renderer is one char per DP-element"
        )
    vl = config.vl
    store = compute_tile_borders(q_codes, r_codes, config.model, vl)
    alignment, _ = traceback_with_recompute(store, q_codes, r_codes,
                                            config.model)

    grid = np.full((n, m), GLYPH_IDLE, dtype="<U1")
    # Stored borders: the left column of every tile and the top row of
    # every strip.
    for strip in range(store.strips):
        top = strip * vl
        grid[top, :] = GLYPH_BORDER
        for tile_col in range(store.tile_cols):
            left = tile_col * vl
            height = min(vl, n - top)
            grid[top:top + height, left] = GLYPH_BORDER

    # Recomputed tiles: those crossed by the path.
    path_cells = []
    i, j = 0, 0
    path_cells.append((0, 0))
    for count, op in alignment.cigar:
        for _ in range(count):
            if op in ("=", "X"):
                i += 1
                j += 1
            elif op == "I":
                i += 1
            else:
                j += 1
            path_cells.append((i, j))
    crossed = {((ci - 1) // vl, (cj - 1) // vl)
               for ci, cj in path_cells if ci > 0 and cj > 0}
    for strip, tile_col in crossed:
        top, left = strip * vl, tile_col * vl
        patch = grid[top:min(top + vl, n), left:min(left + vl, m)]
        patch[patch == GLYPH_IDLE] = GLYPH_RECOMPUTE
    for ci, cj in path_cells:
        if 0 < ci <= n and 0 < cj <= m:
            grid[ci - 1, cj - 1] = GLYPH_PATH

    header = (f"{n}x{m} block, {vl}x{vl} tiles | "
              f"{GLYPH_PATH} path  {GLYPH_RECOMPUTE} recomputed  "
              f"{GLYPH_BORDER} stored border  {GLYPH_IDLE} untouched | "
              f"score {alignment.score}")
    lines = [header, ""]
    lines.extend("".join(row) for row in grid)
    return "\n".join(lines)


def dataflow_stats(rendered: str) -> dict[str, int]:
    """Glyph counts of a rendered block (for tests and summaries)."""
    body = "".join(rendered.splitlines()[2:])
    return {
        "path": body.count(GLYPH_PATH),
        "recomputed": body.count(GLYPH_RECOMPUTE),
        "border": body.count(GLYPH_BORDER),
        "idle": body.count(GLYPH_IDLE),
    }
