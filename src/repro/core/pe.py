"""SMX Processing Element: the bit-accurate datapath of paper Fig. 5.

One SMX-PE computes a single DP-element in the shifted-delta domain
(Eq. 5-6) from its left neighbour's ``dv'``, its upper neighbour's
``dh'``, and the shifted substitution score ``S'``. The hardware uses
**four subtractors and two 3:1 multiplexers** instead of explicit max
trees: because one candidate of each max is the constant 0 and all
operands are non-negative EW-bit values, the borrow (sign) bits of the
subtractions directly drive the mux selects:

====================  =============================================
subtraction           role
====================  =============================================
``a = S'  - dh'_in``  diagonal candidate for ``dv'_out``
``b = dv' - dh'_in``  left/gap candidate for ``dv'_out``
``c = S'  - dv'_in``  diagonal candidate for ``dh'_out``
``d = dh' - dv'_in``  up/gap candidate for ``dh'_out``
====================  =============================================

``a - b = c`` and ``c - d = a``, so the comparator needed to pick
between the two non-zero candidates of one output is *the sign of a
subtraction already computed for the other* -- the control-logic reuse
the paper highlights ("if the first term is selected in one equation,
it is also selected in the other").

This module provides the exact borrow-bit model (scalar and vectorized)
plus the plain max-form reference; their equivalence for all in-range
inputs is property-tested.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.packing import element_mask, lanes_for
from repro.errors import RangeError


def pe_reference(dv_in: int, dh_in: int, s_in: int) -> tuple[int, int]:
    """Max-form reference semantics of one SMX-PE (Eq. 5-6)."""
    dv_out = max(s_in - dh_in, dv_in - dh_in, 0)
    dh_out = max(s_in - dv_in, dh_in - dv_in, 0)
    return dv_out, dh_out


def pe_datapath(dv_in: int, dh_in: int, s_in: int, ew: int) -> tuple[int, int]:
    """Borrow-bit/mux model of one SMX-PE at element width ``ew``.

    Inputs must be valid EW-bit values. Each subtraction is performed in
    (EW+1)-bit two's complement; bit EW is the borrow-out ``O`` used as a
    mux select, exactly as in Fig. 5.
    """
    mask = element_mask(ew)
    if not (0 <= dv_in <= mask and 0 <= dh_in <= mask and 0 <= s_in <= mask):
        raise RangeError(
            f"PE inputs ({dv_in}, {dh_in}, {s_in}) exceed {ew}-bit range"
        )
    wide_mask = (1 << (ew + 1)) - 1
    sign_bit = 1 << ew

    a = (s_in - dh_in) & wide_mask
    b = (dv_in - dh_in) & wide_mask
    c = (s_in - dv_in) & wide_mask
    d = (dh_in - dv_in) & wide_mask
    o_a = bool(a & sign_bit)
    o_b = bool(b & sign_bit)
    o_c = bool(c & sign_bit)
    o_d = bool(d & sign_bit)

    # dv'_out mux: 0 if both candidates negative; else the larger of
    # (a, b), decided by sign(c) since a - b == c.
    if o_a and o_b:
        dv_out = 0
    elif o_c:
        dv_out = b & mask
    else:
        dv_out = a & mask
    # dh'_out mux: symmetric, decided by sign(a) since c - d == a.
    if o_c and o_d:
        dh_out = 0
    elif o_a:
        dh_out = d & mask
    else:
        dh_out = c & mask
    return dv_out, dh_out


def pe_datapath_vec(dv_in: np.ndarray, dh_in: np.ndarray, s_in: np.ndarray,
                    ew: int) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized borrow-bit model over independent lanes (one wavefront).

    Semantically identical to mapping :func:`pe_datapath` over the lanes;
    used by the tile engine's antidiagonal sweeps.
    """
    mask = np.int64(element_mask(ew))
    dv = np.asarray(dv_in, dtype=np.int64)
    dh = np.asarray(dh_in, dtype=np.int64)
    s = np.asarray(s_in, dtype=np.int64)
    if (dv < 0).any() or (dv > mask).any() or (dh < 0).any() \
            or (dh > mask).any() or (s < 0).any() or (s > mask).any():
        raise RangeError(f"vector PE inputs exceed {ew}-bit range")
    a = s - dh
    b = dv - dh
    c = s - dv
    d = dh - dv
    dv_out = np.where(c < 0, b, a)
    dv_out = np.where((a < 0) & (b < 0), 0, dv_out)
    dh_out = np.where(a < 0, d, c)
    dh_out = np.where((c < 0) & (d < 0), 0, dh_out)
    return dv_out, dh_out


def pe_column(dv_vector: list[int], dh_in: int, s_vector: list[int],
              ew: int) -> tuple[list[int], int]:
    """Chain VL PEs vertically: the combinational core of ``smx.v``/``smx.h``.

    PE ``k`` consumes lane ``k`` of the ``dv`` and ``S'`` vectors and the
    ``dh`` produced by PE ``k-1`` (PE 0 takes the scalar ``dh_in``), as in
    the left half of paper Fig. 6.

    Returns:
        ``(dv_out_vector, dh_out)``: the output column vector (what
        ``smx.v`` writes) and the final horizontal delta (what ``smx.h``
        writes).
    """
    vl = lanes_for(ew)
    if len(dv_vector) != len(s_vector) or len(dv_vector) > vl:
        raise RangeError(
            f"column of {len(dv_vector)} lanes invalid for VL={vl}"
        )
    dh = dh_in
    dv_out = []
    for dv, s in zip(dv_vector, s_vector):
        dv_new, dh = pe_datapath(dv, dh, s, ew)
        dv_out.append(dv_new)
    return dv_out, dh
