"""Crash-safe filesystem primitives: write-then-rename, spool moves.

Every durable artifact in the tree -- run reports, traces, profiles,
benchmark history, job spool files, and checkpoint/outcome documents --
is written with the same discipline: serialize into a temporary file in
the *destination directory* (same filesystem, so the final rename is
atomic), flush, then ``os.replace`` over the target. A reader therefore
never observes a half-written file: it sees either the previous
complete version or the new complete version, even if the writer is
SIGKILL'd mid-write. This module is dependency-light (stdlib only) so
any layer can import it without cycles.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from typing import Any


def atomic_write_text(path: str, text: str) -> str:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    Creates the destination directory if needed. Returns ``path``.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    return path


def atomic_write_json(path: str, document: Any, *, indent: int | None = 2,
                      default=str, sort_keys: bool = False) -> str:
    """Atomically serialize ``document`` as JSON to ``path``.

    The serialization happens before the temp file is renamed into
    place, so a crash mid-``dump`` leaves the previous file intact.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(document, handle, indent=indent, default=default,
                      sort_keys=sort_keys)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    return path


def atomic_move(src: str, dst: str) -> str:
    """Atomically move ``src`` over ``dst`` (``os.replace``).

    Both paths must live on the same filesystem -- the invariant a job
    spool maintains by keeping all of its state directories under one
    root. Creates the destination directory if needed; returns ``dst``.
    """
    os.makedirs(os.path.dirname(os.path.abspath(dst)), exist_ok=True)
    os.replace(src, dst)
    return dst
