"""DP-tile computation: the functional core of the SMX-engine.

The SMX-engine computes one VL x VL tile per cycle from the tile's
input borders (left dv' column, top dh' row) and the corresponding
query/reference sub-strings, producing the output borders (right dv'
column, bottom dh' row). Only borders cross tile boundaries -- inner
elements are discarded and recomputed on demand during traceback
(paper Sec. 5).

Two implementations are provided:

- :func:`compute_tile_bit` -- chains the exact borrow-bit SMX-PE
  datapath over the 2D grid (slow; used to validate bit-accuracy);
- :func:`compute_tile` -- the fast numpy path via the delta-domain
  block kernel (provably equivalent; used by the system model and the
  traceback recompute).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pe import pe_datapath
from repro.dp.delta import BlockDeltas, block_deltas
from repro.encoding.packing import element_mask, lanes_for
from repro.errors import RangeError
from repro.scoring.model import ScoringModel


@dataclass
class TileResult:
    """Borders (and optionally the full delta fields) of one DP-tile."""

    dvp_right: np.ndarray
    dhp_bottom: np.ndarray
    block: BlockDeltas | None = None

    @property
    def n(self) -> int:
        return len(self.dvp_right)

    @property
    def m(self) -> int:
        return len(self.dhp_bottom)


def compute_tile(q_codes: np.ndarray, r_codes: np.ndarray,
                 model: ScoringModel, dvp_in: np.ndarray,
                 dhp_in: np.ndarray, keep_block: bool = False) -> TileResult:
    """Fast functional tile computation (numpy delta kernel)."""
    block = block_deltas(q_codes, r_codes, model, dvp_in=dvp_in,
                         dhp_in=dhp_in, check_range=False)
    return TileResult(dvp_right=block.dvp_right.copy(),
                      dhp_bottom=block.dhp_bottom.copy(),
                      block=block if keep_block else None)


def compute_tile_bit(q_codes: np.ndarray, r_codes: np.ndarray,
                     sp_table: np.ndarray, ew: int, dvp_in: np.ndarray,
                     dhp_in: np.ndarray) -> TileResult:
    """Bit-accurate tile computation through the SMX-PE grid.

    PE (i, j) receives dv' from PE (i, j-1) (or lane i of the input
    column), dh' from PE (i-1, j) (or lane j of the input row), and the
    shifted score of ``(q[i], r[j])``, exactly as in the right half of
    paper Fig. 6.

    Args:
        sp_table: Dense shifted-substitution table ``S'[q, r]``.
        ew: Element width; all values are checked against it.
    """
    n, m = len(q_codes), len(r_codes)
    vl = lanes_for(ew)
    if n > vl or m > vl:
        raise RangeError(f"tile {n}x{m} exceeds VL={vl} at EW={ew}")
    mask = element_mask(ew)
    if (np.asarray(dvp_in) > mask).any() or (np.asarray(dhp_in) > mask).any():
        raise RangeError("tile border values exceed element width")
    dv = [int(v) for v in dvp_in]       # dv'[i] entering column j
    dh_row = [int(h) for h in dhp_in]   # dh' flowing down each column
    for i in range(n):
        dv_cur = dv[i]
        q_code = int(q_codes[i])
        for j in range(m):
            dv_cur, dh_row[j] = pe_datapath(
                dv_cur, dh_row[j], int(sp_table[q_code, int(r_codes[j])]),
                ew)
        dv[i] = dv_cur
    return TileResult(dvp_right=np.asarray(dv, dtype=np.int64),
                      dhp_bottom=np.asarray(dh_row, dtype=np.int64))
