"""Heterogeneous traceback: tile-border storage + on-demand recompute.

The SMX-2D coprocessor stores only the *borders* of every DP-tile
(paper Fig. 8a, blue cells). The core then walks the alignment path,
recomputing the inside of just the tiles the path crosses with SMX-1D
instructions (green cells) -- O((n + m) / VL) tiles instead of all
(n * m) / VL^2 of them.

:class:`TileBorderStore` is the functional model of that border memory:
it is produced by a strip sweep (one pass over the matrix, exactly the
data SMX-2D writes back in full-alignment mode), and consumed by
:func:`traceback_with_recompute`, which yields a CIGAR bit-identical to
the gold dense traceback.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dp.alignment import Alignment
from repro.dp.delta import block_deltas, traceback_deltas
from repro.dp.traceback import merge_cigars
from repro.errors import AlignmentError
from repro.scoring.model import ScoringModel


@dataclass
class TileBorderStore:
    """Border deltas of every tile of one DP-block.

    Attributes:
        vl: Tile edge length (the configuration's VL).
        dhp_rows: ``dhp_rows[s]`` is the shifted horizontal-delta row at
            the *top* of strip ``s`` (length m); strip ``s`` covers
            global rows ``s*vl + 1 .. min((s+1)*vl, n)``.
        dvp_cols: ``dvp_cols[s][t]`` is the shifted vertical-delta column
            at the *left* edge of tile ``(s, t)`` (length = strip height).
    """

    n: int
    m: int
    vl: int
    dhp_rows: list[np.ndarray] = field(default_factory=list)
    dvp_cols: list[list[np.ndarray]] = field(default_factory=list)
    dvp_final: np.ndarray | None = None

    @property
    def strips(self) -> int:
        return (self.n + self.vl - 1) // self.vl

    @property
    def tile_cols(self) -> int:
        return (self.m + self.vl - 1) // self.vl

    @property
    def stored_elements(self) -> int:
        """DP-elements resident in the border store (Fig. 8a blue)."""
        rows = sum(len(row) for row in self.dhp_rows)
        cols = sum(len(col) for tiles in self.dvp_cols for col in tiles)
        return rows + cols


def compute_tile_borders(q_codes: np.ndarray, r_codes: np.ndarray,
                         model: ScoringModel,
                         vl: int) -> TileBorderStore:
    """One full sweep producing every tile's input borders.

    This is the functional equivalent of the SMX-2D full-alignment
    offload: strip ``s`` is computed from the strip above it; within the
    strip, the left border of each tile is recorded. Work is one pass
    over the matrix (the same n*m cells the coprocessor computes).
    """
    n, m = len(q_codes), len(r_codes)
    store = TileBorderStore(n=n, m=m, vl=vl)
    dhp_row = np.zeros(m, dtype=np.int64)
    for start in range(0, n, vl):
        height = min(vl, n - start)
        strip_q = q_codes[start:start + height]
        store.dhp_rows.append(dhp_row.copy())
        block = block_deltas(strip_q, r_codes, model,
                             dvp_in=np.zeros(height, dtype=np.int64),
                             dhp_in=dhp_row, check_range=False)
        tile_lefts = [block.dvp[:, col].copy()
                      for col in range(0, m, vl)]
        store.dvp_cols.append(tile_lefts)
        dhp_row = block.dhp_bottom.copy()
    store.dhp_rows.append(dhp_row.copy())
    store.dvp_final = (store.dvp_cols[-1][-1]
                       if store.dvp_cols else None)
    # Fault-injection hook: flips one stored border bit when a chaos
    # plan poisons this pair (models silent SRAM corruption in the
    # accelerator's border store); a no-op otherwise.
    from repro.resilience import chaos
    chaos.corrupt_tile_borders(store, q_codes, r_codes)
    return store


def traceback_with_recompute(store: TileBorderStore, q_codes: np.ndarray,
                             r_codes: np.ndarray, model: ScoringModel,
                             ) -> tuple[Alignment, int]:
    """Walk the optimal path, recomputing only the tiles it crosses.

    Returns:
        ``(alignment, cells_recomputed)`` -- the latter counts the green
        cells of Fig. 8a and drives the traceback timing model.
    """
    n, m = store.n, store.m
    vl = store.vl
    parts: list[list[tuple[int, str]]] = []
    cells_recomputed = 0
    i, j = n, m
    guard = 0
    while i > 0 and j > 0:
        guard += 1
        if guard > store.strips + store.tile_cols + (n + m):
            raise AlignmentError("traceback did not converge")
        strip = (i - 1) // vl
        tile_col = (j - 1) // vl
        i0 = strip * vl
        j0 = tile_col * vl
        tile_q = q_codes[i0:min(i0 + vl, n)]
        tile_r = r_codes[j0:min(j0 + vl, m)]
        dvp_in = store.dvp_cols[strip][tile_col]
        dhp_in = store.dhp_rows[strip][j0:j0 + len(tile_r)]
        block = block_deltas(tile_q, tile_r, model, dvp_in=dvp_in,
                             dhp_in=dhp_in, check_range=False)
        cells_recomputed += len(tile_q) * len(tile_r)
        cigar, path = traceback_deltas(block, tile_q, tile_r, model,
                                       start=(i - i0, j - j0),
                                       until_edge=True)
        parts.append(cigar)
        local_i, local_j = path[0]
        i, j = i0 + local_i, j0 + local_j
    # Forced runs along the matrix edges.
    if i > 0:
        parts.append([(i, "I")])
    elif j > 0:
        parts.append([(j, "D")])
    parts.reverse()
    alignment = Alignment(score=0, cigar=merge_cigars(parts),
                          query_len=n, ref_len=m)
    alignment.score = alignment.rescore(q_codes, r_codes, model)
    return alignment, cells_recomputed
