"""Exception hierarchy for the SMX reproduction library.

All library-specific errors derive from :class:`SmxError` so callers can
catch a single base class. Subclasses mirror the major subsystems.
"""

from __future__ import annotations


class SmxError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(SmxError):
    """An alignment or hardware configuration is invalid or inconsistent.

    Examples: an element width that cannot represent the scoring model's
    theta bound, a scoring model whose mismatch penalty is below I + D,
    or a coprocessor configured with zero workers.
    """


class EncodingError(SmxError):
    """A sequence contains characters outside the configured alphabet,
    or packed data does not fit the configured element width."""


class RangeError(SmxError):
    """A differentially-encoded value left its proven [0, theta] range.

    This indicates either a mis-configured element width or a bug; the
    hardware guarantees this never happens when EW covers theta.
    """


class AlignmentError(SmxError):
    """An alignment algorithm failed to produce a usable result.

    Heuristic algorithms (window, X-drop) raise this when their search
    leaves the explored region; exact algorithms never raise it.
    """


class SimulationError(SmxError):
    """The timing simulator reached an inconsistent state (e.g. an event
    scheduled in the past, or a resource freed twice)."""


class OffloadError(SmxError):
    """The heterogeneous system could not offload a DP-block (bad shape,
    unsupported mode, or a worker-id out of range)."""
