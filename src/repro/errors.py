"""Exception hierarchy for the SMX reproduction library.

All library-specific errors derive from :class:`SmxError` so callers can
catch a single base class. Subclasses mirror the major subsystems.
"""

from __future__ import annotations


class SmxError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(SmxError):
    """An alignment or hardware configuration is invalid or inconsistent.

    Examples: an element width that cannot represent the scoring model's
    theta bound, a scoring model whose mismatch penalty is below I + D,
    or a coprocessor configured with zero workers.
    """


class EncodingError(SmxError):
    """A sequence contains characters outside the configured alphabet,
    or packed data does not fit the configured element width."""


class RangeError(SmxError):
    """A differentially-encoded value left its proven [0, theta] range.

    This indicates either a mis-configured element width or a bug; the
    hardware guarantees this never happens when EW covers theta.
    """


class AlignmentError(SmxError):
    """An alignment algorithm failed to produce a usable result.

    Heuristic algorithms (window, X-drop) raise this when their search
    leaves the explored region; exact algorithms never raise it.

    Attributes:
        pair_index: In batch mode, the position of the offending pair
            inside the submitted batch (``None`` for single-pair runs).
            The supervised execution layer uses this to quarantine the
            one poison pair instead of bisecting the whole shard.
    """

    pair_index: int | None = None


class SimulationError(SmxError):
    """The timing simulator reached an inconsistent state (e.g. an event
    scheduled in the past, or a resource freed twice)."""


class OffloadError(SmxError):
    """The heterogeneous system could not offload a DP-block (bad shape,
    unsupported mode, or a worker-id out of range)."""


class ResilienceError(SmxError):
    """Base class for the supervised execution layer's own failures.

    Raised only when a :class:`~repro.resilience.ResilienceConfig` asks
    for exceptions (``raise_on_failure=True``); the default contract is
    structured partial results, never a raise.
    """


class DeadlineExceeded(ResilienceError):
    """A per-call deadline/budget expired before the work completed.

    Carries no result payload: the supervised engine reports the pairs
    that were still pending as ``PairFailure`` records instead, unless
    the caller opted into exceptions.
    """


class PoisonPairError(ResilienceError):
    """One specific pair deterministically fails every recovery rung.

    After bounded retries, shard bisection, and the degradation ladder,
    the failure reproduced on an isolated single-pair run -- the pair is
    quarantined so the rest of the batch can still complete.

    Attributes:
        pair_index: Position of the poison pair in the submitted batch.
        fault: Classified fault kind (``"crash"``, ``"hang"``, ...).
    """

    def __init__(self, message: str, pair_index: int | None = None,
                 fault: str = "error") -> None:
        super().__init__(message)
        self.pair_index = pair_index
        self.fault = fault
