"""High-level convenience API: strings in, alignments out.

For users who want answers rather than architecture models::

    from repro.api import align, edit_distance, similarity

    align("GATTACA", "GATTTACA").cigar_string     # '4=1I3='
    edit_distance("kitten", "sitting")            # 3
    similarity("ACGT", "ACGA")                    # 0.75

Everything routes through the same SMX dataflow as the low-level API
(border computation + tile-recompute traceback), so results are
identical to the hardware model's.
"""

from __future__ import annotations

from repro.algorithms.full import FullAligner
from repro.algorithms.local import LocalAligner, SemiGlobalAligner
from repro.algorithms.wavefront import WavefrontAligner
from repro.config import (
    AlignmentConfig,
    ascii_config,
    dna_edit_config,
    dna_gap_config,
    protein_config,
)
from repro.core.system import SmxSystem
from repro.dp.alignment import Alignment
from repro.errors import ConfigurationError
from repro.exec.engine import BatchConfig, BatchEngine

#: Named presets accepted by every function's ``preset=`` argument.
PRESETS = {
    "dna": dna_edit_config,
    "dna-edit": dna_edit_config,
    "dna-gap": dna_gap_config,
    "protein": protein_config,
    "ascii": ascii_config,
    "text": ascii_config,
}

_MODES = ("global", "local", "semiglobal")
_METHODS = ("auto", "wavefront", "bitparallel")


def _check_method(method: str, mode: str) -> None:
    if method not in _METHODS:
        raise ConfigurationError(
            f"unknown method {method!r}; choose from {_METHODS}")
    if method in ("wavefront", "bitparallel") and mode != "global":
        raise ConfigurationError(
            f"method={method!r} supports only mode='global', got "
            f"{mode!r}")


def _resolve(preset: str | AlignmentConfig) -> AlignmentConfig:
    if isinstance(preset, AlignmentConfig):
        return preset
    try:
        return PRESETS[preset]()
    except KeyError:
        raise ConfigurationError(
            f"unknown preset {preset!r}; choose from {sorted(PRESETS)} "
            "or pass an AlignmentConfig"
        ) from None


def align(query: str, reference: str,
          preset: str | AlignmentConfig = "dna",
          mode: str = "global", method: str = "auto") -> Alignment:
    """Align two strings and return a validated :class:`Alignment`.

    Args:
        preset: Scoring/alphabet preset name (see :data:`PRESETS`) or a
            full :class:`AlignmentConfig`.
        mode: ``"global"`` (end-to-end, through the SMX system model),
            ``"local"`` (best substring pair), or ``"semiglobal"``
            (whole query, free reference overhangs).
        method: ``"auto"`` (the default dataflow for the mode) or
            ``"wavefront"`` (the O(n*s) wavefront aligner; global mode
            under the unit-cost edit model only -- anything else raises
            :class:`~repro.errors.ConfigurationError`).
            ``"bitparallel"`` is score-only and raises here; use
            :func:`score`.
    """
    config = _resolve(preset)
    _check_method(method, mode)
    if method == "bitparallel":
        raise ConfigurationError(
            "method 'bitparallel' is score-only (the bit vectors carry "
            "no path state); use score() / score_batch(), or "
            "method='wavefront' for an alignment")
    q_codes = config.encode(query)
    r_codes = config.encode(reference)
    if method == "wavefront":
        return WavefrontAligner().align(q_codes, r_codes,
                                        config.model).alignment
    if mode == "global":
        if len(q_codes) == 0 or len(r_codes) == 0:
            # The SMX offload model rejects empty sequences (there is
            # no tile to compute); answer the degenerate case in
            # software so the API stays total.
            alignment = FullAligner().align(q_codes, r_codes,
                                            config.model).alignment
        else:
            result = SmxSystem(config).align(q_codes, r_codes)
            alignment = result.alignment
    elif mode == "local":
        alignment = LocalAligner().align(q_codes, r_codes,
                                         config.model).alignment
    elif mode == "semiglobal":
        alignment = SemiGlobalAligner().align(q_codes, r_codes,
                                              config.model).alignment
    else:
        raise ConfigurationError(
            f"unknown mode {mode!r}; choose from {_MODES}"
        )
    return alignment


def score(query: str, reference: str,
          preset: str | AlignmentConfig = "dna",
          mode: str = "global", method: str = "auto") -> int:
    """Alignment score only (no traceback storage).

    Accepts the same ``method`` argument as :func:`align`, plus
    ``"bitparallel"`` -- the batched blocked-Myers kernel (global mode,
    unit-cost edit model only; anything else raises
    :class:`~repro.errors.ConfigurationError`).
    """
    config = _resolve(preset)
    _check_method(method, mode)
    q_codes = config.encode(query)
    r_codes = config.encode(reference)
    if method == "wavefront":
        return WavefrontAligner().compute_score(q_codes, r_codes,
                                                config.model).score
    if method == "bitparallel":
        engine = BatchEngine(config, BatchConfig(engine="bitparallel",
                                                 traceback=False))
        return engine.run([(q_codes, r_codes)])[0].score
    if mode == "global":
        if len(q_codes) == 0 or len(r_codes) == 0:
            return FullAligner().compute_score(q_codes, r_codes,
                                               config.model).score
        return SmxSystem(config).score(q_codes, r_codes).score
    if mode == "local":
        return LocalAligner().compute_score(q_codes, r_codes,
                                            config.model).score
    if mode == "semiglobal":
        return SemiGlobalAligner().compute_score(q_codes, r_codes,
                                                 config.model).score
    raise ConfigurationError(f"unknown mode {mode!r}; choose from {_MODES}")


def _batch_config(batch: BatchConfig | None, mode: str, engine: str,
                  workers: int, traceback: bool) -> BatchConfig:
    if batch is not None:
        return batch
    return BatchConfig(engine=engine, mode=mode, workers=workers,
                       traceback=traceback)


def _run_batch(config: AlignmentConfig, cfg: BatchConfig, encoded,
               resilience, deadline_s: float | None):
    """Dispatch a prepared batch to the plain or supervised engine.

    Returns ``(results, failure_by_index)``: with supervision, pairs
    that could not be completed map to
    :class:`~repro.resilience.failures.PairFailure` records; without
    it the failure map is empty (errors raise, as before).
    """
    if resilience is None and deadline_s is None:
        return BatchEngine(config, cfg).run(encoded), {}
    from repro.resilience import ResilienceConfig, SupervisedEngine
    if resilience is None:
        resilience = ResilienceConfig(deadline_s=deadline_s)
    elif deadline_s is not None and resilience.deadline_s is None:
        from dataclasses import replace
        resilience = replace(resilience, deadline_s=deadline_s)
    outcome = SupervisedEngine(config, cfg, resilience).run(encoded)
    return outcome.results, outcome.failure_index


def align_batch(pairs, preset: str | AlignmentConfig = "dna",
                mode: str = "global", engine: str = "vector",
                workers: int = 1,
                batch: BatchConfig | None = None,
                resilience=None,
                deadline_s: float | None = None) -> list:
    """Align many (query, reference) string pairs at once.

    The ``vector`` engine (default) buckets pairs by length and sweeps
    whole buckets per NumPy operation -- far faster than looping
    :func:`align`, with bit-identical results. ``engine="scalar"``
    loops the per-pair aligners (the reference path), and
    ``workers > 1`` shards the batch across processes. Pass a full
    :class:`~repro.exec.BatchConfig` as ``batch`` for banded / X-drop /
    affine batches; it overrides the convenience arguments.

    Returns one :class:`Alignment` per pair, in submission order. An
    empty ``pairs`` list returns an empty list; zero-length sequences
    produce well-formed all-gap alignments.

    Fault tolerance: pass ``deadline_s`` (a wall-clock budget) and/or
    ``resilience`` (a :class:`~repro.resilience.ResilienceConfig`) to
    run through the supervised engine. The call then *never raises for
    per-pair trouble*: positions that could not be completed hold a
    typed :class:`~repro.resilience.PairFailure` instead of an
    :class:`Alignment`, still in submission order.
    """
    config = _resolve(preset)
    cfg = _batch_config(batch, mode, engine, workers, traceback=True)
    encoded = [(config.encode(q), config.encode(r)) for q, r in pairs]
    results, failed = _run_batch(config, cfg, encoded, resilience,
                                 deadline_s)
    return [failed[i] if result is None and i in failed
            else result.alignment
            for i, result in enumerate(results)]


def score_batch(pairs, preset: str | AlignmentConfig = "dna",
                mode: str = "global", engine: str = "vector",
                workers: int = 1,
                batch: BatchConfig | None = None,
                resilience=None,
                deadline_s: float | None = None) -> list:
    """Scores only for many pairs (no traceback storage).

    Same engine selection (and ``resilience`` / ``deadline_s``
    behaviour) as :func:`align_batch`; heuristic batch configurations
    may yield ``None`` for pairs whose alignment was pruned, and
    supervised calls put :class:`~repro.resilience.PairFailure` records
    at positions that could not be completed.
    """
    config = _resolve(preset)
    cfg = _batch_config(batch, mode, engine, workers, traceback=False)
    encoded = [(config.encode(q), config.encode(r)) for q, r in pairs]
    results, failed = _run_batch(config, cfg, encoded, resilience,
                                 deadline_s)
    return [failed[i] if result is None and i in failed
            else result.score
            for i, result in enumerate(results)]


def edit_distance(a: str, b: str,
                  preset: str | AlignmentConfig = "text") -> int:
    """Levenshtein distance via the SMX edit-model dataflow."""
    config = _resolve(preset)
    if config.model.theta != 2 or config.model.smax != 0:
        raise ConfigurationError(
            f"preset {config.name!r} is not an edit-distance model"
        )
    return -score(a, b, preset=config)


def similarity(a: str, b: str,
               preset: str | AlignmentConfig = "text") -> float:
    """Normalized similarity in [0, 1]: 1 - distance / max_length."""
    if not a and not b:
        return 1.0
    distance = edit_distance(a, b, preset=preset)
    return 1.0 - distance / max(len(a), len(b))
