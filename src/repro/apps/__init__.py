"""End-to-end application pipelines built on the library (the use
cases the paper's introduction motivates)."""

from repro.apps.dbsearch import (
    ProteinSearch,
    SearchHit,
    SearchReport,
    build_database,
)
from repro.apps.readmapper import Mapping, MappingReport, ReadMapper

__all__ = [
    "Mapping",
    "MappingReport",
    "ProteinSearch",
    "ReadMapper",
    "SearchHit",
    "SearchReport",
    "build_database",
]
