"""A miniature seed-and-extend read mapper built on the library.

The paper motivates SMX with read-mapping pipelines (Minimap2, BWA):
*seed* exact k-mer matches into the reference, *chain* them by
diagonal, then *extend* the best candidate window with banded DP --
the extension step being the 70-76% of runtime SMX accelerates
(Sec. 9.3). This module implements that pipeline end to end on the
library's substrate so mapping accuracy and the SMX speedup can be
measured on ground-truthed synthetic read sets.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import AlignerResult
from repro.algorithms.local import SemiGlobalAligner
from repro.config import AlignmentConfig, dna_edit_config
from repro.core.system import SmxSystem
from repro.dp.alignment import Alignment
from repro.errors import ConfigurationError
from repro.exec.engine import BatchConfig, BatchEngine
from repro.obs import Observability, get_logger, get_obs
from repro.workloads.genome import ReadSet

_LOG = get_logger("readmapper")


@dataclass
class Mapping:
    """One read's mapping result."""

    read_id: int
    position: int
    score: int
    alignment: Alignment | None
    seed_votes: int
    mapped: bool
    meta: dict = field(default_factory=dict)


@dataclass
class MappingReport:
    """Dataset-level accuracy and work summary."""

    mappings: list[Mapping]
    tolerance: int

    @property
    def mapped_fraction(self) -> float:
        if not self.mappings:
            return 0.0
        return sum(m.mapped for m in self.mappings) / len(self.mappings)

    def accuracy(self, read_set: ReadSet) -> float:
        """Fraction of reads placed within ``tolerance`` of the truth."""
        if not self.mappings:
            return 0.0
        correct = 0
        truth = {read.read_id: read.true_position
                 for read in read_set.reads}
        for mapping in self.mappings:
            if mapping.mapped and abs(
                    mapping.position - truth[mapping.read_id]) \
                    <= self.tolerance:
                correct += 1
        return correct / len(self.mappings)


class ReadMapper:
    """Seed-chain-extend mapping against one reference.

    Args:
        config: Alignment configuration for the extension DP.
        k: Seed k-mer length.
        band_fraction: Extension band half-width as a fraction of the
            read length.
        min_votes: Minimum seed hits on the winning diagonal for a read
            to be considered mappable.
        engine: ``"vector"`` batches all candidate extensions through
            :class:`~repro.exec.BatchEngine` in :meth:`map_all`;
            ``"scalar"`` loops the per-read aligner. Results are
            bit-identical.
        workers: Process shards for the batched extension step.
        resilience: Optional
            :class:`~repro.resilience.ResilienceConfig`; when set (or
            when ``deadline_s`` is), :meth:`map_all` runs its extension
            batch through the supervised engine -- reads whose
            extension ultimately fails come back unmapped (with the
            fault recorded in ``meta``) instead of aborting the run.
        deadline_s: Wall-clock budget for the whole extension batch.
    """

    def __init__(self, reference: np.ndarray,
                 config: AlignmentConfig | None = None, k: int = 15,
                 band_fraction: float = 0.15, min_votes: int = 2,
                 engine: str = "vector", workers: int = 1,
                 resilience=None, deadline_s: float | None = None,
                 obs: Observability | None = None) -> None:
        if k < 4 or k > 31:
            raise ConfigurationError(f"seed length k={k} out of range")
        self.reference = np.asarray(reference, dtype=np.uint8)
        self.config = config or dna_edit_config()
        self.k = k
        self.band_fraction = band_fraction
        self.min_votes = min_votes
        self.batch = BatchConfig(engine=engine, mode="semiglobal",
                                 traceback=True, workers=workers)
        self.resilience = resilience
        self.deadline_s = deadline_s
        self.obs = obs or get_obs()
        with self.obs.tracer.host_span("readmapper.build_index",
                                       bases=len(self.reference)):
            self._index = self._build_index()

    # -- indexing -----------------------------------------------------------

    def _kmer_keys(self, codes: np.ndarray) -> np.ndarray:
        """Rolling 2-bit-packed k-mer keys of a code sequence."""
        if len(codes) < self.k:
            return np.empty(0, dtype=np.int64)
        bits = self.config.alphabet.bits
        weights = (1 << (bits * np.arange(self.k,
                                          dtype=np.int64)))[::-1]
        windows = np.lib.stride_tricks.sliding_window_view(
            codes.astype(np.int64), self.k)
        return windows @ weights

    def _build_index(self) -> dict[int, list[int]]:
        index: dict[int, list[int]] = defaultdict(list)
        for position, key in enumerate(self._kmer_keys(self.reference)):
            index[int(key)].append(position)
        return dict(index)

    # -- mapping ------------------------------------------------------------

    def _best_diagonal(self, read: np.ndarray) -> tuple[int, int]:
        """(diagonal offset, votes) of the strongest seed cluster.

        Seeds vote for diagonal ``ref_pos - read_pos``; nearby diagonals
        (within 5% of the read length) pool their votes so indels do not
        fragment the signal.
        """
        votes: dict[int, int] = defaultdict(int)
        for read_pos, key in enumerate(self._kmer_keys(read)):
            for ref_pos in self._index.get(int(key), ()):
                votes[ref_pos - read_pos] += 1
        if not votes:
            return 0, 0
        slack = max(2, len(read) // 20)
        diagonals = sorted(votes)
        best_diag, best_total = 0, 0
        start = 0
        for end, diag in enumerate(diagonals):
            while diagonals[start] < diag - slack:
                start += 1
            total = sum(votes[d] for d in diagonals[start:end + 1])
            if total > best_total:
                best_total = total
                best_diag = diag
        return best_diag, best_total

    def _candidate(self, read: np.ndarray, read_id: int,
                   ) -> tuple[Mapping | None, int, int, int]:
        """Seed-and-chain stage: either a final unmapped
        :class:`Mapping` or the candidate extension window
        ``(None, votes, window_start, window_end)``."""
        metrics = self.obs.metrics
        diagonal, votes = self._best_diagonal(read)
        metrics.distribution("readmapper.seed_votes").observe(votes)
        if votes < self.min_votes:
            metrics.counter("readmapper.reads_unmapped").inc()
            _LOG.debug("read %d unmapped: %d seed votes < %d",
                       read_id, votes, self.min_votes)
            unmapped = Mapping(read_id=read_id, position=-1, score=0,
                               alignment=None, seed_votes=votes,
                               mapped=False)
            return unmapped, votes, 0, 0
        margin = max(16, int(self.band_fraction * len(read)))
        window_start = max(0, diagonal - margin)
        window_end = min(len(self.reference),
                         diagonal + len(read) + margin)
        return None, votes, window_start, window_end

    def _finish(self, read_id: int, votes: int, window_start: int,
                window_end: int, result: AlignerResult) -> Mapping:
        """Turn one extension result into a :class:`Mapping`."""
        metrics = self.obs.metrics
        if result.failed:  # pragma: no cover - semiglobal cannot fail
            return Mapping(read_id=read_id, position=-1, score=0,
                           alignment=None, seed_votes=votes, mapped=False,
                           meta={"reason": result.failure_reason})
        position = window_start + result.alignment.meta["ref_start"]
        metrics.counter("readmapper.reads_mapped").inc()
        metrics.counter("readmapper.extension_cells").inc(
            result.stats.cells_computed)
        return Mapping(read_id=read_id, position=position,
                       score=result.score, alignment=result.alignment,
                       seed_votes=votes, mapped=True,
                       meta={"window": (window_start, window_end),
                             "cells": result.stats.cells_computed})

    def map_read(self, read: np.ndarray, read_id: int = 0) -> Mapping:
        """Map one read: seed votes -> candidate window -> semi-global
        extension DP (the whole read against the window with free
        reference overhangs, so the mapped position falls out of the
        alignment's ``ref_start``)."""
        mapping, votes, window_start, window_end = \
            self._candidate(read, read_id)
        if mapping is not None:
            return mapping
        window = self.reference[window_start:window_end]
        result = SemiGlobalAligner().align(read, window, self.config.model)
        return self._finish(read_id, votes, window_start, window_end,
                            result)

    def map_all(self, read_set: ReadSet,
                tolerance: int = 30) -> MappingReport:
        """Map every read, batching all candidate extensions through
        one :class:`~repro.exec.BatchEngine` run (the hot loop the
        paper's Sec. 9.3 attributes 70-76% of mapping time to)."""
        events = self.obs.events
        if events.enabled:
            events.emit("run_start", app="readmapper",
                        pairs=len(read_set.reads))
        with self.obs.tracer.host_span("readmapper.map_all",
                                       reads=len(read_set.reads)):
            mappings: list[Mapping | None] = []
            pending: list[tuple[int, int, int, int]] = []
            pairs: list[tuple[np.ndarray, np.ndarray]] = []
            with self.obs.profiler.phase("readmapper.seed"):
                for read in read_set.reads:
                    mapping, votes, window_start, window_end = \
                        self._candidate(read.codes, read.read_id)
                    mappings.append(mapping)
                    if mapping is None:
                        pending.append((len(mappings) - 1, votes,
                                        window_start, window_end))
                        pairs.append((
                            read.codes,
                            self.reference[window_start:window_end]))
            if events.enabled:
                events.emit("progress", app="readmapper", stage="seed",
                            done=len(read_set.reads),
                            total=len(read_set.reads),
                            extensions=len(pairs))
            if pairs:
                results = self._run_extensions(pairs)
                for (slot, votes, window_start, window_end), result in \
                        zip(pending, results):
                    read = read_set.reads[slot]
                    if result is None or not isinstance(
                            result, AlignerResult):
                        # Supervised run quarantined this extension: the
                        # read stays unmapped rather than sinking the
                        # whole batch.
                        failure = result
                        self.obs.metrics.counter(
                            "readmapper.reads_failed").inc()
                        mappings[slot] = Mapping(
                            read_id=read.read_id, position=-1, score=0,
                            alignment=None, seed_votes=votes,
                            mapped=False,
                            meta={"fault": getattr(failure, "fault",
                                                   "unknown")})
                        continue
                    mappings[slot] = self._finish(
                        read.read_id, votes, window_start, window_end,
                        result)
        report = MappingReport(mappings=mappings, tolerance=tolerance)
        if events.enabled:
            events.emit("run_end", app="readmapper",
                        pairs=len(read_set.reads),
                        mapped=sum(1 for m in mappings
                                   if m is not None and m.mapped))
        return report

    def _run_extensions(self, pairs) -> list:
        """The extension batch, plain or supervised."""
        if self.resilience is None and self.deadline_s is None:
            return BatchEngine(self.config, self.batch,
                               obs=self.obs).run(pairs)
        from dataclasses import replace

        from repro.resilience import ResilienceConfig, SupervisedEngine
        policy = self.resilience or ResilienceConfig()
        if self.deadline_s is not None and policy.deadline_s is None:
            policy = replace(policy, deadline_s=self.deadline_s)
        outcome = SupervisedEngine(self.config, self.batch, policy,
                                   obs=self.obs).run(pairs)
        return outcome.merged()

    # -- acceleration estimate ----------------------------------------------

    def smx_extension_speedup(self, read_set: ReadSet) -> float:
        """SMX-vs-SIMD speedup of this workload's extension phase.

        Each read's extension is one banded DP-block; the block stream
        is fed to the heterogeneous timing model exactly like the
        X-drop pipeline of Sec. 9.
        """
        from repro.baselines.ksw2 import ksw2_alignment_timing

        system = SmxSystem(self.config, max_sim_tiles=60_000)
        shapes = []
        baseline = 0.0
        for read in read_set.reads:
            band = max(2 * self.config.vl,
                       int(self.band_fraction * read.length))
            shapes.append((band, read.length))
            baseline += ksw2_alignment_timing(band, read.length,
                                              system.core).cycles
        timing = system.coproc_workload_timing(shapes, mode="align",
                                               impl="smx")
        return baseline / timing.total_cycles
