"""A miniature protein database search (the DIAMOND/BLAST use case).

Two stages, mirroring production search tools (paper Sec. 3, example
pipelines):

1. **pre-filter** -- a cheap diagonal-sampling score discards database
   entries with no promising ungapped signal (the role X-drop and
   seeding play in BLAST/DIAMOND);
2. **full alignment** -- survivors get an exact substitution-matrix DP
   (the 99%-of-runtime kernel SMX accelerates 744x in Sec. 9.3).

Ranking quality is measurable because workload generators plant true
homologs at known divergences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import AlignmentConfig, protein_config
from repro.core.system import SmxSystem
from repro.errors import ConfigurationError
from repro.exec.engine import BatchConfig, BatchEngine
from repro.obs import Observability, get_logger, get_obs

_LOG = get_logger("dbsearch")


@dataclass
class SearchHit:
    """One database match."""

    target_id: int
    score: int
    filter_score: int
    length: int


@dataclass
class SearchReport:
    """Ranked hits plus filter statistics."""

    hits: list[SearchHit]
    candidates: int
    database_size: int
    meta: dict = field(default_factory=dict)

    @property
    def filtered_fraction(self) -> float:
        """Fraction of the database the pre-filter discarded."""
        if not self.database_size:
            return 0.0
        return 1.0 - self.candidates / self.database_size

    def rank_of(self, target_id: int) -> int | None:
        for rank, hit in enumerate(self.hits, start=1):
            if hit.target_id == target_id:
                return rank
        return None


class ProteinSearch:
    """Query-vs-database protein search with an ungapped pre-filter.

    Args:
        database: List of protein code arrays.
        config: Protein alignment configuration (BLOSUM scoring).
        filter_threshold: Minimum ungapped diagonal score (in units of
            the scoring matrix) a target needs to reach stage 2.
        top_k: Number of ranked hits returned.
        engine: ``"vector"`` scores all filter survivors in one
            batched sweep; ``"scalar"`` loops per-target NW. The
            scores (and therefore the ranking) are bit-identical.
        workers: Process shards for the batched stage-2 scoring.
        resilience: Optional
            :class:`~repro.resilience.ResilienceConfig`; when set (or
            when ``deadline_s`` is), stage 2 runs supervised -- targets
            whose alignment ultimately fails are dropped from the
            ranking (counted in the report's ``meta``) instead of
            aborting the search.
        deadline_s: Wall-clock budget for the stage-2 batch.
    """

    def __init__(self, database: list[np.ndarray],
                 config: AlignmentConfig | None = None,
                 filter_threshold: int = 60, top_k: int = 10,
                 engine: str = "vector", workers: int = 1,
                 resilience=None, deadline_s: float | None = None,
                 obs: Observability | None = None) -> None:
        if not database:
            raise ConfigurationError("database must not be empty")
        self.database = [np.asarray(t, dtype=np.uint8) for t in database]
        self.config = config or protein_config()
        if not self.config.uses_submat:
            raise ConfigurationError(
                "protein search needs a substitution-matrix configuration"
            )
        self.filter_threshold = filter_threshold
        self.top_k = top_k
        self.batch = BatchConfig(engine=engine, mode="global",
                                 algorithm="full", traceback=False,
                                 workers=workers)
        self.resilience = resilience
        self.deadline_s = deadline_s
        self.obs = obs or get_obs()

    # -- stage 1: ungapped diagonal filter -----------------------------------

    def filter_score(self, query: np.ndarray, target: np.ndarray) -> int:
        """Best ungapped diagonal segment score (Smith-Waterman style
        max-suffix scan along each sampled diagonal)."""
        table = self.config.model.substitution_table()
        n, m = len(query), len(target)
        best = 0
        # Sample diagonals densely enough that a true homolog (small
        # net indel drift) cannot slip between them; anchor the grid at
        # diagonal 0 so self/near-self comparisons always hit it.
        step = max(1, min(n, m) // 64)
        diagonals = list(range(0, m, step)) \
            + list(range(-step, -(n - 1) - 1, -step))
        for diag in diagonals:
            q_start = max(0, -diag)
            t_start = max(0, diag)
            length = min(n - q_start, m - t_start)
            if length < 8:
                continue
            scores = table[query[q_start:q_start + length],
                           target[t_start:t_start + length]]
            running = 0
            for value in scores:
                running = max(0, running + int(value))
                if running > best:
                    best = running
        return best

    # -- stage 2: full alignment ---------------------------------------------

    def search(self, query: np.ndarray) -> SearchReport:
        query = np.asarray(query, dtype=np.uint8)
        metrics = self.obs.metrics
        survivors: list[tuple[int, int]] = []
        with self.obs.tracer.host_span("dbsearch.filter",
                                       targets=len(self.database)):
            for target_id, target in enumerate(self.database):
                fscore = self.filter_score(query, target)
                metrics.distribution(
                    "dbsearch.filter_score").observe(fscore)
                if fscore >= self.filter_threshold:
                    survivors.append((target_id, fscore))
        metrics.counter("dbsearch.targets_scanned").inc(len(self.database))
        metrics.counter("dbsearch.filter_survivors").inc(len(survivors))
        hits = []
        dropped: list[int] = []
        with self.obs.tracer.host_span("dbsearch.align",
                                       survivors=len(survivors)):
            # Stage 2 is a batch of independent global alignments --
            # exactly the shape the vector engine accelerates.
            pairs = [(query, self.database[target_id])
                     for target_id, _ in survivors]
            results = self._run_stage2(pairs)
            for (target_id, fscore), result in zip(survivors, results):
                if result is None or result.score is None:
                    # Supervised run quarantined this target: drop it
                    # from the ranking rather than abort the search.
                    dropped.append(target_id)
                    metrics.counter("dbsearch.targets_failed").inc()
                    continue
                hits.append(SearchHit(target_id=target_id,
                                      score=result.score,
                                      filter_score=fscore,
                                      length=len(self.database[target_id])))
        hits.sort(key=lambda hit: -hit.score)
        for hit in hits[:self.top_k]:
            metrics.distribution("dbsearch.hit_score").observe(hit.score)
        _LOG.debug("search: %d/%d targets passed the filter",
                   len(survivors), len(self.database))
        meta = {"dropped_targets": dropped} if dropped else {}
        return SearchReport(hits=hits[:self.top_k],
                            candidates=len(survivors),
                            database_size=len(self.database),
                            meta=meta)

    def _run_stage2(self, pairs) -> list:
        """Stage-2 scoring, plain or supervised (``None`` per failed
        pair in the latter case)."""
        if not pairs:
            return []
        if self.resilience is None and self.deadline_s is None:
            return BatchEngine(self.config, self.batch,
                               obs=self.obs).run(pairs)
        from dataclasses import replace

        from repro.resilience import ResilienceConfig, SupervisedEngine
        policy = self.resilience or ResilienceConfig()
        if self.deadline_s is not None and policy.deadline_s is None:
            policy = replace(policy, deadline_s=self.deadline_s)
        outcome = SupervisedEngine(self.config, self.batch, policy,
                                   obs=self.obs).run(pairs)
        return outcome.results

    # -- acceleration estimate ------------------------------------------------

    def smx_speedup(self, query: np.ndarray,
                    report: SearchReport) -> float:
        """SMX-vs-SIMD speedup of the stage-2 kernel for this search."""
        from repro.baselines.ksw2 import ksw2_score_timing

        system = SmxSystem(self.config, max_sim_tiles=60_000)
        shapes = [(len(query), hit.length) for hit in report.hits]
        if not shapes:
            return 1.0
        baseline = sum(ksw2_score_timing(n, m, system.core,
                                         uses_submat=True).cycles
                       for n, m in shapes)
        timing = system.coproc_workload_timing(shapes, mode="score",
                                               impl="smx")
        return baseline / timing.total_cycles


def build_database(n_targets: int, homolog_of: np.ndarray | None = None,
                   divergence: float = 0.25, seed: int = 77,
                   length_range: tuple[int, int] = (150, 600),
                   ) -> tuple[list[np.ndarray], int]:
    """Random protein database, optionally with one planted homolog.

    Returns ``(database, homolog_index)`` (index is -1 if none planted).
    """
    from repro.workloads.synthetic import random_protein_pair

    rng = np.random.default_rng(seed)
    database: list[np.ndarray] = []
    for _ in range(n_targets):
        length = int(rng.integers(*length_range))
        database.append(random_protein_pair(length, 0.0, rng).r_codes)
    homolog_index = -1
    if homolog_of is not None:
        from repro.encoding.alphabet import AMINO_ACIDS, PROTEIN
        from repro.workloads.synthetic import ErrorProfile

        # Derive a homolog by mutating the query within the amino set.
        letters = np.frombuffer(AMINO_ACIDS.encode(), np.uint8) - 65
        profile = ErrorProfile(substitution=0.7 * divergence,
                               insertion=0.15 * divergence,
                               deletion=0.15 * divergence)
        out = []
        for code in homolog_of:
            roll = rng.random()
            if roll < profile.deletion:
                continue
            if roll < profile.deletion + profile.insertion:
                out.append(int(letters[rng.integers(0, len(letters))]))
            if roll < profile.total:
                out.append(int(letters[rng.integers(0, len(letters))]))
            else:
                out.append(int(code))
        homolog_index = int(rng.integers(0, len(database) + 1))
        database.insert(homolog_index,
                        np.asarray(out, dtype=np.uint8))
    return database, homolog_index
