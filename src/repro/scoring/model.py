"""Scoring models for DP-based sequence alignment.

The library maximizes alignment *score*; all penalties are therefore
non-positive integers. The paper's Eq. 1-2 conventions are used:

- ``gap_i`` (``I``): penalty of a vertical move, i.e. consuming one query
  character (an insertion w.r.t. the reference). ``M[i][0] = i * gap_i``.
- ``gap_d`` (``D``): penalty of a horizontal move, i.e. consuming one
  reference character (a deletion). ``M[0][j] = j * gap_d``.
- ``S(q, r)``: substitution score, with ``smax = max S``.

Two invariants make the SMX narrow-width hardware encoding possible
(paper Sec. 4.1), and are enforced at construction time:

1. ``gap_i <= 0`` and ``gap_d <= 0``;
2. ``S(a, b) >= gap_i + gap_d`` for every pair, so the shifted substitution
   score ``S' = S - gap_i - gap_d`` is non-negative and the shifted deltas
   stay within ``[0, theta]`` with ``theta = smax - gap_i - gap_d``.

Edit distance is expressed as the negated score of the (0, -1, -1, -1)
model: ``edit_distance = -score``.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.scoring.submat import SubstitutionMatrix


def _as_code_array(codes) -> np.ndarray:
    """Coerce a code sequence into a small unsigned numpy array."""
    arr = np.asarray(codes)
    if arr.dtype.kind not in "ui":
        raise TypeError(f"character codes must be integers, got {arr.dtype}")
    return arr


class ScoringModel(abc.ABC):
    """Base class for all alignment scoring models.

    Concrete models provide the substitution score; gap penalties are
    common state. Scores are plain Python ints; vectorized access returns
    ``int32`` numpy arrays.
    """

    def __init__(self, gap_i: int, gap_d: int) -> None:
        if gap_i > 0 or gap_d > 0:
            raise ConfigurationError(
                f"gap penalties must be non-positive, got I={gap_i}, D={gap_d}"
            )
        self.gap_i = int(gap_i)
        self.gap_d = int(gap_d)

    # -- substitution scores -------------------------------------------------

    @abc.abstractmethod
    def substitution(self, a: int, b: int) -> int:
        """Substitution score ``S(a, b)`` for two character codes."""

    @abc.abstractmethod
    def substitution_row(self, a: int, b_codes: np.ndarray) -> np.ndarray:
        """Vector of ``S(a, b)`` for one code ``a`` against many codes."""

    @abc.abstractmethod
    def substitution_table(self) -> np.ndarray:
        """Dense ``(n_codes, n_codes)`` int32 table of substitution scores."""

    @property
    @abc.abstractmethod
    def smax(self) -> int:
        """Maximum substitution score over all pairs."""

    @property
    @abc.abstractmethod
    def smin(self) -> int:
        """Minimum substitution score over all pairs."""

    # -- derived narrow-width quantities -------------------------------------

    @property
    def theta(self) -> int:
        """Upper bound of shifted deltas: ``smax - gap_i - gap_d``."""
        return self.smax - self.gap_i - self.gap_d

    @property
    def min_element_width(self) -> int:
        """Smallest EW (bits) that can represent every shifted value."""
        return max(1, int(self.theta).bit_length())

    def shifted_substitution(self, a: int, b: int) -> int:
        """``S'(a, b) = S(a, b) - gap_i - gap_d`` (always in ``[0, theta]``)."""
        return self.substitution(a, b) - self.gap_i - self.gap_d

    def shifted_table(self) -> np.ndarray:
        """Dense table of shifted substitution scores ``S'``."""
        return self.substitution_table() - np.int32(self.gap_i + self.gap_d)

    def validate_shiftable(self) -> None:
        """Raise unless the shifted encoding is representable.

        The SMX encoding requires ``S(a, b) >= gap_i + gap_d`` so that
        ``S'`` is non-negative (paper Sec. 4.1); a model that violates it
        would never prefer that substitution over an indel pair anyway.
        """
        if self.smin < self.gap_i + self.gap_d:
            raise ConfigurationError(
                f"substitution score {self.smin} below gap_i+gap_d="
                f"{self.gap_i + self.gap_d}; shifted encoding impossible"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(gap_i={self.gap_i}, gap_d={self.gap_d}, "
            f"smax={self.smax}, theta={self.theta})"
        )


class MatchMismatchModel(ScoringModel):
    """Gap model with a fixed match reward and mismatch penalty.

    Covers the paper's *edit model* (``match=0, mismatch=-1, I=D=-1``) and
    *gap models* with arbitrary (non-positive-penalty) weights. Used for
    DNA, RNA, and ASCII alignment.
    """

    def __init__(self, match: int, mismatch: int, gap_i: int, gap_d: int,
                 n_codes: int = 256) -> None:
        super().__init__(gap_i, gap_d)
        if mismatch > match:
            raise ConfigurationError(
                f"mismatch score {mismatch} exceeds match score {match}"
            )
        self.match = int(match)
        self.mismatch = int(mismatch)
        self.n_codes = int(n_codes)
        self.validate_shiftable()

    def substitution(self, a: int, b: int) -> int:
        return self.match if a == b else self.mismatch

    def substitution_row(self, a: int, b_codes: np.ndarray) -> np.ndarray:
        b_codes = _as_code_array(b_codes)
        return np.where(b_codes == a, np.int32(self.match),
                        np.int32(self.mismatch))

    def substitution_table(self) -> np.ndarray:
        table = np.full((self.n_codes, self.n_codes), self.mismatch,
                        dtype=np.int32)
        np.fill_diagonal(table, self.match)
        return table

    @property
    def smax(self) -> int:
        return self.match

    @property
    def smin(self) -> int:
        return self.mismatch


class SubstitutionMatrixModel(ScoringModel):
    """Protein-style model driven by a substitution matrix (BLOSUM/PAM).

    The matrix is defined over the 26-letter A-Z alphabet (6-bit codes),
    exactly like the hardware ``smx_submat`` memory (paper Sec. 4.2).
    """

    def __init__(self, matrix: "SubstitutionMatrix", gap_i: int,
                 gap_d: int) -> None:
        super().__init__(gap_i, gap_d)
        self.matrix = matrix
        self._table = matrix.table  # (26, 26) int32
        self.n_codes = self._table.shape[0]
        self.validate_shiftable()

    def substitution(self, a: int, b: int) -> int:
        return int(self._table[a, b])

    def substitution_row(self, a: int, b_codes: np.ndarray) -> np.ndarray:
        return self._table[a, _as_code_array(b_codes)]

    def substitution_table(self) -> np.ndarray:
        return self._table

    @property
    def smax(self) -> int:
        return int(self._table.max())

    @property
    def smin(self) -> int:
        return int(self._table.min())


def edit_model() -> MatchMismatchModel:
    """The classic edit/Levenshtein model in score form.

    Match 0, mismatch -1, indels -1; ``edit_distance = -score``.
    theta is 2, so 2-bit elements suffice (the paper's DNA-edit config).
    """
    return MatchMismatchModel(match=0, mismatch=-1, gap_i=-1, gap_d=-1)


def dna_gap_model(match: int = 2, mismatch: int = -4,
                  gap: int = -2) -> MatchMismatchModel:
    """Minimap2-style linear-gap DNA model (paper's DNA-gap config)."""
    return MatchMismatchModel(match=match, mismatch=mismatch,
                              gap_i=gap, gap_d=gap)
