"""Scoring models and substitution matrices (paper Sec. 2.2)."""

from repro.scoring.model import (
    MatchMismatchModel,
    ScoringModel,
    SubstitutionMatrixModel,
    dna_gap_model,
    edit_model,
)
from repro.scoring.submat import (
    SUBMAT_ENTRY_BITS,
    SUBMAT_SIZE,
    SUBMAT_TOTAL_WORDS,
    SUBMAT_WORDS_PER_COLUMN,
    SubstitutionMatrix,
    blosum50,
    blosum62,
    load_matrix,
    pam250,
)

__all__ = [
    "MatchMismatchModel",
    "ScoringModel",
    "SubstitutionMatrixModel",
    "SubstitutionMatrix",
    "SUBMAT_ENTRY_BITS",
    "SUBMAT_SIZE",
    "SUBMAT_TOTAL_WORDS",
    "SUBMAT_WORDS_PER_COLUMN",
    "blosum50",
    "blosum62",
    "dna_gap_model",
    "edit_model",
    "load_matrix",
    "pam250",
]
