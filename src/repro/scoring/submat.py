"""Substitution matrices and the hardware ``smx_submat`` memory layout.

The SMX-1D unit stores a full 26x26 matrix of 6-bit *shifted* substitution
scores in a 78-word x 64-bit memory: 26 columns (one per reference
character), 3 words per column, entries packed 6 bits apart within each
column's 156-bit stream (paper Sec. 4.2). This module implements both the
matrix abstraction and that exact packing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, EncodingError
from repro.scoring.matrices import MATRIX_SYMBOLS, RAW_MATRICES

#: Number of characters addressable by the hardware matrix (A-Z).
SUBMAT_SIZE = 26
#: Bits per stored (shifted) substitution score.
SUBMAT_ENTRY_BITS = 6
#: 64-bit words per matrix column: ceil(26 * 6 / 64) = 3.
SUBMAT_WORDS_PER_COLUMN = 3
#: Total words in the smx_submat memory: 26 * 3 = 78.
SUBMAT_TOTAL_WORDS = SUBMAT_SIZE * SUBMAT_WORDS_PER_COLUMN

_WORD_MASK = (1 << 64) - 1
_ENTRY_MASK = (1 << SUBMAT_ENTRY_BITS) - 1


@dataclass(frozen=True)
class SubstitutionMatrix:
    """A symmetric 26x26 substitution-score matrix over A-Z codes.

    ``table[a, b]`` is the (unshifted, possibly negative) score of
    substituting letter code ``a`` (0 = 'A') with code ``b``.
    """

    name: str
    table: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        table = np.asarray(self.table, dtype=np.int32)
        if table.shape != (SUBMAT_SIZE, SUBMAT_SIZE):
            raise ConfigurationError(
                f"substitution matrix must be 26x26, got {table.shape}"
            )
        if not np.array_equal(table, table.T):
            bad = np.argwhere(table != table.T)[0]
            raise ConfigurationError(
                f"matrix {self.name!r} is asymmetric at "
                f"{chr(65 + bad[0])}/{chr(65 + bad[1])}"
            )
        object.__setattr__(self, "table", table)

    @property
    def smax(self) -> int:
        return int(self.table.max())

    @property
    def smin(self) -> int:
        return int(self.table.min())

    def score(self, a: str, b: str) -> int:
        """Score of two letters given as single characters."""
        return int(self.table[ord(a.upper()) - 65, ord(b.upper()) - 65])

    # -- hardware packing ----------------------------------------------------

    def pack_words(self, gap_i: int, gap_d: int) -> list[int]:
        """Serialize the *shifted* matrix into 78 64-bit memory words.

        Entries are shifted by ``-(gap_i + gap_d)`` so every stored value
        is a non-negative 6-bit quantity, exactly what the SMX-PE consumes.
        Column layout: reference code ``c`` occupies words
        ``[3c, 3c+2]``; query code ``q`` sits at bit offset ``6q`` of the
        column's little-endian 192-bit stream.
        """
        shift = -(gap_i + gap_d)
        shifted = self.table.astype(np.int64) + shift
        if shifted.min() < 0 or shifted.max() > _ENTRY_MASK:
            raise EncodingError(
                f"shifted scores of {self.name!r} outside 6-bit range "
                f"[{shifted.min()}, {shifted.max()}] with shift {shift}"
            )
        words: list[int] = []
        for ref_code in range(SUBMAT_SIZE):
            stream = 0
            for query_code in range(SUBMAT_SIZE):
                value = int(shifted[query_code, ref_code])
                stream |= value << (SUBMAT_ENTRY_BITS * query_code)
            for word_index in range(SUBMAT_WORDS_PER_COLUMN):
                words.append((stream >> (64 * word_index)) & _WORD_MASK)
        return words

    @staticmethod
    def unpack_words(words: list[int], gap_i: int, gap_d: int,
                     name: str = "unpacked") -> "SubstitutionMatrix":
        """Inverse of :meth:`pack_words`, reconstructing signed scores."""
        if len(words) != SUBMAT_TOTAL_WORDS:
            raise EncodingError(
                f"smx_submat must hold {SUBMAT_TOTAL_WORDS} words, "
                f"got {len(words)}"
            )
        shift = -(gap_i + gap_d)
        table = np.zeros((SUBMAT_SIZE, SUBMAT_SIZE), dtype=np.int32)
        for ref_code in range(SUBMAT_SIZE):
            stream = 0
            for word_index in range(SUBMAT_WORDS_PER_COLUMN):
                word = words[ref_code * SUBMAT_WORDS_PER_COLUMN + word_index]
                stream |= (word & _WORD_MASK) << (64 * word_index)
            for query_code in range(SUBMAT_SIZE):
                raw = (stream >> (SUBMAT_ENTRY_BITS * query_code)) & _ENTRY_MASK
                table[query_code, ref_code] = raw - shift
        return SubstitutionMatrix(name=name, table=table)


def _expand_to_26(name: str) -> np.ndarray:
    """Expand a 24-symbol raw matrix to the 26-letter A-Z layout.

    The raw data covers 20 amino acids plus B/Z/X; letters with no
    amino-acid meaning (J, O, U) inherit the 'X' (unknown) scores so that
    every A-Z pair is defined, as the hardware memory requires.
    """
    rows = RAW_MATRICES[name]
    raw = np.asarray(rows, dtype=np.int32)
    index_of = {symbol: i for i, symbol in enumerate(MATRIX_SYMBOLS)}
    x_index = index_of["X"]
    source = [index_of.get(chr(65 + code), x_index) for code in range(26)]
    table = raw[np.ix_(source, source)]
    return table


def load_matrix(name: str) -> SubstitutionMatrix:
    """Load a named substitution matrix expanded to the A-Z layout."""
    if name not in RAW_MATRICES:
        raise ConfigurationError(
            f"unknown matrix {name!r}; available: {sorted(RAW_MATRICES)}"
        )
    return SubstitutionMatrix(name=name, table=_expand_to_26(name))


def blosum50() -> SubstitutionMatrix:
    """BLOSUM50, the paper's protein-configuration matrix."""
    return load_matrix("BLOSUM50")


def blosum62() -> SubstitutionMatrix:
    """BLOSUM62, the BLAST default."""
    return load_matrix("BLOSUM62")


def pam250() -> SubstitutionMatrix:
    """PAM250, the classic Dayhoff matrix."""
    return load_matrix("PAM250")
