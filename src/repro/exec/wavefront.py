"""Batched wavefront (WFA) kernel: one NumPy sweep, many alignments.

:func:`sweep_wavefront` advances the per-score wavefront of a whole
length bucket at once over a ``(batch, diagonal)`` offsets array --
the batching axis plays the role the diagonal lanes play in WFA-GPU.
Per score ``s`` and diagonal ``k = j - i`` the array holds the
furthest-reaching reference offset after greedy match extension, and
one vectorized ``np.maximum`` pass applies the edit-wavefront
recurrence ``M[s][k] = max(M[s-1][k-1]+1, M[s-1][k]+1, M[s-1][k+1])``
to every pair simultaneously. Match extension runs in chunked
vectorized compares across every live front point of every pair.

The recurrence, clipping, sentinel arithmetic and traceback predecessor
order replicate :class:`repro.algorithms.wavefront.WavefrontAligner`
step for step, so scores, CIGARs *and* DP stats are bit-identical to
the scalar aligner (the conformance suite locks this). Only the
unit-cost edit model is supported -- callers must check
:func:`repro.algorithms.wavefront._check_edit_model` first.

A ``max_score`` cap bounds the sweep: pairs whose distance exceeds the
cap come back flagged in ``exceeded`` (instead of raising, as the
scalar aligner does) so the engine can fall back to the full kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dp.alignment import compress_ops
from repro.exec.buckets import PairBatch

#: Sentinel for "no wavefront point on this diagonal". Matches the
#: scalar traceback's ``previous.get(k, -(1 << 30))`` default exactly,
#: so the batched traceback's tie-break arithmetic is bit-identical.
ABSENT = np.int64(-(1 << 30))

#: Maximum chunk width of the vectorized greedy match extension.
EXTEND_CHUNK = 64


@dataclass
class WavefrontSweep:
    """Result of one batched wavefront sweep.

    Attributes:
        distance: ``(B,)`` edit distances (score is ``-distance``);
            undefined where ``exceeded``.
        cells: ``(B,)`` wavefront cells touched (extend steps + 1 per
            front point, as the scalar aligner counts).
        stored: ``(B,)`` total front points over all wavefronts
            (``cells_stored`` of alignment mode).
        peak: ``(B,)`` widest single wavefront (score mode stores two
            rolling fronts, so ``cells_stored`` is ``2 * peak``).
        exceeded: ``(B,)`` pairs whose distance passed ``max_score``.
        history: Per-score ``(B, 2s + 1)`` offset windows (diagonal
            ``k`` lives at column ``k + s``), kept when ``keep`` for
            the traceback; empty otherwise.
    """

    distance: np.ndarray
    cells: np.ndarray
    stored: np.ndarray
    peak: np.ndarray
    exceeded: np.ndarray
    history: list[np.ndarray] = field(default_factory=list)


def _extend_points(q: np.ndarray, r: np.ndarray, q_len: np.ndarray,
                   r_len: np.ndarray, rows: np.ndarray, i_pts: np.ndarray,
                   j_pts: np.ndarray) -> np.ndarray:
    """Greedy match extension for a flat set of front points.

    Advances every ``(rows[p], i_pts[p], j_pts[p])`` point along its
    diagonal while query and reference agree. Most front points stop
    immediately (they sit off the optimal path), so the compare width
    grows geometrically: a single-character first pass culls the bulk
    of the points and only the survivors pay for wider chunks (capped
    at :data:`EXTEND_CHUNK` characters per point per pass). Chunking
    never changes the returned per-point match counts.
    """
    advanced = np.zeros(len(rows), dtype=np.int64)
    if len(rows) == 0 or q.shape[1] == 0 or r.shape[1] == 0:
        return advanced
    live = np.arange(len(rows))
    q_edge = q.shape[1] - 1
    r_edge = r.shape[1] - 1
    chunk = 1
    while live.size:
        b = rows[live]
        ii = i_pts[live] + advanced[live]
        jj = j_pts[live] + advanced[live]
        if chunk == 1:
            ok = (ii < q_len[b]) & (jj < r_len[b])
            ok &= q[b, np.minimum(ii, q_edge)] \
                == r[b, np.minimum(jj, r_edge)]
            advanced[live] += ok
            live = live[ok]
        else:
            offs = np.arange(chunk, dtype=np.int64)
            span = np.minimum(chunk,
                              np.minimum(q_len[b] - ii, r_len[b] - jj))
            q_chunk = q[b[:, None],
                        np.minimum(ii[:, None] + offs, q_edge)]
            r_chunk = r[b[:, None],
                        np.minimum(jj[:, None] + offs, r_edge)]
            stop = (q_chunk != r_chunk) | (offs[None, :] >= span[:, None])
            has_stop = stop.any(axis=1)
            first = np.where(has_stop, np.argmax(stop, axis=1), span)
            advanced[live] += first
            live = live[~has_stop]
        chunk = min(chunk * 8, EXTEND_CHUNK)
    return advanced


def sweep_wavefront(batch: PairBatch, model=None,
                    max_score: int | None = None,
                    keep: bool = False) -> WavefrontSweep:
    """Batched edit-wavefront sweep over one length bucket.

    Args:
        batch: The bucket; zero-length pairs are answered natively
            (distance ``n + m``, a pure-gap alignment).
        model: Unused (the kernel is edit-model only); accepted for
            signature parity with the other kernels.
        max_score: Per-pair distance cap; pairs that pass it stop
            sweeping and come back in ``exceeded``. ``None`` means
            ``n + m`` (never exceeded), like the scalar aligner.
        keep: Keep every per-score wavefront window for the traceback.
    """
    B = batch.size
    q, r = batch.q, batch.r
    n = batch.q_len.astype(np.int64)
    m = batch.r_len.astype(np.int64)
    if max_score is None:
        limit = n + m
    else:
        limit = np.full(B, int(max_score), dtype=np.int64)
    target = m - n

    distance = np.full(B, -1, dtype=np.int64)
    exceeded = np.zeros(B, dtype=bool)
    all_rows = np.arange(B, dtype=np.int64)

    # Score 0: extend from (0, 0) along diagonal 0 for every pair.
    matched0 = _extend_points(q, r, n, m, all_rows,
                              np.zeros(B, dtype=np.int64),
                              np.zeros(B, dtype=np.int64))
    j0 = matched0.copy()
    cells = matched0 + 1
    stored = np.ones(B, dtype=np.int64)
    peak = np.ones(B, dtype=np.int64)
    history: list[np.ndarray] = []
    wf = j0[:, None].copy()
    if keep:
        history.append(wf)

    done = (j0 >= m) & (j0 >= n) & (target == 0)
    distance[done] = 0
    # Pure-gap alignments: the leftover length is the distance.
    empty = (~done) & ((n == 0) | (m == 0))
    distance[empty] = n[empty] + m[empty]
    active = ~(done | empty)

    score = 0
    while active.any():
        score += 1
        over = active & (limit < score)
        if over.any():
            exceeded |= over
            active &= ~over
            if not active.any():
                break
        width = 2 * score + 1
        new = np.full((B, width), ABSENT, dtype=np.int64)
        # Deletion (consume reference), mismatch, insertion -- the same
        # three predecessors, max-combined, as the scalar recurrence.
        new[:, 2:] = wf + 1
        np.maximum(new[:, 1:-1], wf + 1, out=new[:, 1:-1])
        np.maximum(new[:, :-2], wf, out=new[:, :-2])
        k_axis = np.arange(-score, score + 1, dtype=np.int64)
        j_new = np.minimum(new, m[:, None])
        i_new = j_new - k_axis[None, :]
        ok = (new > ABSENT // 2) & (i_new >= 0) & (i_new <= n[:, None]) \
            & active[:, None]
        rows, diags = np.nonzero(ok)
        wf = np.full((B, width), ABSENT, dtype=np.int64)
        if rows.size:
            i_pts = i_new[rows, diags]
            j_pts = j_new[rows, diags]
            adv = _extend_points(q, r, n, m, rows, i_pts, j_pts)
            wf[rows, diags] = j_pts + adv
            np.add.at(cells, rows, adv + 1)
            counts = np.bincount(rows, minlength=B)
            stored += counts
            np.maximum(peak, counts, out=peak)
        if keep:
            history.append(wf)
        # A pair is done once its target diagonal's front reaches m.
        t_target = target + score
        in_window = (t_target >= 0) & (t_target < width)
        reach = np.full(B, ABSENT, dtype=np.int64)
        safe_t = np.clip(t_target, 0, width - 1)
        reach[in_window] = wf[all_rows[in_window], safe_t[in_window]]
        done_now = active & (reach >= m)
        distance[done_now] = score
        active &= ~done_now

    return WavefrontSweep(distance=distance, cells=cells, stored=stored,
                          peak=peak, exceeded=exceeded, history=history)


def wavefront_cigar(sweep: WavefrontSweep, b: int, n: int,
                    m: int) -> list[tuple[int, str]]:
    """Trace one pair's CIGAR through the kept wavefront history.

    Walks scores from the pair's distance down to 0, choosing the
    predecessor in the same order (mismatch, deletion, insertion) and
    with the same sentinel arithmetic as the scalar
    ``WavefrontAligner._traceback``, so the CIGAR is bit-identical.
    """
    if not sweep.history:
        raise ValueError("traceback needs a sweep with keep=True")
    dist = int(sweep.distance[b])

    def get(s: int, k: int) -> int:
        window = sweep.history[s]
        t = k + s
        if 0 <= t < window.shape[1]:
            return int(window[b, t])
        return int(ABSENT)

    ops: list[str] = []
    k = m - n
    j = m
    for score in range(dist, 0, -1):
        from_del = get(score - 1, k - 1) + 1
        from_mis = get(score - 1, k) + 1
        from_ins = get(score - 1, k + 1)
        entry = max(from_del, from_mis, from_ins)
        ops.extend("=" * max(0, j - entry))
        if entry == from_mis:
            ops.append("X")
            j = entry - 1
        elif entry == from_del:
            ops.append("D")
            k -= 1
            j = entry - 1
        else:
            ops.append("I")
            k += 1
            j = entry
    ops.extend("=" * max(0, j))
    ops.reverse()
    return compress_ops(ops)
