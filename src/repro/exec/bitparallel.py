"""Batched bit-parallel Myers edit kernel: 64 DP rows per uint64 lane.

Myers' blocked bit-parallel algorithm (the Edlib/GenASM core already
implemented per pair in :mod:`repro.baselines.myers`) packs 64 DP rows
of one pattern into a single machine word and advances a whole text
column with ~17 bitwise operations. This module lifts that recurrence
onto NumPy uint64 *lanes*: every pair in a length bucket keeps its
``Pv``/``Mv`` blocks in ``(B, n_blocks)`` uint64 arrays, and one column
step updates **all B pairs at once** with whole-array bitwise ops --
two multiplicative parallelism axes (64 rows per word x B pairs per
NumPy op) on top of the same O(1)-per-64-cells arithmetic.

Lane layout and carries:

- pattern row ``i`` of pair ``b`` lives in bit ``i % 64`` of word
  ``[b, i // 64]``; ``Peq[b, symbol, block]`` holds the per-symbol
  match masks (padding rows never set a bit);
- blocks are swept low to high each column, the horizontal delta
  ``hout`` of block ``k`` feeding block ``k + 1`` as ``hin`` -- carried
  as two 0/1 uint64 arrays (``hin_pos``/``hin_neg``) so the chain stays
  branch-free across lanes;
- each pair reads its running distance off the *pre-shift* horizontal
  words of **its own** last block at **its own** boundary bit
  (``(q_len - 1) % 64``), exactly like the scalar
  :func:`~repro.baselines.myers.myers_edit_distance`;
- lanes whose text is exhausted (``j >= r_len``) are masked out of the
  score update (the early-termination mask) -- their words keep
  sweeping harmlessly but contribute nothing.

The kernel is global (NW), score-only, unit-cost edit model: distances
are bit-identical to ``myers_edit_distance`` and to the brute-force
oracle (the conformance and Hypothesis suites lock all three
together). Tracebacks stay on the wavefront / full kernels -- the bit
vectors carry no path state, which is exactly why they are
memory-frugal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AlignmentError
from repro.exec.buckets import PairBatch

#: DP rows per uint64 lane word.
WORD_BITS = 64

#: Words resident per (pair, block): ``Pv + Mv + Peq[n_symbols]``.
WORDS_PER_BLOCK_STATE = 2

#: Words read+written per (column, block) lane step: Eq gather, Pv and
#: Mv read-modify-write. Used for ``bytes_moved`` accounting.
WORDS_PER_BLOCK_STEP = 3

#: Text columns gathered per ``Peq`` lookup chunk: bounds the resident
#: ``(B, chunk, n_blocks)`` gather without per-column fancy indexing.
COLUMN_CHUNK = 256

_ONE = np.uint64(1)
_TOP = np.uint64(WORD_BITS - 1)


@dataclass
class BitparallelSweep:
    """Result of one batched bit-parallel sweep.

    Attributes:
        distance: ``(B,)`` global edit distances (score is
            ``-distance``).
        cells: ``(B,)`` DP cells covered (``n * m`` -- the bit-parallel
            sweep evaluates every cell of the matrix, 64 per word op).
        words: ``(B,)`` lane-word block steps (``n_blocks * m``), the
            work actually performed; ``cells / words ~ 64`` is the
            parallelism the packing buys.
        blocks: ``(B,)`` 64-row blocks per pattern.
    """

    distance: np.ndarray
    cells: np.ndarray
    words: np.ndarray
    blocks: np.ndarray


def _check_codes(batch: PairBatch, n_symbols: int) -> None:
    """Reject codes outside the declared alphabet, tagging the first
    offending pair so the supervised layer can quarantine it."""
    if n_symbols >= 256:
        return  # uint8 codes cannot exceed a 256-symbol alphabet
    bad = (batch.q >= n_symbols).any(axis=1) \
        | (batch.r >= n_symbols).any(axis=1)
    if bad.any():
        first = int(np.argmax(bad))
        error = AlignmentError(
            f"codes exceed the declared alphabet size {n_symbols}")
        error.pair_index = int(batch.index[first])
        raise error


def pattern_masks(batch: PairBatch, n_symbols: int) -> np.ndarray:
    """Per-pair, per-symbol, per-block match masks.

    Returns ``(B, n_symbols, n_blocks)`` uint64 where bit ``i % 64`` of
    ``[b, s, i // 64]`` is set iff row ``i < q_len[b]`` and
    ``q[b, i] == s``. Padding rows never set a bit, so lanes of
    different pattern lengths share one block schedule safely.
    """
    B, n_max = batch.q.shape
    n_blocks = max(1, -(-n_max // WORD_BITS))
    peq = np.zeros((B, n_symbols, n_blocks), dtype=np.uint64)
    if n_max == 0:
        return peq
    padded = n_blocks * WORD_BITS
    codes = np.zeros((B, padded), dtype=np.int64)
    codes[:, :n_max] = batch.q
    valid = np.arange(padded)[None, :] < batch.q_len[:, None]
    codes_v = codes.reshape(B, n_blocks, WORD_BITS)
    valid_v = valid.reshape(B, n_blocks, WORD_BITS)
    weights = _ONE << np.arange(WORD_BITS, dtype=np.uint64)
    for symbol in np.unique(codes[valid]):
        match = (codes_v == symbol) & valid_v
        peq[:, int(symbol), :] = (match * weights).sum(
            axis=2, dtype=np.uint64)
    return peq


def sweep_bitparallel(batch: PairBatch, n_symbols: int = 4,
                      column_chunk: int = COLUMN_CHUNK,
                      ) -> BitparallelSweep:
    """Batched blocked-Myers sweep over one length bucket.

    Args:
        batch: The bucket; zero-length patterns/texts are answered
            natively (distance is the leftover length).
        n_symbols: Declared alphabet size; codes at or beyond it raise
            :class:`~repro.errors.AlignmentError` (with ``pair_index``
            set), matching the scalar baseline's contract.
        column_chunk: Text columns per ``Peq`` gather chunk.
    """
    _check_codes(batch, n_symbols)
    B = batch.size
    n = batch.q_len.astype(np.int64)
    m = batch.r_len.astype(np.int64)
    blocks = -(-n // WORD_BITS)
    cells = n * m
    words = blocks * m
    if batch.n_max == 0 or batch.m_max == 0:
        # Pure-gap lanes: the leftover length is the distance.
        return BitparallelSweep(distance=n + m, cells=cells,
                                words=words, blocks=blocks)

    n_blocks = -(-batch.n_max // WORD_BITS)
    peq = pattern_masks(batch, n_symbols)
    last_block = np.maximum(n - 1, 0) // WORD_BITS
    boundary = (np.maximum(n - 1, 0) % WORD_BITS).astype(np.uint64)
    n_pos = n > 0
    m_min = int(m.min())

    # Per-block contiguous state (lists of (B,) words): strided column
    # views of a (B, n_blocks) array cost extra per NumPy op, and the
    # block loop is the hot path.
    full = np.uint64((1 << WORD_BITS) - 1)
    pv = [np.full(B, full, dtype=np.uint64) for _ in range(n_blocks)]
    mv = [np.zeros(B, dtype=np.uint64) for _ in range(n_blocks)]
    # Which lanes read their score off block k -- precomputed so the
    # selection only runs for block indices that actually terminate a
    # pattern in this bucket.
    sel_masks = [None] * n_blocks
    for k in range(n_blocks):
        sel = last_block == k
        if sel.any():
            sel_masks[k] = sel
    ones = np.ones(B, dtype=np.uint64)
    zeros = np.zeros(B, dtype=np.uint64)
    lanes = np.arange(B)
    live_mask = (n_pos & (m > 0)).astype(np.uint64)
    # Signed deltas would force per-column astype; accumulate +1/-1
    # boundary bits in two uint64 counters instead.
    score_pos = np.zeros(B, dtype=np.uint64)
    score_neg = np.zeros(B, dtype=np.uint64)

    for start in range(0, batch.m_max, column_chunk):
        stop = min(batch.m_max, start + column_chunk)
        codes = batch.r[:, start:stop].astype(np.intp)
        # (B, chunk, n_blocks): one gather per chunk, sliced per column.
        eq_chunk = peq[lanes[:, None], codes]
        for j in range(start, stop):
            eq_col = eq_chunk[:, j - start]
            # NW mode: the top matrix row increases by 1 per column.
            hin_pos, hin_neg = ones, zeros
            ph_sel = mh_sel = zeros
            for k in range(n_blocks):
                pv_k = pv[k]
                mv_k = mv[k]
                eq = eq_col[:, k] | hin_neg
                xv = eq | mv_k
                xh = (((eq & pv_k) + pv_k) ^ pv_k) | eq
                ph = mv_k | ~(xh | pv_k)
                mh = pv_k & xh
                hout_pos = ph >> _TOP
                hout_neg = mh >> _TOP
                sel = sel_masks[k]
                if sel is not None:
                    if n_blocks == 1:
                        ph_sel, mh_sel = ph, mh
                    else:
                        ph_sel = np.where(sel, ph, ph_sel)
                        mh_sel = np.where(sel, mh, mh_sel)
                ph = (ph << _ONE) | hin_pos
                mh = (mh << _ONE) | hin_neg
                pv[k] = mh | ~(xv | ph)
                mv[k] = ph & xv
                hin_pos, hin_neg = hout_pos, hout_neg
            # The running bottom-row score: the pre-shift horizontal
            # bit of each pair's own last block at its boundary bit,
            # masked to lanes whose text still has columns left.  All
            # lanes are live before the shortest text runs out.
            if j >= m_min:
                live_mask = (n_pos & (j < m)).astype(np.uint64)
            score_pos += ((ph_sel >> boundary) & _ONE) & live_mask
            score_neg += ((mh_sel >> boundary) & _ONE) & live_mask

    score = n + score_pos.astype(np.int64) - score_neg.astype(np.int64)
    distance = np.where(n_pos, score, m)
    return BitparallelSweep(distance=distance, cells=cells,
                            words=words, blocks=blocks)
