"""Length-bucketing for batched alignment (the Scrooge/GenASM recipe).

Batched DP kernels sweep every pair in a batch with the same row
schedule, so pairs are grouped into *buckets* of similar (n, m) and
padded up to the bucket's rectangle. Padding is pure waste --
``PairBatch.fill_ratio`` measures it -- so bucket keys round lengths up
to a configurable granularity: coarse enough to form large batches,
fine enough to keep the fill ratio high.

Padding is functionally invisible: DP dependencies only flow right/down,
so cells at ``(i <= q_len, j <= r_len)`` never read a padded cell, and
kernels extract each pair's answer at its true ``(q_len, r_len)`` corner
(masking padded columns wherever a kernel reduces over a row).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Padding code: 0 is valid in every alphabet, and padded cells are
#: never read back, so any in-range value works.
PAD_CODE = 0


@dataclass
class PairBatch:
    """One length bucket: padded code arrays plus true lengths.

    Attributes:
        q: ``(B, n_max)`` uint8 query codes, zero-padded.
        r: ``(B, m_max)`` uint8 reference codes, zero-padded.
        q_len: ``(B,)`` true query lengths.
        r_len: ``(B,)`` true reference lengths.
        index: ``(B,)`` positions of each pair in the original request,
            used to scatter results back into submission order.
    """

    q: np.ndarray
    r: np.ndarray
    q_len: np.ndarray
    r_len: np.ndarray
    index: np.ndarray

    @property
    def size(self) -> int:
        return int(self.q.shape[0])

    @property
    def n_max(self) -> int:
        return int(self.q.shape[1])

    @property
    def m_max(self) -> int:
        return int(self.r.shape[1])

    @property
    def fill_ratio(self) -> float:
        """Useful cells / padded cells of this bucket's DP volume."""
        padded = self.size * (self.n_max + 1) * (self.m_max + 1)
        useful = int(np.sum((self.q_len + 1) * (self.r_len + 1)))
        return useful / padded if padded else 1.0

    def slices(self, max_size: int) -> list["PairBatch"]:
        """Split into sub-batches of at most ``max_size`` pairs."""
        if self.size <= max_size:
            return [self]
        return [PairBatch(q=self.q[s:s + max_size],
                          r=self.r[s:s + max_size],
                          q_len=self.q_len[s:s + max_size],
                          r_len=self.r_len[s:s + max_size],
                          index=self.index[s:s + max_size])
                for s in range(0, self.size, max_size)]


def _round_up(length: int, granularity: int) -> int:
    if length == 0:
        return 0
    return ((length + granularity - 1) // granularity) * granularity


def bucketize(pairs: list[tuple[np.ndarray, np.ndarray]],
              granularity: int = 16) -> list[PairBatch]:
    """Group (query, reference) code pairs into padded length buckets.

    Bucket keys are ``(ceil(n / g) * g, ceil(m / g) * g)``; arrays are
    padded to the *actual* maximum length inside each bucket (never
    beyond the key), so a bucket of uniform-length pairs has fill
    ratio 1.0.
    """
    if granularity < 1:
        raise ConfigurationError(
            f"bucket granularity must be >= 1, got {granularity}")
    groups: dict[tuple[int, int], list[int]] = defaultdict(list)
    for position, (q_codes, r_codes) in enumerate(pairs):
        key = (_round_up(len(q_codes), granularity),
               _round_up(len(r_codes), granularity))
        groups[key].append(position)
    batches = []
    for key in sorted(groups):
        members = groups[key]
        q_len = np.array([len(pairs[p][0]) for p in members],
                         dtype=np.int64)
        r_len = np.array([len(pairs[p][1]) for p in members],
                         dtype=np.int64)
        n_max = int(q_len.max(initial=0))
        m_max = int(r_len.max(initial=0))
        q = np.full((len(members), n_max), PAD_CODE, dtype=np.uint8)
        r = np.full((len(members), m_max), PAD_CODE, dtype=np.uint8)
        for row, position in enumerate(members):
            q_codes, r_codes = pairs[position]
            q[row, :len(q_codes)] = q_codes
            r[row, :len(r_codes)] = r_codes
        batches.append(PairBatch(
            q=q, r=r, q_len=q_len, r_len=r_len,
            index=np.array(members, dtype=np.int64)))
    return batches
