"""repro.exec -- batched alignment execution engine.

Batches many independent pairwise alignments through vectorized NumPy
kernels (length-bucketed, one ``np.maximum`` sweep advancing every pair
at once) or through the scalar per-pair aligners, with optional
multi-process sharding. See :class:`BatchEngine` / :class:`BatchConfig`
and the public :func:`repro.api.align_batch` front-end.
"""

from repro.exec.bitparallel import BitparallelSweep, sweep_bitparallel
from repro.exec.buckets import PAD_CODE, PairBatch, bucketize
from repro.exec.engine import (
    ALGORITHMS,
    ENGINES,
    MODES,
    BatchConfig,
    BatchEngine,
    make_scalar_aligner,
)
from repro.exec.planner import PlannerPolicy, plan_routes
from repro.exec.sharding import run_sharded, shard_spans
from repro.exec.wavefront import WavefrontSweep, sweep_wavefront

__all__ = [
    "ALGORITHMS", "ENGINES", "MODES", "BatchConfig", "BatchEngine",
    "BitparallelSweep", "PAD_CODE", "PairBatch", "PlannerPolicy",
    "WavefrontSweep", "bucketize", "make_scalar_aligner", "plan_routes",
    "run_sharded", "shard_spans", "sweep_bitparallel", "sweep_wavefront",
]
