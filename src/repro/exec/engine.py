"""Batched alignment engine: scalar loop or vectorized NumPy kernels.

:class:`BatchEngine` runs many independent (query, reference) pairs
through one alignment configuration. The ``scalar`` engine simply loops
the existing per-pair aligners; the ``vector`` engine buckets pairs by
length (:mod:`repro.exec.buckets`) and sweeps each bucket with the
batched kernels (:mod:`repro.exec.kernels`). Both return the *same*
``AlignerResult`` objects -- scores, CIGARs, stats, and failure reasons
are bit-identical, which the conformance and property suites enforce.

Multi-process sharding (``BatchConfig.workers > 1``) lives in
:mod:`repro.exec.sharding`.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass

import numpy as np

from repro.algorithms.affine import (
    AffineAligner,
    AffineGapPenalties,
    affine_traceback,
)
from repro.algorithms.banded import BandedAligner
from repro.algorithms.base import Aligner, AlignerResult, DPStats
from repro.algorithms.full import FullAligner
from repro.algorithms.local import (
    LocalAligner,
    SemiGlobalAligner,
    _require_positive_scores,
    local_traceback,
    semiglobal_traceback,
)
from repro.algorithms.xdrop import XdropAligner
from repro.config import AlignmentConfig
from repro.dp.alignment import Alignment
from repro.dp.traceback import traceback_full
from repro.errors import AlignmentError, ConfigurationError
from repro.exec import kernels
from repro.exec.buckets import PairBatch, bucketize
from repro.obs import Observability, get_obs
from repro.resilience import chaos
from repro.resilience.deadline import Deadline

ENGINES = ("scalar", "vector")
MODES = ("global", "local", "semiglobal")
ALGORITHMS = ("full", "affine", "banded", "xdrop")


@dataclass(frozen=True)
class BatchConfig:
    """How a batch of alignments is executed.

    Attributes:
        engine: ``"vector"`` (batched NumPy kernels, the default) or
            ``"scalar"`` (loop the per-pair aligners).
        mode: ``"global"``, ``"local"`` or ``"semiglobal"``; the latter
            two require ``algorithm="full"``.
        algorithm: ``"full"``, ``"affine"``, ``"banded"`` or
            ``"xdrop"`` (global mode only for the last three).
        traceback: Produce full alignments (CIGARs) instead of scores.
        workers: Shard across this many worker processes when > 1.
        bucket_granularity: Length rounding for bucket keys.
        max_batch_cells: Cap on resident DP cells per vectorized
            traceback chunk (bounds memory for full-matrix mode).
        band_width / band_fraction: Banded half-width (exactly one).
        xdrop / xdrop_fraction: X-drop threshold (exactly one).
        affine_penalties: Gap parameters for ``algorithm="affine"``.
        deadline_s: Cooperative per-call budget: the engine checks the
            clock between buckets (vector) / pairs (scalar) and raises
            :class:`~repro.errors.DeadlineExceeded` once it expires.
            For partial results instead of a raise, run through the
            supervised layer (:mod:`repro.resilience`).
        wide_dtype: Force the vectorized kernels onto full-width int64
            rows, bypassing the int-narrowed fast path (the
            degradation ladder sets this after a range/overflow trip).
    """

    engine: str = "vector"
    mode: str = "global"
    algorithm: str = "full"
    traceback: bool = True
    workers: int = 1
    bucket_granularity: int = 16
    max_batch_cells: int = 8_000_000
    band_width: int | None = None
    band_fraction: float | None = None
    xdrop: int | None = None
    xdrop_fraction: float | None = None
    affine_penalties: AffineGapPenalties | None = None
    deadline_s: float | None = None
    wide_dtype: bool = False

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; choose from {ENGINES}")
        if self.mode not in MODES:
            raise ConfigurationError(
                f"unknown mode {self.mode!r}; choose from {MODES}")
        if self.algorithm not in ALGORITHMS:
            raise ConfigurationError(
                f"unknown algorithm {self.algorithm!r}; choose from "
                f"{ALGORITHMS}")
        if self.mode != "global" and self.algorithm != "full":
            raise ConfigurationError(
                f"mode {self.mode!r} only supports algorithm='full', "
                f"got {self.algorithm!r}")
        if self.algorithm == "banded" and \
                (self.band_width is None) == (self.band_fraction is None):
            raise ConfigurationError(
                "banded batches need exactly one of band_width / "
                "band_fraction")
        if self.algorithm == "xdrop" and \
                (self.xdrop is None) == (self.xdrop_fraction is None):
            raise ConfigurationError(
                "xdrop batches need exactly one of xdrop / xdrop_fraction")
        if self.algorithm == "affine" and self.affine_penalties is None:
            raise ConfigurationError(
                "algorithm='affine' needs affine_penalties")
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}")
        if self.max_batch_cells < 1:
            raise ConfigurationError(
                f"max_batch_cells must be >= 1, got {self.max_batch_cells}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"deadline_s must be > 0 seconds, got {self.deadline_s}")


def make_scalar_aligner(batch: BatchConfig) -> Aligner:
    """The per-pair aligner a batch configuration corresponds to."""
    if batch.mode == "local":
        return LocalAligner()
    if batch.mode == "semiglobal":
        return SemiGlobalAligner()
    if batch.algorithm == "full":
        return FullAligner()
    if batch.algorithm == "affine":
        return AffineAligner(batch.affine_penalties)
    if batch.algorithm == "banded":
        return BandedAligner(width=batch.band_width,
                             fraction=batch.band_fraction)
    return XdropAligner(xdrop=batch.xdrop, fraction=batch.xdrop_fraction)


@contextlib.contextmanager
def _tag_pair(index: int):
    """Stamp the batch position onto heuristic AlignmentErrors so the
    supervised layer can quarantine the one poison pair instead of
    bisecting the whole shard."""
    try:
        yield
    except AlignmentError as exc:
        if exc.pair_index is None:
            exc.pair_index = index
        raise


def _as_pairs(pairs) -> list[tuple[np.ndarray, np.ndarray]]:
    coerced = []
    for q_codes, r_codes in pairs:
        coerced.append((np.asarray(q_codes, dtype=np.uint8),
                        np.asarray(r_codes, dtype=np.uint8)))
    return coerced


class BatchEngine:
    """Executes batches of pairwise alignments under one scoring model.

    Args:
        config: The alignment problem (alphabet + scoring model).
        batch: Execution policy; defaults to the vector engine with
            tracebacks in global/full mode.
        obs: Observability context; defaults to the process-global one.
    """

    def __init__(self, config: AlignmentConfig,
                 batch: BatchConfig | None = None,
                 obs: Observability | None = None) -> None:
        self.config = config
        self.batch = batch or BatchConfig()
        self.obs = obs or get_obs()

    # -- public entry point ------------------------------------------------

    def run(self, pairs) -> list[AlignerResult]:
        """Align every (query_codes, reference_codes) pair.

        Results come back in submission order regardless of bucketing
        or sharding. An empty request returns an empty list.
        """
        pairs = _as_pairs(pairs)
        if not pairs:
            return []
        batch = self.batch
        deadline = Deadline.after(batch.deadline_s)
        events = self.obs.events
        if events.enabled:
            events.emit("batch_start", engine=batch.engine,
                        mode=batch.mode, algorithm=batch.algorithm,
                        traceback=batch.traceback, pairs=len(pairs))
        started = time.perf_counter()
        sharded = batch.workers > 1 and len(pairs) > 1
        # A sharded parent mostly *waits* on the pool, so its phase
        # lives outside the ``exec`` subtree CostModel calibrates from;
        # the workers' own ``exec.*`` stacks merge in with the real
        # compute time.
        phase_name = "sharding.pool" if sharded else f"exec.{batch.engine}"
        with self.obs.tracer.host_span(
                "exec.run", engine=batch.engine, mode=batch.mode,
                algorithm=batch.algorithm, pairs=len(pairs)), \
                self.obs.profiler.phase(phase_name):
            if sharded:
                from repro.exec.sharding import run_sharded
                results = run_sharded(self.config, batch, pairs, self.obs)
            else:
                if batch.engine == "scalar":
                    results = self._run_scalar(pairs, deadline)
                else:
                    results = self._run_vector(pairs, deadline)
                # Fault-injection hook: a no-op unless a chaos plan is
                # active for this execution. Sharded runs inject inside
                # each worker's inline engine instead.
                chaos.apply_to_results(pairs, results)
        elapsed = time.perf_counter() - started
        if not sharded:
            # Sharded runs report per shard (worker snapshots merge
            # into this registry), so the parent skips batch-level
            # counters to keep exec.pairs an exactly-once total.
            metrics = self.obs.metrics
            metrics.counter("exec.pairs",
                            engine=batch.engine).inc(len(pairs))
            metrics.counter("exec.batches", engine=batch.engine).inc()
            if elapsed > 0:
                metrics.distribution(
                    "exec.pairs_per_sec",
                    engine=batch.engine).observe(len(pairs) / elapsed)
        if events.enabled:
            events.emit("batch_end", engine=batch.engine,
                        pairs=len(pairs), elapsed_s=round(elapsed, 6))
        return results

    # -- work accounting ---------------------------------------------------

    def _account(self, cells: int, itemsize: int) -> None:
        """Attribute deterministic work units to the open profiler
        phase *and* the metric counters with one number, so flamegraph
        totals reconcile exactly with ``exec.cells``."""
        nbytes = cells * itemsize
        self.obs.profiler.work(cells=cells, bytes_moved=nbytes)
        engine = self.batch.engine
        self.obs.metrics.counter("exec.cells", engine=engine).inc(cells)
        self.obs.metrics.counter("exec.bytes_moved",
                                 engine=engine).inc(nbytes)

    # -- scalar path -------------------------------------------------------

    def _run_scalar(self, pairs,
                    deadline: Deadline = Deadline.unbounded(),
                    ) -> list[AlignerResult]:
        aligner = make_scalar_aligner(self.batch)
        model = self.config.model
        batch = self.batch
        observing = self.obs.enabled
        label = batch.mode if batch.mode != "global" else batch.algorithm
        events = self.obs.events
        stride = max(1, min(64, len(pairs) // 8 or 1))
        results = []
        for index, (q_codes, r_codes) in enumerate(pairs):
            deadline.check("scalar batch")
            with _tag_pair(index), \
                    self.obs.profiler.phase(f"pair.{label}"):
                if batch.traceback:
                    result = aligner.align(q_codes, r_codes, model)
                else:
                    result = aligner.compute_score(q_codes, r_codes, model)
                if observing:
                    self._account(result.stats.cells_computed, 8)
            results.append(result)
            if events.enabled and (index + 1) % stride == 0:
                events.emit("progress", engine="scalar",
                            done=index + 1, total=len(pairs))
        return results

    # -- vector path -------------------------------------------------------

    def _run_vector(self, pairs,
                    deadline: Deadline = Deadline.unbounded(),
                    ) -> list[AlignerResult]:
        batch = self.batch
        model = self.config.model
        if batch.mode == "local":
            _require_positive_scores(model)
        results: list[AlignerResult | None] = [None] * len(pairs)
        matrices_per_cell = 3 if batch.algorithm == "affine" else 1
        events = self.obs.events
        done = 0
        for bucket in bucketize(pairs, batch.bucket_granularity):
            deadline.check("vector batch")
            self.obs.metrics.distribution(
                "exec.bucket_fill").observe(bucket.fill_ratio)
            with self.obs.tracer.host_span(
                    "exec.bucket", pairs=bucket.size, n=bucket.n_max,
                    m=bucket.m_max), \
                    self.obs.profiler.phase(
                        f"bucket[{bucket.n_max}x{bucket.m_max}]"):
                if batch.traceback:
                    cells = matrices_per_cell * (bucket.n_max + 1) \
                        * (bucket.m_max + 1)
                    chunk = max(1, batch.max_batch_cells // cells)
                    for piece in bucket.slices(chunk):
                        self._vector_align(piece, results)
                else:
                    self._vector_score(bucket, results)
            done += bucket.size
            if events.enabled:
                events.emit("progress", engine="vector", done=done,
                            total=len(pairs), bucket=f"{bucket.n_max}x"
                            f"{bucket.m_max}")
        return results

    # Score-only kernels: rolling rows, one sweep per bucket.

    def _pair_cells(self, bucket: PairBatch) -> int:
        """Deterministic total of n*m over a bucket's true lengths."""
        return int(np.sum(bucket.q_len.astype(np.int64)
                          * bucket.r_len.astype(np.int64)))

    def _kernel_phase(self, bucket: PairBatch):
        """The profiler phase labeling this batch's kernel + dtype."""
        batch = self.batch
        if batch.mode in ("local", "semiglobal") or \
                batch.algorithm == "full":
            kind = batch.mode if batch.mode != "global" else "global"
            dtype = kernels.linear_dtype(
                self.config.model, bucket.q.shape[1], bucket.r.shape[1],
                batch.wide_dtype)
            return self.obs.profiler.phase(
                f"linear.{kind}[{np.dtype(dtype).name}]")
        return self.obs.profiler.phase(f"{batch.algorithm}[int64]")

    def _vector_score(self, bucket: PairBatch,
                      results: list[AlignerResult | None]) -> None:
        batch = self.batch
        model = self.config.model
        observing = self.obs.enabled
        q_len, r_len = bucket.q_len, bucket.r_len
        if batch.mode in ("local", "semiglobal") or \
                batch.algorithm == "full":
            kind = batch.mode if batch.mode != "global" else "global"
            with self._kernel_phase(bucket):
                scores = kernels.sweep_linear(
                    bucket, model, kind, keep=False,
                    force_wide=batch.wide_dtype)
                if observing:
                    dtype = kernels.linear_dtype(
                        model, bucket.q.shape[1], bucket.r.shape[1],
                        batch.wide_dtype)
                    self._account(self._pair_cells(bucket),
                                  np.dtype(dtype).itemsize)
            for b, position in enumerate(bucket.index):
                n, m = int(q_len[b]), int(r_len[b])
                stats = DPStats(cells_computed=n * m, cells_stored=m + 1,
                                blocks=1)
                results[position] = AlignerResult(
                    alignment=None, score=int(scores[b]), stats=stats)
        elif batch.algorithm == "affine":
            with self._kernel_phase(bucket):
                scores = kernels.sweep_affine(bucket, model,
                                              batch.affine_penalties,
                                              keep=False)
                if observing:
                    self._account(3 * self._pair_cells(bucket), 8)
            for b, position in enumerate(bucket.index):
                n, m = int(q_len[b]), int(r_len[b])
                stats = DPStats(cells_computed=3 * n * m,
                                cells_stored=3 * (m + 1), blocks=1)
                results[position] = AlignerResult(
                    alignment=None, score=int(scores[b]), stats=stats)
        elif batch.algorithm == "banded":
            with self._kernel_phase(bucket):
                scores, cells, widths = kernels.sweep_banded(
                    bucket, model, batch.band_width, batch.band_fraction,
                    keep=False)
                if observing:
                    self._account(int(np.sum(cells)), 8)
            for b, position in enumerate(bucket.index):
                stats = DPStats(cells_computed=int(cells[b]),
                                cells_stored=int(widths[b]), blocks=1)
                failed = int(scores[b]) <= kernels.PRUNE_FLOOR
                results[position] = AlignerResult(
                    alignment=None,
                    score=None if failed else int(scores[b]),
                    stats=stats, failed=failed,
                    failure_reason="band too narrow" if failed else "")
        else:  # xdrop
            with self._kernel_phase(bucket):
                scores, cells, widths, failed = kernels.sweep_xdrop(
                    bucket, model, batch.xdrop, batch.xdrop_fraction,
                    keep=False)
                if observing:
                    self._account(int(np.sum(cells)), 8)
            for b, position in enumerate(bucket.index):
                stats = DPStats(cells_computed=int(cells[b]),
                                cells_stored=int(widths[b]), blocks=1)
                bad = bool(failed[b])
                results[position] = AlignerResult(
                    alignment=None, score=None if bad else int(scores[b]),
                    stats=stats, failed=bad,
                    failure_reason="alignment dropped" if bad else "")

    # Traceback kernels: full matrices per chunk, then the *shared*
    # scalar traceback over each pair's true-size slice.

    def _vector_align(self, bucket: PairBatch,
                      results: list[AlignerResult | None]) -> None:
        batch = self.batch
        model = self.config.model
        observing = self.obs.enabled
        profiler = self.obs.profiler
        q_len, r_len = bucket.q_len, bucket.r_len

        def pair_view(b: int) -> tuple[np.ndarray, np.ndarray, int, int]:
            n, m = int(q_len[b]), int(r_len[b])
            return bucket.q[b, :n], bucket.r[b, :m], n, m

        if batch.mode in ("local", "semiglobal") or \
                batch.algorithm == "full":
            kind = batch.mode if batch.mode != "global" else "global"
            with self._kernel_phase(bucket):
                matrices = kernels.sweep_linear(
                    bucket, model, kind, keep=True,
                    force_wide=batch.wide_dtype)
                if observing:
                    self._account(self._pair_cells(bucket),
                                  matrices.dtype.itemsize)
            with profiler.phase("traceback"):
                for b, position in enumerate(bucket.index):
                    q_codes, r_codes, n, m = pair_view(b)
                    matrix = matrices[b, :n + 1, :m + 1]
                    with _tag_pair(position):
                        if kind == "global":
                            alignment = _global_traceback(matrix, q_codes,
                                                          r_codes, model)
                        elif kind == "local":
                            alignment = local_traceback(matrix, q_codes,
                                                        r_codes, model)
                        else:
                            alignment = semiglobal_traceback(
                                matrix, q_codes, r_codes, model)
                    stats = DPStats(cells_computed=n * m,
                                    cells_stored=n * m, blocks=1)
                    results[position] = AlignerResult(
                        alignment=alignment, score=alignment.score,
                        stats=stats)
        elif batch.algorithm == "affine":
            with self._kernel_phase(bucket):
                h, e, f = kernels.sweep_affine(bucket, model,
                                               batch.affine_penalties,
                                               keep=True)
                if observing:
                    self._account(3 * self._pair_cells(bucket), 8)
            with profiler.phase("traceback"):
                for b, position in enumerate(bucket.index):
                    q_codes, r_codes, n, m = pair_view(b)
                    with _tag_pair(position):
                        alignment = affine_traceback(
                            h[b, :n + 1, :m + 1], e[b, :n + 1, :m + 1],
                            f[b, :n + 1, :m + 1], q_codes, r_codes, model,
                            batch.affine_penalties)
                    stats = DPStats(cells_computed=3 * n * m,
                                    cells_stored=3 * n * m, blocks=1)
                    results[position] = AlignerResult(
                        alignment=alignment, score=alignment.score,
                        stats=stats)
        elif batch.algorithm == "banded":
            with self._kernel_phase(bucket):
                matrices, cells, widths = kernels.sweep_banded(
                    bucket, model, batch.band_width, batch.band_fraction,
                    keep=True)
                if observing:
                    self._account(int(np.sum(cells)), 8)
            with profiler.phase("traceback"):
                for b, position in enumerate(bucket.index):
                    q_codes, r_codes, n, m = pair_view(b)
                    stats = DPStats(cells_computed=int(cells[b]),
                                    cells_stored=int(cells[b]), blocks=1)
                    score = int(matrices[b, n, m])
                    if score <= kernels.PRUNE_FLOOR:
                        results[position] = AlignerResult(
                            alignment=None, score=None, stats=stats,
                            failed=True,
                            failure_reason="band excluded (n, m)")
                        continue
                    results[position] = _heuristic_traceback(
                        matrices[b, :n + 1, :m + 1], q_codes, r_codes,
                        model, score, stats)
        else:  # xdrop
            with self._kernel_phase(bucket):
                matrices, cells, widths, failed = kernels.sweep_xdrop(
                    bucket, model, batch.xdrop, batch.xdrop_fraction,
                    keep=True)
                if observing:
                    self._account(int(np.sum(cells)), 8)
            with profiler.phase("traceback"):
                for b, position in enumerate(bucket.index):
                    q_codes, r_codes, n, m = pair_view(b)
                    stats = DPStats(cells_computed=int(cells[b]),
                                    cells_stored=int(cells[b]), blocks=1)
                    if failed[b]:
                        results[position] = AlignerResult(
                            alignment=None, score=None, stats=stats,
                            failed=True, failure_reason="alignment dropped")
                        continue
                    results[position] = _heuristic_traceback(
                        matrices[b, :n + 1, :m + 1], q_codes, r_codes,
                        model, int(matrices[b, n, m]), stats)


def _global_traceback(matrix: np.ndarray, q_codes: np.ndarray,
                      r_codes: np.ndarray, model) -> Alignment:
    from repro.dp.traceback import alignment_from_matrix
    return alignment_from_matrix(matrix, q_codes, r_codes, model)


def _heuristic_traceback(matrix: np.ndarray, q_codes: np.ndarray,
                         r_codes: np.ndarray, model, score: int,
                         stats: DPStats) -> AlignerResult:
    """Banded/X-drop traceback with the same failure semantics as the
    scalar aligners (a pruned path surfaces as a failed result)."""
    try:
        cigar, path = traceback_full(matrix, q_codes, r_codes, model)
    except AlignmentError as exc:
        return AlignerResult(alignment=None, score=score, stats=stats,
                             failed=True, failure_reason=str(exc))
    alignment = Alignment(score=score, cigar=cigar, query_len=len(q_codes),
                          ref_len=len(r_codes),
                          meta={"path_cells": len(path)})
    return AlignerResult(alignment=alignment, score=score, stats=stats)
