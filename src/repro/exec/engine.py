"""Batched alignment engine: scalar loop or vectorized NumPy kernels.

:class:`BatchEngine` runs many independent (query, reference) pairs
through one alignment configuration. The ``scalar`` engine simply loops
the existing per-pair aligners; the ``vector`` engine buckets pairs by
length (:mod:`repro.exec.buckets`) and sweeps each bucket with the
batched kernels (:mod:`repro.exec.kernels`). Both return the *same*
``AlignerResult`` objects -- scores, CIGARs, stats, and failure reasons
are bit-identical, which the conformance and property suites enforce.

Multi-process sharding (``BatchConfig.workers > 1``) lives in
:mod:`repro.exec.sharding`.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass

import numpy as np

from repro.algorithms.affine import (
    AffineAligner,
    AffineGapPenalties,
    affine_traceback,
)
from repro.algorithms.banded import BandedAligner
from repro.algorithms.base import Aligner, AlignerResult, DPStats
from repro.algorithms.full import FullAligner
from repro.algorithms.local import (
    LocalAligner,
    SemiGlobalAligner,
    _require_positive_scores,
    local_traceback,
    semiglobal_traceback,
)
from repro.algorithms.wavefront import _check_edit_model
from repro.algorithms.xdrop import XdropAligner
from repro.config import AlignmentConfig
from repro.dp.alignment import Alignment
from repro.dp.traceback import alignment_from_matrix, traceback_full
from repro.errors import AlignmentError, ConfigurationError
from repro.exec import bitparallel as bitparallel_kernel
from repro.exec import kernels, planner as planning
from repro.exec import wavefront as wavefront_kernel
from repro.exec.buckets import PairBatch, bucketize
from repro.exec.planner import PlannerPolicy
from repro.obs import Observability, get_obs
from repro.resilience import chaos
from repro.resilience.deadline import Deadline

ENGINES = ("scalar", "vector", "wavefront", "bitparallel", "auto")
MODES = ("global", "local", "semiglobal")
ALGORITHMS = ("full", "affine", "banded", "xdrop")


@dataclass(frozen=True)
class BatchConfig:
    """How a batch of alignments is executed.

    Attributes:
        engine: ``"vector"`` (batched NumPy kernels, the default),
            ``"scalar"`` (loop the per-pair aligners), ``"wavefront"``
            (batched O(n*s) wavefront sweep; unit-cost edit model and
            global/full only, bit-identical to the scalar
            ``WavefrontAligner``), ``"bitparallel"`` (batched
            blocked-Myers bit-parallel sweep, 64 DP rows per uint64
            lane; unit-cost edit model, global/full, *score only* --
            ``traceback=True`` raises) or ``"auto"`` (the adaptive
            planner: per-pair routing between wavefront, certified
            banded, bit-parallel and full kernels, bit-identical to
            the full vector engine).
        mode: ``"global"``, ``"local"`` or ``"semiglobal"``; the latter
            two require ``algorithm="full"``.
        algorithm: ``"full"``, ``"affine"``, ``"banded"`` or
            ``"xdrop"`` (global mode only for the last three).
        traceback: Produce full alignments (CIGARs) instead of scores.
        workers: Shard across this many worker processes when > 1.
        bucket_granularity: Length rounding for bucket keys.
        max_batch_cells: Cap on resident DP cells per vectorized
            traceback chunk (bounds memory for full-matrix mode).
        band_width / band_fraction: Banded half-width (exactly one).
        xdrop / xdrop_fraction: X-drop threshold (exactly one).
        affine_penalties: Gap parameters for ``algorithm="affine"``.
        deadline_s: Cooperative per-call budget: the engine checks the
            clock between buckets (vector) / pairs (scalar) and raises
            :class:`~repro.errors.DeadlineExceeded` once it expires.
            For partial results instead of a raise, run through the
            supervised layer (:mod:`repro.resilience`).
        wide_dtype: Force the vectorized kernels onto full-width int64
            rows, bypassing the int-narrowed fast path (the
            degradation ladder sets this after a range/overflow trip).
        wavefront_max_score: Distance cap of the ``"wavefront"``
            engine's sweep; pairs whose edit distance exceeds it fall
            back to the full vector kernel (the scalar aligner raises
            instead). ``None`` never caps.
        planner: Routing policy of the ``"auto"`` engine; ``None``
            uses :class:`~repro.exec.planner.PlannerPolicy` defaults.
    """

    engine: str = "vector"
    mode: str = "global"
    algorithm: str = "full"
    traceback: bool = True
    workers: int = 1
    bucket_granularity: int = 16
    max_batch_cells: int = 8_000_000
    band_width: int | None = None
    band_fraction: float | None = None
    xdrop: int | None = None
    xdrop_fraction: float | None = None
    affine_penalties: AffineGapPenalties | None = None
    deadline_s: float | None = None
    wide_dtype: bool = False
    wavefront_max_score: int | None = None
    planner: PlannerPolicy | None = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; choose from {ENGINES}")
        if self.mode not in MODES:
            raise ConfigurationError(
                f"unknown mode {self.mode!r}; choose from {MODES}")
        if self.algorithm not in ALGORITHMS:
            raise ConfigurationError(
                f"unknown algorithm {self.algorithm!r}; choose from "
                f"{ALGORITHMS}")
        if self.mode != "global" and self.algorithm != "full":
            raise ConfigurationError(
                f"mode {self.mode!r} only supports algorithm='full', "
                f"got {self.algorithm!r}")
        if self.algorithm == "banded" and \
                (self.band_width is None) == (self.band_fraction is None):
            raise ConfigurationError(
                "banded batches need exactly one of band_width / "
                "band_fraction")
        if self.algorithm == "xdrop" and \
                (self.xdrop is None) == (self.xdrop_fraction is None):
            raise ConfigurationError(
                "xdrop batches need exactly one of xdrop / xdrop_fraction")
        if self.algorithm == "affine" and self.affine_penalties is None:
            raise ConfigurationError(
                "algorithm='affine' needs affine_penalties")
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}")
        if self.max_batch_cells < 1:
            raise ConfigurationError(
                f"max_batch_cells must be >= 1, got {self.max_batch_cells}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"deadline_s must be > 0 seconds, got {self.deadline_s}")
        if self.engine in ("wavefront", "bitparallel", "auto"):
            if self.mode != "global" or self.algorithm != "full":
                raise ConfigurationError(
                    f"engine {self.engine!r} supports mode='global' with "
                    f"algorithm='full' only, got mode={self.mode!r}, "
                    f"algorithm={self.algorithm!r}")
        if self.engine == "bitparallel" and self.traceback:
            raise ConfigurationError(
                "engine 'bitparallel' is score-only (the bit vectors "
                "carry no path state); set traceback=False or use "
                "engine='wavefront' / 'auto' for CIGARs")
        if self.wavefront_max_score is not None and \
                self.wavefront_max_score < 1:
            raise ConfigurationError(
                "wavefront_max_score must be >= 1, got "
                f"{self.wavefront_max_score}")


def make_scalar_aligner(batch: BatchConfig) -> Aligner:
    """The per-pair aligner a batch configuration corresponds to."""
    if batch.mode == "local":
        return LocalAligner()
    if batch.mode == "semiglobal":
        return SemiGlobalAligner()
    if batch.algorithm == "full":
        return FullAligner()
    if batch.algorithm == "affine":
        return AffineAligner(batch.affine_penalties)
    if batch.algorithm == "banded":
        return BandedAligner(width=batch.band_width,
                             fraction=batch.band_fraction)
    return XdropAligner(xdrop=batch.xdrop, fraction=batch.xdrop_fraction)


@contextlib.contextmanager
def _tag_pair(index: int):
    """Stamp the batch position onto heuristic AlignmentErrors so the
    supervised layer can quarantine the one poison pair instead of
    bisecting the whole shard."""
    try:
        yield
    except AlignmentError as exc:
        if exc.pair_index is None:
            exc.pair_index = index
        raise


def _as_pairs(pairs) -> list[tuple[np.ndarray, np.ndarray]]:
    coerced = []
    for q_codes, r_codes in pairs:
        coerced.append((np.asarray(q_codes, dtype=np.uint8),
                        np.asarray(r_codes, dtype=np.uint8)))
    return coerced


class BatchEngine:
    """Executes batches of pairwise alignments under one scoring model.

    Args:
        config: The alignment problem (alphabet + scoring model).
        batch: Execution policy; defaults to the vector engine with
            tracebacks in global/full mode.
        obs: Observability context; defaults to the process-global one.
    """

    def __init__(self, config: AlignmentConfig,
                 batch: BatchConfig | None = None,
                 obs: Observability | None = None) -> None:
        self.config = config
        self.batch = batch or BatchConfig()
        self.obs = obs or get_obs()

    # -- public entry point ------------------------------------------------

    def run(self, pairs) -> list[AlignerResult]:
        """Align every (query_codes, reference_codes) pair.

        Results come back in submission order regardless of bucketing
        or sharding. An empty request returns an empty list.
        """
        pairs = _as_pairs(pairs)
        if not pairs:
            return []
        batch = self.batch
        deadline = Deadline.after(batch.deadline_s)
        events = self.obs.events
        if events.enabled:
            events.emit("batch_start", engine=batch.engine,
                        mode=batch.mode, algorithm=batch.algorithm,
                        traceback=batch.traceback, pairs=len(pairs))
        started = time.perf_counter()
        sharded = batch.workers > 1 and len(pairs) > 1
        # A sharded parent mostly *waits* on the pool, so its phase
        # lives outside the ``exec`` subtree CostModel calibrates from;
        # the workers' own ``exec.*`` stacks merge in with the real
        # compute time.
        phase_name = "sharding.pool" if sharded else f"exec.{batch.engine}"
        with self.obs.tracer.host_span(
                "exec.run", engine=batch.engine, mode=batch.mode,
                algorithm=batch.algorithm, pairs=len(pairs)), \
                self.obs.profiler.phase(phase_name):
            if sharded:
                from repro.exec.sharding import run_sharded
                results = run_sharded(self.config, batch, pairs, self.obs)
            else:
                if batch.engine == "scalar":
                    results = self._run_scalar(pairs, deadline)
                elif batch.engine == "wavefront":
                    results = self._run_wavefront(pairs, deadline)
                elif batch.engine == "bitparallel":
                    results = self._run_bitparallel(pairs, deadline)
                elif batch.engine == "auto":
                    results = self._run_auto(pairs, deadline)
                else:
                    results = self._run_vector(pairs, deadline)
                # Fault-injection hook: a no-op unless a chaos plan is
                # active for this execution. Sharded runs inject inside
                # each worker's inline engine instead.
                chaos.apply_to_results(pairs, results)
        elapsed = time.perf_counter() - started
        if not sharded:
            # Sharded runs report per shard (worker snapshots merge
            # into this registry), so the parent skips batch-level
            # counters to keep exec.pairs an exactly-once total.
            metrics = self.obs.metrics
            metrics.counter("exec.pairs",
                            engine=batch.engine).inc(len(pairs))
            metrics.counter("exec.batches", engine=batch.engine).inc()
            if elapsed > 0:
                metrics.distribution(
                    "exec.pairs_per_sec",
                    engine=batch.engine).observe(len(pairs) / elapsed)
            metrics.distribution(
                "exec.batch_latency_us",
                engine=batch.engine).observe(elapsed * 1e6)
            if metrics.enabled:
                # Per-pair work distribution: cells_computed is derived
                # from sequence lengths, never sampled, so the digest
                # merged from sharded workers is reproducible and its
                # percentiles match an offline pass over the union.
                cells_dist = metrics.distribution("exec.pair_cells",
                                                  engine=batch.engine)
                for result in results:
                    if result is not None:
                        cells_dist.observe(result.stats.cells_computed)
        if events.enabled:
            events.emit("batch_end", engine=batch.engine,
                        pairs=len(pairs), elapsed_s=round(elapsed, 6))
        return results

    # -- work accounting ---------------------------------------------------

    def _latency_instruments(self, engine: str):
        """The (bucket, pair) latency distributions for one engine."""
        metrics = self.obs.metrics
        return (metrics.distribution("exec.bucket_latency_us",
                                     engine=engine),
                metrics.distribution("exec.pair_latency_us",
                                     engine=engine))

    @staticmethod
    def _observe_bucket_latency(bucket_lat, pair_lat, started: float,
                                size: int) -> None:
        """Record one bucket's wall time and its amortized per-pair
        latency (weighted by pair count so merged percentiles stay
        consistent with pair totals)."""
        elapsed_us = (time.perf_counter() - started) * 1e6
        bucket_lat.observe(elapsed_us)
        if size > 0:
            pair_lat.observe(elapsed_us / size, count=size)

    def _account(self, cells: int, itemsize: int,
                 nbytes: int | None = None) -> None:
        """Attribute deterministic work units to the open profiler
        phase *and* the metric counters with one number, so flamegraph
        totals reconcile exactly with ``exec.cells``. ``nbytes``
        overrides the ``cells * itemsize`` default for kernels whose
        traffic is not proportional to cells (the bit-parallel sweep
        moves 3 words per 64-cell block step)."""
        if nbytes is None:
            nbytes = cells * itemsize
        self.obs.profiler.work(cells=cells, bytes_moved=nbytes)
        engine = self.batch.engine
        self.obs.metrics.counter("exec.cells", engine=engine).inc(cells)
        self.obs.metrics.counter("exec.bytes_moved",
                                 engine=engine).inc(nbytes)

    # -- scalar path -------------------------------------------------------

    def _run_scalar(self, pairs,
                    deadline: Deadline = Deadline.unbounded(),
                    ) -> list[AlignerResult]:
        aligner = make_scalar_aligner(self.batch)
        model = self.config.model
        batch = self.batch
        observing = self.obs.enabled
        label = batch.mode if batch.mode != "global" else batch.algorithm
        events = self.obs.events
        stride = max(1, min(64, len(pairs) // 8 or 1))
        latency = self.obs.metrics.distribution("exec.pair_latency_us",
                                                engine="scalar")
        clock = time.perf_counter
        results = []
        for index, (q_codes, r_codes) in enumerate(pairs):
            deadline.check("scalar batch")
            pair_started = clock()
            with _tag_pair(index), \
                    self.obs.profiler.phase(f"pair.{label}"):
                if batch.traceback:
                    result = aligner.align(q_codes, r_codes, model)
                else:
                    result = aligner.compute_score(q_codes, r_codes, model)
                if observing:
                    self._account(result.stats.cells_computed, 8)
            latency.observe((clock() - pair_started) * 1e6)
            results.append(result)
            if events.enabled and (index + 1) % stride == 0:
                events.emit("progress", engine="scalar",
                            done=index + 1, total=len(pairs))
        return results

    # -- vector path -------------------------------------------------------

    def _run_vector(self, pairs,
                    deadline: Deadline = Deadline.unbounded(),
                    ) -> list[AlignerResult]:
        batch = self.batch
        model = self.config.model
        if batch.mode == "local":
            _require_positive_scores(model)
        results: list[AlignerResult | None] = [None] * len(pairs)
        matrices_per_cell = 3 if batch.algorithm == "affine" else 1
        events = self.obs.events
        bucket_lat, pair_lat = self._latency_instruments("vector")
        done = 0
        for bucket in bucketize(pairs, batch.bucket_granularity):
            deadline.check("vector batch")
            self.obs.metrics.distribution(
                "exec.bucket_fill").observe(bucket.fill_ratio)
            bucket_started = time.perf_counter()
            with self.obs.tracer.host_span(
                    "exec.bucket", pairs=bucket.size, n=bucket.n_max,
                    m=bucket.m_max), \
                    self.obs.profiler.phase(
                        f"bucket[{bucket.n_max}x{bucket.m_max}]"):
                if batch.traceback:
                    cells = matrices_per_cell * (bucket.n_max + 1) \
                        * (bucket.m_max + 1)
                    chunk = max(1, batch.max_batch_cells // cells)
                    for piece in bucket.slices(chunk):
                        self._vector_align(piece, results)
                else:
                    self._vector_score(bucket, results)
            self._observe_bucket_latency(bucket_lat, pair_lat,
                                         bucket_started, bucket.size)
            done += bucket.size
            if events.enabled:
                events.emit("progress", engine="vector", done=done,
                            total=len(pairs), bucket=f"{bucket.n_max}x"
                            f"{bucket.m_max}")
        return results

    # -- wavefront path ----------------------------------------------------

    def _wavefront_empty(self, bucket: PairBatch,
                         results: list[AlignerResult | None]) -> None:
        """Zero-length pairs, answered exactly as the scalar
        ``WavefrontAligner``'s native empty path answers them."""
        for b, position in enumerate(bucket.index):
            n, m = int(bucket.q_len[b]), int(bucket.r_len[b])
            score = -(n + m)
            stats = DPStats(blocks=1)
            if self.batch.traceback:
                cigar = [(m, "D")] if m else ([(n, "I")] if n else [])
                alignment = Alignment(score=score, cigar=cigar,
                                      query_len=n, ref_len=m,
                                      meta={"path_cells": n + m + 1})
                results[position] = AlignerResult(
                    alignment=alignment, score=score, stats=stats)
            else:
                results[position] = AlignerResult(
                    alignment=None, score=score, stats=stats)

    def _run_wavefront(self, pairs,
                       deadline: Deadline = Deadline.unbounded(),
                       ) -> list[AlignerResult]:
        """Batched wavefront sweep; scores, CIGARs and stats are
        bit-identical to the scalar ``WavefrontAligner``. Pairs that
        blow ``wavefront_max_score`` fall back to the full vector
        kernel (exact score, canonical full-matrix CIGAR)."""
        batch = self.batch
        _check_edit_model(self.config.model)
        events = self.obs.events
        results: list[AlignerResult | None] = [None] * len(pairs)
        fallback: list[int] = []
        bucket_lat, pair_lat = self._latency_instruments("wavefront")
        done = 0
        for bucket in bucketize(pairs, batch.bucket_granularity):
            deadline.check("wavefront batch")
            self.obs.metrics.distribution(
                "exec.bucket_fill").observe(bucket.fill_ratio)
            bucket_started = time.perf_counter()
            with self.obs.tracer.host_span(
                    "exec.bucket", pairs=bucket.size, n=bucket.n_max,
                    m=bucket.m_max), \
                    self.obs.profiler.phase(
                        f"bucket[{bucket.n_max}x{bucket.m_max}]"):
                if bucket.n_max == 0 or bucket.m_max == 0:
                    self._wavefront_empty(bucket, results)
                else:
                    # Wavefront history is O(B * s^2); bound resident
                    # memory by the worst case s ~ n + m.
                    span = bucket.n_max + bucket.m_max + 1
                    per_pair = span * span if batch.traceback else span
                    chunk = max(1, batch.max_batch_cells // per_pair)
                    for piece in bucket.slices(chunk):
                        fallback.extend(
                            self._wavefront_piece(piece, results))
            self._observe_bucket_latency(bucket_lat, pair_lat,
                                         bucket_started, bucket.size)
            done += bucket.size
            if events.enabled:
                events.emit("progress", engine="wavefront", done=done,
                            total=len(pairs), bucket=f"{bucket.n_max}x"
                            f"{bucket.m_max}")
        if fallback:
            self.obs.metrics.counter(
                "exec.wavefront.fallbacks").inc(len(fallback))
            sub = self._run_vector([pairs[p] for p in fallback], deadline)
            for position, result in zip(fallback, sub):
                results[position] = result
        return results

    def _wavefront_piece(self, bucket: PairBatch,
                         results: list[AlignerResult | None]) -> list[int]:
        """Sweep one bucket slice; returns the positions that exceeded
        the distance cap and need the full-kernel fallback."""
        batch = self.batch
        with self.obs.profiler.phase("linear.wavefront"):
            sweep = wavefront_kernel.sweep_wavefront(
                bucket, self.config.model,
                max_score=batch.wavefront_max_score,
                keep=batch.traceback)
            if self.obs.enabled:
                self._account(int(np.sum(sweep.cells)), 8)
        fallback: list[int] = []
        q_len, r_len = bucket.q_len, bucket.r_len
        if batch.traceback:
            with self.obs.profiler.phase("traceback"):
                for b, position in enumerate(bucket.index):
                    position = int(position)
                    if sweep.exceeded[b]:
                        fallback.append(position)
                        continue
                    n, m = int(q_len[b]), int(r_len[b])
                    distance = int(sweep.distance[b])
                    with _tag_pair(position):
                        cigar = wavefront_kernel.wavefront_cigar(
                            sweep, b, n, m)
                    alignment = Alignment(score=-distance, cigar=cigar,
                                          query_len=n, ref_len=m)
                    stats = DPStats(cells_computed=int(sweep.cells[b]),
                                    cells_stored=int(sweep.stored[b]),
                                    blocks=1)
                    results[position] = AlignerResult(
                        alignment=alignment, score=-distance, stats=stats)
        else:
            for b, position in enumerate(bucket.index):
                position = int(position)
                if sweep.exceeded[b]:
                    fallback.append(position)
                    continue
                distance = int(sweep.distance[b])
                stats = DPStats(cells_computed=int(sweep.cells[b]),
                                cells_stored=2 * int(sweep.peak[b]),
                                blocks=1)
                results[position] = AlignerResult(
                    alignment=None, score=-distance, stats=stats)
        return fallback

    # -- bit-parallel path -------------------------------------------------

    def _run_bitparallel(self, pairs,
                         deadline: Deadline = Deadline.unbounded(),
                         ) -> list[AlignerResult]:
        """Batched blocked-Myers bit-parallel sweep (64 DP rows per
        uint64 lane, all pairs of a bucket per NumPy op). Score-only;
        distances are bit-identical to ``myers_edit_distance`` and the
        scalar ``WavefrontAligner`` at any divergence."""
        batch = self.batch
        _check_edit_model(self.config.model, "engine 'bitparallel'")
        events = self.obs.events
        results: list[AlignerResult | None] = [None] * len(pairs)
        bucket_lat, pair_lat = self._latency_instruments("bitparallel")
        done = 0
        for bucket in bucketize(pairs, batch.bucket_granularity):
            deadline.check("bitparallel batch")
            self.obs.metrics.distribution(
                "exec.bucket_fill").observe(bucket.fill_ratio)
            bucket_started = time.perf_counter()
            with self.obs.tracer.host_span(
                    "exec.bucket", pairs=bucket.size, n=bucket.n_max,
                    m=bucket.m_max), \
                    self.obs.profiler.phase(
                        f"bucket[{bucket.n_max}x{bucket.m_max}]"):
                if bucket.n_max == 0 or bucket.m_max == 0:
                    self._wavefront_empty(bucket, results)
                else:
                    self._bitparallel_bucket(bucket, results)
            self._observe_bucket_latency(bucket_lat, pair_lat,
                                         bucket_started, bucket.size)
            done += bucket.size
            if events.enabled:
                events.emit("progress", engine="bitparallel", done=done,
                            total=len(pairs), bucket=f"{bucket.n_max}x"
                            f"{bucket.m_max}")
        return results

    def _bitparallel_bucket(self, bucket: PairBatch,
                            results: list[AlignerResult | None]) -> None:
        """Sweep one bucket and store its score-only results."""
        n_symbols = self.config.alphabet.size
        with self.obs.profiler.phase("linear.bitparallel"):
            sweep = bitparallel_kernel.sweep_bitparallel(
                bucket, n_symbols=n_symbols)
            if self.obs.enabled:
                # Real traffic is per lane-word block step, not per
                # cell: 3 words (Eq gather + Pv/Mv read-modify-write)
                # cover 64 DP cells each.
                self._account(
                    int(np.sum(sweep.cells)), 8,
                    nbytes=bitparallel_kernel.WORDS_PER_BLOCK_STEP * 8
                    * int(np.sum(sweep.words)))
        state_words = bitparallel_kernel.WORDS_PER_BLOCK_STATE + n_symbols
        for b, position in enumerate(bucket.index):
            distance = int(sweep.distance[b])
            blocks = int(sweep.blocks[b])
            stats = DPStats(cells_computed=int(sweep.cells[b]),
                            cells_stored=blocks * state_words,
                            blocks=max(1, blocks))
            results[int(position)] = AlignerResult(
                alignment=None, score=-distance, stats=stats)

    # -- adaptive planner path ---------------------------------------------

    def _run_auto(self, pairs,
                  deadline: Deadline = Deadline.unbounded(),
                  ) -> list[AlignerResult]:
        """Adaptive planner: route each pair to the cheapest exact
        kernel. Scores, CIGARs and meta are bit-identical to the full
        vector engine; only ``DPStats`` reflect the (smaller) work
        actually done. Each route re-buckets its own pairs, so kernels
        keep dense buckets after routing."""
        batch = self.batch
        policy = batch.planner or PlannerPolicy()
        with self.obs.profiler.phase("exec.plan"):
            routes, estimates = planning.plan_routes(
                pairs, self.config.model, policy,
                traceback=batch.traceback)
        metrics = self.obs.metrics
        counts = {route: 0 for route in planning.ROUTES}
        for route in routes:
            counts[route] += 1
        for route, count in counts.items():
            if count:
                metrics.counter(f"exec.plan.{route}").inc(count)
        events = self.obs.events
        if events.enabled:
            events.emit("plan", pairs=len(pairs), **counts)
        results: list[AlignerResult | None] = [None] * len(pairs)
        demoted: list[int] = []
        wavefront_pos = [p for p, route in enumerate(routes)
                         if route == planning.ROUTE_WAVEFRONT]
        banded_pos = [p for p, route in enumerate(routes)
                      if route == planning.ROUTE_BANDED]
        bitparallel_pos = [p for p, route in enumerate(routes)
                           if route == planning.ROUTE_BITPARALLEL]
        full_pos = [p for p, route in enumerate(routes)
                    if route == planning.ROUTE_FULL]
        if wavefront_pos:
            demoted.extend(self._auto_wavefront(
                pairs, wavefront_pos, estimates, results, deadline))
        if banded_pos:
            demoted.extend(self._auto_banded(
                pairs, banded_pos, estimates, results, deadline))
        if bitparallel_pos:
            self._auto_bitparallel(pairs, bitparallel_pos, results,
                                   deadline)
        if demoted:
            metrics.counter("exec.plan.demoted").inc(len(demoted))
            full_pos.extend(demoted)
        if full_pos:
            sub = self._run_vector([pairs[p] for p in full_pos], deadline)
            for position, result in zip(full_pos, sub):
                results[position] = result
        return results

    def _auto_wavefront(self, pairs, positions: list[int],
                        estimates: list[int],
                        results: list[AlignerResult | None],
                        deadline: Deadline) -> list[int]:
        """Wavefront-routed pairs: sweep for the exact distance (capped
        probe), then -- in traceback mode -- replay each pair through a
        banded corridor certified by that distance, so the canonical
        traceback equals the full-matrix traceback bit for bit.
        Returns positions demoted to the full kernel."""
        batch = self.batch
        model = self.config.model
        policy = batch.planner or PlannerPolicy()
        demoted: list[int] = []
        certified: list[tuple[int, int]] = []
        sub_pairs = [pairs[p] for p in positions]
        for bucket in bucketize(sub_pairs, batch.bucket_granularity):
            deadline.check("auto wavefront bucket")
            cap = policy.probe_slack * max(
                8, max(estimates[positions[int(local)]]
                       for local in bucket.index))
            with self.obs.profiler.phase(
                    f"bucket[{bucket.n_max}x{bucket.m_max}]"), \
                    self.obs.profiler.phase("linear.wavefront"):
                sweep = wavefront_kernel.sweep_wavefront(
                    bucket, model, max_score=cap, keep=False)
                if self.obs.enabled:
                    self._account(int(np.sum(sweep.cells)), 8)
            for b, local in enumerate(bucket.index):
                position = positions[int(local)]
                if sweep.exceeded[b]:
                    demoted.append(position)
                    continue
                distance = int(sweep.distance[b])
                if batch.traceback:
                    certified.append((position, distance))
                else:
                    stats = DPStats(cells_computed=int(sweep.cells[b]),
                                    cells_stored=2 * int(sweep.peak[b]),
                                    blocks=1)
                    results[position] = AlignerResult(
                        alignment=None, score=-distance, stats=stats)
        if certified:
            groups: dict[int, list[tuple[int, int]]] = {}
            for position, distance in certified:
                q_codes, r_codes = pairs[position]
                n, m = len(q_codes), len(r_codes)
                half = planning.certified_half_width(model, n, m, -distance)
                if half is None or half >= min(n, m):
                    demoted.append(position)
                    continue
                groups.setdefault(planning.width_class(half),
                                  []).append((position, distance))
            for half, members in sorted(groups.items()):
                demoted.extend(self._banded_exact(
                    pairs, members, half, results, deadline))
        return demoted

    def _auto_bitparallel(self, pairs, positions: list[int],
                          results: list[AlignerResult | None],
                          deadline: Deadline) -> None:
        """Bit-parallel-routed pairs (score-only edit pairs too
        divergent for the wavefront): exact at any divergence, so --
        unlike the other routes -- nothing ever demotes."""
        batch = self.batch
        n_symbols = self.config.alphabet.size
        state_words = bitparallel_kernel.WORDS_PER_BLOCK_STATE + n_symbols
        sub_pairs = [pairs[p] for p in positions]
        for bucket in bucketize(sub_pairs, batch.bucket_granularity):
            deadline.check("auto bitparallel bucket")
            with self.obs.profiler.phase(
                    f"bucket[{bucket.n_max}x{bucket.m_max}]"), \
                    self.obs.profiler.phase("linear.bitparallel"):
                try:
                    sweep = bitparallel_kernel.sweep_bitparallel(
                        bucket, n_symbols=n_symbols)
                except AlignmentError as exc:
                    if exc.pair_index is not None:
                        # The kernel tags the bucket-local position;
                        # lift it to the submission index so the
                        # supervised layer quarantines the right pair.
                        exc.pair_index = positions[exc.pair_index]
                    raise
                if self.obs.enabled:
                    self._account(
                        int(np.sum(sweep.cells)), 8,
                        nbytes=bitparallel_kernel.WORDS_PER_BLOCK_STEP
                        * 8 * int(np.sum(sweep.words)))
            for b, local in enumerate(bucket.index):
                position = positions[int(local)]
                distance = int(sweep.distance[b])
                blocks = int(sweep.blocks[b])
                stats = DPStats(cells_computed=int(sweep.cells[b]),
                                cells_stored=blocks * state_words,
                                blocks=max(1, blocks))
                results[position] = AlignerResult(
                    alignment=None, score=-distance, stats=stats)

    def _banded_exact(self, pairs, members: list[tuple[int, int]],
                      half: int, results: list[AlignerResult | None],
                      deadline: Deadline) -> list[int]:
        """Banded traceback replay at a pre-certified half-width;
        ``members`` carry the exact distance the corridor was certified
        against. Returns demoted positions (defensive only -- the
        certificate guarantees the replay matches)."""
        batch = self.batch
        model = self.config.model
        demoted: list[int] = []
        position_of = [position for position, _ in members]
        expected = dict(members)
        sub = [pairs[p] for p in position_of]
        for bucket in bucketize(sub, batch.bucket_granularity):
            deadline.check("auto banded bucket")
            per_pair = (bucket.n_max + 1) * (bucket.m_max + 1)
            chunk = max(1, batch.max_batch_cells // per_pair)
            for piece in bucket.slices(chunk):
                with self.obs.profiler.phase(
                        f"bucket[{bucket.n_max}x{bucket.m_max}]"):
                    with self.obs.profiler.phase("banded[int64]"):
                        matrices, cells, _ = kernels.sweep_banded(
                            piece, model, half, None, keep=True)
                        if self.obs.enabled:
                            self._account(int(np.sum(cells)), 8)
                    with self.obs.profiler.phase("traceback"):
                        for b, local in enumerate(piece.index):
                            position = position_of[int(local)]
                            q_codes, r_codes = pairs[position]
                            n, m = len(q_codes), len(r_codes)
                            score = int(matrices[b, n, m])
                            if score <= kernels.PRUNE_FLOOR or \
                                    score != -expected[position]:
                                demoted.append(position)
                                continue
                            with _tag_pair(position):
                                alignment = alignment_from_matrix(
                                    matrices[b, :n + 1, :m + 1],
                                    q_codes, r_codes, model)
                            stats = DPStats(cells_computed=int(cells[b]),
                                            cells_stored=int(cells[b]),
                                            blocks=1)
                            results[position] = AlignerResult(
                                alignment=alignment,
                                score=alignment.score, stats=stats)
        return demoted

    def _auto_banded(self, pairs, positions: list[int],
                     estimates: list[int],
                     results: list[AlignerResult | None],
                     deadline: Deadline) -> list[int]:
        """Banded-routed pairs: estimated corridor, certificate-checked
        against the achieved score and widened (x2) until certified;
        hopeless pairs demote to the full kernel. Returns demoted
        positions."""
        batch = self.batch
        model = self.config.model
        policy = batch.planner or PlannerPolicy()
        demoted: list[int] = []
        pending: list[tuple[int, int]] = []
        for position in positions:
            q_codes, r_codes = pairs[position]
            n, m = len(q_codes), len(r_codes)
            half = planning.width_class(
                abs(m - n) + estimates[position] + policy.band_slack)
            if half >= min(n, m):
                demoted.append(position)
            else:
                pending.append((position, half))
        while pending:
            groups: dict[int, list[int]] = {}
            for position, half in pending:
                groups.setdefault(half, []).append(position)
            pending = []
            for half, members in sorted(groups.items()):
                retry = self._banded_try(pairs, members, half, results,
                                         deadline)
                for position in retry:
                    q_codes, r_codes = pairs[position]
                    wider = half * 2
                    if wider >= min(len(q_codes), len(r_codes)):
                        demoted.append(position)
                    else:
                        pending.append((position, wider))
        return demoted

    def _banded_try(self, pairs, positions: list[int], half: int,
                    results: list[AlignerResult | None],
                    deadline: Deadline) -> list[int]:
        """One banded attempt at ``half`` for ``positions``; fills in
        results whose band certificate holds and returns the rest."""
        batch = self.batch
        model = self.config.model
        retry: list[int] = []
        sub = [pairs[p] for p in positions]
        for bucket in bucketize(sub, batch.bucket_granularity):
            deadline.check("auto banded bucket")
            per_pair = (bucket.n_max + 1) * (bucket.m_max + 1)
            chunk = max(1, batch.max_batch_cells // per_pair) \
                if batch.traceback else bucket.size
            for piece in bucket.slices(max(1, chunk)):
                with self.obs.profiler.phase(
                        f"bucket[{bucket.n_max}x{bucket.m_max}]"):
                    with self.obs.profiler.phase("banded[int64]"):
                        swept, cells, widths = kernels.sweep_banded(
                            piece, model, half, None,
                            keep=batch.traceback)
                        if self.obs.enabled:
                            self._account(int(np.sum(cells)), 8)
                    retry.extend(self._absorb_banded(
                        pairs, positions, piece, swept, cells, widths,
                        half, results))
        return retry

    def _absorb_banded(self, pairs, positions: list[int],
                       piece: PairBatch, swept, cells, widths, half: int,
                       results: list[AlignerResult | None]) -> list[int]:
        """Certificate-check one banded sweep's pairs and store the
        proven-exact results; returns positions needing a wider band."""
        batch = self.batch
        model = self.config.model
        retry: list[int] = []
        for b, local in enumerate(piece.index):
            position = positions[int(local)]
            q_codes, r_codes = pairs[position]
            n, m = len(q_codes), len(r_codes)
            score = int(swept[b, n, m]) if batch.traceback \
                else int(swept[b])
            if score <= kernels.PRUNE_FLOOR or \
                    not planning.band_is_certified(model, n, m, score,
                                                   half):
                retry.append(position)
                continue
            if batch.traceback:
                with self.obs.profiler.phase("traceback"), \
                        _tag_pair(position):
                    alignment = alignment_from_matrix(
                        swept[b, :n + 1, :m + 1], q_codes, r_codes,
                        model)
                stats = DPStats(cells_computed=int(cells[b]),
                                cells_stored=int(cells[b]), blocks=1)
                results[position] = AlignerResult(
                    alignment=alignment, score=alignment.score,
                    stats=stats)
            else:
                stats = DPStats(cells_computed=int(cells[b]),
                                cells_stored=int(widths[b]), blocks=1)
                results[position] = AlignerResult(
                    alignment=None, score=score, stats=stats)
        return retry

    # Score-only kernels: rolling rows, one sweep per bucket.

    def _pair_cells(self, bucket: PairBatch) -> int:
        """Deterministic total of n*m over a bucket's true lengths."""
        return int(np.sum(bucket.q_len.astype(np.int64)
                          * bucket.r_len.astype(np.int64)))

    def _kernel_phase(self, bucket: PairBatch):
        """The profiler phase labeling this batch's kernel + dtype."""
        batch = self.batch
        if batch.mode in ("local", "semiglobal") or \
                batch.algorithm == "full":
            kind = batch.mode if batch.mode != "global" else "global"
            dtype = kernels.linear_dtype(
                self.config.model, bucket.q.shape[1], bucket.r.shape[1],
                batch.wide_dtype)
            return self.obs.profiler.phase(
                f"linear.{kind}[{np.dtype(dtype).name}]")
        return self.obs.profiler.phase(f"{batch.algorithm}[int64]")

    def _vector_score(self, bucket: PairBatch,
                      results: list[AlignerResult | None]) -> None:
        batch = self.batch
        model = self.config.model
        observing = self.obs.enabled
        q_len, r_len = bucket.q_len, bucket.r_len
        if batch.mode in ("local", "semiglobal") or \
                batch.algorithm == "full":
            kind = batch.mode if batch.mode != "global" else "global"
            with self._kernel_phase(bucket):
                scores = kernels.sweep_linear(
                    bucket, model, kind, keep=False,
                    force_wide=batch.wide_dtype)
                if observing:
                    dtype = kernels.linear_dtype(
                        model, bucket.q.shape[1], bucket.r.shape[1],
                        batch.wide_dtype)
                    self._account(self._pair_cells(bucket),
                                  np.dtype(dtype).itemsize)
            for b, position in enumerate(bucket.index):
                n, m = int(q_len[b]), int(r_len[b])
                stats = DPStats(cells_computed=n * m, cells_stored=m + 1,
                                blocks=1)
                results[position] = AlignerResult(
                    alignment=None, score=int(scores[b]), stats=stats)
        elif batch.algorithm == "affine":
            with self._kernel_phase(bucket):
                scores = kernels.sweep_affine(bucket, model,
                                              batch.affine_penalties,
                                              keep=False)
                if observing:
                    self._account(3 * self._pair_cells(bucket), 8)
            for b, position in enumerate(bucket.index):
                n, m = int(q_len[b]), int(r_len[b])
                stats = DPStats(cells_computed=3 * n * m,
                                cells_stored=3 * (m + 1), blocks=1)
                results[position] = AlignerResult(
                    alignment=None, score=int(scores[b]), stats=stats)
        elif batch.algorithm == "banded":
            with self._kernel_phase(bucket):
                scores, cells, widths = kernels.sweep_banded(
                    bucket, model, batch.band_width, batch.band_fraction,
                    keep=False)
                if observing:
                    self._account(int(np.sum(cells)), 8)
            for b, position in enumerate(bucket.index):
                stats = DPStats(cells_computed=int(cells[b]),
                                cells_stored=int(widths[b]), blocks=1)
                failed = int(scores[b]) <= kernels.PRUNE_FLOOR
                results[position] = AlignerResult(
                    alignment=None,
                    score=None if failed else int(scores[b]),
                    stats=stats, failed=failed,
                    failure_reason="band too narrow" if failed else "")
        else:  # xdrop
            with self._kernel_phase(bucket):
                scores, cells, widths, failed = kernels.sweep_xdrop(
                    bucket, model, batch.xdrop, batch.xdrop_fraction,
                    keep=False)
                if observing:
                    self._account(int(np.sum(cells)), 8)
            for b, position in enumerate(bucket.index):
                stats = DPStats(cells_computed=int(cells[b]),
                                cells_stored=int(widths[b]), blocks=1)
                bad = bool(failed[b])
                results[position] = AlignerResult(
                    alignment=None, score=None if bad else int(scores[b]),
                    stats=stats, failed=bad,
                    failure_reason="alignment dropped" if bad else "")

    # Traceback kernels: full matrices per chunk, then the *shared*
    # scalar traceback over each pair's true-size slice.

    def _vector_align(self, bucket: PairBatch,
                      results: list[AlignerResult | None]) -> None:
        batch = self.batch
        model = self.config.model
        observing = self.obs.enabled
        profiler = self.obs.profiler
        q_len, r_len = bucket.q_len, bucket.r_len

        def pair_view(b: int) -> tuple[np.ndarray, np.ndarray, int, int]:
            n, m = int(q_len[b]), int(r_len[b])
            return bucket.q[b, :n], bucket.r[b, :m], n, m

        if batch.mode in ("local", "semiglobal") or \
                batch.algorithm == "full":
            kind = batch.mode if batch.mode != "global" else "global"
            with self._kernel_phase(bucket):
                matrices = kernels.sweep_linear(
                    bucket, model, kind, keep=True,
                    force_wide=batch.wide_dtype)
                if observing:
                    self._account(self._pair_cells(bucket),
                                  matrices.dtype.itemsize)
            with profiler.phase("traceback"):
                for b, position in enumerate(bucket.index):
                    q_codes, r_codes, n, m = pair_view(b)
                    matrix = matrices[b, :n + 1, :m + 1]
                    with _tag_pair(position):
                        if kind == "global":
                            alignment = _global_traceback(matrix, q_codes,
                                                          r_codes, model)
                        elif kind == "local":
                            alignment = local_traceback(matrix, q_codes,
                                                        r_codes, model)
                        else:
                            alignment = semiglobal_traceback(
                                matrix, q_codes, r_codes, model)
                    stats = DPStats(cells_computed=n * m,
                                    cells_stored=n * m, blocks=1)
                    results[position] = AlignerResult(
                        alignment=alignment, score=alignment.score,
                        stats=stats)
        elif batch.algorithm == "affine":
            with self._kernel_phase(bucket):
                h, e, f = kernels.sweep_affine(bucket, model,
                                               batch.affine_penalties,
                                               keep=True)
                if observing:
                    self._account(3 * self._pair_cells(bucket), 8)
            with profiler.phase("traceback"):
                for b, position in enumerate(bucket.index):
                    q_codes, r_codes, n, m = pair_view(b)
                    with _tag_pair(position):
                        alignment = affine_traceback(
                            h[b, :n + 1, :m + 1], e[b, :n + 1, :m + 1],
                            f[b, :n + 1, :m + 1], q_codes, r_codes, model,
                            batch.affine_penalties)
                    stats = DPStats(cells_computed=3 * n * m,
                                    cells_stored=3 * n * m, blocks=1)
                    results[position] = AlignerResult(
                        alignment=alignment, score=alignment.score,
                        stats=stats)
        elif batch.algorithm == "banded":
            with self._kernel_phase(bucket):
                matrices, cells, widths = kernels.sweep_banded(
                    bucket, model, batch.band_width, batch.band_fraction,
                    keep=True)
                if observing:
                    self._account(int(np.sum(cells)), 8)
            with profiler.phase("traceback"):
                for b, position in enumerate(bucket.index):
                    q_codes, r_codes, n, m = pair_view(b)
                    stats = DPStats(cells_computed=int(cells[b]),
                                    cells_stored=int(cells[b]), blocks=1)
                    score = int(matrices[b, n, m])
                    if score <= kernels.PRUNE_FLOOR:
                        results[position] = AlignerResult(
                            alignment=None, score=None, stats=stats,
                            failed=True,
                            failure_reason="band excluded (n, m)")
                        continue
                    results[position] = _heuristic_traceback(
                        matrices[b, :n + 1, :m + 1], q_codes, r_codes,
                        model, score, stats)
        else:  # xdrop
            with self._kernel_phase(bucket):
                matrices, cells, widths, failed = kernels.sweep_xdrop(
                    bucket, model, batch.xdrop, batch.xdrop_fraction,
                    keep=True)
                if observing:
                    self._account(int(np.sum(cells)), 8)
            with profiler.phase("traceback"):
                for b, position in enumerate(bucket.index):
                    q_codes, r_codes, n, m = pair_view(b)
                    stats = DPStats(cells_computed=int(cells[b]),
                                    cells_stored=int(cells[b]), blocks=1)
                    if failed[b]:
                        results[position] = AlignerResult(
                            alignment=None, score=None, stats=stats,
                            failed=True, failure_reason="alignment dropped")
                        continue
                    results[position] = _heuristic_traceback(
                        matrices[b, :n + 1, :m + 1], q_codes, r_codes,
                        model, int(matrices[b, n, m]), stats)


def _global_traceback(matrix: np.ndarray, q_codes: np.ndarray,
                      r_codes: np.ndarray, model) -> Alignment:
    from repro.dp.traceback import alignment_from_matrix
    return alignment_from_matrix(matrix, q_codes, r_codes, model)


def _heuristic_traceback(matrix: np.ndarray, q_codes: np.ndarray,
                         r_codes: np.ndarray, model, score: int,
                         stats: DPStats) -> AlignerResult:
    """Banded/X-drop traceback with the same failure semantics as the
    scalar aligners (a pruned path surfaces as a failed result)."""
    try:
        cigar, path = traceback_full(matrix, q_codes, r_codes, model)
    except AlignmentError as exc:
        return AlignerResult(alignment=None, score=score, stats=stats,
                             failed=True, failure_reason=str(exc))
    alignment = Alignment(score=score, cigar=cigar, query_len=len(q_codes),
                          ref_len=len(r_codes),
                          meta={"path_cells": len(path)})
    return AlignerResult(alignment=alignment, score=score, stats=stats)
