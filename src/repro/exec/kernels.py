"""Batched vectorized DP kernels: one NumPy sweep, many alignments.

Every kernel runs the *same* integer recurrence as its scalar
counterpart in ``repro.algorithms`` -- same prefix-scan row trick, same
``NEG_INF`` sentinel, same int64 arithmetic -- but over a whole
:class:`~repro.exec.buckets.PairBatch` at once: each ``np.maximum`` /
``np.maximum.accumulate`` sweep advances one DP row of *every* pair in
the bucket (the batching axis plays the role the anti-diagonal lanes
play in Scrooge/KSW2). Because integer max/add is exact, the results
are bit-identical to the scalar algorithms; the conformance suite
(``tests/test_conformance.py``) locks both to the brute-force oracle.

Kernels come in two shapes:

- ``keep=False`` (score mode): rolling ``(B, m+1)`` rows, each pair's
  score captured the moment the sweep passes its true ``q_len`` row;
- ``keep=True`` (alignment mode): full ``(B, n+1, m+1)`` matrices for
  the shared traceback functions (callers chunk the batch to bound
  memory).

Pairs shorter than the bucket rectangle are *frozen* once their rows
are done (``np.where`` keeps their state), and reductions mask padded
columns, so padding never leaks into a result.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import NEG_INF
from repro.algorithms.affine import AffineGapPenalties
from repro.exec.buckets import PairBatch
from repro.scoring.model import MatchMismatchModel, ScoringModel

#: Scores at or below this are "pruned / unreachable" (same floor the
#: scalar banded / X-drop aligners test against).
PRUNE_FLOOR = int(NEG_INF) // 2


def _row_scores(model: ScoringModel, table: np.ndarray | None,
                q_col: np.ndarray, r: np.ndarray) -> np.ndarray:
    """Substitution scores ``S(q_col[b], r[b, j])`` as ``(B, m)`` int64.

    Identical values to ``model.substitution_row`` applied per pair.
    """
    if isinstance(model, MatchMismatchModel):
        return np.where(r == q_col[:, None], np.int64(model.match),
                        np.int64(model.mismatch))
    return table[q_col.astype(np.intp)[:, None], r.astype(np.intp)]


def _score_table(model: ScoringModel) -> np.ndarray | None:
    if isinstance(model, MatchMismatchModel):
        return None
    return model.substitution_table().astype(np.int64)


# ----------------------------------------------------------------------
# Linear-gap kernels: global / semiglobal / local
# ----------------------------------------------------------------------

def _linear_dtype(model: ScoringModel, table: np.ndarray | None,
                  n_max: int, m_max: int,
                  force_wide: bool = False) -> type:
    """Narrowest safe dtype for the tilted linear sweep.

    Tilted values are bounded by ``(n + 2m) * max|score term|``; when
    that fits comfortably in int32 the sweep halves its memory traffic
    (integer max/add is exact in either width, so results are
    bit-identical). ``force_wide`` pins int64 -- the degradation
    ladder's answer when an overflow guard / range check trips on the
    narrowed path.
    """
    if force_wide:
        return np.int64
    if table is None:
        max_abs = max(abs(model.match), abs(model.mismatch),
                      abs(model.gap_i), abs(model.gap_d), 1)
    else:
        max_abs = max(int(np.abs(table).max()), abs(model.gap_i),
                      abs(model.gap_d), 1)
    bound = (n_max + 2 * m_max + 2) * max_abs
    return np.int32 if bound < 2 ** 30 else np.int64


def linear_dtype(model: ScoringModel, n_max: int, m_max: int,
                 force_wide: bool = False) -> type:
    """The dtype :func:`sweep_linear` will pick for these dimensions.

    Public so the engine's profiler can label kernel phases
    (``linear.global[int32]``) and size modeled memory traffic without
    duplicating the narrowing rule.
    """
    return _linear_dtype(model, _score_table(model), n_max, m_max,
                         force_wide)


def sweep_linear(batch: PairBatch, model: ScoringModel, kind: str,
                 keep: bool, force_wide: bool = False) -> np.ndarray:
    """Batched linear-gap sweep.

    The running row is kept *tilted* -- ``row'[j] = H[i][j] - j*gap_d``
    -- so the prefix-scan needs no per-row offset subtract/add: the
    horizontal chain becomes a plain ``np.maximum.accumulate`` and the
    two offset passes vanish. Values are untilted only where they
    escape (captures, the kept matrices), so every emitted number is
    identical to the untilted scalar recurrence.

    Args:
        kind: ``"global"`` (NW borders), ``"semiglobal"`` (free leading
            reference gap) or ``"local"`` (clamp at zero).
        keep: Return full ``(B, n_max+1, m_max+1)`` matrices instead of
            per-pair scores.

    Returns:
        ``(B,)`` int64 scores, or the matrix stack when ``keep``.
    """
    if kind not in ("global", "semiglobal", "local"):
        raise ValueError(f"unknown linear sweep kind {kind!r}")
    B, m_max = batch.r.shape
    n_max = batch.q.shape[1]
    table = _score_table(model)
    dtype = _linear_dtype(model, table, n_max, m_max, force_wide)
    gap_i, gap_d = model.gap_i, model.gap_d
    cols = np.arange(m_max + 1, dtype=dtype)
    offsets = cols * dtype(gap_d)
    valid = cols <= batch.r_len[:, None]
    mm = isinstance(model, MatchMismatchModel)
    if mm:
        score_bound = max(abs(model.match - gap_d),
                          abs(model.mismatch - gap_d))
    else:
        score_bound = int(np.abs(table - gap_d).max())
    # Substitution scores are tiny; a narrow buffer halves their
    # memory traffic (adds upcast to the row dtype exactly). For table
    # models whose bucket fits a modest int8 tensor, precompute every
    # row's scores in one vectorized gather so the sweep reads
    # zero-copy views (match/mismatch scores are cheap to recompute
    # per row, so they skip the tensor).
    score_dtype = dtype if force_wide else (
        np.int16 if score_bound < 2 ** 14 else dtype)
    tensor = None
    if not mm and not force_wide and score_bound < 127 \
            and B * n_max * m_max <= (1 << 26):
        table_i8 = (table - gap_d).astype(np.int8)
        n_sym = table_i8.shape[0]
        flat = table_i8[:, batch.r.astype(np.intp)].transpose(1, 0, 2)
        flat = np.ascontiguousarray(flat).reshape(B * n_sym, m_max)
        idx = np.arange(B, dtype=np.int64)[:, None] * n_sym + batch.q
        tensor = np.take(flat, idx, axis=0)
        scores = eq = None
    elif mm:
        # Fold the tilt's "- gap_d" into the substitution scores.
        match_t = score_dtype(model.match - gap_d)
        miss_t = score_dtype(model.mismatch - gap_d)
        eq = np.empty((B, m_max), dtype=bool)
        scores = np.empty((B, m_max), dtype=score_dtype)
    else:
        # Per-pair scoring profile: profile[b * n_sym + c, j] =
        # S(c, r[b, j]) - gap_d. One random-access gather per bucket;
        # every row then pulls one contiguous profile row per pair
        # (``np.take`` straight into the scores buffer) instead of
        # doing a 2-D random gather into the substitution table.
        table_t = (table - gap_d).astype(score_dtype)
        n_sym = table_t.shape[0]
        profile = np.ascontiguousarray(
            table_t[:, batch.r.astype(np.intp)].transpose(1, 0, 2)
        ).reshape(B * n_sym, m_max)
        b_base = np.arange(B, dtype=np.int64) * n_sym
        eq = None
        scores = np.empty((B, m_max), dtype=score_dtype)
    diag = np.empty((B, m_max), dtype=dtype)

    if kind == "global":
        row = np.zeros((B, m_max + 1), dtype=dtype)  # H = offsets
    else:
        row = np.negative(np.broadcast_to(offsets, (B, m_max + 1)))
        row = np.ascontiguousarray(row)              # H = 0
    neg_offsets = -offsets
    matrices = None
    untilted = np.empty((B, m_max + 1), dtype=dtype)
    if keep:
        matrices = np.empty((B, n_max + 1, m_max + 1), dtype=np.int64)
        np.add(row, offsets, out=untilted)
        matrices[:, 0, :] = untilted
    out = np.zeros(B, dtype=np.int64)
    masked_floor = dtype(np.iinfo(dtype).min // 4)

    def capture(i: int, current: np.ndarray) -> None:
        done = batch.q_len == i
        if not done.any():
            return
        if kind == "global":
            ends = batch.r_len[done]
            out[done] = current[done, ends].astype(np.int64) \
                + ends * gap_d
        elif kind == "semiglobal":
            # Untilt + mask only the finishing pairs (column 0 is
            # always valid, so the mask floor never escapes).
            masked = np.where(valid[done], current[done] + offsets,
                              masked_floor)
            out[done] = masked.max(axis=1).astype(np.int64)
        # local is captured via the running best below

    best = np.zeros(B, dtype=np.int64)      # local mode running max
    capture(0, row)
    g = np.empty((B, m_max + 1), dtype=dtype)
    for i in range(1, n_max + 1):
        if tensor is not None:
            scores = tensor[:, i - 1, :]
        elif mm:
            np.equal(batch.r, batch.q[:, i - 1][:, None], out=eq)
            np.multiply(eq, match_t - miss_t, out=scores)
            scores += miss_t
        else:
            np.take(profile, b_base + batch.q[:, i - 1], axis=0,
                    out=scores)
        g[:, 0] = 0 if kind == "local" else i * gap_i
        np.add(row[:, :-1], scores, out=diag)
        np.add(row[:, 1:], dtype(gap_i), out=g[:, 1:])
        np.maximum(diag, g[:, 1:], out=g[:, 1:])
        np.maximum.accumulate(g, axis=1, out=g)
        row, g = g, row
        if kind == "local":
            np.maximum(row, neg_offsets, out=row)   # H = max(H, 0)
            active = batch.q_len >= i
            if active.any():
                np.add(row, offsets, out=untilted)
                row_best = np.where(valid, untilted, 0).max(axis=1)
                np.maximum(best, np.where(active, row_best, 0), out=best)
        if keep:
            np.add(row, offsets, out=untilted)
            matrices[:, i, :] = untilted
        capture(i, row)
    if keep:
        return matrices
    if kind == "local":
        return best
    return out


# ----------------------------------------------------------------------
# Affine-gap kernel (batched Gotoh)
# ----------------------------------------------------------------------

def sweep_affine(batch: PairBatch, model: ScoringModel,
                 penalties: AffineGapPenalties, keep: bool,
                 ) -> np.ndarray | tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched three-matrix Gotoh sweep (same recurrence as
    :class:`~repro.algorithms.affine.AffineAligner`).

    Returns ``(B,)`` scores, or the ``(H, E, F)`` matrix stacks when
    ``keep`` (for the shared :func:`affine_traceback`).
    """
    B, m_max = batch.r.shape
    n_max = batch.q.shape[1]
    table = _score_table(model)
    gap_open = np.int64(penalties.open)
    gap_ext = np.int64(penalties.extend)
    first = gap_open + gap_ext
    cols = np.arange(m_max + 1, dtype=np.int64)
    offsets = cols * gap_ext

    h_row = np.where(cols > 0, gap_open + gap_ext * cols, np.int64(0))
    h_row = np.broadcast_to(h_row, (B, m_max + 1)).copy()
    e_row = np.where(cols > 0, gap_open + gap_ext * cols, NEG_INF)
    e_row = np.broadcast_to(e_row, (B, m_max + 1)).copy()
    f_row = np.full((B, m_max + 1), NEG_INF, dtype=np.int64)

    h_mat = e_mat = f_mat = None
    if keep:
        shape = (B, n_max + 1, m_max + 1)
        h_mat = np.empty(shape, dtype=np.int64)
        e_mat = np.empty(shape, dtype=np.int64)
        f_mat = np.empty(shape, dtype=np.int64)
        h_mat[:, 0, :], e_mat[:, 0, :], f_mat[:, 0, :] = h_row, e_row, f_row
    out = np.zeros(B, dtype=np.int64)
    done = batch.q_len == 0
    if done.any():
        out[done] = h_row[done, batch.r_len[done]]

    g = np.empty((B, m_max + 1), dtype=np.int64)
    for i in range(1, n_max + 1):
        scores = _row_scores(model, table, batch.q[:, i - 1], batch.r)
        border = gap_open + gap_ext * np.int64(i)
        f_new = np.empty((B, m_max + 1), dtype=np.int64)
        f_new[:, 0] = border
        np.maximum(h_row[:, 1:] + first, f_row[:, 1:] + gap_ext,
                   out=f_new[:, 1:])
        diag = h_row[:, :-1] + scores
        g[:, 0] = border
        np.maximum(diag, f_new[:, 1:], out=g[:, 1:])
        opened = g + gap_open - offsets
        e_new = np.full((B, m_max + 1), NEG_INF, dtype=np.int64)
        if m_max:
            running = np.maximum.accumulate(opened[:, :-1], axis=1)
            e_new[:, 1:] = running + offsets[1:]
        h_new = np.empty((B, m_max + 1), dtype=np.int64)
        h_new[:, 0] = border
        np.maximum(g[:, 1:], e_new[:, 1:], out=h_new[:, 1:])
        h_row, e_row, f_row = h_new, e_new, f_new
        if keep:
            h_mat[:, i, :], e_mat[:, i, :], f_mat[:, i, :] = h_new, e_new, \
                f_new
        done = batch.q_len == i
        if done.any():
            out[done] = h_row[done, batch.r_len[done]]
    if keep:
        return h_mat, e_mat, f_mat
    return out


# ----------------------------------------------------------------------
# Banded kernel
# ----------------------------------------------------------------------

def _band_matrix(batch: PairBatch, width: int | None,
                 fraction: float | None) -> tuple[np.ndarray, np.ndarray]:
    """Per-pair ``(B, n_max+1)`` band intervals, replicating
    :func:`repro.algorithms.banded.band_intervals` exactly."""
    B = batch.size
    n_max = batch.q.shape[1]
    rows = np.arange(n_max + 1, dtype=np.float64)
    q_len = batch.q_len.astype(np.float64)
    r_len = batch.r_len.astype(np.float64)
    if width is not None:
        half = np.full(B, int(width), dtype=np.int64)
    else:
        half = np.maximum(
            1, np.round(fraction * np.maximum(batch.q_len, batch.r_len))
            .astype(np.int64))
    safe_q = np.where(batch.q_len > 0, q_len, 1.0)
    slope = r_len / safe_q
    half_eff = np.maximum(np.maximum(half, np.ceil(slope).astype(np.int64)),
                          1)
    centers = np.round(rows[None, :] * slope[:, None]).astype(np.int64)
    lo = np.maximum(centers - half_eff[:, None], 0)
    hi = np.minimum(centers + half_eff[:, None], batch.r_len[:, None])
    zero_q = batch.q_len == 0
    if zero_q.any():
        lo[zero_q] = 0
        hi[zero_q] = batch.r_len[zero_q, None]
    return lo, hi


def sweep_banded(batch: PairBatch, model: ScoringModel,
                 width: int | None, fraction: float | None, keep: bool,
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched banded NW (same corridor as
    :class:`~repro.algorithms.banded.BandedAligner`).

    Returns ``(scores_or_matrices, cells_computed, max_widths)``; a
    score at or below :data:`PRUNE_FLOOR` means the band excluded the
    ``(n, m)`` corner for that pair.
    """
    B, m_max = batch.r.shape
    n_max = batch.q.shape[1]
    table = _score_table(model)
    gap_i, gap_d = np.int64(model.gap_i), np.int64(model.gap_d)
    cols = np.arange(m_max + 1, dtype=np.int64)
    offsets = cols * gap_d
    lo_mat, hi_mat = _band_matrix(batch, width, fraction)

    in_band = (cols[None, :] >= lo_mat[:, 0:1]) \
        & (cols[None, :] <= hi_mat[:, 0:1])
    row = np.where(in_band, offsets[None, :], NEG_INF)
    cells = (hi_mat[:, 0] - lo_mat[:, 0] + 1).astype(np.int64)
    widths = cells.copy()
    matrices = None
    if keep:
        matrices = np.full((B, n_max + 1, m_max + 1), NEG_INF,
                           dtype=np.int64)
        matrices[:, 0, :] = row
    out = np.full(B, NEG_INF, dtype=np.int64)
    done = batch.q_len == 0
    if done.any():
        out[done] = row[done, batch.r_len[done]]

    g = np.empty((B, m_max + 1), dtype=np.int64)
    for i in range(1, n_max + 1):
        active = batch.q_len >= i
        if not active.any():
            break
        scores = _row_scores(model, table, batch.q[:, i - 1], batch.r)
        g[:, 0] = np.where(lo_mat[:, i] == 0, np.int64(i) * gap_i, NEG_INF)
        np.maximum(row[:, :-1] + scores, row[:, 1:] + gap_i, out=g[:, 1:])
        new_row = np.maximum.accumulate(g - offsets, axis=1) + offsets
        in_band = (cols[None, :] >= lo_mat[:, i:i + 1]) \
            & (cols[None, :] <= hi_mat[:, i:i + 1])
        new_row = np.where(in_band, new_row, NEG_INF)
        row = np.where(active[:, None], new_row, row)
        if keep:
            matrices[:, i, :] = np.where(active[:, None], new_row, NEG_INF)
        band_cells = hi_mat[:, i] - lo_mat[:, i] + 1
        cells += np.where(active, band_cells, 0)
        np.maximum(widths, np.where(active, band_cells, 0), out=widths)
        done = batch.q_len == i
        if done.any():
            out[done] = row[done, batch.r_len[done]]
    result = matrices if keep else out
    return result, cells, widths


# ----------------------------------------------------------------------
# X-drop kernel
# ----------------------------------------------------------------------

def sweep_xdrop(batch: PairBatch, model: ScoringModel,
                xdrop: int | None, fraction: float | None, keep: bool,
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Batched X-drop global sweep (same pruning schedule as
    :class:`~repro.algorithms.xdrop.XdropAligner`).

    Returns ``(scores_or_matrices, cells, max_widths, failed)``; a
    pair fails when every active cell dropped below ``best - x`` or the
    final corner was pruned.
    """
    B, m_max = batch.r.shape
    n_max = batch.q.shape[1]
    table = _score_table(model)
    gap_i, gap_d = np.int64(model.gap_i), np.int64(model.gap_d)
    if xdrop is not None:
        threshold = np.full(B, int(xdrop), dtype=np.int64)
    else:
        threshold = np.maximum(1, np.round(
            fraction * model.theta
            * np.maximum(batch.q_len, batch.r_len)).astype(np.int64))
    cols = np.arange(m_max + 1, dtype=np.int64)
    offsets = cols * gap_d
    valid = cols[None, :] <= batch.r_len[:, None]

    row = np.where(valid, offsets[None, :], NEG_INF)
    best = np.where(valid, row, NEG_INF).max(axis=1)
    row = np.where(row < (best - threshold)[:, None], NEG_INF, row)
    alive = row > PRUNE_FLOOR
    lo = np.argmax(alive, axis=1).astype(np.int64)
    hi = (m_max - np.argmax(alive[:, ::-1], axis=1)).astype(np.int64)
    cells = hi - lo + 1
    widths = cells.copy()
    dropped = np.zeros(B, dtype=bool)
    matrices = None
    if keep:
        matrices = np.full((B, n_max + 1, m_max + 1), NEG_INF,
                           dtype=np.int64)
        matrices[:, 0, :] = row
    out = np.full(B, NEG_INF, dtype=np.int64)
    done = batch.q_len == 0
    if done.any():
        out[done] = row[done, batch.r_len[done]]

    g = np.empty((B, m_max + 1), dtype=np.int64)
    for i in range(1, n_max + 1):
        active = (~dropped) & (batch.q_len >= i)
        if not active.any():
            break
        scores = _row_scores(model, table, batch.q[:, i - 1], batch.r)
        g[:, 0] = np.where(lo == 0, np.int64(i) * gap_i, NEG_INF)
        np.maximum(row[:, :-1] + scores, row[:, 1:] + gap_i, out=g[:, 1:])
        new_row = np.maximum.accumulate(g - offsets, axis=1) + offsets
        window_hi = np.minimum(batch.r_len, hi + 1)
        col_ok = (cols[None, :] >= lo[:, None]) \
            & (cols[None, :] <= window_hi[:, None])
        new_row = np.where(col_ok, new_row, NEG_INF)
        best = np.where(active, np.maximum(best, new_row.max(axis=1)), best)
        new_row = np.where(new_row < (best - threshold)[:, None], NEG_INF,
                           new_row)
        row = np.where(active[:, None], new_row, row)
        if keep:
            matrices[:, i, :] = np.where(active[:, None], new_row, NEG_INF)
        alive = row > PRUNE_FLOOR
        any_alive = alive.any(axis=1)
        dropped |= active & ~any_alive
        still = active & any_alive
        new_lo = np.argmax(alive, axis=1).astype(np.int64)
        new_hi = (m_max - np.argmax(alive[:, ::-1], axis=1)).astype(np.int64)
        lo = np.where(still, new_lo, lo)
        hi = np.where(still, new_hi, hi)
        band_cells = new_hi - new_lo + 1
        cells += np.where(still, band_cells, 0)
        np.maximum(widths, np.where(still, band_cells, 0), out=widths)
        done = (batch.q_len == i) & ~dropped
        if done.any():
            out[done] = row[done, batch.r_len[done]]
    failed = dropped | (out <= PRUNE_FLOOR)
    result = matrices if keep else out
    return result, cells, widths, failed
