"""Multi-process sharding for the batch engine.

When ``BatchConfig.workers > 1``, the pair list is cut into contiguous
shards and each shard runs a single-worker :class:`BatchEngine` in a
``ProcessPoolExecutor`` worker. Contiguous shards keep results in
submission order by construction; each worker re-buckets its own shard,
so the per-shard results are identical to an inline run.

Process pools are not available everywhere (restricted sandboxes,
missing ``/dev/shm``); on such failures the engine falls back to an
inline single-process run and logs a warning -- results are the same
either way, only slower.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace

from repro.algorithms.base import AlignerResult
from repro.config import AlignmentConfig
from repro.obs import Observability, get_logger

log = get_logger("exec.sharding")


def shard_spans(total: int, workers: int) -> list[tuple[int, int]]:
    """Split ``total`` items into at most ``workers`` contiguous
    near-equal ``(start, stop)`` spans (never an empty span)."""
    workers = max(1, min(workers, total))
    base, extra = divmod(total, workers)
    spans = []
    start = 0
    for w in range(workers):
        stop = start + base + (1 if w < extra else 0)
        spans.append((start, stop))
        start = stop
    return spans


def _shard_worker(config: AlignmentConfig, batch, pairs,
                  ) -> list[AlignerResult]:
    """Run one shard inline inside a worker process (module-level so
    it pickles)."""
    from repro.exec.engine import BatchEngine
    return BatchEngine(config, batch).run(pairs)


def run_sharded(config: AlignmentConfig, batch, pairs,
                obs: Observability) -> list[AlignerResult]:
    """Fan a pair list across worker processes; order is preserved."""
    inner = replace(batch, workers=1)
    spans = shard_spans(len(pairs), batch.workers)
    if len(spans) == 1:
        return _shard_worker(config, inner, pairs)
    try:
        with ProcessPoolExecutor(max_workers=len(spans)) as pool:
            futures = []
            for shard_id, (start, stop) in enumerate(spans):
                futures.append((shard_id, stop - start, pool.submit(
                    _shard_worker, config, inner, pairs[start:stop])))
            results: list[AlignerResult] = []
            for shard_id, size, future in futures:
                with obs.tracer.host_span("exec.shard", shard=shard_id,
                                          pairs=size):
                    results.extend(future.result())
                obs.metrics.counter("exec.shards").inc()
        return results
    except (OSError, PermissionError, RuntimeError) as exc:
        log.warning("process pool unavailable (%s); running inline", exc)
        obs.metrics.counter("exec.shard_fallbacks").inc()
        return _shard_worker(config, inner, pairs)
