"""Multi-process sharding for the batch engine.

When ``BatchConfig.workers > 1``, the pair list is cut into contiguous
shards and each shard runs a single-worker :class:`BatchEngine` in a
``ProcessPoolExecutor`` worker. Contiguous shards keep results in
submission order by construction; each worker re-buckets its own shard,
so the per-shard results are identical to an inline run.

Failure handling draws a hard line between two kinds of trouble:

* **Pool infrastructure** failures -- the pool cannot be created or a
  worker process dies (``BrokenProcessPool``, pool-creation
  ``OSError`` in restricted sandboxes with no ``/dev/shm``). These say
  nothing about the alignments themselves, so the engine falls back to
  running *only the still-unfinished shards* inline and logs a
  warning; results are the same either way, only slower.
* **In-shard computation** errors -- an exception raised by the
  alignment code inside a worker (``AlignmentError``, ``RangeError``,
  even an ``OSError`` from the computation). These propagate to the
  caller unchanged; silently re-running them inline would hide real
  bugs and double-spend the work. Supervised retry for such errors
  lives in :mod:`repro.resilience`, not here.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import replace

from repro.algorithms.base import AlignerResult
from repro.config import AlignmentConfig
from repro.obs import Observability, child_context, get_logger, new_run_id

log = get_logger("exec.sharding")


def shard_spans(total: int, workers: int) -> list[tuple[int, int]]:
    """Split ``total`` items into at most ``workers`` contiguous
    near-equal ``(start, stop)`` spans (never an empty span)."""
    workers = max(1, min(workers, total))
    base, extra = divmod(total, workers)
    spans = []
    start = 0
    for w in range(workers):
        stop = start + base + (1 if w < extra else 0)
        spans.append((start, stop))
        start = stop
    return spans


def _shard_worker(config: AlignmentConfig, batch, pairs, collect=False,
                  obs=None, trace=None,
                  ) -> tuple[list[AlignerResult], dict | None]:
    """Run one shard inline inside a worker process (module-level so
    it pickles).

    With ``collect``, the shard runs under a fresh collector
    :class:`Observability` and returns its exported state alongside the
    results, so counters incremented in the worker survive the trip
    back to the parent registry instead of vanishing with the process.
    A :class:`~repro.obs.tracectx.TraceContext` as ``trace`` further
    gives the collector a tracer whose spans stitch onto the parent
    timeline. The ``obs`` escape hatch is for in-process (fallback)
    execution: the shard shares the caller's instruments directly, so
    there is nothing to merge afterwards.
    """
    from repro.exec.engine import BatchEngine
    if obs is not None:
        return BatchEngine(config, batch, obs=obs).run(pairs), None
    if not collect:
        return BatchEngine(config, batch).run(pairs), None
    worker_obs = Observability.collector(trace=trace)
    results = BatchEngine(config, batch, obs=worker_obs).run(pairs)
    return results, worker_obs.export_state()


def run_sharded(config: AlignmentConfig, batch, pairs,
                obs: Observability) -> list[AlignerResult]:
    """Fan a pair list across worker processes; order is preserved.

    Pool-infrastructure failures fall back to finishing the unfinished
    shards inline; exceptions raised by the computation itself
    re-raise unchanged (see the module docstring).
    """
    inner = replace(batch, workers=1)
    spans = shard_spans(len(pairs), batch.workers)
    if len(spans) == 1:
        return _shard_worker(config, inner, pairs, obs=obs)[0]
    collect = obs.collecting
    shard_results: list[list[AlignerResult] | None] = [None] * len(spans)

    def finish_inline(exc: BaseException) -> None:
        pending = [shard_id for shard_id, done in enumerate(shard_results)
                   if done is None]
        log.warning("process pool unavailable (%s); running %d shard(s) "
                    "inline", exc, len(pending))
        obs.metrics.counter("exec.shard_fallbacks").inc()
        for shard_id in pending:
            start, stop = spans[shard_id]
            shard_results[shard_id], _ = _shard_worker(
                config, inner, pairs[start:stop], obs=obs)

    try:
        pool = ProcessPoolExecutor(max_workers=len(spans))
    except (OSError, PermissionError, RuntimeError) as exc:
        finish_inline(exc)
    else:
        run_id = new_run_id()
        with pool:
            try:
                futures = [
                    (shard_id, stop - start,
                     pool.submit(_shard_worker, config, inner,
                                 pairs[start:stop], collect,
                                 None,
                                 child_context(obs.tracer, run_id,
                                               f"shard{shard_id}",
                                               parent_span="exec.shard")))
                    for shard_id, (start, stop) in enumerate(spans)]
            except (OSError, PermissionError, RuntimeError) as exc:
                # The pool refused work before any shard ran.
                finish_inline(exc)
                futures = []
            try:
                for shard_id, size, future in futures:
                    started = time.perf_counter()
                    with obs.tracer.host_span("exec.shard", shard=shard_id,
                                              pairs=size, run_id=run_id):
                        shard_results[shard_id], state = future.result()
                        obs.merge_state(state)
                    obs.metrics.counter("exec.shards").inc()
                    obs.metrics.distribution("exec.shard_latency_us") \
                        .observe((time.perf_counter() - started) * 1e6)
            except BrokenExecutor as exc:
                # A worker process died; every result already collected
                # is still good -- only the rest re-run inline.
                finish_inline(exc)
    results: list[AlignerResult] = []
    for shard in shard_results:
        results.extend(shard or [])
    return results
