"""Adaptive kernel planner: route each pair to the cheapest exact kernel.

The batch engine's ``engine="auto"`` path asks this module, per pair,
"how divergent does this pair look?" and routes it accordingly:

- **wavefront** -- near-identical pairs under the unit-cost edit model:
  the O(n*s) batched wavefront sweep touches a vanishing fraction of
  the DP matrix (the paper's Fig. 2 trade-off).
- **banded** -- moderately divergent pairs under general models: a
  banded sweep with an estimated corridor, *verified exact* after the
  fact by the band certificate below and widened on failure. (Under
  the edit model the wavefront sweep is cheaper than any certified
  corridor throughout this range, so edit pairs stay on wavefront.)
- **bitparallel** -- high-divergence pairs under the unit-cost edit
  model when no traceback is needed: the batched blocked-Myers sweep
  (:mod:`repro.exec.bitparallel`) costs O(n*m / 64) regardless of
  divergence, so it replaces the full kernel exactly where the
  wavefront's O(n + d^2) sweep stops paying. Score-only, because the
  bit vectors carry no path state.
- **full** -- everything else (short, empty, or high-divergence pairs
  needing a CIGAR, and models the certificate cannot cover).

Divergence is estimated from a k-mer sketch: the fraction ``f`` of
shared k-mers relates to per-base identity roughly as ``f = id**k``
(each shared k-mer needs k consecutive error-free bases), so
``divergence = 1 - f**(1/k)``. The estimate is *only* a routing hint:
every route returns exact results, so a bad estimate costs time, never
correctness.

The band certificate (used by the engine to prove a banded result
exact): a global path whose diagonal offset ``k = j - i`` strays ``e``
beyond the ``[min(0, m-n), max(0, m-n)]`` corridor needs at least ``e``
extra insertion/deletion *pairs*, each trading a diagonal move for two
gap moves, so its score is at most ``best - e * denom`` with ``denom =
smax - gap_i - gap_d`` and ``best = smax * min(n, m) + skew`` (the
all-match bound; ``skew`` is the mandatory-gap cost of the length
difference). Reading that backwards with any achieved in-band score
``s <= optimal``: every optimal path satisfies ``e <= (best - s) //
denom``, so a half-width of ``|m - n| + e_max + 2`` provably contains
all optimal paths -- and then the banded matrix equals the full matrix
on every optimal-path cell and the canonical traceback is identical to
the full-matrix traceback.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.scoring.model import ScoringModel

#: Route labels, also used as the ``exec.plan.{route}`` counter names.
ROUTE_WAVEFRONT = "wavefront"
ROUTE_BANDED = "banded"
ROUTE_BITPARALLEL = "bitparallel"
ROUTE_FULL = "full"
ROUTES = (ROUTE_WAVEFRONT, ROUTE_BANDED, ROUTE_BITPARALLEL, ROUTE_FULL)

#: Multiplier applied to the golden-ratio constant hash of k-mers.
_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)

#: Sketch size cap: longer sequences keep only k-mers whose hash falls
#: under a threshold (MinHash-style *value* sampling, so a shared k-mer
#: is sampled in both sequences or in neither -- position-based
#: sampling would decorrelate under indels). Sampling only blurs the
#: divergence estimate; routing is advisory, never correctness.
_MAX_SKETCH = 512


@dataclass(frozen=True)
class PlannerPolicy:
    """Tuning knobs of the adaptive planner (safe to leave at defaults).

    Attributes:
        k: Sketch k-mer length.
        wavefront_divergence: Estimated divergence at or below which a
            pair routes to the wavefront kernel (edit model only; edit
            pairs within ``banded_divergence`` also take the wavefront
            because its O(n + d^2) sweep undercuts every certified
            corridor in that range).
        banded_divergence: Upper divergence bound for the banded route;
            beyond it the pair pays the full kernel directly.
        min_length: Pairs with ``max(n, m)`` below this go straight to
            the full kernel -- too small for routing to pay off.
        probe_slack: The wavefront sweep of an auto-routed bucket is
            capped at ``probe_slack * max(estimated distance, 8)``;
            pairs that blow the cap demote to the full kernel instead
            of sweeping O(n + m) wavefronts.
        band_slack: Extra half-width added to the first banded try so
            mild underestimates still certify without a widening pass.
    """

    k: int = 8
    wavefront_divergence: float = 0.10
    banded_divergence: float = 0.20
    min_length: int = 32
    probe_slack: int = 4
    band_slack: int = 8

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"planner k must be >= 1, got {self.k}")
        if not 0.0 <= self.wavefront_divergence <= 1.0:
            raise ConfigurationError(
                "wavefront_divergence must be within [0, 1], got "
                f"{self.wavefront_divergence}")
        if not 0.0 <= self.banded_divergence <= 1.0:
            raise ConfigurationError(
                "banded_divergence must be within [0, 1], got "
                f"{self.banded_divergence}")
        if self.wavefront_divergence > self.banded_divergence:
            raise ConfigurationError(
                "wavefront_divergence must not exceed banded_divergence")
        if self.min_length < 0:
            raise ConfigurationError(
                f"min_length must be >= 0, got {self.min_length}")
        if self.probe_slack < 1 or self.band_slack < 0:
            raise ConfigurationError(
                "probe_slack must be >= 1 and band_slack >= 0, got "
                f"{self.probe_slack} / {self.band_slack}")


def is_edit_model(model: ScoringModel) -> bool:
    """True when the model is the unit-cost edit model the wavefront
    kernel implements."""
    return (model.smax == 0 and model.smin == -1
            and model.gap_i == -1 and model.gap_d == -1)


def _kmer_hashes(codes: np.ndarray, k: int) -> np.ndarray:
    """Distinct k-mer hashes of one code sequence (uint64, wrapping)."""
    if len(codes) < k:
        return np.empty(0, dtype=np.uint64)
    windows = np.lib.stride_tricks.sliding_window_view(
        codes.astype(np.uint64), k)
    weights = _HASH_MULT ** np.arange(k, dtype=np.uint64)
    hashes = (windows * weights[None, :]).sum(
        axis=1, dtype=np.uint64) * _HASH_MULT
    rate = len(hashes) // _MAX_SKETCH
    if rate > 1:
        hashes = hashes[hashes < np.uint64((1 << 64) // rate)]
    return np.unique(hashes)


def estimate_divergence(q_codes: np.ndarray, r_codes: np.ndarray,
                        k: int) -> float:
    """Estimated per-base divergence of a pair from its k-mer sketch.

    Returns a value in [0, 1]; 0.0 means the sketches are identical,
    1.0 means no k-mer is shared (or a sequence is shorter than k).
    """
    q_hashes = _kmer_hashes(np.asarray(q_codes), k)
    r_hashes = _kmer_hashes(np.asarray(r_codes), k)
    denom = max(len(q_hashes), len(r_hashes))
    if denom == 0:
        return 1.0
    shared = len(np.intersect1d(q_hashes, r_hashes, assume_unique=True))
    if shared == 0:
        return 1.0
    identity = (shared / denom) ** (1.0 / k)
    return 1.0 - identity


def estimate_distance(q_codes: np.ndarray, r_codes: np.ndarray,
                      divergence: float) -> int:
    """Rough edit-distance estimate implied by a divergence estimate."""
    n, m = len(q_codes), len(r_codes)
    return abs(m - n) + int(np.ceil(divergence * min(n, m)))


def plan_routes(pairs, model: ScoringModel, policy: PlannerPolicy,
                traceback: bool = True) -> tuple[list[str], list[int]]:
    """Choose a kernel route and a distance estimate for every pair.

    Returns ``(routes, estimates)`` in submission order. Routing is
    purely advisory -- the engine verifies banded results with
    :func:`certified_half_width` and demotes capped wavefront sweeps
    to the full kernel -- so estimates can be arbitrarily wrong
    without affecting scores. ``traceback=False`` unlocks the
    score-only bit-parallel route for high-divergence edit pairs.
    """
    edit_ok = is_edit_model(model)
    banded_ok = model.smax - model.gap_i - model.gap_d > 0
    routes: list[str] = []
    estimates: list[int] = []
    for q_codes, r_codes in pairs:
        n, m = len(q_codes), len(r_codes)
        if min(n, m) == 0 or max(n, m) < max(policy.min_length, policy.k):
            routes.append(ROUTE_FULL)
            estimates.append(n + m)
            continue
        divergence = estimate_divergence(q_codes, r_codes, policy.k)
        estimate = estimate_distance(q_codes, r_codes, divergence)
        estimates.append(estimate)
        if edit_ok and divergence <= max(policy.wavefront_divergence,
                                         policy.banded_divergence):
            # Under the edit model the wavefront sweep costs O(n + d^2)
            # -- cheaper than any corridor the certificate would accept
            # (O(width * n) with width >= d) throughout the banded
            # range, so moderate divergence routes to the wavefront
            # too; the probe cap demotes gross underestimates.
            routes.append(ROUTE_WAVEFRONT)
        elif edit_ok and not traceback:
            # High-divergence edit pairs, score only: the bit-parallel
            # sweep is O(n*m / 64) at *any* divergence -- exact where
            # the wavefront's O(d^2) term blows up, cheaper than the
            # full kernel always. CIGAR pairs stay on full (the bit
            # vectors carry no path state).
            routes.append(ROUTE_BITPARALLEL)
        elif banded_ok and divergence <= policy.banded_divergence:
            routes.append(ROUTE_BANDED)
        else:
            routes.append(ROUTE_FULL)
    return routes, estimates


def certified_half_width(model: ScoringModel, n: int, m: int,
                         score: int) -> int | None:
    """Half-width that provably contains all optimal global paths.

    ``score`` is any *achieved* in-band score (a lower bound on the
    optimum; lower scores only widen the answer, so the certificate
    stays safe). Returns ``None`` when the model is degenerate
    (``smax == gap_i + gap_d``) and no finite certificate exists.
    """
    denom = model.smax - model.gap_i - model.gap_d
    if denom <= 0:
        return None
    delta = m - n
    skew = model.gap_d * delta if delta >= 0 else model.gap_i * (-delta)
    best = model.smax * min(n, m) + skew
    slack = max(0, best - score)
    return abs(delta) + slack // denom + 2


def band_is_certified(model: ScoringModel, n: int, m: int, score: int,
                      half: int) -> bool:
    """True when a banded run at ``half`` provably equals the full DP."""
    needed = certified_half_width(model, n, m, score)
    return needed is not None and half >= needed


def width_class(width: int) -> int:
    """Round a half-width up to its power-of-two class, so banded pairs
    re-bucket into a few dense groups instead of one group per width."""
    return 1 << max(0, int(np.ceil(np.log2(max(1, width)))))
