"""Alphabets, narrow-width packing, and the SMX differential encoding."""

from repro.encoding.alphabet import (
    ALPHABETS,
    AMINO_ACIDS,
    ASCII,
    DNA,
    DNA4,
    PROTEIN,
    Alphabet,
)
from repro.encoding.differential import (
    DeltaShift,
    deltas_to_matrix,
    matrix_to_deltas,
    raw_step,
    score_from_borders,
    score_from_shifted_borders,
    shifted_step,
    shifted_step_vec,
)
from repro.encoding.packing import (
    ELEMENT_WIDTHS,
    LANES,
    element_mask,
    lanes_for,
    memory_bytes,
    pack_sequence,
    pack_word,
    unpack_sequence,
    unpack_word,
)

__all__ = [
    "ALPHABETS",
    "AMINO_ACIDS",
    "ASCII",
    "DNA",
    "DNA4",
    "PROTEIN",
    "Alphabet",
    "DeltaShift",
    "ELEMENT_WIDTHS",
    "LANES",
    "deltas_to_matrix",
    "element_mask",
    "lanes_for",
    "matrix_to_deltas",
    "memory_bytes",
    "pack_sequence",
    "pack_word",
    "raw_step",
    "score_from_borders",
    "score_from_shifted_borders",
    "shifted_step",
    "shifted_step_vec",
    "unpack_sequence",
    "unpack_word",
]
