"""Packing of narrow elements into 64-bit machine words.

SMX packs VL elements of EW bits each into one 64-bit register
(paper Sec. 4): EW=2 -> VL=32, EW=4 -> VL=16, EW=6 -> VL=10 (60 bits
used, top 4 zero), EW=8 -> VL=8. The same layout is used for packed
character strings (``smx.pack``), packed delta vectors (``smx.v``
operands), and the border words moved between the SMX-2D coprocessor
and memory.

Lane 0 occupies the least-significant bits, matching the hardware's
"first PE gets the low lane" convention.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import EncodingError

#: Supported element widths (bits).
ELEMENT_WIDTHS = (2, 4, 6, 8)

#: Vector length (lanes per 64-bit word) for each element width.
LANES = {2: 32, 4: 16, 6: 10, 8: 8}

_WORD_MASK = (1 << 64) - 1


def lanes_for(ew: int) -> int:
    """Number of elements a 64-bit word holds at element width ``ew``."""
    try:
        return LANES[ew]
    except KeyError:
        raise EncodingError(
            f"unsupported element width {ew}; must be one of {ELEMENT_WIDTHS}"
        ) from None


def element_mask(ew: int) -> int:
    """Bit mask of one element: ``2**ew - 1``."""
    lanes_for(ew)
    return (1 << ew) - 1


def pack_word(values: Sequence[int] | np.ndarray, ew: int) -> int:
    """Pack up to VL elements into a single 64-bit word (lane 0 = LSB).

    Raises :class:`EncodingError` if any value does not fit in ``ew``
    bits or if more than VL values are supplied.
    """
    vl = lanes_for(ew)
    mask = element_mask(ew)
    values = list(int(v) for v in values)
    if len(values) > vl:
        raise EncodingError(f"{len(values)} values exceed VL={vl} at EW={ew}")
    word = 0
    for lane, value in enumerate(values):
        if value < 0 or value > mask:
            raise EncodingError(
                f"value {value} in lane {lane} does not fit in {ew} bits"
            )
        word |= value << (lane * ew)
    return word


def unpack_word(word: int, ew: int, count: int | None = None) -> list[int]:
    """Extract ``count`` (default VL) elements from a 64-bit word."""
    vl = lanes_for(ew)
    if count is None:
        count = vl
    if count > vl:
        raise EncodingError(f"cannot unpack {count} lanes at EW={ew} (VL={vl})")
    mask = element_mask(ew)
    word &= _WORD_MASK
    return [(word >> (lane * ew)) & mask for lane in range(count)]


def pack_sequence(codes: np.ndarray | Iterable[int], ew: int) -> list[int]:
    """Pack an arbitrary-length code sequence into a list of words.

    The final word is zero-padded in its upper lanes; callers track the
    true length separately (the hardware does the same via size registers).
    """
    vl = lanes_for(ew)
    codes = np.asarray(list(codes) if not isinstance(codes, np.ndarray)
                       else codes)
    words = []
    for start in range(0, len(codes), vl):
        words.append(pack_word(codes[start:start + vl], ew))
    return words


def unpack_sequence(words: Sequence[int], ew: int, length: int) -> np.ndarray:
    """Inverse of :func:`pack_sequence` for a known element count."""
    vl = lanes_for(ew)
    needed = (length + vl - 1) // vl
    if len(words) < needed:
        raise EncodingError(
            f"{len(words)} words cannot hold {length} elements at EW={ew}"
        )
    out = np.empty(length, dtype=np.uint8)
    for index in range(length):
        word = words[index // vl]
        out[index] = (word >> ((index % vl) * ew)) & element_mask(ew)
    return out


def memory_bytes(n_elements: int, ew: int) -> int:
    """Bytes required to store ``n_elements`` packed at ``ew`` bits.

    Rounded up to whole 64-bit words, matching how SMX lays out delta
    arrays in memory.
    """
    vl = lanes_for(ew)
    words = (n_elements + vl - 1) // vl
    return words * 8
