"""SMX differential encoding (paper Sec. 2.4 and 4.1).

Instead of absolute DP-matrix values ``M[i][j]`` (which grow linearly with
sequence length), SMX stores differences between neighbours::

    dv[i][j] = M[i][j] - M[i-1][j]      (vertical delta)
    dh[i][j] = M[i][j] - M[i][j-1]      (horizontal delta)

Substituting into the NW recurrence (Eq. 2) gives the raw delta
recurrences (Eq. 3-4; we derive them from Eq. 1-2 directly, which fixes
the paper's I/D labelling to be consistent with ``M[i][0] = i*I``)::

    dv[i][j] = max( S - dh[i-1][j],  I,  dv[i][j-1] - dh[i-1][j] + D )
    dh[i][j] = max( S - dv[i][j-1],  D,  dh[i-1][j] - dv[i][j-1] + I )

Both deltas are bounded: ``I <= dv <= smax - D`` and ``D <= dh <= smax - I``.
The SMX *shifted* encoding removes the signs entirely::

    dv' = dv - I,   dh' = dh - D,   S' = S - I - D

    dv'[i][j] = max( S' - dh'[i-1][j],  dv'[i][j-1] - dh'[i-1][j],  0 )
    dh'[i][j] = max( S' - dv'[i][j-1],  dh'[i-1][j] - dv'[i][j-1],  0 )

which are exactly the paper's Eq. 5-6. By induction both shifted deltas
lie in ``[0, theta]`` with ``theta = smax - I - D``, so they fit in
``ceil(log2(theta + 1))`` bits -- the key fact behind the 2/4/6/8-bit
configurable element width.

This module is pure math: scalar and vectorized step functions, the
matrix<->delta conversions, and border-based score reconstruction. The
bit-accurate hardware datapath lives in :mod:`repro.core.pe`; computing
deltas directly from sequences lives in :mod:`repro.dp.delta`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RangeError
from repro.scoring.model import ScoringModel

# ---------------------------------------------------------------------------
# Scalar reference recurrences
# ---------------------------------------------------------------------------


def raw_step(dv_left: int, dh_up: int, s: int, gap_i: int,
             gap_d: int) -> tuple[int, int]:
    """One cell of the raw (signed) delta recurrence, Eq. 3-4.

    Args:
        dv_left: ``dv[i][j-1]``, the vertical delta of the left neighbour.
        dh_up: ``dh[i-1][j]``, the horizontal delta of the upper neighbour.
        s: substitution score ``S(q[i-1], r[j-1])``.
        gap_i: vertical gap penalty ``I``.
        gap_d: horizontal gap penalty ``D``.

    Returns:
        ``(dv[i][j], dh[i][j])``.
    """
    dv = max(s - dh_up, gap_i, dv_left - dh_up + gap_d)
    dh = max(s - dv_left, gap_d, dh_up - dv_left + gap_i)
    return dv, dh


def shifted_step(dvp_left: int, dhp_up: int, sp: int) -> tuple[int, int]:
    """One cell of the shifted non-negative recurrence, Eq. 5-6.

    All operands and results are non-negative; results never exceed
    ``max(sp, dvp_left, dhp_up)`` and hence stay within ``[0, theta]``.
    """
    dvp = max(sp - dhp_up, dvp_left - dhp_up, 0)
    dhp = max(sp - dvp_left, dhp_up - dvp_left, 0)
    return dvp, dhp


# ---------------------------------------------------------------------------
# Vectorized recurrences (antidiagonal / row kernels build on these)
# ---------------------------------------------------------------------------


def shifted_step_vec(dvp_left: np.ndarray, dhp_up: np.ndarray,
                     sp: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Eq. 5-6 over independent cells (e.g. one antidiagonal)."""
    dvp = np.maximum(np.maximum(sp - dhp_up, dvp_left - dhp_up), 0)
    dhp = np.maximum(np.maximum(sp - dvp_left, dhp_up - dvp_left), 0)
    return dvp, dhp


# ---------------------------------------------------------------------------
# Shift bookkeeping
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DeltaShift:
    """The linear transformation binding a scoring model to shifted deltas."""

    gap_i: int
    gap_d: int
    theta: int

    @staticmethod
    def for_model(model: ScoringModel) -> "DeltaShift":
        return DeltaShift(gap_i=model.gap_i, gap_d=model.gap_d,
                          theta=model.theta)

    def shift_v(self, dv):
        """Raw vertical delta -> shifted (``dv' = dv - I``)."""
        return dv - self.gap_i

    def unshift_v(self, dvp):
        return dvp + self.gap_i

    def shift_h(self, dh):
        """Raw horizontal delta -> shifted (``dh' = dh - D``)."""
        return dh - self.gap_d

    def unshift_h(self, dhp):
        return dhp + self.gap_d

    def check_range(self, dvp, dhp) -> None:
        """Assert the proven [0, theta] bound; raises :class:`RangeError`."""
        for name, arr in (("dv'", dvp), ("dh'", dhp)):
            arr = np.asarray(arr)
            if arr.size == 0:
                continue
            lo, hi = int(arr.min()), int(arr.max())
            if lo < 0 or hi > self.theta:
                raise RangeError(
                    f"{name} out of [0, {self.theta}]: observed [{lo}, {hi}]"
                )


# ---------------------------------------------------------------------------
# Matrix <-> delta conversions
# ---------------------------------------------------------------------------


def matrix_to_deltas(m: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Derive raw delta fields from an absolute DP matrix.

    Args:
        m: ``(n+1, m+1)`` absolute score matrix.

    Returns:
        ``(dv, dh)`` where ``dv`` has shape ``(n, m+1)`` (``dv[i-1, j]``
        is ``M[i][j] - M[i-1][j]``) and ``dh`` has shape ``(n+1, m)``.
    """
    m = np.asarray(m, dtype=np.int64)
    dv = m[1:, :] - m[:-1, :]
    dh = m[:, 1:] - m[:, :-1]
    return dv, dh


def deltas_to_matrix(dv: np.ndarray, dh: np.ndarray,
                     origin: int = 0) -> np.ndarray:
    """Rebuild the absolute matrix from raw deltas and ``M[0][0]``.

    Uses the first row of ``dh`` and cumulative sums of ``dv``; the
    remaining ``dh`` values are redundant and are *not* consulted, so a
    consistency check against them is a meaningful test.
    """
    n_rows = dv.shape[0] + 1
    n_cols = dh.shape[1] + 1
    m = np.empty((n_rows, n_cols), dtype=np.int64)
    m[0, 0] = origin
    m[0, 1:] = origin + np.cumsum(dh[0, :])
    m[1:, :] = m[0, :][None, :] + np.cumsum(dv, axis=0)
    return m


# ---------------------------------------------------------------------------
# Score reconstruction from block borders (the smx.redsum path, Sec. 6)
# ---------------------------------------------------------------------------


def score_from_borders(dh_top: np.ndarray, dv_right: np.ndarray,
                       origin: int = 0) -> int:
    """Final cell of a DP-block from its top-row dh and right-column dv.

    ``M[n][m] = M[0][0] + sum_j dh[0][j] + sum_i dv[i][m]`` -- the exact
    computation the core performs with ``smx.redsum`` after a score-only
    offload (raw, unshifted deltas).
    """
    return int(origin + np.sum(dh_top, dtype=np.int64)
               + np.sum(dv_right, dtype=np.int64))


def score_from_shifted_borders(dhp_top: np.ndarray, dvp_right: np.ndarray,
                               shift: DeltaShift, origin: int = 0) -> int:
    """Same as :func:`score_from_borders` for shifted borders.

    The shifts contribute ``m * D + n * I``, added back here; this is the
    form the hardware actually uses (borders live in memory shifted).
    """
    n_cols = len(dhp_top)
    n_rows = len(dvp_right)
    return int(origin
               + np.sum(dhp_top, dtype=np.int64) + n_cols * shift.gap_d
               + np.sum(dvp_right, dtype=np.int64) + n_rows * shift.gap_i)
