"""Sequence alphabets and character encodings.

SMX supports four element widths, each tied to an alphabet (paper Sec. 4):

- 2-bit: DNA ``ACGT`` (DNA-edit configuration);
- 4-bit: DNA with headroom for extended symbols (DNA-gap configuration);
- 6-bit: the 26-letter protein alphabet ``A``-``Z``;
- 8-bit: raw ASCII text.

An :class:`Alphabet` maps between Python strings and small integer *codes*
(numpy ``uint8`` arrays). Codes are what every DP kernel, ISA model, and
tile engine in this library operates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import EncodingError


@dataclass(frozen=True)
class Alphabet:
    """A finite character set with a fixed-width binary code.

    Attributes:
        name: Human-readable identifier.
        bits: Width of one character code; codes are in ``[0, 2**bits)``.
        letters: The canonical letter for each code, in code order. For the
            ASCII alphabet this is empty and codes are raw byte values.
    """

    name: str
    bits: int
    letters: str = ""
    _encode_lut: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.letters and len(self.letters) > (1 << self.bits):
            raise EncodingError(
                f"{len(self.letters)} letters do not fit in {self.bits} bits"
            )
        lut = np.full(256, 255, dtype=np.uint8)
        if self.letters:
            for code, letter in enumerate(self.letters):
                lut[ord(letter)] = code
                lut[ord(letter.lower())] = code
        else:
            lut = np.arange(256, dtype=np.uint8)
        object.__setattr__(self, "_encode_lut", lut)

    @property
    def size(self) -> int:
        """Number of valid codes."""
        return len(self.letters) if self.letters else 1 << self.bits

    def encode(self, sequence: str | bytes) -> np.ndarray:
        """Translate a string into a ``uint8`` code array.

        Raises :class:`EncodingError` on any character outside the
        alphabet (mirroring the hardware, which has no escape hatch).
        """
        if isinstance(sequence, str):
            raw = np.frombuffer(sequence.encode("latin-1", "strict"),
                                dtype=np.uint8)
        else:
            raw = np.frombuffer(bytes(sequence), dtype=np.uint8)
        codes = self._encode_lut[raw]
        if self.letters and codes.size and int(codes.max(initial=0)) == 255:
            bad = chr(int(raw[codes == 255][0]))
            raise EncodingError(
                f"character {bad!r} not in alphabet {self.name!r}"
            )
        return codes

    def decode(self, codes: np.ndarray) -> str:
        """Inverse of :meth:`encode`."""
        codes = np.asarray(codes)
        if self.letters:
            if codes.size and int(codes.max(initial=0)) >= len(self.letters):
                raise EncodingError(
                    f"code {int(codes.max())} out of range for {self.name!r}"
                )
            return "".join(self.letters[int(c)] for c in codes)
        return bytes(int(c) for c in codes).decode("latin-1")

    def random(self, length: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform random code sequence of the given length."""
        if self.letters:
            return rng.integers(0, len(self.letters), size=length,
                                dtype=np.uint8)
        # Printable ASCII only, so decoded text remains readable.
        return rng.integers(32, 127, size=length, dtype=np.uint8)


#: 2-bit DNA alphabet (A=0, C=1, G=2, T=3).
DNA = Alphabet(name="dna", bits=2, letters="ACGT")

#: 4-bit DNA alphabet used by the DNA-gap configuration; same four
#: letters, stored in wider fields (the paper reserves headroom for
#: extended/IUPAC symbols at 4 bits).
DNA4 = Alphabet(name="dna4", bits=4, letters="ACGT")

#: 6-bit protein alphabet covering the full A-Z range of smx_submat.
PROTEIN = Alphabet(name="protein", bits=6,
                   letters="ABCDEFGHIJKLMNOPQRSTUVWXYZ")

#: The 20 standard amino-acid letters, used by workload generators so
#: synthetic proteins score sensibly under BLOSUM matrices.
AMINO_ACIDS = "ACDEFGHIKLMNPQRSTVWY"

#: 8-bit raw ASCII alphabet (code == byte value).
ASCII = Alphabet(name="ascii", bits=8)

#: Registry keyed by name for configuration lookup.
ALPHABETS = {a.name: a for a in (DNA, DNA4, PROTEIN, ASCII)}
