"""KSW2-style striped-SIMD software baseline (paper Sec. 7, "SIMD").

KSW2 (the aligner inside Minimap2) computes the DP matrix with 128-bit
SIMD over 8-bit differentially-encoded values: 16 lanes per vector and
roughly **9 arithmetic SIMD instructions per vector** (the figure the
paper uses to explain SMX-1D's advantage in Sec. 8). The functional
result is identical to the gold DP; this module models its *timing*:

- score-only: rolling rows, working set of a few byte-arrays of length m;
- full alignment: additionally streams a packed direction matrix
  (4 bits/cell) to memory and walks it back with dependent loads;
- protein: the substitution-score gather defeats SIMD (random 16-way
  lookups per vector), so the kernel degenerates to mostly-scalar code --
  the reason the paper's protein speedups are the largest.

:func:`ksw2_score` is a *functional* reference of the kernel's
differential inner loop (the part the timing model abstracts away),
kept here so the conformance suite can check that the narrow-delta
recurrence reproduces the gold DP scores exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scoring.model import ScoringModel
from repro.sim.cpu import CoreModel, InstructionMix
from repro.sim.stats import RunTiming


def ksw2_score(q_codes: np.ndarray, r_codes: np.ndarray,
               model: ScoringModel) -> int:
    """Global alignment score via KSW2's differential recurrence.

    Instead of absolute DP values, the kernel carries the Suzuki-
    Kasahara deltas ``u[i][j] = H[i][j] - H[i-1][j]`` (vertical) and
    ``v[i][j] = H[i][j] - H[i][j-1]`` (horizontal), which stay within
    the narrow range the 8-bit SIMD lanes (and the SMX shifted
    encoding, paper Sec. 4.1) rely on::

        z[i][j] = max(S(q[i], r[j]), v[i-1][j] + gap_i,
                      u[i][j-1] + gap_d)      # = H[i][j] - H[i-1][j-1]
        u[i][j] = z[i][j] - v[i-1][j]
        v[i][j] = z[i][j] - u[i][j-1]

    The score is recovered from the border plus the last row's
    horizontal deltas: ``H[n][m] = n * gap_i + sum_j v[n][j]``. The
    within-row ``u`` chain is the sequential dependency KSW2 breaks
    with striping; here it runs scalar, as a functional reference only.
    """
    n, m = len(q_codes), len(r_codes)
    gap_i, gap_d = model.gap_i, model.gap_d
    if n == 0:
        return m * gap_d
    v = np.full(m + 1, gap_d, dtype=np.int64)
    v[0] = 0  # unused; H[i][0] borders enter through u below
    for i in range(1, n + 1):
        row_scores = model.substitution_row(int(q_codes[i - 1]),
                                            r_codes).astype(np.int64)
        u_prev = gap_i  # u[i][0] from the H[i][0] = i * gap_i border
        for j in range(1, m + 1):
            z = max(int(row_scores[j - 1]), int(v[j]) + gap_i,
                    u_prev + gap_d)
            u = z - int(v[j])
            v[j] = z - u_prev
            u_prev = u
    return n * gap_i + int(v[1:].sum())


@dataclass(frozen=True)
class Ksw2Params:
    """Kernel-shape constants of the striped-SIMD implementation."""

    simd_lanes: int = 16            # 128-bit vectors of 8-bit elements
    simd_ops_per_vector: float = 9.0
    loads_per_vector: float = 3.0
    stores_per_vector: float = 2.0
    int_ops_per_vector: float = 2.0
    row_overhead_int: float = 10.0
    row_overhead_branches: float = 2.0
    row_mispredictions: float = 0.25
    #: Streamed bytes per cell per row pass (u/v/x/y byte arrays).
    stream_bytes_per_cell: float = 5.0
    #: Rolling working-set bytes per column (the arrays that must stay
    #: cache-resident for the kernel to run at speed).
    working_bytes_per_column: float = 6.0
    #: Direction-matrix bytes per cell in full-alignment mode (4 bits).
    traceback_bytes_per_cell: float = 0.5
    #: Extra scalar work per cell when a substitution matrix is used
    #: (per-lane gather + insert: the SIMD-hostile path).
    protein_extra_int_per_cell: float = 2.0
    protein_extra_loads_per_cell: float = 1.0
    #: Dependent (non-hideable) lookups per cell in submat mode: the
    #: gather result feeds the max tree, exposing load-to-use latency.
    protein_chase_per_cell: float = 2.5
    #: Bytes of the scoring profile those lookups hit (L1-resident).
    protein_table_bytes: int = 1352  # 26 x 26 x 2 bytes
    #: Traceback walk: instructions per step of the alignment path.
    traceback_int_per_step: float = 8.0
    traceback_branches_per_step: float = 2.0
    traceback_misp_per_step: float = 0.30


def _kernel_mix(n: int, m: int, uses_submat: bool,
                params: Ksw2Params) -> InstructionMix:
    """Dynamic instruction mix of the DP sweep (no traceback)."""
    vectors_per_row = (m + params.simd_lanes - 1) // params.simd_lanes
    total_vectors = n * vectors_per_row
    mix = InstructionMix(
        simd_ops=total_vectors * params.simd_ops_per_vector,
        loads=total_vectors * params.loads_per_vector,
        stores=total_vectors * params.stores_per_vector,
        int_ops=(total_vectors * params.int_ops_per_vector
                 + n * params.row_overhead_int),
        branches=n * params.row_overhead_branches + total_vectors,
        mispredictions=n * params.row_mispredictions,
    )
    if uses_submat:
        cells = n * m
        mix.int_ops += cells * params.protein_extra_int_per_cell
        mix.loads += cells * params.protein_extra_loads_per_cell
    return mix


def ksw2_score_timing(n: int, m: int, core: CoreModel,
                      uses_submat: bool = False,
                      params: Ksw2Params | None = None) -> RunTiming:
    """Cycles for a score-only KSW2 sweep of an n x m block."""
    params = params or Ksw2Params()
    mix = _kernel_mix(n, m, uses_submat, params)
    working_set = int(m * params.working_bytes_per_column)
    streamed = n * m * params.stream_bytes_per_cell
    chase = n * m * params.protein_chase_per_cell if uses_submat else 0.0
    cycles = core.kernel_cycles(mix, bytes_streamed=streamed,
                                working_set_bytes=working_set,
                                random_accesses=chase,
                                random_working_set_bytes=(
                                    params.protein_table_bytes))
    return RunTiming(name="simd-score", cycles=cycles, cells=n * m,
                     alignments=1,
                     frequency_ghz=core.params.frequency_ghz)


def ksw2_alignment_timing(n: int, m: int, core: CoreModel,
                          uses_submat: bool = False,
                          params: Ksw2Params | None = None) -> RunTiming:
    """Cycles for a full KSW2 alignment (sweep + direction matrix +
    traceback walk)."""
    params = params or Ksw2Params()
    mix = _kernel_mix(n, m, uses_submat, params)
    cells = n * m
    direction_bytes = cells * params.traceback_bytes_per_cell
    # Direction matrix writes: one store per vector of cells.
    mix.stores += cells / params.simd_lanes
    working_set = int(direction_bytes)
    streamed = cells * params.stream_bytes_per_cell + direction_bytes
    chase = cells * params.protein_chase_per_cell if uses_submat else 0.0
    sweep = core.kernel_cycles(mix, bytes_streamed=streamed,
                               working_set_bytes=working_set,
                               random_accesses=chase,
                               random_working_set_bytes=(
                                   params.protein_table_bytes))
    steps = n + m
    tb_mix = InstructionMix(
        int_ops=steps * params.traceback_int_per_step,
        loads=steps,
        branches=steps * params.traceback_branches_per_step,
        mispredictions=steps * params.traceback_misp_per_step,
    )
    traceback = core.kernel_cycles(tb_mix, random_accesses=steps,
                                   random_working_set_bytes=working_set)
    return RunTiming(name="simd-align", cycles=sweep + traceback,
                     cells=cells, alignments=1,
                     frequency_ghz=core.params.frequency_ghz,
                     extra={"sweep_cycles": sweep,
                            "traceback_cycles": traceback})
