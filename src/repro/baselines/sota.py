"""State-of-the-art comparison data (paper Table 3 and Sec. 11).

The published peak-GCUPS / processing-unit / area numbers of competing
proposals, used verbatim as comparison anchors (we cannot re-implement
an H100 or a ReRAM chip; the paper itself compares against published
figures). SMX's own rows are *computed* from the engine model so they
respond to configuration changes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import EngineParams


@dataclass(frozen=True)
class SotaEntry:
    """One row of Table 3."""

    name: str
    device: str
    #: Supported models: E(dit), G(ap), P(rotein), T(raceback).
    edit: bool
    gap: bool
    protein: bool
    traceback: bool
    processing_units: int
    peak_gcups_per_pu: float
    area_mm2_per_pu: float | None  # None where the paper leaves it blank
    technology_nm: int | None = None

    @property
    def gcups_per_mm2(self) -> float | None:
        if not self.area_mm2_per_pu:
            return None
        return self.peak_gcups_per_pu / self.area_mm2_per_pu


#: Published rows of Table 3 (non-SMX).
SOTA_TABLE = (
    SotaEntry("KSW2", "CPU", True, True, True, True, 1, 1.8, None),
    SotaEntry("BlockAligner", "CPU", True, True, True, True, 1, 3.6, None),
    SotaEntry("GMX", "ISA", True, False, False, True, 1, 1024.0, 0.02, 22),
    SotaEntry("GASAL2", "GPU", True, True, False, True, 28, 2.3, None),
    SotaEntry("CUDASW++4", "GPU (ISA)", True, True, True, False, 132, 63.3,
              None),
    SotaEntry("BioSEAL", "PIM", True, True, True, False, 15, 6046.7, 230.0),
    SotaEntry("GenASM", "DSA", True, False, False, True, 32, 64.0, 0.33, 28),
    SotaEntry("DARWIN", "DSA", True, True, False, True, 64, 54.2, 1.34, 40),
    SotaEntry("GenDP", "DSA", True, True, False, True, 64, 4.7, 5.39, 28),
    SotaEntry("Mao-Jan Lin", "DSA", True, True, True, True, 1, 91.4, 5.72),
    SotaEntry("Talco-XDrop", "DSA", True, True, True, True, 32, 12.8, 1.82),
)

#: SMX total added area per core (mm^2 at 22 nm, paper Sec. 10).
SMX_AREA_MM2 = 0.34


def smx_table_rows(engine: EngineParams | None = None) -> list[SotaEntry]:
    """SMX's Table 3 rows, computed from the engine configuration."""
    engine = engine or EngineParams()
    configs = (
        ("SMX DNA-edit", 2, True, False, False),
        ("SMX DNA-gap", 4, True, True, False),
        ("SMX Protein", 6, True, True, True),
        ("SMX ASCII", 8, True, True, False),
    )
    rows = []
    for name, ew, edit, gap, protein in configs:
        rows.append(SotaEntry(
            name=name, device="ISA + Coproc.", edit=edit, gap=gap,
            protein=protein, traceback=True, processing_units=1,
            peak_gcups_per_pu=engine.peak_gcups(ew),
            area_mm2_per_pu=SMX_AREA_MM2, technology_nm=22))
    return rows


# ---------------------------------------------------------------------------
# CUDASW++ socket-level comparison (paper Sec. 11, last paragraph)
# ---------------------------------------------------------------------------

#: H100 SM count and clock used by the paper's comparison.
H100_SMS = 132
H100_CLOCK_GHZ = 2.0
#: Effective efficiency of CUDASW++ on protein search (divergence,
#: memory): calibrated so the published socket ratio (~1.7x for a
#: 72-core SMX Grace at 1 GHz) is reproduced.
CUDASW_EFFICIENCY = 0.45
#: SMX protein engine utilization on UniProt-style workloads (Fig. 12).
SMX_PROTEIN_UTILIZATION = 0.90


def cudasw_socket_gcups() -> float:
    """Achieved protein GCUPS of CUDASW++ 4.0 on one H100."""
    per_sm = 63.3  # published peak GCUPS per SM (Table 3)
    return H100_SMS * per_sm * CUDASW_EFFICIENCY


def smx_socket_gcups(n_cores: int = 72,
                     engine: EngineParams | None = None) -> float:
    """Achieved protein GCUPS of an SMX-enhanced n-core CPU socket."""
    engine = engine or EngineParams()
    return n_cores * engine.peak_gcups(6) * SMX_PROTEIN_UTILIZATION
