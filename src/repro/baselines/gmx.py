"""GMX baseline: a tile-computing ISA extension (paper Sec. 11).

GMX [Doblas et al., MICRO'23] adds instructions that compute whole
32x32 *edit-distance* tiles inside the CPU's scalar pipeline. Unlike
the decoupled SMX-2D, every tile issue competes with ordinary loads,
stores and control flow, and consecutive tiles of a strip are
data-dependent through the functional unit's multi-cycle latency -- so
the tile unit reaches only ~11% occupancy versus SMX's ~82% (the
paper's Fig. 14 discussion), despite the identical 1024-cells/cycle
peak in Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.cpu import CoreModel, InstructionMix
from repro.sim.stats import RunTiming

#: GMX computes edit-distance DNA tiles only (Table 3: E + T).
GMX_TILE_DIM = 32


@dataclass(frozen=True)
class GmxParams:
    """Per-tile cost constants of the GMX instruction sequence."""

    tile_dim: int = GMX_TILE_DIM
    #: Cycles from tile issue to result availability (the dependent-chain
    #: latency of the in-pipeline functional unit).
    tile_latency: int = 8
    #: Instruction overhead around each tile issue.
    gmx_ops_per_tile: float = 2.0
    loads_per_tile: float = 4.0
    stores_per_tile: float = 2.0
    int_ops_per_tile: float = 4.0
    branches_per_tile: float = 1.0


def gmx_block_timing(n: int, m: int, core: CoreModel,
                     params: GmxParams | None = None) -> RunTiming:
    """Cycles for GMX to sweep an n x m edit-distance block.

    Tiles along one strip are serialized by the functional-unit latency
    (each needs its predecessor's border), so per-tile time is the max
    of the structural cost and the dependency latency.
    """
    params = params or GmxParams()
    dim = params.tile_dim
    tile_rows = (n + dim - 1) // dim
    tile_cols = (m + dim - 1) // dim
    tiles = tile_rows * tile_cols
    mix = InstructionMix(
        smx_ops=params.gmx_ops_per_tile,
        loads=params.loads_per_tile,
        stores=params.stores_per_tile,
        int_ops=params.int_ops_per_tile,
        branches=params.branches_per_tile,
    )
    structural = core.compute_cycles(mix)
    per_tile = max(structural, float(params.tile_latency))
    cycles = tiles * per_tile
    occupancy = tiles / cycles if cycles else 0.0
    return RunTiming(name="gmx", cycles=cycles, cells=n * m, alignments=1,
                     frequency_ghz=core.params.frequency_ghz,
                     extra={"tile_occupancy": occupancy,
                            "tiles": tiles})
