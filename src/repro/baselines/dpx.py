"""DPX baseline: Nvidia's 3-way max/min DP instructions (paper Sec. 11).

DPX fuses a handful of scalar operations (e.g. ``max(a, b, c)`` with
optional ReLU) into single instructions. Applied to the KSW2 SIMD
kernel it removes roughly one max-tree's worth of instructions per
vector but changes nothing structural -- the paper measures only a
1.07x improvement over the KSW2 baseline, which this model reproduces
by shrinking the per-vector SIMD op count accordingly.
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines.ksw2 import (
    Ksw2Params,
    ksw2_alignment_timing,
    ksw2_score_timing,
)
from repro.sim.cpu import CoreModel
from repro.sim.stats import RunTiming

#: The paper's measured DPX-over-KSW2 kernel speedup.
DPX_KERNEL_SPEEDUP = 1.07


def dpx_params(base: Ksw2Params | None = None) -> Ksw2Params:
    """KSW2 kernel constants with DPX-fused max operations."""
    base = base or Ksw2Params()
    return replace(base, simd_ops_per_vector=(base.simd_ops_per_vector
                                              / DPX_KERNEL_SPEEDUP))


def dpx_score_timing(n: int, m: int, core: CoreModel,
                     uses_submat: bool = False) -> RunTiming:
    timing = ksw2_score_timing(n, m, core, uses_submat=uses_submat,
                               params=dpx_params())
    timing.name = "dpx-score"
    return timing


def dpx_alignment_timing(n: int, m: int, core: CoreModel,
                         uses_submat: bool = False) -> RunTiming:
    timing = ksw2_alignment_timing(n, m, core, uses_submat=uses_submat,
                                   params=dpx_params())
    timing.name = "dpx-align"
    return timing
