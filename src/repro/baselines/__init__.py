"""Software, ISA, and DSA baselines the paper compares against."""

from repro.baselines.dpx import (
    DPX_KERNEL_SPEEDUP,
    dpx_alignment_timing,
    dpx_params,
    dpx_score_timing,
)
from repro.baselines.gact import (
    GactParams,
    gact_alignment_timing,
    gact_peak_gcups,
)
from repro.baselines.gmx import GMX_TILE_DIM, GmxParams, gmx_block_timing
from repro.baselines.myers import (
    myers_edit_distance,
    myers_timing,
    myers_working_set,
)
from repro.baselines.ksw2 import (
    Ksw2Params,
    ksw2_alignment_timing,
    ksw2_score_timing,
)
from repro.baselines.sota import (
    SMX_AREA_MM2,
    SOTA_TABLE,
    SotaEntry,
    cudasw_socket_gcups,
    smx_socket_gcups,
    smx_table_rows,
)

__all__ = [
    "DPX_KERNEL_SPEEDUP",
    "GMX_TILE_DIM",
    "GactParams",
    "GmxParams",
    "Ksw2Params",
    "SMX_AREA_MM2",
    "SOTA_TABLE",
    "SotaEntry",
    "cudasw_socket_gcups",
    "dpx_alignment_timing",
    "dpx_params",
    "dpx_score_timing",
    "gact_alignment_timing",
    "gact_peak_gcups",
    "gmx_block_timing",
    "ksw2_alignment_timing",
    "ksw2_score_timing",
    "myers_edit_distance",
    "myers_timing",
    "myers_working_set",
    "smx_socket_gcups",
    "smx_table_rows",
]
