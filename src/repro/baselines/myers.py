"""Myers bit-parallel edit distance (the Edlib/GenASM family).

Myers' 1999 algorithm [76] computes unit-cost edit distance with
bitwise operations, packing 64 DP rows per machine word -- the
algorithmic core of Edlib (the paper's DNA-edit software reference)
and of the GenASM accelerator the paper compares against. We implement
the *blocked* variant (arbitrary pattern length, horizontal deltas
carried between 64-row blocks) in NW mode (global distance), plus a
simple CPU timing model so it can serve as a software baseline for the
DNA-edit configuration.

Bit conventions (block-local row ``i``, text position ``j``):

- ``Pv``/``Mv`` bit i:   ``D[i+1][j] - D[i][j]`` is +1 / -1;
- pre-shift ``Ph``/``Mh`` bit i: ``D[i+1][j] - D[i+1][j-1]`` is +1 / -1.

The running score tracks the bottom matrix row via the pre-shift
horizontal bit of the final block.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlignmentError
from repro.sim.cpu import CoreModel, InstructionMix
from repro.sim.stats import RunTiming

WORD_BITS = 64
_MASK = (1 << WORD_BITS) - 1


def _advance_block(pv: int, mv: int, eq: int,
                   hin: int) -> tuple[int, int, int, int, int]:
    """One column step of one 64-row block (Hyyro/Edlib formulation).

    Returns ``(pv, mv, hout, ph_pre, mh_pre)`` where the ``_pre``
    values are the horizontal-delta words *before* the shift (their bit
    ``i`` describes matrix row ``i+1`` of this block).
    """
    if hin < 0:
        eq |= 1
    xv = eq | mv
    xh = ((((eq & pv) + pv) & _MASK) ^ pv) | eq
    ph = mv | (~(xh | pv) & _MASK)
    mh = pv & xh
    hout = ((ph >> (WORD_BITS - 1)) & 1) - ((mh >> (WORD_BITS - 1)) & 1)
    ph_pre, mh_pre = ph, mh
    ph = ((ph << 1) & _MASK) | (1 if hin > 0 else 0)
    mh = ((mh << 1) & _MASK) | (1 if hin < 0 else 0)
    pv = mh | (~(xv | ph) & _MASK)
    mv = ph & xv
    return pv, mv, hout, ph_pre, mh_pre


def _pattern_masks(q_codes: np.ndarray, n_symbols: int) -> list[list[int]]:
    """Per-block, per-symbol match masks ``Peq[block][symbol]``."""
    m = len(q_codes)
    n_blocks = (m + WORD_BITS - 1) // WORD_BITS
    peq = [[0] * n_symbols for _ in range(n_blocks)]
    for index, code in enumerate(q_codes):
        block, bit = divmod(index, WORD_BITS)
        peq[block][int(code)] |= 1 << bit
    return peq


def myers_edit_distance(q_codes: np.ndarray, r_codes: np.ndarray,
                        n_symbols: int = 4) -> int:
    """Global (NW) edit distance via blocked bit-parallel DP.

    Equivalent to ``-nw_score(q, r, edit_model())``; property-tested
    against the gold DP.
    """
    m, n = len(q_codes), len(r_codes)
    if m == 0:
        return n
    if n == 0:
        return m
    if q_codes.max(initial=0) >= n_symbols or \
            r_codes.max(initial=0) >= n_symbols:
        raise AlignmentError(
            f"codes exceed the declared alphabet size {n_symbols}"
        )
    peq = _pattern_masks(q_codes, n_symbols)
    n_blocks = len(peq)
    boundary = (m - 1) % WORD_BITS
    pv = [_MASK] * n_blocks
    mv = [0] * n_blocks
    score = m
    for code in r_codes:
        hin = 1  # NW mode: the top matrix row increases by 1 per column
        ph_pre = mh_pre = 0
        for block in range(n_blocks):
            pv[block], mv[block], hin, ph_pre, mh_pre = _advance_block(
                pv[block], mv[block], peq[block][int(code)], hin)
        score += ((ph_pre >> boundary) & 1) - ((mh_pre >> boundary) & 1)
    return score


def myers_working_set(n: int, n_symbols: int = 4) -> int:
    """Resident bytes of the blocked sweep: per 64-row block, one
    ``Pv`` word, one ``Mv`` word, and one ``Peq`` word per alphabet
    symbol -- ``(2 + n_symbols)`` 8-byte words per block."""
    blocks = (n + WORD_BITS - 1) // WORD_BITS
    return blocks * 8 * (2 + n_symbols)


def myers_timing(n: int, m: int, core: CoreModel,
                 ops_per_block_step: float = 17.0,
                 n_symbols: int = 4) -> RunTiming:
    """CPU cost of the bit-parallel sweep (the Edlib-style baseline).

    Each (text char, block) step is ~17 bitwise/arithmetic ops; the
    bit-parallelism amortizes them over 64 DP cells, which is why
    Edlib-class tools beat plain SIMD on the edit model. The resident
    working set scales with the alphabet (``Peq`` keeps one word per
    symbol per block), so protein timing passes ``n_symbols``.
    """
    blocks = (n + WORD_BITS - 1) // WORD_BITS
    steps = m * blocks
    mix = InstructionMix(
        int_ops=steps * ops_per_block_step,
        loads=steps * 1.5,
        branches=m * 2.0,
        mispredictions=m * 0.02,
    )
    working_set = myers_working_set(n, n_symbols)
    cycles = core.kernel_cycles(mix, bytes_streamed=steps * 16,
                                working_set_bytes=working_set)
    return RunTiming(name="myers", cycles=cycles, cells=n * m,
                     alignments=1,
                     frequency_ghz=core.params.frequency_ghz)
