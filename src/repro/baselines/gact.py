"""GACT baseline: Darwin's window-heuristic DSA (paper Sec. 3 and 11).

GACT is a standalone accelerator that aligns long reads with the fixed
window heuristic (functional model: :class:`repro.algorithms.window.
WindowAligner`). Its hardware is a systolic array of processing
elements sweeping each W x W window, plus dedicated traceback logic and
SRAM (the 79.4%-of-area traceback share the paper cites). The timing
model below captures the published design: ``W^2 / n_pe`` cycles of
array time per window plus a sequential traceback of ~W steps, with
``W - O`` diagonal cells of net progress per window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.stats import RunTiming


@dataclass(frozen=True)
class GactParams:
    """Published GACT design point (Darwin, 40 nm ASIC)."""

    n_pe: int = 64
    window: int = 320
    overlap: int = 128
    #: Per-window fixed overhead (control + window setup), cycles.
    window_overhead: int = 64
    #: Traceback cycles per committed path step.
    traceback_cycles_per_step: float = 1.0
    frequency_ghz: float = 1.0
    #: Published area (mm^2) at 40 nm, scaled for comparisons by
    #: :mod:`repro.analysis.area`.
    area_mm2_40nm: float = 1.34
    #: Fraction of area spent on traceback logic + memory (paper Sec. 3).
    traceback_area_fraction: float = 0.794


def gact_alignment_timing(n: int, m: int,
                          params: GactParams | None = None) -> RunTiming:
    """Cycles for GACT to align an n x m pair with its window heuristic.

    The alignment path has ~max(n, m) diagonal steps; each window
    commits ``W - O`` of them and costs array sweep + traceback +
    overhead. This reproduces GACT's headline property: throughput
    independent of sequence length squared (linear in length), at the
    price of the heuristic's recall.
    """
    params = params or GactParams()
    advance = params.window - params.overlap
    path_steps = max(n, m)
    windows = max(1, -(-path_steps // advance))
    array_cycles = params.window * params.window / params.n_pe
    traceback_cycles = params.window * params.traceback_cycles_per_step
    per_window = array_cycles + traceback_cycles + params.window_overhead
    cycles = windows * per_window
    return RunTiming(name="gact", cycles=cycles,
                     cells=windows * params.window * params.window,
                     alignments=1, frequency_ghz=params.frequency_ghz,
                     extra={"windows": windows,
                            "cycles_per_window": per_window})


def gact_peak_gcups(params: GactParams | None = None) -> float:
    """Peak array throughput: one cell per PE per cycle."""
    params = params or GactParams()
    return params.n_pe * params.frequency_ghz
