"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``align``    -- align two sequences on the SMX system and print the
  result (score, CIGAR, pretty view, simulated cycles); with
  ``--batch FILE`` it aligns many pairs through the batched engine
  (``--engine {scalar,vector,wavefront,bitparallel,auto}``,
  ``--workers N``; ``wavefront`` and the score-only ``bitparallel``
  need a unit-cost edit config, ``auto`` routes each
  pair adaptively). ``--resilient``,
  ``--deadline S`` and ``--chaos CLS=RATE`` route the batch through
  the supervised fault-tolerant engine (failed pairs print as ``FAIL``
  lines, exit code 3 signals a partial result); ``--checkpoint FILE``
  writes a crash-safe incremental ``smx-outcome/1`` checkpoint and
  ``--resume FILE`` restarts an interrupted batch from one;
- ``enqueue``  -- submit a batch as an ``smx-job/1`` file into a
  service spool directory (tenant, priority, deadline);
- ``serve``    -- run the alignment service daemon over a spool:
  admission control prices each job against its deadline before
  accepting, accepted jobs drain weighted-fair per tenant through the
  supervised engine with incremental checkpoints, and a killed daemon
  auto-resumes interrupted jobs on restart;
- ``simulate`` -- run the cycle-level SMX-2D simulation for a block
  workload and report utilization/traffic;
- ``area``     -- print the calibrated 22 nm area/power breakdown;
- ``stats``    -- pretty-print the metrics snapshot of a JSON run
  report (written by ``--metrics-json`` or the benchmark harness), or
  the completion/quarantine digest of an ``smx-outcome/1``
  checkpoint/outcome file;
- ``top``      -- digest a telemetry events file once;
- ``monitor``  -- live dashboard over a telemetry events file: rolling
  latency percentiles, route mix, fault/shed tallies, and SLO status
  with error-budget burn rates (``--once`` for a single snapshot);
- ``critpath`` -- extract the critical path from a (stitched) Chrome
  trace written by ``--trace-out`` and attribute the end-to-end wall
  clock to the phases along it;
- ``bench``    -- benchmark suite + trailing-median regression gate.

Observability: ``align`` and ``simulate`` accept ``--trace-out FILE``
(Perfetto/``chrome://tracing``-loadable span trace in simulated cycles)
and ``--metrics-json FILE`` (machine-readable run report); ``SMX_LOG=
debug`` turns on stderr logging for the whole ``repro`` hierarchy.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro import obs
from repro.analysis.area import smx_area_breakdown, smx_power_mw
from repro.config import standard_configs
from repro.core.coprocessor import CoprocParams, CoprocessorSim
from repro.core.system import SmxSystem
from repro.algorithms.wavefront import _check_edit_model
from repro.core.worker import BlockJob
from repro.errors import ConfigurationError, EncodingError
from repro.exec.engine import BatchConfig, BatchEngine
from repro.obs import reports as obs_reports


def _add_config_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--config", default="dna-edit",
                        choices=sorted(standard_configs()),
                        help="alignment configuration preset")


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write a Chrome trace-event JSON timeline "
                             "(open in Perfetto / chrome://tracing)")
    parser.add_argument("--metrics-json", metavar="FILE", default=None,
                        help="write a machine-readable run report "
                             "(metrics snapshot + parameters)")
    parser.add_argument("--profile-out", metavar="FILE", default=None,
                        help="write a collapsed-stack flamegraph "
                             "(feed to flamegraph.pl or speedscope)")
    parser.add_argument("--profile-unit", default="wall_us",
                        choices=obs.prof.UNITS,
                        help="unit the flamegraph folds by "
                             "(default: wall_us)")
    parser.add_argument("--cost-out", metavar="FILE", default=None,
                        help="write the per-pair cost table predicted "
                             "by the profiled CostModel (JSON)")


def _progress_printer(event: dict) -> None:
    """Live one-line renderer for --progress (stderr, tail-style)."""
    kind = event.get("kind")
    if kind in ("progress", "heartbeat"):
        done, total = event.get("done"), event.get("total")
        extra = (f", {event['queued']} queued"
                 if event.get("queued") else "")
        print(f"[{kind} t={event.get('t', 0):.2f}s "
              f"{done}/{total}{extra}]", file=sys.stderr)
    elif kind in ("quarantine", "fault", "degrade"):
        detail = event.get("fault", event.get("rung", ""))
        print(f"[{kind} t={event.get('t', 0):.2f}s {detail}]",
              file=sys.stderr)


def _obs_context(args: argparse.Namespace) -> obs.Observability:
    """An enabled context when any telemetry output was requested."""
    profile = bool(args.profile_out or args.cost_out)
    events_out = getattr(args, "events_out", None)
    progress = getattr(args, "progress", False)
    stream = None
    if events_out:
        stream = obs.events.open_jsonl(events_out)
    elif progress:
        stream = obs.EventStream()
    if stream is not None and progress:
        stream.subscribe(_progress_printer)
    if args.trace_out or args.metrics_json or profile or stream:
        return obs.Observability.enabled_context(profile=profile,
                                                 events=stream)
    return obs.get_obs()


def _write_obs_outputs(args: argparse.Namespace, ctx: obs.Observability,
                       name: str, params: dict,
                       extra: dict | None = None,
                       cost_pairs=None) -> None:
    ctx.events.close()
    if args.trace_out:
        path = ctx.tracer.write(args.trace_out)
        print(f"[trace written to {path}]")
    if args.profile_out:
        path = ctx.profiler.write_collapsed(args.profile_out,
                                            args.profile_unit)
        print(f"[profile written to {path}]")
    if args.cost_out:
        model = obs.CostModel.from_profile(ctx.profiler)
        document = {"seconds_per_cell": model.seconds_per_cell,
                    "bytes_per_cell": model.bytes_per_cell,
                    "pairs": model.cost_table(cost_pairs or [])}
        path = obs_reports.write_json(document, args.cost_out)
        print(f"[cost table written to {path}]")
    if args.metrics_json:
        report = obs_reports.run_report(
            name, params=params, metrics=ctx.metrics.snapshot(),
            extra=extra)
        path = obs_reports.write_json(report, args.metrics_json)
        print(f"[metrics written to {path}]")


def _read_pair_file(path: str) -> list[tuple[str, str]]:
    """Parse a batch file: one whitespace-separated ``query reference``
    pair per line; blank lines and ``#`` comments are skipped."""
    pairs = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 2:
                raise ValueError(
                    f"{path}:{lineno}: expected 'QUERY REFERENCE', got "
                    f"{len(fields)} fields")
            pairs.append((fields[0], fields[1]))
    return pairs


def cmd_align_batch(args: argparse.Namespace) -> int:
    config = standard_configs()[args.config]
    ctx = _obs_context(args)
    try:
        pairs = _read_pair_file(args.batch)
        encoded = [(config.encode(q), config.encode(r))
                   for q, r in pairs]
    except (OSError, ValueError, EncodingError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        # The bit-parallel engine is score-only: print '-' for the
        # CIGAR column instead of rejecting the batch.
        score_only = args.engine == "bitparallel"
        batch = BatchConfig(engine=args.engine, mode="global",
                            traceback=not score_only,
                            workers=args.workers)
        if args.engine in ("wavefront", "bitparallel"):
            # Fail fast with one line instead of a mid-batch traceback.
            _check_edit_model(config.model, f"engine '{args.engine}'")
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    checkpoint = getattr(args, "checkpoint", None)
    resume_path = getattr(args, "resume", None)
    supervised = (args.resilient or args.deadline is not None
                  or args.chaos is not None or checkpoint is not None
                  or resume_path is not None)
    failures: list = []
    counters: dict = {}
    started = time.perf_counter()
    if supervised:
        from repro.resilience import (
            ResilienceConfig,
            SupervisedEngine,
            outcome_io,
            parse_rates,
        )
        try:
            plan = (parse_rates(args.chaos, seed=args.chaos_seed)
                    if args.chaos else None)
            policy = ResilienceConfig(
                deadline_s=args.deadline,
                shard_timeout_s=args.shard_timeout,
                max_retries=args.max_retries,
                validate=plan is not None)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        resume = None
        if resume_path:
            try:
                resume = outcome_io.load(resume_path)
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            if checkpoint is None:
                # Keep updating the same file we are resuming from.
                checkpoint = resume_path
        try:
            outcome = SupervisedEngine(config, batch, policy, obs=ctx,
                                       plan=plan).run(
                encoded, checkpoint_path=checkpoint, resume=resume)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        results = outcome.results
        failures = outcome.failures
        counters = dict(outcome.counters)
    else:
        try:
            results = BatchEngine(config, batch, obs=ctx).run(encoded)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elapsed = time.perf_counter() - started
    by_index = {failure.index: failure for failure in failures}
    for i, ((query, reference), result) in enumerate(zip(pairs, results)):
        if result is None:
            failure = by_index[i]
            print(f"FAIL\t{failure.fault}:{failure.error_type}\t"
                  f"{query}\t{reference}")
        else:
            cigar = (result.alignment.cigar_string
                     if result.alignment is not None else "-")
            print(f"{result.score}\t{cigar}\t{query}\t{reference}")
    rate = len(pairs) / elapsed if elapsed > 0 else float("inf")
    summary = (f"[{len(pairs)} pairs in {elapsed * 1e3:.1f} ms "
               f"({rate:,.0f} pairs/s, engine={args.engine}, "
               f"workers={args.workers})]")
    if supervised:
        summary = summary[:-1] + (
            f", {len(pairs) - len(failures)} ok, "
            f"{len(failures)} failed]")
    print(summary, file=sys.stderr)
    extra = {"elapsed_s": elapsed, "pairs_per_sec": rate}
    if supervised:
        extra["resilience"] = {
            "counters": counters,
            "failures": [{"index": f.index, "fault": f.fault,
                          "error_type": f.error_type,
                          "attempts": f.attempts,
                          "rungs": list(f.rungs)} for f in failures]}
    _write_obs_outputs(
        args, ctx, "align-batch",
        params={"config": config.name, "pairs": len(pairs),
                "engine": args.engine, "workers": args.workers,
                "resilient": supervised,
                "chaos": args.chaos or None},
        extra=extra, cost_pairs=encoded)
    return 3 if failures else 0


def cmd_align(args: argparse.Namespace) -> int:
    if args.batch:
        if args.query is not None or args.reference is not None:
            print("error: --batch replaces the QUERY/REFERENCE "
                  "arguments", file=sys.stderr)
            return 2
        return cmd_align_batch(args)
    if getattr(args, "checkpoint", None) or getattr(args, "resume", None):
        print("error: --checkpoint/--resume need --batch FILE",
              file=sys.stderr)
        return 2
    if args.query is None or args.reference is None:
        print("error: align needs QUERY and REFERENCE (or --batch FILE)",
              file=sys.stderr)
        return 2
    config = standard_configs()[args.config]
    ctx = _obs_context(args)
    system = SmxSystem(config, obs=ctx)
    q_codes = config.encode(args.query)
    r_codes = config.encode(args.reference)
    result = system.align(q_codes, r_codes)
    print(f"score : {result.score}")
    print(f"cigar : {result.alignment.cigar_string}")
    print(f"cells : {result.cells_computed} computed, "
          f"{result.cells_recomputed} recomputed for traceback")
    print()
    print(result.alignment.pretty(args.query, args.reference))
    if args.timing:
        n = max(64, len(q_codes))
        m = max(64, len(r_codes))
        print()
        for impl in ("simd", "smx1d", "smx2d", "smx"):
            timing = system.implementation_timing(n, m, "align", impl)
            print(f"{impl:>6}: {timing.cycles:14,.0f} cycles "
                  f"({timing.gcups:9.2f} GCUPS)")
    _write_obs_outputs(
        args, ctx, "align",
        params={"config": config.name, "n": len(q_codes),
                "m": len(r_codes), "timing": bool(args.timing)},
        extra={"result": {"score": result.score,
                          "cells_computed": result.cells_computed,
                          "cells_recomputed": result.cells_recomputed}})
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    config = standard_configs()[args.config]
    params = CoprocParams(n_workers=args.workers)
    ctx = _obs_context(args)
    jobs = [BlockJob(n=args.size, m=args.size, ew=config.ew,
                     store_tile_borders=args.alignment_mode, job_id=i)
            for i in range(args.blocks)]
    report = CoprocessorSim(params, obs=ctx).run(jobs)
    cells = sum(job.cells for job in jobs)
    print(f"config             : {config.name} (EW={config.ew}, "
          f"tile {config.vl}x{config.vl})")
    print(f"workload           : {args.blocks} blocks of "
          f"{args.size}x{args.size} "
          f"({'alignment' if args.alignment_mode else 'score'} mode)")
    print(f"cycles             : {report.total_cycles:,}")
    print(f"engine utilization : {report.engine_utilization:.1%}")
    print(f"throughput         : {cells / report.total_cycles:,.0f} "
          f"cells/cycle ({cells / report.total_cycles:,.0f} GCUPS @1GHz)")
    print(f"L2 port occupancy  : {report.port_occupancy:.1%}")
    print(f"memory traffic     : {report.bytes_transferred / 1024:,.0f}"
          " KiB")
    _write_obs_outputs(
        args, ctx, "simulate",
        params={"config": config.name, "ew": config.ew,
                "size": args.size, "blocks": args.blocks,
                "workers": args.workers,
                "alignment_mode": bool(args.alignment_mode)},
        extra={"coproc_report": report.to_dict()})
    return 0


def _print_outcome_stats(path: str, document: dict) -> int:
    """Render an ``smx-outcome/1`` checkpoint/outcome for ``stats``."""
    from repro.resilience import outcome_io
    summary = outcome_io.summarize(document)
    status = "complete" if summary["complete"] else "in progress"
    print(f"outcome : {document.get('schema')}  ({path})")
    print(f"status  : {status}")
    print(f"pairs   : {summary['completed']}/{summary['pairs']} "
          f"completed ({summary['fraction']:.1%})")
    if summary["unsettled"]:
        print(f"pending : {summary['unsettled']} pair(s) unsettled "
              f"(resume with 'repro align --resume {path}')")
    if summary["failures"]:
        print(f"failed  : {summary['failures']} pair(s)"
              + (f", {summary['shed']} shed" if summary["shed"] else ""))
        for fault, count in summary["quarantined_by_fault"].items():
            print(f"  {fault:<28}{count:>10,}")
    counters = summary["counters"]
    if counters:
        print()
        print("counters:")
        for key in sorted(counters):
            print(f"  {key:<28}{counters[key]:>10,}")
    return 0


def _sniff_outcome(path: str) -> dict | None:
    """The parsed document when ``path`` is an smx-outcome file, else
    None (missing/malformed files fall through to the report loader so
    its one-line errors stay authoritative)."""
    import json
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        return None
    if (isinstance(document, dict) and str(
            document.get("schema", "")).startswith("smx-outcome/")):
        return document
    return None


def cmd_stats(args: argparse.Namespace) -> int:
    outcome_doc = _sniff_outcome(args.report)
    if outcome_doc is not None:
        return _print_outcome_stats(args.report, outcome_doc)
    try:
        report = obs_reports.load_report(args.report)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"report  : {report['name']}  ({args.report})")
    print(f"created : {report.get('created')}")
    if report.get("git_sha"):
        print(f"git sha : {report['git_sha']}")
    params = report.get("params") or {}
    if params:
        print("params  : " + ", ".join(f"{k}={v}"
                                       for k, v in sorted(params.items())))
    print()
    print("metrics:")
    print(obs_reports.format_metrics(report.get("metrics") or {},
                                     indent="  "))
    timings = report.get("timings") or []
    if timings:
        print()
        print("timings:")
        for row in timings:
            cycles = row.get("cycles", row.get("total_cycles", 0.0))
            gcups = row.get("gcups")
            line = f"  {row.get('name', '?'):<24}{cycles:16,.0f} cycles"
            if gcups is not None:
                line += f"  {gcups:10,.2f} GCUPS"
            print(line)
    resilience = report.get("resilience") or {}
    counters = resilience.get("counters") or {}
    if counters:
        print()
        print("resilience:")
        for key in sorted(counters):
            print(f"  {key:<28}{counters[key]:>10,}")
        failures = resilience.get("failures") or []
        if failures:
            print(f"  {'failed pairs':<28}{len(failures):>10,}")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    from repro.obs import events as obs_events
    outcome_doc = _sniff_outcome(args.events)
    if outcome_doc is not None:
        return _print_outcome_stats(args.events, outcome_doc)
    try:
        event_list, skipped = obs_events.load_events(
            args.events, strict=getattr(args, "strict", False))
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    digest = obs_events.summarize(event_list)
    if getattr(args, "json", False):
        import json as json_mod

        from repro.obs import slo as obs_slo
        snapshot = obs_slo.monitor_snapshot(event_list, objectives=(),
                                            window_s=None,
                                            skipped=skipped)
        document = dict(digest)
        document["skipped_lines"] = skipped
        document["latencies"] = snapshot["latencies"]
        print(json_mod.dumps(document, sort_keys=True))
        return 0
    print(f"events  : {digest['events']}  ({args.events})")
    if skipped:
        print(f"          ({skipped} truncated line(s) skipped; "
              f"--strict to fail instead)")
    print(f"schema  : {digest['schema'] or '(none)'}")
    print(f"duration: {digest['duration_s']:.2f}s")
    start, end = digest["run_start"], digest["run_end"]
    if start:
        line = f"run     : {start.get('pairs', '?')} pairs"
        if "shards" in start:
            line += f" across {start['shards']} shard(s)"
        if "backend" in start:
            line += f" [{start['backend']}]"
        print(line)
    beat = digest["progress"] or digest["heartbeat"]
    if beat:
        done, total = beat.get("done"), beat.get("total")
        percent = (f" ({100 * done / total:.0f}%)"
                   if isinstance(done, (int, float))
                   and isinstance(total, (int, float)) and total else "")
        print(f"progress: {done}/{total}{percent} at "
              f"t={beat.get('t', 0):.2f}s")
    if end:
        status = "complete"
        if end.get("failures"):
            status = f"complete, {end['failures']} failure(s)"
        print(f"status  : {status}")
    elif event_list:
        print("status  : still running (no run_end/batch_end event)")
    print()
    print("by kind :")
    for kind, count in digest["by_kind"].items():
        print(f"  {kind:<16}{count:>8,}")
    from repro.obs import slo as obs_slo
    snapshot = obs_slo.monitor_snapshot(event_list, objectives=(),
                                        window_s=None)
    if snapshot["latencies"]:
        print()
        print("latency :")
        for kind, stats in snapshot["latencies"].items():
            print(f"  {kind:<12} n={stats['count']:<6,} "
                  f"p50={stats['p50']:.4f}s p90={stats['p90']:.4f}s "
                  f"p99={stats['p99']:.4f}s max={stats['max']:.4f}s")
    quarantines = digest["quarantines"]
    if quarantines:
        print()
        print("quarantined pairs:")
        for event in quarantines:
            print(f"  pair {event.get('index', '?')}: "
                  f"{event.get('fault', '?')} "
                  f"({event.get('error_type', '?')}, "
                  f"{event.get('attempts', '?')} attempts)")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs import bench
    if args.ingest:
        try:
            record = bench.record_from_run_reports(args.ingest)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not record["metrics"]:
            print("error: no benchmark metrics found in the given "
                  "reports", file=sys.stderr)
            return 2
    else:
        record = bench.collect(quick=not args.full)
    try:
        history = bench.load_history(args.history)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    failed = False
    if args.check:
        results = bench.check(record, history,
                              tolerance=args.tolerance,
                              window=args.window,
                              relative_only=args.relative_only)
        print(bench.format_check(results))
        failed = any(row["status"] == "regression" for row in results)
    else:
        for metric in sorted(record["metrics"]):
            print(f"{metric:<40}{record['metrics'][metric]:>16,.3f}")
    if failed:
        print(bench.format_regressions(results), file=sys.stderr)
        print(f"[regression vs {args.history}; record not appended]",
              file=sys.stderr)
        return 1
    if not args.no_append:
        bench.append_record(args.history, record)
        print(f"[record #{len(history['records']) + 1} appended to "
              f"{args.history}]", file=sys.stderr)
    return 0


def _monitor_objectives(args: argparse.Namespace):
    from repro.obs import slo as obs_slo
    objectives = [] if args.no_default_slos \
        else list(obs_slo.DEFAULT_SLOS)
    for spec in args.slo or []:
        objectives.append(obs_slo.parse_slo(spec))
    return objectives


def cmd_monitor(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.obs import events as obs_events, slo as obs_slo
    try:
        objectives = _monitor_objectives(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.once:
        try:
            event_list, skipped = obs_events.load_events(
                args.events, strict=args.strict)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not event_list:
            print(f"error: {args.events}: no events", file=sys.stderr)
            return 2
        snapshot = obs_slo.monitor_snapshot(
            event_list, objectives, window_s=args.window,
            skipped=skipped)
        if getattr(args, "json", False):
            print(json_mod.dumps(snapshot, sort_keys=True))
        else:
            print(obs_slo.format_monitor(snapshot))
        return 0
    # Follow mode: incremental tail with a partial-line buffer (the
    # writer flushes whole lines, but reads can race mid-write).
    try:
        handle = open(args.events, encoding="utf-8")
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    event_list: list[dict] = []
    skipped = 0
    buffer = ""
    rendered = -1
    try:
        while True:
            chunk = handle.read()
            if chunk:
                buffer += chunk
                lines = buffer.split("\n")
                buffer = lines.pop()
                for line in lines:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        event = json_mod.loads(line)
                        if not isinstance(event, dict):
                            raise ValueError("not a JSON object")
                    except (ValueError, json_mod.JSONDecodeError) as exc:
                        if args.strict:
                            print(f"error: {args.events}: not a JSON "
                                  f"event line ({exc})", file=sys.stderr)
                            return 2
                        skipped += 1
                        continue
                    event_list.append(event)
            if len(event_list) != rendered:
                rendered = len(event_list)
                snapshot = obs_slo.monitor_snapshot(
                    event_list, objectives, window_s=args.window,
                    skipped=skipped)
                if getattr(args, "json", False):
                    print(json_mod.dumps(snapshot, sort_keys=True),
                          flush=True)
                else:
                    print(obs_slo.format_monitor(snapshot))
                    print("---", flush=True)
                if snapshot["ended"]:
                    return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        handle.close()


def cmd_fleet(args: argparse.Namespace) -> int:
    """Per-tenant fleet dashboard over a daemon's event stream."""
    import json as json_mod

    from repro.obs import events as obs_events, slo as obs_slo
    try:
        objectives = ([] if args.no_default_slos
                      else list(obs_slo.DEFAULT_FLEET_SLOS))
        for spec in args.slo or []:
            objectives.append(obs_slo.parse_slo(spec))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rendered = -1
    while True:
        try:
            event_list, skipped = obs_events.load_events(
                args.events, strict=args.strict)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.once and not event_list:
            print(f"error: {args.events}: no events", file=sys.stderr)
            return 2
        if len(event_list) != rendered:
            rendered = len(event_list)
            snapshot = obs_slo.fleet_snapshot(
                event_list, objectives, window_s=args.window,
                skipped=skipped)
            if args.json:
                print(json_mod.dumps(snapshot, sort_keys=True),
                      flush=True)
            else:
                print(obs_slo.format_fleet(snapshot))
                if not args.once:
                    print("---", flush=True)
        if args.once:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def cmd_critpath(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.obs import critpath as obs_critpath
    try:
        with open(args.trace, encoding="utf-8") as handle:
            doc = json_mod.load(handle)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    path = obs_critpath.critical_path(doc, root_name=args.root)
    if path is None:
        target = f"named {args.root!r}" if args.root else "at all"
        print(f"error: {args.trace}: no spans {target}", file=sys.stderr)
        return 2
    print(obs_critpath.format_critical_path(path, limit=args.limit))
    totals = sorted(path.phase_totals().items(),
                    key=lambda kv: -kv[1])
    print()
    print("self time by phase:")
    total = path.total_us or 1.0
    for name, self_us in totals:
        print(f"  {name:<36} {self_us / 1e3:>10.3f}ms "
              f"{self_us / total * 100.0:>5.1f}%")
    return 0


def cmd_area(args: argparse.Namespace) -> int:
    breakdown = smx_area_breakdown(n_workers=args.workers)
    print(f"{'component':<40}{'mm^2':>10}{'% of core':>11}")
    for name, area, percent in breakdown.rows():
        print(f"{name:<40}{area:>10.4f}{percent:>10.2f}%")
    print(f"\npower @20% activity: {smx_power_mw():.3f} mW")
    return 0


def cmd_enqueue(args: argparse.Namespace) -> int:
    from repro.service import JobSpec, JobSpool, new_job_id
    try:
        pairs = _read_pair_file(args.batch)
        if not pairs:
            raise ValueError(f"{args.batch}: no pairs")
        if args.priority < 1:
            raise ValueError("--priority must be >= 1")
        if args.deadline is not None and not args.deadline > 0:
            raise ValueError("--deadline must be positive")
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    job = JobSpec(job_id=args.job_id or new_job_id(), pairs=pairs,
                  config=args.config, engine=args.engine,
                  traceback=args.engine != "bitparallel",
                  tenant=args.tenant, priority=args.priority,
                  deadline_s=args.deadline, workers=args.workers)
    spool = JobSpool(args.spool)
    path = spool.submit(job)
    print(f"{job.job_id}\t{path}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs.prof import CostModel
    from repro.obs.timeseries import TimeSeriesStore
    from repro.service import AdmissionPolicy, AlignmentDaemon, JobSpool
    try:
        spool = JobSpool(args.spool)
        policy = AdmissionPolicy(max_queue_depth=args.max_queue_depth,
                                 safety=args.admission_safety,
                                 max_backlog_s=args.max_backlog)
        cost_model = None
        if args.seconds_per_cell is not None:
            if not args.seconds_per_cell > 0:
                raise ValueError("--seconds-per-cell must be positive")
            cost_model = CostModel(
                seconds_per_cell=args.seconds_per_cell)
        telemetry = TimeSeriesStore(
            interval_s=args.telemetry_interval,
            retention=args.telemetry_retention)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    events_path = args.events_out or os.path.join(args.spool,
                                                  "events.jsonl")
    stream = obs.events.open_jsonl(events_path)
    ctx = obs.Observability.enabled_context(events=stream)
    daemon = AlignmentDaemon(
        spool, obs=ctx, policy=policy, cost_model=cost_model,
        max_unit_pairs=args.max_unit_pairs, telemetry=telemetry,
        telemetry_path=os.path.join(args.spool, "telemetry.json"),
        metrics_path=args.metrics_out
        or os.path.join(args.spool, "metrics.prom"))
    server = None
    if args.metrics_port is not None:
        from repro.obs import export as obs_export
        server = obs_export.MetricsServer(
            lambda: obs_export.render_registry(ctx.metrics),
            port=args.metrics_port)
        print(f"[metrics: {server.url}]", file=sys.stderr)
    print(f"[serving {args.spool}; events -> {events_path}; "
          f"watch with 'repro monitor {events_path}' or "
          f"'repro fleet {events_path}']",
          file=sys.stderr)
    try:
        settled = daemon.serve(max_jobs=args.max_jobs,
                               idle_exit_s=args.idle_exit,
                               poll_s=args.poll)
    except KeyboardInterrupt:
        settled = daemon.settled
    finally:
        if server is not None:
            server.close()
        stream.close()
    print(f"[{settled} job(s) settled]", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SMX heterogeneous sequence-alignment reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    align = sub.add_parser("align",
                           help="align two sequences (or a batch file)")
    _add_config_argument(align)
    align.add_argument("query", nargs="?", default=None)
    align.add_argument("reference", nargs="?", default=None)
    align.add_argument("--timing", action="store_true",
                       help="also print simulated per-implementation "
                            "cycles")
    align.add_argument("--batch", metavar="FILE", default=None,
                       help="align many pairs: one 'QUERY REFERENCE' "
                            "per line ('#' comments allowed)")
    align.add_argument("--engine",
                       choices=("scalar", "vector", "wavefront",
                                "bitparallel", "auto"),
                       default="vector",
                       help="batch execution engine (default: vector; "
                            "'wavefront' needs a unit-cost edit config, "
                            "'bitparallel' is score-only edit distance "
                            "-- CIGARs print as '-', "
                            "'auto' plans a route per pair)")
    align.add_argument("--workers", type=int, default=1,
                       help="worker processes for --batch (default: 1)")
    align.add_argument("--resilient", action="store_true",
                       help="run --batch through the supervised "
                            "fault-tolerant engine (partial results "
                            "instead of a crash; exit code 3 if any "
                            "pair failed)")
    align.add_argument("--deadline", type=float, metavar="SECONDS",
                       default=None,
                       help="wall-clock budget for the whole --batch "
                            "call (implies --resilient)")
    align.add_argument("--shard-timeout", type=float, metavar="SECONDS",
                       default=None,
                       help="per-shard hang-detection timeout for "
                            "--resilient batches")
    align.add_argument("--max-retries", type=int, default=2,
                       help="retries per failing shard/pair for "
                            "--resilient batches (default: 2)")
    align.add_argument("--chaos", metavar="CLS=RATE[,..]", default=None,
                       help="inject seeded faults into --batch, e.g. "
                            "'crash=0.05,bitflip=0.1' (classes: crash, "
                            "hang, oserror, bitflip, rangeerror; "
                            "implies --resilient)")
    align.add_argument("--chaos-seed", type=int, default=0,
                       help="fault-injection seed (default: 0)")
    align.add_argument("--checkpoint", metavar="FILE", default=None,
                       help="write an incremental smx-outcome/1 "
                            "checkpoint after every settled unit "
                            "(implies --resilient; becomes the final "
                            "outcome file on completion)")
    align.add_argument("--resume", metavar="FILE", default=None,
                       help="resume an interrupted --batch run from a "
                            "checkpoint written by --checkpoint "
                            "(the batch file must contain the same "
                            "pairs; implies --resilient)")
    align.add_argument("--progress", action="store_true",
                       help="print live progress/heartbeat events to "
                            "stderr while a --batch runs")
    align.add_argument("--events-out", metavar="FILE", default=None,
                       help="stream structured JSONL telemetry events "
                            "(watch live with 'repro top FILE')")
    _add_obs_arguments(align)
    align.set_defaults(func=cmd_align)

    enqueue = sub.add_parser(
        "enqueue",
        help="submit an alignment job to a service spool")
    enqueue.add_argument("batch", metavar="FILE",
                         help="pair file: one 'QUERY REFERENCE' per "
                              "line ('#' comments allowed)")
    enqueue.add_argument("--spool", default="spool",
                         help="spool directory (default: ./spool)")
    _add_config_argument(enqueue)
    enqueue.add_argument("--engine",
                         choices=("scalar", "vector", "wavefront",
                                  "bitparallel", "auto"),
                         default="vector",
                         help="batch engine for the job "
                              "(default: vector; 'bitparallel' jobs "
                              "are score-only)")
    enqueue.add_argument("--tenant", default="default",
                         help="tenant lane for fair scheduling "
                              "(default: default)")
    enqueue.add_argument("--priority", type=int, default=1,
                         help="scheduling weight >= 1 (default: 1)")
    enqueue.add_argument("--deadline", type=float, metavar="SECONDS",
                         default=None,
                         help="latency budget; the daemon rejects the "
                              "job at admission if its cost model "
                              "predicts the deadline cannot be met")
    enqueue.add_argument("--workers", type=int, default=1,
                         help="worker threads for the job (default: 1)")
    enqueue.add_argument("--job-id", default=None,
                         help="explicit job id (default: generated)")
    enqueue.set_defaults(func=cmd_enqueue)

    serve = sub.add_parser(
        "serve",
        help="run the alignment service daemon over a job spool")
    serve.add_argument("--spool", default="spool",
                       help="spool directory (default: ./spool)")
    serve.add_argument("--poll", type=float, default=0.2,
                       metavar="SECONDS",
                       help="idle polling interval (default: 0.2)")
    serve.add_argument("--max-jobs", type=int, default=None,
                       help="exit after settling this many jobs "
                            "(default: serve forever)")
    serve.add_argument("--idle-exit", type=float, default=None,
                       metavar="SECONDS",
                       help="exit after this long with no work "
                            "(default: serve forever)")
    serve.add_argument("--max-queue-depth", type=int, default=64,
                       help="admission: reject once this many jobs "
                            "are queued (default: 64)")
    serve.add_argument("--admission-safety", type=float, default=1.5,
                       help="admission: pessimism multiplier on "
                            "predicted wait+run time vs deadline "
                            "(default: 1.5)")
    serve.add_argument("--max-backlog", type=float, default=None,
                       metavar="SECONDS",
                       help="admission: reject jobs that would push "
                            "the predicted backlog past this")
    serve.add_argument("--seconds-per-cell", type=float, default=None,
                       help="cost-model rate for admission pricing "
                            "(default: conservative built-in)")
    serve.add_argument("--max-unit-pairs", type=int, default=32,
                       help="checkpoint granularity: pairs per "
                            "supervised unit (default: 32)")
    serve.add_argument("--events-out", metavar="FILE", default=None,
                       help="telemetry events file (default: "
                            "<spool>/events.jsonl)")
    serve.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="serve Prometheus /metrics on this "
                            "localhost port (0 = pick a free port)")
    serve.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="Prometheus textfile path (default: "
                            "<spool>/metrics.prom)")
    serve.add_argument("--telemetry-interval", type=float, default=1.0,
                       metavar="SECONDS",
                       help="time-series window width (default: 1.0)")
    serve.add_argument("--telemetry-retention", type=int, default=240,
                       metavar="WINDOWS",
                       help="fine-grained windows retained before "
                            "downsampling (default: 240)")
    serve.set_defaults(func=cmd_serve)

    simulate = sub.add_parser("simulate",
                              help="cycle-level SMX-2D simulation")
    _add_config_argument(simulate)
    simulate.add_argument("--size", type=int, default=1000,
                          help="DP-block edge length")
    simulate.add_argument("--blocks", type=int, default=8)
    simulate.add_argument("--workers", type=int, default=4)
    simulate.add_argument("--alignment-mode", action="store_true",
                          help="store tile borders for traceback")
    _add_obs_arguments(simulate)
    simulate.set_defaults(func=cmd_simulate)

    area = sub.add_parser("area", help="area/power breakdown")
    area.add_argument("--workers", type=int, default=4)
    area.set_defaults(func=cmd_area)

    stats = sub.add_parser("stats",
                           help="pretty-print a JSON run report")
    stats.add_argument("report", help="path to a results/<exp>.json "
                                      "or --metrics-json file")
    stats.set_defaults(func=cmd_stats)

    top = sub.add_parser("top",
                         help="digest a telemetry events file "
                              "(written by align --events-out)")
    top.add_argument("events", help="path to an events JSONL file")
    top.add_argument("--strict", action="store_true",
                     help="fail on a truncated final line instead of "
                          "skipping it")
    top.add_argument("--json", action="store_true",
                     help="print the digest as one JSON document")
    top.set_defaults(func=cmd_top)

    monitor = sub.add_parser(
        "monitor",
        help="live dashboard over a telemetry events file: rolling "
             "percentiles, route mix, and SLO burn rates")
    monitor.add_argument("events", help="path to an events JSONL file")
    monitor.add_argument("--once", action="store_true",
                         help="render a single snapshot and exit "
                              "(default: follow until run_end)")
    monitor.add_argument("--interval", type=float, default=0.5,
                         metavar="SECONDS",
                         help="poll interval in follow mode "
                              "(default: 0.5)")
    monitor.add_argument("--window", type=float, default=60.0,
                         metavar="SECONDS",
                         help="trailing window for rolling percentiles "
                              "(default: 60)")
    monitor.add_argument("--slo", action="append", metavar="SPEC",
                         default=None,
                         help="add an objective: [NAME=]KIND.FIELD:pPP"
                              "<TARGET[@WINDOW], e.g. "
                              "shard_done.elapsed_s:p99<0.25@60 "
                              "(repeatable)")
    monitor.add_argument("--no-default-slos", action="store_true",
                         help="evaluate only the --slo objectives")
    monitor.add_argument("--strict", action="store_true",
                         help="fail on any malformed event line")
    monitor.add_argument("--json", action="store_true",
                         help="print snapshots as JSON documents "
                              "instead of the panel")
    monitor.set_defaults(func=cmd_monitor)

    fleet = sub.add_parser(
        "fleet",
        help="per-tenant fleet dashboard over a daemon's event "
             "stream: job verdicts, latency, queue depth, SLO burn, "
             "anomaly alerts")
    fleet.add_argument("events", help="path to the daemon's events "
                                      "JSONL file")
    fleet.add_argument("--once", action="store_true",
                       help="render a single snapshot and exit "
                            "(default: refresh until interrupted)")
    fleet.add_argument("--interval", type=float, default=1.0,
                       metavar="SECONDS",
                       help="refresh interval (default: 1.0)")
    fleet.add_argument("--window", type=float, default=None,
                       metavar="SECONDS",
                       help="trailing window for latency/SLO "
                            "accounting (default: whole stream)")
    fleet.add_argument("--slo", action="append", metavar="SPEC",
                       default=None,
                       help="add a per-tenant objective: "
                            "[NAME=]KIND.FIELD:pPP<TARGET[@WINDOW] "
                            "(repeatable)")
    fleet.add_argument("--no-default-slos", action="store_true",
                       help="evaluate only the --slo objectives")
    fleet.add_argument("--strict", action="store_true",
                       help="fail on any malformed event line")
    fleet.add_argument("--json", action="store_true",
                       help="print snapshots as JSON documents")
    fleet.set_defaults(func=cmd_fleet)

    critpath = sub.add_parser(
        "critpath",
        help="critical-path analysis of a Chrome trace written by "
             "--trace-out")
    critpath.add_argument("trace", help="path to a trace JSON file")
    critpath.add_argument("--root", default=None,
                          help="span name to root the path at "
                               "(default: the longest span)")
    critpath.add_argument("--limit", type=int, default=0,
                          help="print at most this many path steps "
                               "(default: all)")
    critpath.set_defaults(func=cmd_critpath)

    bench = sub.add_parser(
        "bench", help="run benchmark suite and track history")
    bench.add_argument("--history", metavar="FILE",
                       default="results/BENCH_HISTORY.json",
                       help="benchmark history file "
                            "(default: results/BENCH_HISTORY.json)")
    mode = bench.add_mutually_exclusive_group()
    mode.add_argument("--quick", action="store_true", default=True,
                      help="vector-kernel micro-benchmarks only "
                           "(the default)")
    mode.add_argument("--full", action="store_true",
                      help="also run engine-level scalar-vs-vector "
                           "benchmarks")
    bench.add_argument("--check", action="store_true",
                       help="gate against the trailing history median; "
                            "exit 1 on regression (regressed records "
                            "are not appended)")
    bench.add_argument("--tolerance", type=float, default=0.25,
                       help="allowed fractional drop below the "
                            "trailing median (default: 0.25)")
    bench.add_argument("--window", type=int, default=5,
                       help="trailing records per metric for the "
                            "median baseline (default: 5)")
    bench.add_argument("--relative-only", action="store_true",
                       help="gate only machine-portable ratio metrics "
                            "(*.speedup) -- recommended in shared CI")
    bench.add_argument("--no-append", action="store_true",
                       help="measure/check without writing to the "
                            "history file")
    bench.add_argument("--ingest", metavar="REPORT", nargs="+",
                       default=None,
                       help="seed the history from existing "
                            "smx-run-report/1 files instead of "
                            "running benchmarks")
    bench.set_defaults(func=cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    try:
        obs.configure_logging()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
