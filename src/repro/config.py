"""Alignment-problem configurations (paper Sec. 7, "Sequence alignment
configurations").

A configuration binds together an alphabet, a scoring model, and the SMX
element width (EW), and derives the vector length (VL) and the shifted-
encoding parameters. The four presets evaluated in the paper are provided:

==========  ====  ===  ==========================================
name         EW   VL   model
==========  ====  ===  ==========================================
dna-edit      2   32   edit distance (0 / -1 / -1)
dna-gap       4   16   linear gap (2 / -4 / -2), minimap2-style
protein       6   10   BLOSUM50 + linear gap -10
ascii         8    8   edit distance over raw ASCII
==========  ====  ===  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.encoding.alphabet import ASCII, DNA, DNA4, PROTEIN, Alphabet
from repro.encoding.differential import DeltaShift
from repro.encoding.packing import lanes_for
from repro.errors import ConfigurationError
from repro.scoring.model import (
    MatchMismatchModel,
    ScoringModel,
    SubstitutionMatrixModel,
    dna_gap_model,
    edit_model,
)
from repro.scoring.submat import blosum50


@dataclass(frozen=True)
class AlignmentConfig:
    """A complete sequence-alignment problem configuration.

    Attributes:
        name: Identifier used in reports (e.g. ``"dna-edit"``).
        alphabet: Character set and code width.
        model: Scoring model (gap penalties + substitution scores).
        ew: SMX element width in bits; must cover both the alphabet's
            code width and the model's ``theta`` bound.
    """

    name: str
    alphabet: Alphabet
    model: ScoringModel
    ew: int
    shift: DeltaShift = field(init=False, compare=False)

    def __post_init__(self) -> None:
        vl = lanes_for(self.ew)  # validates EW
        del vl
        if self.alphabet.bits > self.ew:
            raise ConfigurationError(
                f"{self.name}: alphabet {self.alphabet.name!r} needs "
                f"{self.alphabet.bits} bits but EW={self.ew}"
            )
        if self.model.min_element_width > self.ew:
            raise ConfigurationError(
                f"{self.name}: theta={self.model.theta} needs "
                f"{self.model.min_element_width} bits but EW={self.ew}"
            )
        self.model.validate_shiftable()
        object.__setattr__(self, "shift", DeltaShift.for_model(self.model))

    @property
    def vl(self) -> int:
        """Vector length: DP-elements per 64-bit register at this EW."""
        return lanes_for(self.ew)

    @property
    def tile_dim(self) -> int:
        """SMX-2D DP-tile edge length (VL x VL tiles, paper Sec. 5.2)."""
        return self.vl

    @property
    def uses_submat(self) -> bool:
        """Whether the configuration needs the smx_submat memory."""
        return isinstance(self.model, SubstitutionMatrixModel)

    def encode(self, sequence: str):
        """Shortcut for ``config.alphabet.encode``."""
        return self.alphabet.encode(sequence)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AlignmentConfig({self.name!r}, ew={self.ew}, vl={self.vl}, "
                f"theta={self.model.theta})")


def dna_edit_config() -> AlignmentConfig:
    """2-bit DNA characters with the edit-distance model."""
    return AlignmentConfig(name="dna-edit", alphabet=DNA, model=edit_model(),
                           ew=2)


def dna_gap_config(match: int = 2, mismatch: int = -4,
                   gap: int = -2) -> AlignmentConfig:
    """4-bit DNA characters with a weighted linear gap model."""
    model = dna_gap_model(match=match, mismatch=mismatch, gap=gap)
    return AlignmentConfig(name="dna-gap", alphabet=DNA4, model=model, ew=4)


def protein_config(gap: int = -10) -> AlignmentConfig:
    """6-bit protein characters scored with BLOSUM50 and a linear gap."""
    model = SubstitutionMatrixModel(blosum50(), gap_i=gap, gap_d=gap)
    return AlignmentConfig(name="protein", alphabet=PROTEIN, model=model,
                           ew=6)


def ascii_config() -> AlignmentConfig:
    """8-bit ASCII characters with the edit-distance model."""
    model = MatchMismatchModel(match=0, mismatch=-1, gap_i=-1, gap_d=-1,
                               n_codes=256)
    return AlignmentConfig(name="ascii", alphabet=ASCII, model=model, ew=8)


def standard_configs() -> dict[str, AlignmentConfig]:
    """The four configurations evaluated throughout the paper."""
    configs = (dna_edit_config(), dna_gap_config(), protein_config(),
               ascii_config())
    return {config.name: config for config in configs}
