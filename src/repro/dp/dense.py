"""Reference (gold) Needleman-Wunsch dynamic programming.

This is the library's ground truth: a dense, absolute-score DP that every
other path (differential kernels, SMX-1D column instructions, SMX-2D tiles,
heuristic algorithms) is validated against.

Rows are vectorized with a prefix-scan trick: the horizontal dependency
``M[i][j] = max(..., M[i][j-1] + D)`` unrolls to
``M[i][j] = max_{k <= j} (g[k] + (j - k) * D)`` where ``g`` collects the
diagonal/vertical candidates. With ``b[k] = g[k] - k*D`` this becomes a
running maximum, so each row costs a handful of numpy operations and the
full matrix is O(n) vector steps instead of O(n*m) scalar ones.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlignmentError
from repro.scoring.model import ScoringModel

#: Default cap on dense-matrix cells (keeps gold runs inside RAM).
DEFAULT_MAX_CELLS = 64_000_000


def _check_size(n: int, m: int, max_cells: int) -> None:
    cells = (n + 1) * (m + 1)
    if cells > max_cells:
        raise AlignmentError(
            f"dense DP of {cells} cells exceeds max_cells={max_cells}; "
            "use nw_score / Hirschberg for long sequences"
        )


def _row_step(prev: np.ndarray, q_char: int, r_codes: np.ndarray,
              model: ScoringModel, first_cell: int) -> np.ndarray:
    """Compute row ``i`` of the DP matrix from row ``i-1``.

    Args:
        prev: Row ``i-1`` (length m+1).
        q_char: Query code consumed by this row.
        r_codes: All reference codes (length m).
        model: Scoring model.
        first_cell: ``M[i][0]`` (border value of this row).
    """
    m = len(r_codes)
    scores = model.substitution_row(int(q_char), r_codes).astype(np.int64)
    g = np.empty(m + 1, dtype=np.int64)
    g[0] = first_cell
    np.maximum(prev[:-1] + scores, prev[1:] + model.gap_i, out=g[1:])
    offsets = np.arange(m + 1, dtype=np.int64) * model.gap_d
    running = np.maximum.accumulate(g - offsets)
    return running + offsets


def nw_matrix(q_codes: np.ndarray, r_codes: np.ndarray, model: ScoringModel,
              dv_in: np.ndarray | None = None,
              dh_in: np.ndarray | None = None,
              origin: int = 0,
              max_cells: int = DEFAULT_MAX_CELLS) -> np.ndarray:
    """Full ``(n+1, m+1)`` absolute DP matrix of a block.

    Border deltas default to the standalone-alignment initialisation
    (``dv_in = I``, ``dh_in = D``, Eq. 1); supplying explicit *raw* border
    deltas turns this into the general DP-*block* computation used by the
    SMX-2D functional model (blocks in the middle of a larger matrix).

    Args:
        q_codes: Query character codes (length n; one per row).
        r_codes: Reference character codes (length m; one per column).
        model: Scoring model.
        dv_in: Raw vertical deltas of the left border (length n), i.e.
            ``M[i][0] - M[i-1][0]``.
        dh_in: Raw horizontal deltas of the top border (length m).
        origin: ``M[0][0]``.
        max_cells: Safety cap on matrix size.
    """
    n, m = len(q_codes), len(r_codes)
    _check_size(n, m, max_cells)
    if dv_in is None:
        dv_in = np.full(n, model.gap_i, dtype=np.int64)
    if dh_in is None:
        dh_in = np.full(m, model.gap_d, dtype=np.int64)
    if len(dv_in) != n or len(dh_in) != m:
        raise AlignmentError(
            f"border shapes ({len(dv_in)}, {len(dh_in)}) do not match "
            f"sequence lengths ({n}, {m})"
        )
    matrix = np.empty((n + 1, m + 1), dtype=np.int64)
    matrix[0, 0] = origin
    matrix[0, 1:] = origin + np.cumsum(np.asarray(dh_in, dtype=np.int64))
    left_border = origin + np.cumsum(np.asarray(dv_in, dtype=np.int64))
    for i in range(1, n + 1):
        matrix[i] = _row_step(matrix[i - 1], q_codes[i - 1], r_codes, model,
                              int(left_border[i - 1]))
    return matrix


def nw_score(q_codes: np.ndarray, r_codes: np.ndarray,
             model: ScoringModel) -> int:
    """Optimal global alignment score in O(m) memory."""
    return int(nw_last_row(q_codes, r_codes, model)[-1])


def nw_last_row(q_codes: np.ndarray, r_codes: np.ndarray,
                model: ScoringModel,
                dv_in: np.ndarray | None = None,
                dh_in: np.ndarray | None = None,
                origin: int = 0) -> np.ndarray:
    """Final DP row (length m+1) with rolling O(m) memory.

    This is the kernel Hirschberg's algorithm calls on each half.
    """
    n, m = len(q_codes), len(r_codes)
    if dv_in is None:
        dv_in = np.full(n, model.gap_i, dtype=np.int64)
    if dh_in is None:
        dh_in = np.full(m, model.gap_d, dtype=np.int64)
    row = np.empty(m + 1, dtype=np.int64)
    row[0] = origin
    row[1:] = origin + np.cumsum(np.asarray(dh_in, dtype=np.int64))
    first_cell = origin
    for i in range(1, n + 1):
        first_cell += int(dv_in[i - 1])
        row = _row_step(row, q_codes[i - 1], r_codes, model, first_cell)
    return row


def nw_block_borders(q_codes: np.ndarray, r_codes: np.ndarray,
                     model: ScoringModel,
                     dv_in: np.ndarray | None = None,
                     dh_in: np.ndarray | None = None,
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Output border deltas of a DP-block with O(m) memory.

    Returns:
        ``(dv_out, dh_out)``: raw vertical deltas of the right column
        (length n) and raw horizontal deltas of the bottom row (length m).
        This mirrors exactly what the SMX-2D coprocessor stores per block
        when only the score is needed.
    """
    n, m = len(q_codes), len(r_codes)
    if dv_in is None:
        dv_in = np.full(n, model.gap_i, dtype=np.int64)
    if dh_in is None:
        dh_in = np.full(m, model.gap_d, dtype=np.int64)
    row = np.empty(m + 1, dtype=np.int64)
    row[0] = 0
    row[1:] = np.cumsum(np.asarray(dh_in, dtype=np.int64))
    dv_out = np.empty(n, dtype=np.int64)
    first_cell = 0
    for i in range(1, n + 1):
        last = int(row[-1])
        first_cell += int(dv_in[i - 1])
        row = _row_step(row, q_codes[i - 1], r_codes, model, first_cell)
        dv_out[i - 1] = int(row[-1]) - last
    dh_out = np.diff(row)
    return dv_out, dh_out
