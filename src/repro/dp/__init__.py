"""Gold dynamic-programming substrate: dense NW, deltas, traceback."""

from repro.dp.alignment import Alignment, compress_ops
from repro.dp.delta import (
    BlockDeltas,
    block_border_deltas,
    block_deltas,
    default_borders,
    traceback_deltas,
)
from repro.dp.dense import (
    nw_block_borders,
    nw_last_row,
    nw_matrix,
    nw_score,
)
from repro.dp.traceback import (
    DIAG,
    LEFT,
    UP,
    alignment_from_matrix,
    merge_cigars,
    traceback_full,
)

__all__ = [
    "Alignment",
    "BlockDeltas",
    "DIAG",
    "LEFT",
    "UP",
    "alignment_from_matrix",
    "block_border_deltas",
    "block_deltas",
    "compress_ops",
    "default_borders",
    "merge_cigars",
    "nw_block_borders",
    "nw_last_row",
    "nw_matrix",
    "nw_score",
    "traceback_deltas",
    "traceback_full",
]
