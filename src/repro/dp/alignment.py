"""Alignment results: CIGAR representation, validation, pretty-printing.

Every aligner in the library (gold DP, banded, X-drop, Hirschberg, window,
and the SMX heterogeneous path) produces an :class:`Alignment`, so results
are directly comparable and can be cross-validated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AlignmentError
from repro.scoring.model import ScoringModel

#: CIGAR operation codes. '=' consumes both sequences and matches,
#: 'X' consumes both and mismatches, 'I' consumes one query character
#: (vertical move, penalty gap_i), 'D' consumes one reference character
#: (horizontal move, penalty gap_d).
CIGAR_OPS = ("=", "X", "I", "D")


@dataclass
class Alignment:
    """A scored pairwise alignment.

    Attributes:
        score: Alignment score under the model it was computed with.
        cigar: Run-length encoded operations, e.g. ``[(3, '='), (1, 'X')]``.
        query_len: Length of the aligned query.
        ref_len: Length of the aligned reference.
    """

    score: int
    cigar: list[tuple[int, str]]
    query_len: int
    ref_len: int
    meta: dict = field(default_factory=dict)

    @property
    def cigar_string(self) -> str:
        """Standard compact CIGAR text, e.g. ``"3=1X2I"``."""
        return "".join(f"{count}{op}" for count, op in self.cigar)

    @property
    def matches(self) -> int:
        return sum(count for count, op in self.cigar if op == "=")

    @property
    def edit_operations(self) -> int:
        """Number of non-match columns (the edit distance under the
        unit-cost model)."""
        return sum(count for count, op in self.cigar if op != "=")

    @property
    def columns(self) -> int:
        """Total alignment columns."""
        return sum(count for count, _ in self.cigar)

    def consumed(self) -> tuple[int, int]:
        """(query, reference) characters consumed by the CIGAR."""
        query = sum(c for c, op in self.cigar if op in ("=", "X", "I"))
        ref = sum(c for c, op in self.cigar if op in ("=", "X", "D"))
        return query, ref

    def rescore(self, q_codes: np.ndarray, r_codes: np.ndarray,
                model: ScoringModel) -> int:
        """Recompute the score implied by the CIGAR over the sequences.

        Raises :class:`AlignmentError` if the CIGAR does not consume the
        sequences exactly, or labels a match/mismatch incorrectly.
        """
        i = j = 0
        score = 0
        for count, op in self.cigar:
            if op in ("=", "X"):
                for _ in range(count):
                    same = int(q_codes[i]) == int(r_codes[j])
                    if same != (op == "="):
                        raise AlignmentError(
                            f"CIGAR op {op!r} disagrees with sequences at "
                            f"(i={i}, j={j})"
                        )
                    score += model.substitution(int(q_codes[i]),
                                                int(r_codes[j]))
                    i += 1
                    j += 1
            elif op == "I":
                score += count * model.gap_i
                i += count
            elif op == "D":
                score += count * model.gap_d
                j += count
            else:
                raise AlignmentError(f"unknown CIGAR op {op!r}")
        if i != len(q_codes) or j != len(r_codes):
            raise AlignmentError(
                f"CIGAR consumed ({i}, {j}) of ({len(q_codes)}, "
                f"{len(r_codes)}) characters"
            )
        return score

    def validate(self, q_codes: np.ndarray, r_codes: np.ndarray,
                 model: ScoringModel) -> None:
        """Check internal consistency: CIGAR score equals stored score."""
        rescored = self.rescore(q_codes, r_codes, model)
        if rescored != self.score:
            raise AlignmentError(
                f"stored score {self.score} != CIGAR score {rescored}"
            )

    def pretty(self, query: str, reference: str, width: int = 60) -> str:
        """Render a BLAST-style three-line alignment view."""
        top, mid, bottom = [], [], []
        i = j = 0
        for count, op in self.cigar:
            for _ in range(count):
                if op in ("=", "X"):
                    top.append(query[i])
                    bottom.append(reference[j])
                    mid.append("|" if op == "=" else ".")
                    i += 1
                    j += 1
                elif op == "I":
                    top.append(query[i])
                    bottom.append("-")
                    mid.append(" ")
                    i += 1
                else:
                    top.append("-")
                    bottom.append(reference[j])
                    mid.append(" ")
                    j += 1
        lines = []
        for start in range(0, len(top), width):
            lines.append("Q " + "".join(top[start:start + width]))
            lines.append("  " + "".join(mid[start:start + width]))
            lines.append("R " + "".join(bottom[start:start + width]))
            lines.append("")
        return "\n".join(lines).rstrip()


def compress_ops(ops: list[str]) -> list[tuple[int, str]]:
    """Run-length encode a list of single-column operations."""
    cigar: list[tuple[int, str]] = []
    for op in ops:
        if cigar and cigar[-1][1] == op:
            cigar[-1] = (cigar[-1][0] + 1, op)
        else:
            cigar.append((1, op))
    return cigar
