"""Delta-domain DP-block computation and traceback.

These kernels operate directly in the SMX shifted-delta domain
(:mod:`repro.encoding.differential`): blocks take shifted border vectors
in, produce shifted borders (and optionally full delta fields) out, and
traceback runs on deltas without ever materialising absolute scores --
exactly the data the hardware keeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dp.alignment import compress_ops
from repro.dp.dense import nw_block_borders, nw_matrix
from repro.encoding.differential import DeltaShift, matrix_to_deltas
from repro.errors import AlignmentError
from repro.scoring.model import ScoringModel


@dataclass
class BlockDeltas:
    """Full shifted-delta fields of one DP-block.

    ``dvp[i-1, j]`` is the shifted vertical delta ``dv'[i][j]``
    (``i`` in 1..n, ``j`` in 0..m); ``dhp[i, j-1]`` is ``dh'[i][j]``
    (``i`` in 0..n, ``j`` in 1..m).
    """

    dvp: np.ndarray  # (n, m+1)
    dhp: np.ndarray  # (n+1, m)
    shift: DeltaShift

    @property
    def n(self) -> int:
        return self.dvp.shape[0]

    @property
    def m(self) -> int:
        return self.dhp.shape[1]

    @property
    def dvp_left(self) -> np.ndarray:
        """Shifted input border: left column verticals (length n)."""
        return self.dvp[:, 0]

    @property
    def dvp_right(self) -> np.ndarray:
        """Shifted output border: right column verticals (length n)."""
        return self.dvp[:, -1]

    @property
    def dhp_top(self) -> np.ndarray:
        """Shifted input border: top row horizontals (length m)."""
        return self.dhp[0, :]

    @property
    def dhp_bottom(self) -> np.ndarray:
        """Shifted output border: bottom row horizontals (length m)."""
        return self.dhp[-1, :]


def default_borders(n: int, m: int) -> tuple[np.ndarray, np.ndarray]:
    """Shifted borders of a standalone alignment (Eq. 1): all zeros."""
    return (np.zeros(n, dtype=np.int64), np.zeros(m, dtype=np.int64))


def block_deltas(q_codes: np.ndarray, r_codes: np.ndarray,
                 model: ScoringModel,
                 dvp_in: np.ndarray | None = None,
                 dhp_in: np.ndarray | None = None,
                 check_range: bool = True) -> BlockDeltas:
    """Compute a block's full shifted-delta fields.

    Internally uses the vectorized gold DP on absolute scores and
    differentiates; the result is *provably identical* to running the
    shifted recurrence cell by cell (tested against
    :func:`repro.encoding.differential.shifted_step`).
    """
    n, m = len(q_codes), len(r_codes)
    shift = DeltaShift.for_model(model)
    if dvp_in is None or dhp_in is None:
        dvp_default, dhp_default = default_borders(n, m)
        dvp_in = dvp_default if dvp_in is None else dvp_in
        dhp_in = dhp_default if dhp_in is None else dhp_in
    dv_in = shift.unshift_v(np.asarray(dvp_in, dtype=np.int64))
    dh_in = shift.unshift_h(np.asarray(dhp_in, dtype=np.int64))
    matrix = nw_matrix(q_codes, r_codes, model, dv_in=dv_in, dh_in=dh_in)
    dv, dh = matrix_to_deltas(matrix)
    dvp = shift.shift_v(dv)
    dhp = shift.shift_h(dh)
    result = BlockDeltas(dvp=dvp, dhp=dhp, shift=shift)
    if check_range:
        shift.check_range(dvp, dhp)
    return result


def block_border_deltas(q_codes: np.ndarray, r_codes: np.ndarray,
                        model: ScoringModel,
                        dvp_in: np.ndarray | None = None,
                        dhp_in: np.ndarray | None = None,
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Output borders only, O(m) memory (the SMX-2D score-only product).

    Returns:
        ``(dvp_out, dhp_out)``: shifted right-column verticals (length n)
        and bottom-row horizontals (length m).
    """
    n, m = len(q_codes), len(r_codes)
    shift = DeltaShift.for_model(model)
    if dvp_in is None or dhp_in is None:
        dvp_default, dhp_default = default_borders(n, m)
        dvp_in = dvp_default if dvp_in is None else dvp_in
        dhp_in = dhp_default if dhp_in is None else dhp_in
    dv_in = shift.unshift_v(np.asarray(dvp_in, dtype=np.int64))
    dh_in = shift.unshift_h(np.asarray(dhp_in, dtype=np.int64))
    dv_out, dh_out = nw_block_borders(q_codes, r_codes, model,
                                      dv_in=dv_in, dh_in=dh_in)
    return shift.shift_v(dv_out), shift.shift_h(dh_out)


def traceback_deltas(block: BlockDeltas, q_codes: np.ndarray,
                     r_codes: np.ndarray, model: ScoringModel,
                     start: tuple[int, int] | None = None,
                     until_edge: bool = False,
                     ) -> tuple[list[tuple[int, str]], list[tuple[int, int]]]:
    """Trace an alignment path using only shifted deltas.

    The predecessor of a cell is recovered from which Eq. 5 candidate
    produced ``dv'`` (diagonal: ``S' - dh'_up``; up: ``0``; left:
    fallback), with the same diag > up > left priority as the gold
    traceback, so paths are bit-identical.

    Args:
        block: Full delta fields of the block.
        q_codes / r_codes: The block's sequences (lengths n, m).
        model: Scoring model (for the diagonal candidate).
        start: Cell to start from, default ``(n, m)``.
        until_edge: If true, stop as soon as the path reaches row 0 *or*
            column 0 (tile-local traceback: the caller continues in the
            neighbouring tile). If false, walk all the way to ``(0, 0)``,
            emitting the forced gap run along the final edge -- only valid
            for standalone blocks whose borders are the Eq. 1 init.

    Returns:
        ``(cigar, path)`` with ``path`` from the stop cell to ``start``.
    """
    n, m = block.n, block.m
    shift = block.shift
    i, j = start if start is not None else (n, m)
    if not (0 <= i <= n and 0 <= j <= m):
        raise AlignmentError(
            f"traceback start ({i},{j}) outside block ({n},{m})"
        )
    dvp, dhp = block.dvp, block.dhp
    shift_total = shift.gap_i + shift.gap_d
    ops: list[str] = []
    path = [(i, j)]
    while i > 0 or j > 0:
        if until_edge and (i == 0 or j == 0):
            break
        if i > 0 and j > 0:
            sub = model.substitution(int(q_codes[i - 1]), int(r_codes[j - 1]))
            sp = sub - shift_total
            if int(dvp[i - 1, j]) == sp - int(dhp[i - 1, j - 1]):
                ops.append("=" if q_codes[i - 1] == r_codes[j - 1] else "X")
                i, j = i - 1, j - 1
            elif int(dvp[i - 1, j]) == 0:
                ops.append("I")
                i -= 1
            elif int(dhp[i, j - 1]) == 0:
                ops.append("D")
                j -= 1
            else:
                raise AlignmentError(
                    f"delta traceback stuck at ({i}, {j}); fields inconsistent"
                )
        elif i > 0:
            # Row 0 reached horizontally exhausted: forced vertical run.
            ops.append("I")
            i -= 1
        else:
            ops.append("D")
            j -= 1
        path.append((i, j))
    ops.reverse()
    path.reverse()
    return compress_ops(ops), path
