"""Traceback over an absolute DP matrix (paper Sec. 2.1, Fig. 3c).

Traceback walks from ``M[n][m]`` to ``M[0][0]`` following whichever
predecessor produced each cell's value. Ties are broken with a fixed
priority -- diagonal, then up (insertion), then left (deletion) -- and
*every* traceback in the library (gold, delta-domain, SMX tile recompute)
uses the same priority so alignments are bit-identical across paths.
"""

from __future__ import annotations

import numpy as np

from repro.dp.alignment import Alignment, compress_ops
from repro.errors import AlignmentError
from repro.scoring.model import ScoringModel

#: Move codes (also used by the delta-domain and tile tracebacks).
DIAG, UP, LEFT = 0, 1, 2


def traceback_full(matrix: np.ndarray, q_codes: np.ndarray,
                   r_codes: np.ndarray, model: ScoringModel,
                   ) -> tuple[list[tuple[int, str]], list[tuple[int, int]]]:
    """Trace the optimal path through a full absolute DP matrix.

    Returns:
        ``(cigar, path)`` where ``path`` lists the visited ``(i, j)``
        cells from ``(n, m)`` down to ``(0, 0)`` inclusive.
    """
    i, j = len(q_codes), len(r_codes)
    if matrix.shape != (i + 1, j + 1):
        raise AlignmentError(
            f"matrix shape {matrix.shape} does not match sequences "
            f"({i + 1}, {j + 1})"
        )
    ops: list[str] = []
    path = [(i, j)]
    while i > 0 or j > 0:
        here = int(matrix[i, j])
        if i > 0 and j > 0:
            sub = model.substitution(int(q_codes[i - 1]), int(r_codes[j - 1]))
            if here == int(matrix[i - 1, j - 1]) + sub:
                ops.append("=" if q_codes[i - 1] == r_codes[j - 1] else "X")
                i, j = i - 1, j - 1
                path.append((i, j))
                continue
        if i > 0 and here == int(matrix[i - 1, j]) + model.gap_i:
            ops.append("I")
            i -= 1
        elif j > 0 and here == int(matrix[i, j - 1]) + model.gap_d:
            ops.append("D")
            j -= 1
        else:
            raise AlignmentError(
                f"no valid predecessor at ({i}, {j}); matrix is inconsistent"
            )
        path.append((i, j))
    ops.reverse()
    path.reverse()
    return compress_ops(ops), path


def alignment_from_matrix(matrix: np.ndarray, q_codes: np.ndarray,
                          r_codes: np.ndarray,
                          model: ScoringModel) -> Alignment:
    """Build a validated :class:`Alignment` from a full DP matrix."""
    cigar, path = traceback_full(matrix, q_codes, r_codes, model)
    result = Alignment(score=int(matrix[-1, -1]), cigar=cigar,
                       query_len=len(q_codes), ref_len=len(r_codes),
                       meta={"path_cells": len(path)})
    return result


def merge_cigars(parts: list[list[tuple[int, str]]]) -> list[tuple[int, str]]:
    """Concatenate CIGAR fragments, fusing runs across boundaries.

    Used by Hirschberg and the tile-by-tile SMX traceback, both of which
    produce the alignment in pieces.
    """
    merged: list[tuple[int, str]] = []
    for part in parts:
        for count, op in part:
            if merged and merged[-1][1] == op:
                merged[-1] = (merged[-1][0] + count, op)
            else:
                merged.append((count, op))
    return merged
