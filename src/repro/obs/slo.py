"""Declarative latency SLOs over ``smx-events/1`` telemetry streams.

An :class:`SLObjective` states a promise about one latency field of one
event kind -- "p99 of ``shard_done.elapsed_s`` stays under 250 ms,
judged over the trailing 60 s" -- in a compact spec string::

    [NAME=]KIND.FIELD:pPP<TARGET[@WINDOW]

    shard_done.elapsed_s:p99<0.25@60
    tail=unit_done.elapsed_s:p95<0.5

:class:`SLOEvaluator` replays a recorded (or live) event list against a
set of objectives and reports, per objective, the achieved percentile,
the breach fraction, and the **error-budget burn rate**: an objective
at p99 tolerates 1% of samples over target, so a 3% observed breach
fraction burns budget at 3x the sustainable rate. Burn rate 1.0 is the
break-even line; anything above it exhausts the budget before the
window rolls over.

:func:`monitor_snapshot` + :func:`format_monitor` build the ``repro
monitor`` live view on top: run identity and progress, rolling latency
percentiles per event kind, the adaptive planner's route mix, fault /
shed / quarantine tallies, and each objective's status.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

#: Event kinds carrying a latency field the monitor tracks by default.
LATENCY_KINDS = (("shard_done", "elapsed_s"), ("unit_done", "elapsed_s"),
                 ("batch_end", "elapsed_s"))

#: Fields of the envelope / non-route ``plan`` payload to ignore when
#: aggregating the planner's route mix.
_PLAN_ENVELOPE = frozenset({"seq", "t", "kind", "pairs"})

_SPEC_RE = re.compile(
    r"^(?:(?P<name>[\w.-]+)=)?"
    r"(?P<kind>[A-Za-z_][\w]*)\.(?P<field>[A-Za-z_][\w]*)"
    r":p(?P<pct>\d+(?:\.\d+)?)"
    r"<(?P<target>\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)"
    r"(?:@(?P<window>\d+(?:\.\d+)?))?$")


@dataclass(frozen=True)
class SLObjective:
    """One latency promise: a percentile of ``kind.field`` under
    ``target``, judged over the trailing ``window_s`` seconds
    (``None`` = the whole stream)."""

    name: str
    kind: str
    field: str
    percentile: float
    target: float
    window_s: float | None = None

    def __post_init__(self) -> None:
        if not 0 < self.percentile < 100:
            raise ValueError(
                f"percentile must be in (0, 100), got {self.percentile}")
        if self.target <= 0:
            raise ValueError(f"target must be > 0, got {self.target}")
        if self.window_s is not None and self.window_s <= 0:
            raise ValueError(
                f"window must be > 0 seconds, got {self.window_s}")

    @property
    def budget(self) -> float:
        """Allowed breach fraction: p99 tolerates 0.01 of samples."""
        return 1.0 - self.percentile / 100.0

    def describe(self) -> str:
        pct = f"{self.percentile:g}"
        window = f"@{self.window_s:g}s" if self.window_s else ""
        return (f"{self.name}: {self.kind}.{self.field} "
                f"p{pct} < {self.target:g}s{window}")


def parse_slo(spec: str) -> SLObjective:
    """Parse one ``[NAME=]KIND.FIELD:pPP<TARGET[@WINDOW]`` spec.

    Raises:
        ValueError: the spec does not match the grammar or carries
            out-of-range numbers.
    """
    match = _SPEC_RE.match(spec.strip())
    if match is None:
        raise ValueError(
            f"bad SLO spec {spec!r}; expected "
            f"[NAME=]KIND.FIELD:pPP<TARGET[@WINDOW], e.g. "
            f"shard_done.elapsed_s:p99<0.25@60")
    kind = match.group("kind")
    field_name = match.group("field")
    window = match.group("window")
    name = match.group("name") or f"{kind}.{field_name}"
    return SLObjective(
        name=name, kind=kind, field=field_name,
        percentile=float(match.group("pct")),
        target=float(match.group("target")),
        window_s=float(window) if window is not None else None)


#: Generous defaults: catch pathological runs, not healthy jitter.
DEFAULT_SLOS = (
    parse_slo("shard_p99=shard_done.elapsed_s:p99<30"),
    parse_slo("unit_p99=unit_done.elapsed_s:p99<30"),
)


def _sample_quantile(samples: list[float], q: float) -> float:
    """Type-1 (lower) quantile of a non-empty sample list."""
    ordered = sorted(samples)
    rank = min(max(math.ceil(q * len(ordered)), 1), len(ordered))
    return ordered[rank - 1]


def _windowed(events: list[dict], kind: str, field_name: str,
              window_s: float | None, now_t: float | None) -> list[float]:
    """Numeric ``field`` samples of ``kind`` inside the window ending
    at ``now_t`` (the stream's latest timestamp by default)."""
    if now_t is None:
        now_t = max((float(e.get("t", 0.0)) for e in events),
                    default=0.0)
    horizon = now_t - window_s if window_s is not None else None
    samples: list[float] = []
    for event in events:
        if event.get("kind") != kind:
            continue
        if horizon is not None and float(event.get("t", 0.0)) < horizon:
            continue
        value = event.get(field_name)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            samples.append(float(value))
    return samples


class SLOEvaluator:
    """Evaluates a set of objectives against an event list."""

    def __init__(self, objectives=DEFAULT_SLOS) -> None:
        self.objectives = tuple(objectives)

    def evaluate(self, events: list[dict],
                 now_t: float | None = None) -> list[dict]:
        """Per-objective report dicts (one per objective, in order).

        Keys: ``name``, ``spec``, ``samples``, ``achieved`` (the
        observed percentile, None without samples), ``target``,
        ``breaches``, ``breach_fraction``, ``budget``, ``burn_rate``
        (None without samples; ``inf`` when a zero-budget objective
        breaches) and ``status`` (``"ok"`` / ``"breach"`` /
        ``"no-data"``).
        """
        reports = []
        for objective in self.objectives:
            samples = _windowed(events, objective.kind, objective.field,
                                objective.window_s, now_t)
            if not samples:
                reports.append({
                    "name": objective.name,
                    "spec": objective.describe(),
                    "samples": 0, "achieved": None,
                    "target": objective.target, "breaches": 0,
                    "breach_fraction": 0.0, "budget": objective.budget,
                    "burn_rate": None, "status": "no-data"})
                continue
            achieved = _sample_quantile(samples,
                                        objective.percentile / 100.0)
            breaches = sum(1 for s in samples if s > objective.target)
            fraction = breaches / len(samples)
            budget = objective.budget
            if budget > 0:
                burn = fraction / budget
            else:
                burn = math.inf if breaches else 0.0
            reports.append({
                "name": objective.name,
                "spec": objective.describe(),
                "samples": len(samples), "achieved": achieved,
                "target": objective.target, "breaches": breaches,
                "breach_fraction": fraction, "budget": budget,
                "burn_rate": burn,
                "status": "breach" if achieved > objective.target
                else "ok"})
        return reports


def monitor_snapshot(events: list[dict], objectives=DEFAULT_SLOS,
                     window_s: float | None = 60.0,
                     skipped: int = 0) -> dict:
    """Digest an event list into the ``repro monitor`` dashboard.

    Tolerates partial streams (a live run's tail): every section
    renders from whatever events exist so far.
    """
    def last(kind: str) -> dict | None:
        for event in reversed(events):
            if event.get("kind") == kind:
                return event
        return None

    run_start = last("run_start") or last("batch_start")
    run_end = last("run_end") or last("batch_end")
    heartbeat = last("heartbeat")
    progress = last("progress")
    queue_event = last("queue")
    alerts = [e for e in events if e.get("kind") == "alert"]

    done = total = failures = queued = None
    if heartbeat is not None:
        done = heartbeat.get("done")
        total = heartbeat.get("total")
        failures = heartbeat.get("failures")
        queued = heartbeat.get("queued")
    elif progress is not None:
        done = progress.get("done")
        total = progress.get("total")
    if total is None and run_start is not None:
        total = run_start.get("pairs")

    routes: dict[str, int] = {}
    for event in events:
        if event.get("kind") != "plan":
            continue
        for key, value in event.items():
            if key in _PLAN_ENVELOPE:
                continue
            if isinstance(value, (int, float)) and \
                    not isinstance(value, bool):
                routes[key] = routes.get(key, 0) + int(value)

    latencies = {}
    for kind, field_name in LATENCY_KINDS:
        samples = _windowed(events, kind, field_name, window_s, None)
        if not samples:
            continue
        latencies[kind] = {
            "count": len(samples),
            "p50": _sample_quantile(samples, 0.50),
            "p90": _sample_quantile(samples, 0.90),
            "p99": _sample_quantile(samples, 0.99),
            "max": max(samples)}

    faults: dict[str, int] = {}
    for event in events:
        if event.get("kind") == "fault":
            fault = str(event.get("fault", "?"))
            faults[fault] = faults.get(fault, 0) + 1

    shed_pairs = sum(int(e.get("pairs", 0)) for e in events
                     if e.get("kind") == "shed")
    quarantined = sum(1 for e in events
                      if e.get("kind") == "quarantine")
    retries = sum(1 for e in events if e.get("kind") == "retry")
    bisections = sum(1 for e in events if e.get("kind") == "bisect")

    return {
        "events": len(events),
        "skipped_lines": skipped,
        "run_id": (run_start or {}).get("run_id"),
        "backend": (run_start or {}).get("backend"),
        "duration_s": float(events[-1].get("t", 0.0)) if events else 0.0,
        "done": done, "total": total,
        "failures": failures, "queued": queued,
        "routes": dict(sorted(routes.items())),
        "latencies": latencies,
        "faults": dict(sorted(faults.items())),
        "shed_pairs": shed_pairs,
        "quarantined": quarantined,
        "retries": retries,
        "bisections": bisections,
        "queue_depth": (int(queue_event.get("depth", 0))
                        if queue_event is not None else None),
        "queue_tenants": dict((queue_event or {}).get("tenants") or {}),
        "alerts": len(alerts),
        "slos": SLOEvaluator(objectives).evaluate(events),
        "ended": run_end is not None,
    }


# -- per-tenant fleet accounting -------------------------------------------

#: Default per-tenant promise judged from the daemon's job stream.
DEFAULT_FLEET_SLOS = (
    parse_slo("job_p90=job_done.elapsed_s:p90<30"),
)


def split_by_tenant(events: list[dict]) -> dict[str, list[dict]]:
    """Group events by their ``tenant`` field (events without one --
    engine-level shard/unit telemetry -- are omitted; job-level events
    all carry it)."""
    lanes: dict[str, list[dict]] = {}
    for event in events:
        tenant = event.get("tenant")
        if tenant is None:
            continue
        lanes.setdefault(str(tenant), []).append(event)
    return lanes


def fleet_snapshot(events: list[dict], objectives=DEFAULT_FLEET_SLOS,
                   window_s: float | None = None,
                   skipped: int = 0, max_alerts: int = 10) -> dict:
    """Digest a daemon's event stream into the ``repro fleet`` view:
    per-tenant job verdicts, latency percentiles, queue depth,
    SLO/error-budget status, and recent anomaly alerts.

    Per-tenant SLOs are the *same* objectives evaluated against each
    tenant's own event slice, so one tenant's burn rate cannot hide
    inside another's headroom. ``window_s`` (None = whole stream)
    restricts latency/SLO accounting to the trailing window.
    """
    now_t = max((float(e.get("t", 0.0)) for e in events), default=0.0)
    lanes = split_by_tenant(events)
    queue_event = None
    for event in reversed(events):
        if event.get("kind") == "queue":
            queue_event = event
            break
    queue_tenants = dict((queue_event or {}).get("tenants") or {})
    alerts = [e for e in events if e.get("kind") == "alert"]

    tenants: dict[str, dict] = {}
    names = sorted(set(lanes) | set(queue_tenants)
                   | {str(a["tenant"]) for a in alerts
                      if a.get("tenant") is not None})
    evaluator = SLOEvaluator(objectives)
    for tenant in names:
        slice_ = lanes.get(tenant, [])
        jobs = {verdict: sum(1 for e in slice_
                             if e.get("kind") == f"job_{verdict}")
                for verdict in ("done", "failed", "rejected")}
        samples = _windowed(slice_, "job_done", "elapsed_s",
                            window_s, now_t)
        latency = None
        if samples:
            latency = {"count": len(samples),
                       "p50": _sample_quantile(samples, 0.50),
                       "p90": _sample_quantile(samples, 0.90),
                       "p99": _sample_quantile(samples, 0.99)}
        tenant_alerts = [a for a in alerts
                         if str(a.get("tenant")) == tenant]
        tenants[tenant] = {
            "jobs": jobs,
            "latency": latency,
            "queue_depth": int(queue_tenants.get(tenant, 0)),
            "alerts": len(tenant_alerts),
            "slos": evaluator.evaluate(slice_, now_t),
        }

    recent = [{key: value for key, value in alert.items()
               if key not in ("seq",)}
              for alert in alerts[-max_alerts:]]
    return {
        "events": len(events),
        "skipped_lines": skipped,
        "duration_s": now_t,
        "tenants": tenants,
        "queue_depth": int((queue_event or {}).get("depth", 0)),
        "alerts": len(alerts),
        "recent_alerts": recent,
    }


def format_fleet(snapshot: dict) -> str:
    """Human-readable fleet panel: one block per tenant plus the
    recent-alert tail."""
    lines = [f"fleet  events={snapshot.get('events', 0)}  "
             f"t={snapshot.get('duration_s', 0.0):.2f}s  "
             f"queue={snapshot.get('queue_depth', 0)}  "
             f"alerts={snapshot.get('alerts', 0)}"]
    if snapshot.get("skipped_lines"):
        lines.append(f"  ({snapshot['skipped_lines']} truncated "
                     f"line(s) skipped)")
    tenants = snapshot.get("tenants") or {}
    if not tenants:
        lines.append("(no tenant activity)")
    for tenant, info in tenants.items():
        jobs = info.get("jobs") or {}
        header = (f"tenant {tenant:<12} queue={info.get('queue_depth', 0)}"
                  f"  done={jobs.get('done', 0)}"
                  f" failed={jobs.get('failed', 0)}"
                  f" rejected={jobs.get('rejected', 0)}")
        if info.get("alerts"):
            header += f"  alerts={info['alerts']}"
        lines.append(header)
        latency = info.get("latency")
        if latency:
            lines.append(
                f"  latency n={latency['count']:<5} "
                f"p50={_fmt_s(latency['p50'])} "
                f"p90={_fmt_s(latency['p90'])} "
                f"p99={_fmt_s(latency['p99'])}")
        for report in info.get("slos") or []:
            marker = {"ok": "OK ", "breach": "!! ",
                      "no-data": "-- "}.get(report["status"], "?? ")
            burn = report["burn_rate"]
            detail = (f"achieved={_fmt_s(report['achieved'])} "
                      f"target={_fmt_s(report['target'])} "
                      f"n={report['samples']}")
            if burn is not None:
                detail += (f" burn={burn:.2f}x"
                           if burn != math.inf else " burn=inf")
            lines.append(f"  slo {marker}{report['name']:<20} {detail}")
    for alert in snapshot.get("recent_alerts") or []:
        lines.append(
            f"alert  w{alert.get('window_index')} "
            f"{alert.get('series')} {alert.get('field')} "
            f"{alert.get('direction')} value={alert.get('value'):.6g} "
            f"baseline={alert.get('baseline'):.6g} "
            f"dev={alert.get('deviation'):.1f}x")
    return "\n".join(lines)


def _fmt_s(value: float | None) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.3f}s"
    return f"{value * 1e3:.2f}ms"


def format_monitor(snapshot: dict) -> str:
    """Human-readable monitor panel for one snapshot."""
    lines = []
    run_id = snapshot.get("run_id") or "-"
    backend = snapshot.get("backend") or "-"
    state = "ended" if snapshot.get("ended") else "running"
    lines.append(f"run {run_id} [{backend}] {state}  "
                 f"events={snapshot.get('events', 0)}  "
                 f"t={snapshot.get('duration_s', 0.0):.2f}s")
    if snapshot.get("skipped_lines"):
        lines.append(f"  ({snapshot['skipped_lines']} truncated "
                     f"line(s) skipped)")
    done, total = snapshot.get("done"), snapshot.get("total")
    if done is not None or total is not None:
        progress = (f"progress {done if done is not None else '?'}"
                    f"/{total if total is not None else '?'}")
        if snapshot.get("failures") is not None:
            progress += f"  failures={snapshot['failures']}"
        if snapshot.get("queued") is not None:
            progress += f"  queued={snapshot['queued']}"
        lines.append(progress)
    if snapshot.get("queue_depth") is not None:
        depth = f"queue    depth={snapshot['queue_depth']}"
        tenants = snapshot.get("queue_tenants") or {}
        if tenants:
            depth += "  " + "  ".join(
                f"{tenant}={count}"
                for tenant, count in sorted(tenants.items()))
        if snapshot.get("alerts"):
            depth += f"  alerts={snapshot['alerts']}"
        lines.append(depth)
    routes = snapshot.get("routes") or {}
    if routes:
        mix = "  ".join(f"{route}={count}"
                        for route, count in routes.items())
        lines.append(f"routes   {mix}")
    latencies = snapshot.get("latencies") or {}
    for kind, stats in latencies.items():
        lines.append(
            f"{kind:<9} n={stats['count']:<5} "
            f"p50={_fmt_s(stats['p50'])} p90={_fmt_s(stats['p90'])} "
            f"p99={_fmt_s(stats['p99'])} max={_fmt_s(stats['max'])}")
    counts = []
    for label, key in (("faults", "faults"),):
        mapping = snapshot.get(key) or {}
        if mapping:
            counts.append(label + " " + " ".join(
                f"{fault}={count}" for fault, count in mapping.items()))
    for label in ("retries", "bisections", "shed_pairs", "quarantined"):
        value = snapshot.get(label, 0)
        if value:
            counts.append(f"{label}={value}")
    if counts:
        lines.append("health   " + "  ".join(counts))
    for report in snapshot.get("slos") or []:
        status = report["status"]
        marker = {"ok": "OK ", "breach": "!! ",
                  "no-data": "-- "}.get(status, "?? ")
        achieved = report["achieved"]
        burn = report["burn_rate"]
        detail = (f"achieved={_fmt_s(achieved)} target="
                  f"{_fmt_s(report['target'])} n={report['samples']}")
        if burn is not None:
            detail += (f" burn={burn:.2f}x"
                       if burn != math.inf else " burn=inf")
        lines.append(f"slo {marker}{report['name']:<24} {detail}")
    return "\n".join(lines)
