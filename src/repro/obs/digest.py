"""Mergeable streaming quantile digest (fixed-boundary log-histogram).

Sharded and supervised runs observe latencies inside worker
*processes*; what the parent needs is the percentile over the union of
every worker's samples. A mean/min/max summary cannot answer that, and
classic streaming sketches (t-digest, GK) merge *approximately* -- the
merged centroids depend on merge order, so a 4-worker run and an
8-worker run of the same batch would report different p99s.

:class:`LatencyDigest` takes the other trade: **fixed** bucket
boundaries on a geometric grid, chosen once by the ``growth`` factor
and never adapted to the data. A sample ``v > 0`` lands in bucket
``floor(log(v) / log(growth))`` (negatives mirror on ``|v|``, zeros get
their own bucket), so a bucket's count is a plain integer and merging
two digests is integer addition bucket-by-bucket. That makes merges

- **exact**: merged quantiles are *bit-identical* to a single digest
  fed the union of all samples,
- **order- and partition-invariant**: any sharding of the sample
  stream over any number of workers, merged in any order, produces the
  same state (the commutative-monoid property the parent/worker
  ``export_state`` / ``merge_state`` protocol needs).

Accuracy bound: a quantile query returns the lower edge
``growth**index`` of the bucket holding the rank-selected sample, so
for positive samples the true sample ``x`` satisfies
``answer <= x < answer * growth`` -- a relative error of at most
``growth - 1`` (default ~1.6%). Exact ``min``/``max`` are tracked
separately: answers clamp into ``[min, max]``, and ``q=0`` / ``q=1``
return them exactly.

Quantile semantics are type-1 (lower) order statistics: rank
``ceil(q * count)`` with no interpolation, so answers are always real
bucket edges and two processes computing the same quantile over the
same state agree to the last bit.
"""

from __future__ import annotations

import math
from typing import Iterable

#: Schema tag of an exported digest state.
SCHEMA = "smx-digest/1"

#: Default geometric bucket growth factor: relative quantile error is
#: bounded by ``growth - 1`` (~1.6%) at ~280 buckets per decade pair.
DEFAULT_GROWTH = 1 + 2.0 ** -6


class LatencyDigest:
    """Mergeable log-histogram over floats (any sign, zeros included).

    Args:
        growth: Geometric bucket growth factor (> 1). Digests only
            merge with digests built on the same grid.
    """

    __slots__ = ("growth", "_log_growth", "count", "total", "min",
                 "max", "zeros", "_pos", "_neg")

    def __init__(self, growth: float = DEFAULT_GROWTH) -> None:
        if not growth > 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        self.growth = float(growth)
        self._log_growth = math.log(self.growth)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.zeros = 0
        self._pos: dict[int, int] = {}
        self._neg: dict[int, int] = {}

    # -- recording ----------------------------------------------------------

    def _bucket(self, magnitude: float) -> int:
        return math.floor(math.log(magnitude) / self._log_growth)

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``count`` occurrences of ``value``."""
        if count <= 0:
            return
        value = float(value)
        self.count += count
        self.total += value * count
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value == 0.0:
            self.zeros += count
        elif value > 0.0:
            index = self._bucket(value)
            self._pos[index] = self._pos.get(index, 0) + count
        else:
            index = self._bucket(-value)
            self._neg[index] = self._neg.get(index, 0) + count

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    # -- queries ------------------------------------------------------------

    def _cells_ascending(self):
        """(representative, count) cells in ascending value order.

        Negative buckets come first, most-negative first: a larger
        magnitude index holds more-negative values. Representatives are
        the closest-to-zero bucket edge, so ``|rep| <= |sample|`` holds
        for every sample in the cell.
        """
        for index in sorted(self._neg, reverse=True):
            yield -(self.growth ** index), self._neg[index]
        if self.zeros:
            yield 0.0, self.zeros
        for index in sorted(self._pos):
            yield self.growth ** index, self._pos[index]

    def quantile(self, q: float) -> float | None:
        """Type-1 quantile of everything observed, or None when empty.

        Exact at the extremes (``q=0`` -> min, ``q=1`` -> max); in
        between, the answer is within a factor of ``growth`` of the
        true order statistic (see the module docstring).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return None
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        # q * count can land a few ulps above the exact integer rank
        # ((31/60) * 60 == 31.000000000000004); a plain ceil would then
        # select the *next* cell. Snap near-integers down first.
        scaled = q * self.count
        rank = math.ceil(scaled)
        floor = math.floor(scaled)
        if rank > floor and scaled - floor <= 1e-9 * max(scaled, 1.0):
            rank = floor
        rank = min(max(rank, 1), self.count)
        seen = 0
        for representative, cell_count in self._cells_ascending():
            seen += cell_count
            if seen >= rank:
                return min(max(representative, self.min), self.max)
        return self.max  # unreachable: cells always sum to count

    def quantiles(self, qs: Iterable[float]) -> list[float | None]:
        return [self.quantile(q) for q in qs]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        """Human-facing percentile summary (p50/p90/p99 + extremes)."""
        if not self.count:
            return {"count": 0, "p50": None, "p90": None, "p99": None,
                    "min": None, "max": None}
        p50, p90, p99 = self.quantiles((0.5, 0.9, 0.99))
        return {"count": self.count, "p50": p50, "p90": p90,
                "p99": p99, "min": self.min, "max": self.max}

    # -- cross-process state ------------------------------------------------

    def export_state(self) -> dict:
        """JSON/pickle-safe state; deterministic for a given sample
        multiset regardless of observation order.

        One caveat: ``total`` is a float running sum, so its last few
        ulps depend on addition order. Every quantile-bearing field --
        counts, buckets, ``min``/``max`` -- is exactly order- and
        partition-invariant.
        """
        return {
            "schema": SCHEMA,
            "growth": self.growth,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "zeros": self.zeros,
            "pos": {str(k): self._pos[k] for k in sorted(self._pos)},
            "neg": {str(k): self._neg[k] for k in sorted(self._neg)},
        }

    def merge_state(self, state: dict | None) -> None:
        """Fold another digest's :meth:`export_state` into this one.

        Bucket counts add, so ``merge(a, b)`` equals a single digest
        fed both sample streams -- in any order, any partitioning.

        Raises:
            ValueError: the state was built on a different grid.
        """
        if not state or not state.get("count"):
            return
        growth = float(state.get("growth", 0.0))
        if growth != self.growth:
            raise ValueError(
                f"cannot merge digests with different growth factors "
                f"({self.growth} vs {growth})")
        self.count += int(state["count"])
        self.total += float(state.get("total", 0.0))
        low, high = state.get("min"), state.get("max")
        if low is not None and low < self.min:
            self.min = float(low)
        if high is not None and high > self.max:
            self.max = float(high)
        self.zeros += int(state.get("zeros", 0))
        for key, value in (state.get("pos") or {}).items():
            index = int(key)
            self._pos[index] = self._pos.get(index, 0) + int(value)
        for key, value in (state.get("neg") or {}).items():
            index = int(key)
            self._neg[index] = self._neg.get(index, 0) + int(value)

    @classmethod
    def from_state(cls, state: dict) -> "LatencyDigest":
        digest = cls(growth=float(state.get("growth", DEFAULT_GROWTH)))
        digest.merge_state(state)
        return digest
