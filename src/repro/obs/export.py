"""Prometheus text-exposition rendering of the metrics registry.

The registry's dotted keys (``service.jobs{tenant=acme,verdict=done}``)
render into the Prometheus text format v0.0.4 that every scrape-based
collector understands::

    # TYPE smx_service_jobs_total counter
    smx_service_jobs_total{tenant="acme",verdict="done"} 12

Mapping rules:

- dotted names flatten to underscores under one ``smx_`` namespace;
  invalid characters become ``_``;
- **counters** render cumulatively (monotone across scrapes, as the
  pull model requires) with the conventional ``_total`` suffix;
- **gauges** render as-is;
- **distributions** render as Prometheus *summaries*: one
  ``{quantile="0.5|0.9|0.99"}`` sample per tracked percentile plus
  ``_sum`` and ``_count`` (exact across worker merges, courtesy of
  the mergeable digest);
- label values are escaped per the spec (``\\`` ``"`` and newlines).

Consumers: :func:`write_textfile` drops an atomic textfile next to the
spool for the node-exporter textfile collector, and
:class:`MetricsServer` serves ``GET /metrics`` on localhost for a real
scraper (``repro serve --metrics-port``). :func:`parse_exposition` and
:func:`lint_exposition` close the loop -- tests round-trip the output
through the parser, and CI lints a live daemon's scrape for TYPE
lines, label escaping, and counter monotonicity between scrapes.
"""

from __future__ import annotations

import math
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.core.atomicio import atomic_write_text
from repro.obs.metrics import MetricsRegistry, parse_metric_key

#: Namespace every rendered metric is prefixed with.
NAMESPACE = "smx"

#: Quantiles rendered per distribution (summary) family.
SUMMARY_QUANTILES = (0.5, 0.9, 0.99)

#: Content type a Prometheus scraper expects.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_INVALID = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<ts>-?\d+))?$")


def metric_name(dotted: str, suffix: str = "") -> str:
    """``service.queue_depth`` -> ``smx_service_queue_depth``."""
    flat = _INVALID.sub("_", dotted.replace(".", "_"))
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return f"{NAMESPACE}_{flat}{suffix}"


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition spec."""
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def unescape_label_value(value: str) -> str:
    out: list[str] = []
    it = iter(range(len(value)))
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:
                out.append(ch)
                out.append(nxt)
            i += 2
            continue
        out.append(ch)
        i += 1
    del it
    return "".join(out)


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_str(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_INVALID.sub("_", k)}="{escape_label_value(str(v))}"'
        for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def render_registry(registry: MetricsRegistry) -> str:
    """Render the registry's current state as one exposition page.

    Families are emitted in sorted name order, each preceded by its
    ``# TYPE`` line; counters are cumulative (scrape-to-scrape
    monotone), distributions render as summaries.
    """
    state = registry.export_state()
    families: dict[str, dict] = {}

    def family(dotted: str, kind: str) -> dict:
        suffix = "_total" if kind == "counter" else ""
        name = metric_name(dotted, suffix)
        entry = families.setdefault(
            name, {"type": kind, "samples": []})
        return entry

    for key, value in (state.get("counters") or {}).items():
        dotted, labels = parse_metric_key(key)
        entry = family(dotted, "counter")
        entry["samples"].append(
            (metric_name(dotted, "_total"), dict(labels), float(value)))
    for key, value in (state.get("gauges") or {}).items():
        dotted, labels = parse_metric_key(key)
        entry = family(dotted, "gauge")
        entry["samples"].append(
            (metric_name(dotted), dict(labels), float(value)))
    for key, summary in (state.get("distributions") or {}).items():
        dotted, labels = parse_metric_key(key)
        entry = family(dotted, "summary")
        base = metric_name(dotted)
        label_map = dict(labels)
        for q, field in zip(SUMMARY_QUANTILES, ("p50", "p90", "p99")):
            quantile = summary.get(field)
            if quantile is None:
                continue
            entry["samples"].append(
                (base, {**label_map, "quantile": f"{q:g}"},
                 float(quantile)))
        entry["samples"].append(
            (base + "_sum", label_map, float(summary.get("total", 0.0))))
        entry["samples"].append(
            (base + "_count", label_map,
             float(summary.get("count", 0))))

    lines: list[str] = []
    for name in sorted(families):
        entry = families[name]
        lines.append(f"# TYPE {name} {entry['type']}")
        for sample_name, labels, value in sorted(
                entry["samples"],
                key=lambda s: (s[0], sorted(s[1].items()))):
            lines.append(f"{sample_name}{_label_str(labels)} "
                         f"{_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_textfile(path: str, registry: MetricsRegistry) -> str:
    """Atomically write the current exposition page to ``path`` (the
    node-exporter textfile-collector handshake: a scraper never sees a
    torn page)."""
    return atomic_write_text(path, render_registry(registry))


# -- parsing / linting (tests and CI close the loop) ------------------------


def _parse_labels(raw: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    n = len(raw)
    while i < n:
        while i < n and raw[i] in ", ":
            i += 1
        if i >= n:
            break
        eq = raw.index("=", i)
        name = raw[i:eq].strip()
        if not name:
            raise ValueError(f"empty label name in {raw!r}")
        i = eq + 1
        if i >= n or raw[i] != '"':
            raise ValueError(f"unquoted label value in {raw!r}")
        i += 1
        value_chars: list[str] = []
        while i < n:
            ch = raw[i]
            if ch == "\\" and i + 1 < n:
                value_chars.append(raw[i:i + 2])
                i += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            i += 1
        if i >= n or raw[i] != '"':
            raise ValueError(f"unterminated label value in {raw!r}")
        i += 1
        labels[name] = unescape_label_value("".join(value_chars))
    return labels


def _parse_number(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    return float(raw)


def parse_exposition(text: str) -> dict:
    """Parse an exposition page into ``{"types": {family: kind},
    "samples": [(name, labels, value)]}``.

    Raises:
        ValueError: any line that is not a comment, a ``TYPE``/
            ``HELP`` line, blank, or a well-formed sample.
    """
    types: dict[str, str] = {}
    samples: list[tuple[str, dict[str, str], float]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            parts = stripped.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE.match(stripped)
        if match is None:
            raise ValueError(
                f"line {lineno}: not a valid sample: {stripped!r}")
        labels = _parse_labels(match.group("labels") or "")
        try:
            value = _parse_number(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad sample value "
                f"{match.group('value')!r}") from None
        samples.append((match.group("name"), labels, value))
    return {"types": types, "samples": samples}


def _family_of(sample_name: str, types: dict[str, str]) -> str | None:
    """The TYPE family a sample belongs to (summaries register the
    base name but emit ``_sum``/``_count`` children)."""
    if sample_name in types:
        return sample_name
    for suffix in ("_sum", "_count", "_bucket"):
        if sample_name.endswith(suffix):
            base = sample_name[:-len(suffix)]
            if base in types:
                return base
    return None


def lint_exposition(text: str,
                    previous: str | None = None) -> list[str]:
    """Validate one exposition page; returns a list of problems
    (empty = clean). With ``previous`` (an earlier scrape of the same
    process), counter samples are additionally checked for
    scrape-to-scrape **monotonicity**.

    Checks: page parses, every sample's family has a ``# TYPE`` line,
    metric/label names are legal, no duplicate (name, labels) sample,
    counters are finite and non-negative, quantile labels only appear
    on summaries.
    """
    problems: list[str] = []
    try:
        page = parse_exposition(text)
    except ValueError as exc:
        return [str(exc)]
    types, samples = page["types"], page["samples"]
    seen: set[tuple[str, tuple]] = set()
    for name, labels, value in samples:
        if not _NAME_OK.match(name):
            problems.append(f"invalid metric name {name!r}")
        family = _family_of(name, types)
        if family is None:
            problems.append(f"sample {name!r} has no # TYPE line")
            continue
        kind = types[family]
        for label in labels:
            if not _LABEL_OK.match(label):
                problems.append(
                    f"{name}: invalid label name {label!r}")
        if "quantile" in labels and kind != "summary":
            problems.append(
                f"{name}: quantile label on non-summary ({kind})")
        key = (name, tuple(sorted(labels.items())))
        if key in seen:
            problems.append(f"duplicate sample {name}{labels}")
        seen.add(key)
        if kind == "counter":
            if not math.isfinite(value):
                problems.append(f"{name}{labels}: non-finite counter")
            elif value < 0:
                problems.append(f"{name}{labels}: negative counter")
            if not name.endswith("_total"):
                problems.append(
                    f"{name}: counter without _total suffix")
    if previous is not None:
        try:
            before = parse_exposition(previous)
        except ValueError as exc:
            return problems + [f"previous page unparseable: {exc}"]
        prior = {(n, tuple(sorted(l.items()))): v
                 for n, l, v in before["samples"]}
        for name, labels, value in samples:
            family = _family_of(name, types)
            if family is None or types.get(family) != "counter":
                continue
            key = (name, tuple(sorted(labels.items())))
            if key in prior and value < prior[key]:
                problems.append(
                    f"{name}{labels}: counter went backwards "
                    f"({prior[key]} -> {value})")
    return problems


# -- localhost scrape endpoint ----------------------------------------------


class MetricsServer:
    """A localhost ``GET /metrics`` endpoint over a render callback.

    Binds 127.0.0.1 only (telemetry is not an open service); runs its
    accept loop on a daemon thread so the daemon's executive loop is
    never blocked by a scraper. ``port=0`` picks a free port (tests).
    """

    def __init__(self, render: Callable[[], str], port: int = 0) -> None:
        self._render = render

        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.rstrip("/") not in ("", "/metrics"):
                    self.send_error(404)
                    return
                try:
                    body = server._render().encode("utf-8")
                except Exception as exc:  # noqa: BLE001 - scrape must not die
                    self.send_error(500, str(exc))
                    return
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence stderr
                pass

        self._httpd = ThreadingHTTPServer(("127.0.0.1", port), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics",
            daemon=True)
        self._thread.start()

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}/metrics"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)
