"""Critical-path extraction over stitched Chrome trace documents.

A stitched trace (:meth:`~repro.obs.tracing.Tracer.to_chrome` after
worker spans merged in) holds every span of a run across every process
track. The run's end-to-end wall clock, though, is governed by one
chain: the root span, the child that finished last inside it, that
child's last-finishing child, and so on -- the **critical path**. A
shard that straggled, a retry that pushed a unit past its siblings, a
traceback phase that dominated its bucket: they all show up on this
chain, and time spent anywhere else is, by definition, hidden behind
it.

:func:`critical_path` walks that chain by time containment: at each
span it descends into the contained span with the **latest end** (ties
broken toward the longer, i.e. outermost, span -- so the walk steps
through direct children one nesting level at a time). Each step is
charged its **self time** -- its duration minus the descended child's
-- so the steps' self times sum exactly to the root's duration: a
complete, disjoint attribution of the run's wall clock.

Because the profiler mirrors its phase stack into the tracer (thread
``"profile"``), the path's steps on that thread carry phase names, and
:func:`reconcile_with_profile` cross-checks each one's self time
against the profiler's own self-time accounting for the same phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Containment slop (trace microseconds): clock reads around a context
#: manager's enter/exit are not atomic, so children may overhang their
#: parent by a few microseconds of measurement noise.
EPS_US = 5.0


@dataclass(frozen=True)
class Span:
    """One duration event with resolved track names."""

    name: str
    cat: str
    ts: float
    dur: float
    process: str
    thread: str
    args: dict = field(default_factory=dict, hash=False, compare=False)

    @property
    def end(self) -> float:
        return self.ts + self.dur


@dataclass(frozen=True)
class PathStep:
    """One hop of the critical path: a span and its self time."""

    span: Span
    self_us: float


@dataclass(frozen=True)
class CriticalPath:
    """The slowest dependency chain of one trace."""

    root: Span
    steps: tuple[PathStep, ...]

    @property
    def total_us(self) -> float:
        return self.root.dur

    def phase_totals(self) -> dict[str, float]:
        """Self time per span name along the path, in microseconds."""
        totals: dict[str, float] = {}
        for step in self.steps:
            totals[step.span.name] = (totals.get(step.span.name, 0.0)
                                      + step.self_us)
        return totals


def spans_from_chrome(doc: dict) -> list[Span]:
    """Extract duration spans (with resolved process/thread names)
    from a Chrome trace-event document."""
    events = doc.get("traceEvents") or []
    processes: dict[int, str] = {}
    threads: dict[tuple[int, int], str] = {}
    for event in events:
        if event.get("ph") != "M":
            continue
        args = event.get("args") or {}
        if event.get("name") == "process_name":
            processes[event.get("pid", 0)] = str(args.get("name", "?"))
        elif event.get("name") == "thread_name":
            threads[(event.get("pid", 0), event.get("tid", 0))] = \
                str(args.get("name", "?"))
    spans = []
    for event in events:
        if event.get("ph") != "X":
            continue
        pid = event.get("pid", 0)
        tid = event.get("tid", 0)
        spans.append(Span(
            name=str(event.get("name", "?")),
            cat=str(event.get("cat", "")),
            ts=float(event.get("ts", 0.0)),
            dur=float(event.get("dur", 0.0)),
            process=processes.get(pid, str(pid)),
            thread=threads.get((pid, tid), str(tid)),
            args=dict(event.get("args") or {})))
    return spans


def _contained(parent: Span, candidate: Span) -> bool:
    return (candidate.ts >= parent.ts - EPS_US
            and candidate.end <= parent.end + EPS_US
            and candidate.dur <= parent.dur + EPS_US)


def critical_path(doc: dict, root_name: str | None = None,
                  ) -> CriticalPath | None:
    """The slowest containment chain of a trace document.

    The root is the longest span named ``root_name`` (or the longest
    span in the trace when ``None``). Returns ``None`` when the trace
    holds no matching span.
    """
    spans = spans_from_chrome(doc)
    if root_name is not None:
        candidates = [s for s in spans if s.name == root_name]
    else:
        candidates = spans
    if not candidates:
        return None
    root = max(candidates, key=lambda s: (s.dur, -s.ts))

    steps: list[PathStep] = []
    current = root
    visited = {id(current)}
    while True:
        children = [s for s in spans
                    if id(s) not in visited and s is not current
                    and _contained(current, s)]
        if not children:
            steps.append(PathStep(span=current, self_us=current.dur))
            break
        # Latest finisher governs the parent's end; among ties the
        # longest span is the outermost (its inner spans come next
        # iteration), so the walk descends one nesting level at a time.
        child = max(children, key=lambda s: (s.end, s.dur))
        steps.append(PathStep(span=current,
                              self_us=max(current.dur - child.dur, 0.0)))
        visited.add(id(child))
        current = child
    return CriticalPath(root=root, steps=tuple(steps))


def format_critical_path(path: CriticalPath, limit: int = 0) -> str:
    """Human-readable rendering of one critical path."""
    total = path.total_us
    lines = [f"critical path: {total / 1e3:.3f} ms end-to-end "
             f"({len(path.steps)} step(s))"]
    steps = path.steps[:limit] if limit > 0 else path.steps
    for depth, step in enumerate(steps):
        span = step.span
        share = (step.self_us / total * 100.0) if total > 0 else 0.0
        lines.append(
            f"  {'  ' * depth}{span.name} "
            f"[{span.process}/{span.thread}] "
            f"self={step.self_us / 1e3:.3f}ms ({share:.1f}%) "
            f"span={span.dur / 1e3:.3f}ms")
    if limit > 0 and len(path.steps) > limit:
        lines.append(f"  ... {len(path.steps) - limit} deeper step(s) "
                     f"elided")
    return "\n".join(lines)


def reconcile_with_profile(path: CriticalPath,
                           profile_state: dict) -> dict:
    """Cross-check the path against the profiler's self-time ledger.

    The profiler mirrors its phase stack into the tracer on a
    ``"profile"`` thread, so the critical path's profile-thread steps
    *are* profiler phases. Two views of the same clock must agree:

    - ``path_profile_us`` -- the duration of the outermost
      profile-thread span on the path: the wall-clock interval the
      profiler was attributing phases inside.
    - ``profiler_total_us`` -- the sum of the profiler's **self**
      ``wall_s`` over every phase path. Self times partition their
      covering phase, so in a single-threaded profiled run this sum
      equals the covered interval.

    For such runs the two match up to clock-read noise; callers assert
    ``abs(path_profile_us - profiler_total_us)`` within tolerance.
    ``phases`` rows additionally pair each profile-thread step's self
    time with the profiler's per-phase total (the path walks one call
    chain, the profiler sums all calls, so per-phase rows are
    informational: ``profile_wall_s`` aggregates more work).
    """
    wall_by_phase: dict[str, float] = {}
    total_s = 0.0
    for key, stat in (profile_state or {}).items():
        phase = key.split(";")[-1]
        wall = float(stat.get("wall_s", 0.0))
        wall_by_phase[phase] = wall_by_phase.get(phase, 0.0) + wall
        total_s += wall
    rows = []
    outermost_us = 0.0
    for step in path.steps:
        if step.span.thread != "profile":
            continue
        outermost_us = max(outermost_us, step.span.dur)
        rows.append({
            "phase": step.span.name,
            "path_self_s": step.self_us / 1e6,
            "span_s": step.span.dur / 1e6,
            "profile_wall_s": wall_by_phase.get(step.span.name)})
    return {"phases": rows,
            "path_profile_us": outermost_us,
            "profiler_total_us": total_s * 1e6}
