"""Cross-process trace context: stitch worker spans into one timeline.

Each :class:`~repro.obs.tracing.Tracer` timestamps spans relative to
its own creation instant, so a worker process's trace starts at ~0 no
matter when the parent launched it -- exported worker traces used to
render as overlapping timelines that all began at the origin.

A :class:`TraceContext` fixes the clock domain. The parent creates one
per worker at submit time, capturing a **wall-clock anchor** and the
parent tracer's timestamp *at the same instant*. The worker, on
creating its own tracer, measures how far wall-clock has advanced since
the anchor and derives the offset that places its local timestamps on
the parent's timeline::

    offset_us = anchor_ts_us + (time.time() - anchor_wall_s) * 1e6

Worker spans are exported shifted by that offset and merged into the
parent tracer with the worker's ``host`` process track renamed to the
context's ``worker`` label (``shard3``, ``u17-24.a1``), so the stitched
Chrome/Perfetto trace shows every worker as its own named process row,
causally aligned under the parent's ``exec.shard`` /
``resilience.run`` spans. Wall-clock cross-process skew on one machine
is microseconds-to-milliseconds -- far below the span durations being
aligned.

The context also carries the ``run_id`` every stitched trace and
telemetry stream shares, so multi-file artifacts of one run can be
correlated after the fact.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass


def new_run_id() -> str:
    """A short random id shared by all artifacts of one run."""
    return uuid.uuid4().hex[:8]


@dataclass(frozen=True)
class TraceContext:
    """Clock anchor + identity handed to one worker.

    Attributes:
        run_id: Id shared by every worker of the run.
        worker: Track label for the worker's spans in the stitched
            trace (becomes its process name).
        parent_span: Name of the parent-side span awaiting this worker
            (documentation for trace consumers; not used for shifting).
        anchor_wall_s: Parent ``time.time()`` at context creation.
        anchor_ts_us: Parent tracer timestamp at the same instant.
    """

    run_id: str
    worker: str
    parent_span: str | None = None
    anchor_wall_s: float = 0.0
    anchor_ts_us: float = 0.0

    def offset_us(self) -> float:
        """Parent-timeline timestamp of *this instant*; a worker calls
        this when its tracer is created, so spans recorded relative to
        that tracer shift onto the parent timeline by this amount."""
        return self.anchor_ts_us + \
            (time.time() - self.anchor_wall_s) * 1e6

    def to_dict(self) -> dict:
        return {"run_id": self.run_id, "worker": self.worker,
                "parent_span": self.parent_span}


def child_context(tracer, run_id: str, worker: str,
                  parent_span: str | None = None) -> TraceContext | None:
    """A context for one worker, or None when tracing is disabled
    (workers then skip creating a tracer entirely)."""
    if tracer is None or not tracer.enabled:
        return None
    return TraceContext(run_id=run_id, worker=worker,
                        parent_span=parent_span,
                        anchor_wall_s=time.time(),
                        anchor_ts_us=tracer.now_us())
