"""Robust change detection over retained telemetry series.

Fleet telemetry is only useful if someone notices when it moves. This
module watches series extracted from a
:class:`~repro.obs.timeseries.TimeSeriesStore` (per-tenant p99
latency, error rates, queue depth, ...) with a robust EWMA/MAD
detector and emits structured ``alert`` records when a value breaks
from its own history.

The detector is deliberately boring and fully deterministic:

- the **baseline** is an exponentially weighted moving average of the
  series (updated only *after* each value is judged, so the value
  under test never defends itself);
- the **scale** is the median absolute deviation of a trailing
  history window (times the 1.4826 normal-consistency constant), with
  relative and absolute floors so a flat series does not alert on
  noise at the resolution limit;
- a value alerts when ``|value - baseline| / scale`` exceeds the
  threshold, and the series state then **resets to the new value** --
  a level shift (the common deploy-regression shape) raises exactly
  one alert at the window where the step lands, not one per window
  forever after.

There is no wall-clock anywhere: position comes from the window index
the caller supplies, so a replayed series alerts at the same index
every time. The daemon feeds sealed windows in as they close
(:meth:`AnomalyDetector.ingest_window`) and appends each alert to the
smx-events/1 stream; ``repro monitor`` and ``repro fleet`` render
them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from statistics import median
from typing import Iterable

from repro.obs.timeseries import Window

#: MAD -> standard-deviation consistency constant for normal data.
MAD_SCALE = 1.4826

#: Default series fields the daemon watches per metric kind.
DEFAULT_DIGEST_FIELD = "p99"


@dataclass(frozen=True)
class Alert:
    """One structured anomaly: ``series`` broke from its baseline at
    ``window_index``."""

    series: str           # flat metric key, e.g. "exec.latency{tenant=a}"
    kind: str             # "digest" | "counter" | "gauge"
    metric_field: str     # "p99", "rate", "gauge", ...
    window_index: int
    value: float
    baseline: float
    deviation: float      # |value - baseline| / scale, > threshold
    direction: str        # "up" | "down"
    tenant: str | None = None

    def to_dict(self) -> dict:
        # "metric_kind", not "kind": these dicts feed events.emit(),
        # whose envelope already owns the "kind" key.
        doc = {
            "series": self.series,
            "metric_kind": self.kind,
            "field": self.metric_field,
            "window_index": self.window_index,
            "value": self.value,
            "baseline": self.baseline,
            "deviation": round(self.deviation, 4),
            "direction": self.direction,
        }
        if self.tenant is not None:
            doc["tenant"] = self.tenant
        return doc


def _tenant_of(series: str) -> str | None:
    start = series.find("{")
    if start < 0:
        return None
    for part in series[start + 1:].rstrip("}").split(","):
        if part.startswith("tenant="):
            return part[len("tenant="):]
    return None


class SeriesDetector:
    """EWMA baseline + MAD scale for one series. Pure arithmetic over
    the values it is fed; no clocks, no I/O."""

    __slots__ = ("alpha", "threshold", "warmup", "history",
                 "rel_floor", "abs_floor", "baseline", "seen")

    def __init__(self, *, alpha: float = 0.3, threshold: float = 4.0,
                 warmup: int = 5, history: int = 32,
                 rel_floor: float = 0.05,
                 abs_floor: float = 1e-9) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        if warmup < 2:
            raise ValueError(f"warmup must be >= 2, got {warmup}")
        self.alpha = alpha
        self.threshold = threshold
        self.warmup = warmup
        self.history: deque[float] = deque(maxlen=history)
        self.rel_floor = rel_floor
        self.abs_floor = abs_floor
        self.baseline: float | None = None
        self.seen = 0

    def _scale(self) -> float:
        base = abs(self.baseline or 0.0)
        floors = max(base * self.rel_floor, self.abs_floor)
        if len(self.history) < 2:
            return floors
        mid = median(self.history)
        mad = median(abs(v - mid) for v in self.history)
        return max(mad * MAD_SCALE, floors)

    def observe(self, value: float) -> tuple[bool, float, float]:
        """Judge one value; returns ``(alerted, baseline, deviation)``.

        The baseline returned is the one the value was judged
        *against* (pre-update). On alert the detector re-anchors to
        the new value so a sustained level shift alerts once.
        """
        value = float(value)
        if self.baseline is None:
            self.baseline = value
            self.history.append(value)
            self.seen = 1
            return False, value, 0.0
        judged_against = self.baseline
        deviation = abs(value - judged_against) / self._scale()
        self.seen += 1
        if self.seen > self.warmup and deviation > self.threshold:
            # Re-anchor: the step is the new normal.
            self.history.clear()
            self.history.append(value)
            self.baseline = value
            self.seen = 1
            return True, judged_against, deviation
        self.history.append(value)
        self.baseline = (self.alpha * value
                         + (1.0 - self.alpha) * self.baseline)
        return False, judged_against, deviation


class AnomalyDetector:
    """Fleet-level detector: one :class:`SeriesDetector` per watched
    series, fed from sealed :class:`~repro.obs.timeseries.Window`\\ s.

    ``watch`` is a list of ``(prefix, field)`` pairs; a series is
    watched when its flat key starts with a prefix. Defaults watch
    every latency digest's p99, ``rate`` of every counter ending in
    ``.faults``/``.errors``, and the queue-depth gauge.
    """

    DEFAULT_WATCH = (
        ("", "p99"),                       # every distribution
        ("resilience.faults", "rate"),
        ("service.errors", "rate"),
        ("service.queue_depth", "gauge"),
    )

    def __init__(self, watch: Iterable[tuple[str, str]] | None = None,
                 **detector_kwargs) -> None:
        self.watch = tuple(watch) if watch is not None else self.DEFAULT_WATCH
        self.detector_kwargs = dict(detector_kwargs)
        self._detectors: dict[tuple[str, str], SeriesDetector] = {}
        self.alerts: list[Alert] = []

    def _detector(self, series: str, field_name: str) -> SeriesDetector:
        key = (series, field_name)
        found = self._detectors.get(key)
        if found is None:
            found = SeriesDetector(**self.detector_kwargs)
            self._detectors[key] = found
        return found

    def _watched(self, series: str, field_name: str) -> bool:
        return any(series.startswith(prefix) and field_name == wanted
                   for prefix, wanted in self.watch)

    def _judge(self, series: str, kind: str, field_name: str,
               index: int, value: float) -> Alert | None:
        detector = self._detector(series, field_name)
        alerted, baseline, deviation = detector.observe(value)
        if not alerted:
            return None
        alert = Alert(
            series=series, kind=kind, metric_field=field_name,
            window_index=index, value=float(value), baseline=baseline,
            deviation=deviation,
            direction="up" if value > baseline else "down",
            tenant=_tenant_of(series))
        self.alerts.append(alert)
        return alert

    def ingest_window(self, window: Window) -> list[Alert]:
        """Feed one sealed window; returns the alerts it raised (also
        appended to :attr:`alerts`). Deterministic iteration order:
        digests, then counters, then gauges, each key-sorted."""
        raised: list[Alert] = []
        duration = window.duration_s or 1.0
        for series in sorted(window.digests):
            for field_name in ("p50", "p90", "p99"):
                if not self._watched(series, field_name):
                    continue
                value = window.quantile(
                    series, float(field_name[1:]) / 100.0)
                if value is None:
                    continue
                alert = self._judge(series, "digest", field_name,
                                    window.index, value)
                if alert:
                    raised.append(alert)
        for series in sorted(window.counters):
            for field_name in ("rate", "delta"):
                if not self._watched(series, field_name):
                    continue
                delta = window.counters[series]
                value = (delta / duration if field_name == "rate"
                         else float(delta))
                alert = self._judge(series, "counter", field_name,
                                    window.index, value)
                if alert:
                    raised.append(alert)
        for series in sorted(window.gauges):
            if not self._watched(series, "gauge"):
                continue
            alert = self._judge(series, "gauge", "gauge",
                                window.index,
                                float(window.gauges[series]))
            if alert:
                raised.append(alert)
        return raised

    def ingest(self, windows: Iterable[Window]) -> list[Alert]:
        """Feed a run of sealed windows in order."""
        raised: list[Alert] = []
        for window in windows:
            raised.extend(self.ingest_window(window))
        return raised
