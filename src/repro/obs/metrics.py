"""Hierarchical metrics registry (counters, gauges, distributions).

The simulator layers publish *what happened* -- tiles computed, lines
moved, stall cycles paid, reads mapped -- into a
:class:`MetricsRegistry`; consumers (the CLI, benchmark harness, tests)
take :meth:`~MetricsRegistry.snapshot`\\ s and diff them around the
region of interest. Metric names are dotted paths
(``coproc.tiles_computed``) and every instrument can carry labels
(``mem.stream_lines{level=L2}``), so one registry serves the whole
stack without the layers knowing about each other.

Disabled mode: :class:`NullRegistry` hands out shared no-op
instruments, so instrumented hot paths cost one attribute lookup and
one empty call when observability is off. The module-level
:data:`NULL_REGISTRY` singleton is what the library defaults to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.digest import LatencyDigest

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def metric_key(name: str, labels: LabelKey = ()) -> str:
    """Canonical flat key: ``name`` or ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def parse_metric_key(key: str) -> tuple[str, LabelKey]:
    """Invert :func:`metric_key` (labels come back as strings)."""
    if not key.endswith("}") or "{" not in key:
        return key, ()
    name, _, inner = key[:-1].partition("{")
    labels = []
    for part in inner.split(","):
        if part:
            k, _, v = part.partition("=")
            labels.append((k, v))
    return name, tuple(labels)


def _apply_labels(labels: LabelKey,
                  extra: dict[str, object] | None) -> LabelKey:
    """Fold ``extra`` labels into a parsed label key (existing label
    names win, so a worker that already stamped ``tenant`` keeps it)."""
    if not extra:
        return labels
    present = {k for k, _ in labels}
    merged = dict(labels)
    for k, v in extra.items():
        if k not in present:
            merged[k] = str(v)
    return tuple(sorted(merged.items()))


@dataclass
class Counter:
    """A monotonically increasing count (events, cycles, bytes)."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (last run's total cycles, queue depth)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Distribution:
    """Streaming summary of observed samples (no per-sample storage).

    Beyond count/mean/min/max, every distribution feeds a mergeable
    :class:`~repro.obs.digest.LatencyDigest`, so percentile queries
    survive the worker-to-parent ``export_state``/``merge_state`` trip
    *exactly*: the parent's p50/p90/p99 are bit-identical to a single
    process observing the union of all workers' samples.

    A second *window* digest accumulates in parallel and is drained by
    :meth:`take_window` (the time-series sampler's hook): it holds
    exactly the samples observed -- directly or merged in from workers
    -- since the last drain, so a sealed window's percentiles are
    bit-identical to the offline merge of that window's worker digests.
    """

    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))
    digest: LatencyDigest = field(default_factory=LatencyDigest,
                                  repr=False, compare=False)
    window: LatencyDigest = field(default_factory=LatencyDigest,
                                  repr=False, compare=False)

    def observe(self, value: float, count: int = 1) -> None:
        value = float(value)
        self.count += count
        self.total += value * count
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.digest.observe(value, count)
        self.window.observe(value, count)

    def take_window(self) -> LatencyDigest | None:
        """Drain and return the digest of samples since the last drain
        (None when nothing was observed). The cumulative digest is
        untouched."""
        if not self.window.count:
            return None
        taken = self.window
        self.window = LatencyDigest(growth=taken.growth)
        return taken

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        return self.digest.quantile(q)

    def merge(self, summary: dict) -> None:
        """Fold another distribution's summary/exported state into
        this one (min/max survive round trips exactly; digest states,
        when present, add bucket-by-bucket)."""
        count = int(summary.get("count", 0))
        if not count:
            return
        self.count += count
        self.total += float(summary.get("total", 0.0))
        low, high = summary.get("min"), summary.get("max")
        if low is not None and low < self.min:
            self.min = float(low)
        if high is not None and high > self.max:
            self.max = float(high)
        digest_state = summary.get("digest")
        if digest_state:
            self.digest.merge_state(digest_state)
            self.window.merge_state(digest_state)

    def summary(self) -> dict:
        if not self.count:
            return {"count": 0, "total": 0.0, "mean": 0.0,
                    "min": None, "max": None,
                    "p50": None, "p90": None, "p99": None}
        p50, p90, p99 = self.digest.quantiles((0.5, 0.9, 0.99))
        return {"count": self.count, "total": self.total,
                "mean": self.mean, "min": self.min, "max": self.max,
                "p50": p50, "p90": p90, "p99": p99}

    def export_state(self) -> dict:
        """:meth:`summary` plus the digest state, for merging across
        process boundaries without losing percentile resolution."""
        state = self.summary()
        state["digest"] = self.digest.export_state()
        return state


class MetricsRegistry:
    """Process-wide (or run-scoped) home of every instrument.

    Instruments are created on first use and cached by
    ``(name, labels)``; repeated lookups return the same object, so hot
    loops can hoist the instrument out and call ``inc`` directly.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._distributions: dict[tuple[str, LabelKey], Distribution] = {}

    # -- instrument lookup --------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def distribution(self, name: str, **labels: object) -> Distribution:
        key = (name, _label_key(labels))
        instrument = self._distributions.get(key)
        if instrument is None:
            instrument = self._distributions[key] = Distribution()
        return instrument

    def scope(self, prefix: str) -> "ScopedRegistry":
        """A view that prefixes every metric name with ``prefix.``."""
        return ScopedRegistry(self, prefix)

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Flat, JSON-serializable state of every instrument.

        Counters and gauges map their key to a number; distributions
        map to a ``{count, total, mean, min, max}`` summary.
        """
        out: dict = {}
        for (name, labels), c in self._counters.items():
            out[metric_key(name, labels)] = c.value
        for (name, labels), g in self._gauges.items():
            out[metric_key(name, labels)] = g.value
        for (name, labels), d in self._distributions.items():
            out[metric_key(name, labels)] = d.summary()
        return out

    def export_state(self) -> dict:
        """Typed, pickle/JSON-safe state for cross-process transfer.

        Unlike :meth:`snapshot` (which flattens everything into one
        namespace), this keeps counters / gauges / distributions apart
        so :meth:`merge_state` can apply the right combination rule to
        each: counters *add*, gauges *overwrite*, distributions *fold*.
        """
        return {
            "counters": {metric_key(n, l): c.value
                         for (n, l), c in self._counters.items()},
            "gauges": {metric_key(n, l): g.value
                       for (n, l), g in self._gauges.items()},
            "distributions": {metric_key(n, l): d.export_state()
                              for (n, l), d in
                              self._distributions.items()},
        }

    def merge_state(self, state: dict,
                    extra_labels: dict[str, object] | None = None) -> None:
        """Fold a worker's :meth:`export_state` into this registry.

        This is how counters incremented inside process-pool workers
        survive the trip home instead of vanishing with the worker's
        own (separate) registry. ``extra_labels`` are stamped onto
        every merged key that does not already carry them -- the hook
        the supervisor uses to relabel a worker's ``exec.*`` state
        with the job's tenant.
        """
        if not state:
            return
        for key, value in (state.get("counters") or {}).items():
            name, labels = parse_metric_key(key)
            lookup = (name, _apply_labels(labels, extra_labels))
            counter = self._counters.get(lookup)
            if counter is None:
                counter = self._counters[lookup] = Counter()
            counter.inc(value)
        for key, value in (state.get("gauges") or {}).items():
            name, labels = parse_metric_key(key)
            lookup = (name, _apply_labels(labels, extra_labels))
            gauge = self._gauges.get(lookup)
            if gauge is None:
                gauge = self._gauges[lookup] = Gauge()
            gauge.set(value)
        for key, summary in (state.get("distributions") or {}).items():
            name, labels = parse_metric_key(key)
            lookup = (name, _apply_labels(labels, extra_labels))
            dist = self._distributions.get(lookup)
            if dist is None:
                dist = self._distributions[lookup] = Distribution()
            dist.merge(summary)

    def drain_windows(self) -> dict[str, dict]:
        """Drain every distribution's window digest (see
        :meth:`Distribution.take_window`), keyed by flat metric key.
        Only distributions that saw samples since the last drain
        appear; each value is a digest ``export_state`` dict."""
        out: dict[str, dict] = {}
        for (name, labels), dist in self._distributions.items():
            taken = dist.take_window()
            if taken is not None:
                out[metric_key(name, labels)] = taken.export_state()
        return out

    def diff(self, before: dict) -> dict:
        """What changed since ``before`` (an earlier ``snapshot()``).

        Counter/gauge entries are subtracted; distribution summaries
        subtract ``count``/``total`` (min/max are reported from the
        current state, as extremes cannot be un-observed). Entries that
        did not change are omitted.
        """
        out: dict = {}
        for key, value in self.snapshot().items():
            prior = before.get(key)
            if isinstance(value, dict):
                prior = prior or {"count": 0, "total": 0.0}
                count = value["count"] - prior.get("count", 0)
                if count == 0 and key in before:
                    continue
                total = value["total"] - prior.get("total", 0.0)
                out[key] = {"count": count, "total": total,
                            "mean": total / count if count else 0.0,
                            "min": value["min"], "max": value["max"],
                            "p50": value.get("p50"),
                            "p90": value.get("p90"),
                            "p99": value.get("p99")}
            else:
                if prior is not None and value == prior:
                    continue
                out[key] = value - (prior or 0.0)
        return out


class ScopedRegistry:
    """A named subtree of a registry (``scope("coproc").counter("x")``
    touches ``coproc.x``). Snapshots always go through the root."""

    def __init__(self, root: MetricsRegistry, prefix: str) -> None:
        self._root = root
        self._prefix = prefix

    @property
    def enabled(self) -> bool:
        return self._root.enabled

    def counter(self, name: str, **labels: object) -> Counter:
        return self._root.counter(f"{self._prefix}.{name}", **labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._root.gauge(f"{self._prefix}.{name}", **labels)

    def distribution(self, name: str, **labels: object) -> Distribution:
        return self._root.distribution(f"{self._prefix}.{name}", **labels)

    def scope(self, prefix: str) -> "ScopedRegistry":
        return ScopedRegistry(self._root, f"{self._prefix}.{prefix}")


class LabeledRegistry:
    """A registry view that stamps fixed labels onto every instrument.

    ``LabeledRegistry(root, tenant="acme").counter("service.jobs")``
    touches ``service.jobs{tenant=acme}``; call-site labels win over
    the view's on collision. Composes with :class:`ScopedRegistry`
    (scoping a labeled view keeps the labels). This is how one
    tenant's supervised run splits ``exec.*`` / ``resilience.*``
    series without every call site knowing about tenancy.
    """

    def __init__(self, root, **labels: object) -> None:
        self._root = root
        self._labels = {k: str(v) for k, v in labels.items()}

    @property
    def enabled(self) -> bool:
        return self._root.enabled

    def _merged(self, labels: dict) -> dict:
        merged = dict(self._labels)
        merged.update(labels)
        return merged

    def counter(self, name: str, **labels: object) -> Counter:
        return self._root.counter(name, **self._merged(labels))

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._root.gauge(name, **self._merged(labels))

    def distribution(self, name: str, **labels: object) -> Distribution:
        return self._root.distribution(name, **self._merged(labels))

    def scope(self, prefix: str) -> "ScopedRegistry":
        return ScopedRegistry(self, prefix)

    # Snapshots and state transfer go through the (shared) root.

    def snapshot(self) -> dict:
        return self._root.snapshot()

    def diff(self, before: dict) -> dict:
        return self._root.diff(before)

    def export_state(self) -> dict:
        return self._root.export_state()

    def merge_state(self, state: dict,
                    extra_labels: dict[str, object] | None = None) -> None:
        merged = dict(self._labels)
        merged.update(extra_labels or {})
        self._root.merge_state(state, extra_labels=merged)

    def drain_windows(self) -> dict[str, dict]:
        return self._root.drain_windows()


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullDistribution(Distribution):
    def observe(self, value: float, count: int = 1) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """Disabled registry: every lookup returns a shared no-op
    instrument and snapshots are empty."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter()
        self._null_gauge = _NullGauge()
        self._null_distribution = _NullDistribution()

    def counter(self, name: str, **labels: object) -> Counter:
        return self._null_counter

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._null_gauge

    def distribution(self, name: str, **labels: object) -> Distribution:
        return self._null_distribution

    def snapshot(self) -> dict:
        return {}

    def diff(self, before: dict) -> dict:
        return {}

    def export_state(self) -> dict:
        return {}

    def merge_state(self, state: dict,
                    extra_labels: dict[str, object] | None = None) -> None:
        pass

    def drain_windows(self) -> dict[str, dict]:
        return {}


#: Shared disabled registry -- the library-wide default.
NULL_REGISTRY = NullRegistry()
