"""Benchmark history: deterministic micro-benchmarks + regression gate.

Three PRs of engine work produced an *empty* benchmark trajectory --
nothing compared one commit's kernel throughput against the last. This
module gives ``repro bench`` its machinery:

- :func:`collect` runs a small deterministic suite of vector-kernel
  micro-benchmarks (and, in full mode, engine-level scalar-vs-vector
  runs) and returns one schema-versioned **record**;
- :func:`load_history` / :func:`append_record` maintain
  ``results/BENCH_HISTORY.json`` (:data:`HISTORY_SCHEMA`);
- :func:`check` compares a fresh record against the **trailing
  median** of each metric's history and flags regressions beyond a
  configurable tolerance;
- :func:`record_from_run_reports` ingests existing ``smx-run-report/1``
  files (``bench_batch_engine``, ``table3_gcups``) so the history can
  be seeded from numbers already in ``results/``.

Metrics come in two flavours the gate treats differently:

- **absolute** throughput (``kernel.linear.dna.cups``,
  ``engine.score.vector.pairs_per_sec``) -- meaningful on one machine,
  noisy across machines;
- **relative** ratios (anything ending ``.speedup``) -- dimensionless
  and machine-portable, the right thing to gate in shared CI
  (``check(relative_only=True)``).
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import time
from datetime import datetime, timezone

import numpy as np

#: Schema tag of the history file (``results/BENCH_HISTORY.json``).
HISTORY_SCHEMA = "smx-bench-history/1"

#: Default regression tolerance: fail when a metric drops more than
#: this fraction below its trailing median.
DEFAULT_TOLERANCE = 0.25

#: Default trailing-median window (records per metric).
DEFAULT_WINDOW = 5


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, cwd=os.path.dirname(os.path.abspath(__file__)))
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def is_relative(metric: str) -> bool:
    """Whether a metric is a machine-portable ratio (gateable in CI)."""
    return metric.endswith(".speedup")


# ----------------------------------------------------------------------
# Micro-benchmarks
# ----------------------------------------------------------------------

def _bench_pairs(n_pairs: int, length: int, alphabet_size: int,
                 seed: int = 7) -> list:
    rng = np.random.default_rng(seed)
    return [(rng.integers(0, alphabet_size, length, dtype=np.uint8),
             rng.integers(0, alphabet_size, length, dtype=np.uint8))
            for _ in range(n_pairs)]


def _best_of(repeats: int, fn) -> float:
    """Minimum wall time of ``repeats`` calls (classic best-of timing:
    the minimum is the least noise-polluted sample)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def collect(quick: bool = True, repeats: int = 3) -> dict:
    """Run the micro-benchmark suite and return one history record.

    Quick mode (the CI default) runs only the vector-kernel
    micro-benchmarks; full mode adds engine-level scalar-vs-vector
    comparisons. Inputs are seeded, so two runs measure identical work.
    """
    from repro.algorithms.affine import AffineGapPenalties
    from repro.config import dna_gap_config, protein_config
    from repro.exec import kernels
    from repro.exec.buckets import bucketize

    n_pairs, length = (16, 192) if quick else (32, 256)
    dna = dna_gap_config()
    protein = protein_config()
    dna_pairs = _bench_pairs(n_pairs, length, 4)
    protein_pairs = _bench_pairs(n_pairs, length, 20, seed=11)
    [dna_bucket] = list(bucketize(dna_pairs, 16))
    [protein_bucket] = list(bucketize(protein_pairs, 16))
    linear_cells = n_pairs * length * length
    metrics: dict[str, float] = {}

    t = _best_of(repeats, lambda: kernels.sweep_linear(
        dna_bucket, dna.model, "global", keep=False))
    metrics["kernel.linear.dna.cups"] = linear_cells / t

    t_wide = _best_of(repeats, lambda: kernels.sweep_linear(
        dna_bucket, dna.model, "global", keep=False, force_wide=True))
    metrics["kernel.linear.narrow.speedup"] = t_wide / t

    t = _best_of(repeats, lambda: kernels.sweep_linear(
        protein_bucket, protein.model, "global", keep=False))
    metrics["kernel.linear.protein.cups"] = linear_cells / t

    penalties = AffineGapPenalties(open=-6, extend=-1)
    t = _best_of(repeats, lambda: kernels.sweep_affine(
        dna_bucket, dna.model, penalties, keep=False))
    metrics["kernel.affine.dna.cups"] = 3 * linear_cells / t

    _, banded_cells, _ = kernels.sweep_banded(
        dna_bucket, dna.model, 16, None, keep=False)
    t = _best_of(repeats, lambda: kernels.sweep_banded(
        dna_bucket, dna.model, 16, None, keep=False))
    metrics["kernel.banded.dna.cups"] = int(np.sum(banded_cells)) / t

    _, xdrop_cells, _, _ = kernels.sweep_xdrop(
        dna_bucket, dna.model, 50, None, keep=False)
    t = _best_of(repeats, lambda: kernels.sweep_xdrop(
        dna_bucket, dna.model, 50, None, keep=False))
    metrics["kernel.xdrop.dna.cups"] = int(np.sum(xdrop_cells)) / t

    # The adaptive planner only pays for itself on long reads, so its
    # suite keeps a fixed long-read shape in both modes -- the history
    # series stays comparable with the full-size bench_adaptive runs.
    metrics.update(_collect_adaptive(repeats, 16 if quick else 32, 1024))
    # The bit-parallel series keeps one fixed shape in *both* modes:
    # its speedup over the wavefront engine grows with the batch size
    # (packed uint64 lanes amortize the per-column dispatch), so mixing
    # batch sizes would make the history series incomparable with the
    # full-size bench_bitparallel records the gate medians over.
    metrics.update(_collect_bitparallel(repeats))

    if not quick:
        metrics.update(_collect_engine(repeats))

    return {"created": _now(), "git_sha": _git_sha(), "quick": quick,
            "params": {"pairs": n_pairs, "length": length,
                       "repeats": repeats},
            "metrics": metrics}


def _mutated_pairs(config, n_pairs: int, length: int, error: float,
                   seed: int = 13) -> list:
    """High-identity (query, reference) pairs, the adaptive planner's
    sweet spot (a ~(1 - error) identity long-read verification batch)."""
    from repro.workloads.synthetic import ErrorProfile, mutate

    rng = np.random.default_rng(seed)
    profile = ErrorProfile(substitution=0.5 * error,
                           insertion=0.25 * error,
                           deletion=0.25 * error)
    pairs = []
    for _ in range(n_pairs):
        reference = config.alphabet.random(length, rng)
        query, _ = mutate(reference, profile, config.alphabet, rng)
        pairs.append((query, reference))
    return pairs


def _collect_adaptive(repeats: int, n_pairs: int,
                      length: int) -> dict[str, float]:
    """Adaptive planner suite: ``engine="auto"`` against the fixed
    full-vector engine on a 95%-identity batch (ratio metrics, so the
    CI gate covers the planner's speedup on every run)."""
    from repro.config import dna_edit_config
    from repro.exec.buckets import bucketize
    from repro.exec.engine import BatchConfig, BatchEngine
    from repro.exec.wavefront import sweep_wavefront

    config = dna_edit_config()
    pairs = _mutated_pairs(config, n_pairs, length, error=0.05)

    def run(engine: str) -> float:
        batch = BatchConfig(engine=engine, traceback=False)
        return _best_of(repeats,
                        lambda: BatchEngine(config, batch).run(pairs))

    t_auto = run("auto")
    t_vector = run("vector")
    buckets = list(bucketize(pairs, 2 * length))
    cells = sum(int(np.sum(sweep_wavefront(b, config.model).cells))
                for b in buckets)
    t = _best_of(repeats, lambda: [sweep_wavefront(b, config.model)
                                   for b in buckets])
    return {
        "engine.adaptive.identity95.speedup": t_vector / t_auto,
        "kernel.wavefront.dna.cups": cells / t,
    }


def _collect_bitparallel(repeats: int, n_pairs: int = 64,
                         length: int = 1024) -> dict[str, float]:
    """Bit-parallel Myers suite on one fixed long-read shape.

    The kernel CUPS series uses the 95%-identity long-read batch (the
    same generator behind ``kernel.wavefront.dna.cups``, one dense
    bucket), so the two series answer "same batch, which kernel"
    directly. The engine speedup uses uniformly random equal-length
    pairs instead: that is the divergence regime the planner routes to
    bit-parallel, where the wavefront's O(d^2) frontier is at its
    worst and the uint64 lanes stay fully packed in a single bucket.
    Both shapes match ``benchmarks/bench_bitparallel.py`` exactly so
    the history forms one comparable series.
    """
    from repro.config import dna_edit_config
    from repro.exec.bitparallel import sweep_bitparallel
    from repro.exec.buckets import bucketize
    from repro.exec.engine import BatchConfig, BatchEngine

    config = dna_edit_config()
    identity_pairs = _mutated_pairs(config, n_pairs, length, error=0.05)
    buckets = list(bucketize(identity_pairs, 2 * length))
    cells = sum(len(q) * len(r) for q, r in identity_pairs)
    t_kernel = _best_of(repeats, lambda: [sweep_bitparallel(b)
                                          for b in buckets])

    random_pairs = _bench_pairs(n_pairs, length, 4, seed=29)

    def run(engine: str) -> float:
        batch = BatchConfig(engine=engine, traceback=False)
        return _best_of(repeats,
                        lambda: BatchEngine(config, batch).run(
                            random_pairs))

    t_bitparallel = run("bitparallel")
    t_wavefront = run("wavefront")
    return {
        "kernel.bitparallel.dna.cups": cells / t_kernel,
        "engine.bitparallel.vs_wavefront.speedup":
            t_wavefront / t_bitparallel,
    }


def _collect_engine(repeats: int) -> dict[str, float]:
    """Engine-level scalar-vs-vector comparison (full mode only)."""
    from repro.config import dna_gap_config
    from repro.exec.engine import BatchConfig, BatchEngine

    config = dna_gap_config()
    pairs = _bench_pairs(64, 256, 4, seed=23)

    def run(engine: str) -> float:
        batch = BatchConfig(engine=engine, traceback=False)
        return _best_of(repeats,
                        lambda: BatchEngine(config, batch).run(pairs))

    t_vector = run("vector")
    t_scalar = run("scalar")
    return {"engine.score.vector.pairs_per_sec": len(pairs) / t_vector,
            "engine.score.speedup": t_scalar / t_vector}


# ----------------------------------------------------------------------
# History file
# ----------------------------------------------------------------------

def load_history(path: str) -> dict:
    """Load (or initialise) a benchmark-history file.

    Raises:
        ValueError: the file exists but is not a benchmark history.
    """
    if not os.path.exists(path):
        return {"schema": HISTORY_SCHEMA, "records": []}
    with open(path, encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc.msg})") \
                from None
    schema = data.get("schema") if isinstance(data, dict) else None
    if not isinstance(schema, str) or \
            not schema.startswith("smx-bench-history/"):
        raise ValueError(f"{path}: not a benchmark history "
                         f"(schema={schema!r})")
    data.setdefault("records", [])
    return data


def save_history(path: str, history: dict) -> str:
    """Atomically write a history dict back to disk."""
    from repro.core.atomicio import atomic_write_json
    return atomic_write_json(path, history, indent=1, sort_keys=True)


def append_record(path: str, record: dict) -> dict:
    """Append one record to the history at ``path`` (created if new)."""
    history = load_history(path)
    history["records"].append(record)
    save_history(path, history)
    return history


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------

def check(record: dict, history: dict,
          tolerance: float = DEFAULT_TOLERANCE,
          window: int = DEFAULT_WINDOW,
          relative_only: bool = False) -> list[dict]:
    """Gate a fresh record against the trailing history.

    For every metric in ``record`` the baseline is the **median of its
    last ``window`` historical values**; the metric regresses when it
    falls below ``(1 - tolerance) * baseline``. (All tracked metrics
    are higher-is-better throughputs or speedups.) Metrics with no
    history report ``status="new"``.

    With ``relative_only`` only machine-portable ratio metrics
    (:func:`is_relative`) are gated -- the right setting for shared CI
    runners whose absolute throughput varies wildly.
    """
    records = history.get("records", [])
    results = []
    for metric in sorted(record.get("metrics", {})):
        if relative_only and not is_relative(metric):
            continue
        value = float(record["metrics"][metric])
        trail = [float(r["metrics"][metric]) for r in records
                 if isinstance(r.get("metrics"), dict)
                 and metric in r["metrics"]][-window:]
        if not trail:
            results.append({"metric": metric, "value": value,
                            "baseline": None, "ratio": None,
                            "threshold": None, "status": "new"})
            continue
        baseline = statistics.median(trail)
        ratio = value / baseline if baseline else float("inf")
        threshold = (1.0 - tolerance) * baseline
        status = "regression" if value < threshold else "ok"
        results.append({"metric": metric, "value": value,
                        "baseline": baseline, "ratio": ratio,
                        "threshold": threshold, "status": status})
    return results


def format_check(results: list[dict]) -> str:
    """Terminal table for a :func:`check` result list."""
    if not results:
        return "(no metrics to check)"
    width = max(len(row["metric"]) for row in results)
    lines = [f"{'metric':<{width}}  {'value':>14} {'baseline':>14} "
             f"{'ratio':>7}  status"]
    for row in results:
        baseline = (f"{row['baseline']:>14.3g}"
                    if row["baseline"] is not None else f"{'-':>14}")
        ratio = (f"{row['ratio']:>7.3f}"
                 if row["ratio"] is not None else f"{'-':>7}")
        lines.append(f"{row['metric']:<{width}}  {row['value']:>14.3g} "
                     f"{baseline} {ratio}  {row['status']}")
    return "\n".join(lines)


def format_regressions(results: list[dict]) -> str:
    """One explanatory line per regressed metric: what it measured,
    what the trailing-median baseline was, and the threshold it fell
    below -- so a CI failure names the culprit without the reader
    re-deriving the gate arithmetic."""
    lines = []
    for row in results:
        if row.get("status") != "regression":
            continue
        lines.append(
            f"regressed: {row['metric']} = {row['value']:.4g} "
            f"(baseline median {row['baseline']:.4g}, "
            f"threshold {row['threshold']:.4g}; "
            f"{(1.0 - row['ratio']) * 100.0:.1f}% below baseline)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Seeding from existing run reports
# ----------------------------------------------------------------------

def record_from_run_reports(paths: list[str]) -> dict:
    """Distil ``smx-run-report/1`` files into one history record.

    ``bench_batch_engine`` timing rows become
    ``engine.<name>.pairs_per_sec`` metrics plus ``engine.<config>-
    <mode>.speedup`` ratios; ``table3_gcups`` SMX rows become
    ``table3.<config>.gcups``. Unknown payload shapes are skipped, not
    fatal, so the ingest stays usable as reports evolve.
    """
    metrics: dict[str, float] = {}
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
        if not isinstance(report, dict):
            continue
        by_engine: dict[tuple[str, str], float] = {}
        for row in report.get("timings") or []:
            name = row.get("name")
            rate = row.get("pairs_per_sec")
            if not name or not isinstance(rate, (int, float)):
                continue
            metrics[f"engine.{name}.pairs_per_sec"] = float(rate)
            engine = row.get("engine")
            config_mode = (row.get("config"), row.get("mode"))
            if engine in ("scalar", "vector") and all(config_mode):
                by_engine[(f"{config_mode[0]}-{config_mode[1]}",
                           engine)] = float(rate)
        for (label, engine), rate in by_engine.items():
            scalar = by_engine.get((label, "scalar"))
            if engine == "vector" and scalar:
                metrics[f"engine.{label}.speedup"] = rate / scalar
        entries = (report.get("tables") or {}).get("entries") or []
        for entry in entries:
            name = entry.get("name", "")
            gcups = entry.get("peak_gcups_per_pu")
            if name.startswith("SMX ") and \
                    isinstance(gcups, (int, float)):
                slug = name[4:].lower().replace(" ", "-")
                metrics[f"table3.{slug}.gcups"] = float(gcups)
    return {"created": _now(), "git_sha": _git_sha(), "quick": False,
            "params": {"ingested": [os.path.basename(p) for p in paths]},
            "metrics": metrics}
