"""Live batch telemetry: a structured JSONL event stream.

Long supervised runs were previously silent until they returned; this
module gives them a heartbeat. Instrumented layers emit typed events --
``batch_start`` / ``progress`` / ``batch_end`` from the batch engine,
``run_start`` / ``shard_start`` / ``shard_done`` / ``fault`` /
``retry`` / ``bisect`` / ``degrade`` / ``quarantine`` / ``heartbeat`` /
``run_end`` from the supervised engine -- into an
:class:`EventStream`, which fans them out to

- an optional **JSONL sink** (one JSON object per line, flushed per
  event, so ``tail -f`` and ``repro top`` can watch a live run),
- in-process **subscribers** (the CLI's ``--progress`` renderer),
- a bounded in-memory ring (for tests and post-hoc inspection).

Every event carries ``schema``-free flat fields plus the envelope::

    {"seq": 12, "t": 0.532, "kind": "progress", "done": 96, ...}

``seq`` is a monotone per-stream sequence number and ``t`` the
monotonic seconds since the stream was created, so event files are
self-ordering even across interleaved writers. The stream header (the
first line a sink receives) is a ``stream_start`` event carrying the
schema tag :data:`SCHEMA`.

Disabled mode: :data:`NULL_EVENTS` drops everything; emitting costs one
attribute lookup and an early return, so hot loops can call ``emit``
unconditionally (they still gate on ``events.enabled`` where even
building the field dict would be measurable).
"""

from __future__ import annotations

import contextlib
import json
import time
from collections import deque

#: Schema tag written by the ``stream_start`` header event.
SCHEMA = "smx-events/1"

#: Event kinds the library emits (consumers must tolerate unknown ones).
KINDS = ("stream_start", "batch_start", "progress", "batch_end",
         "run_start", "shard_start", "shard_done", "unit_done", "fault",
         "retry", "bisect", "degrade", "quarantine", "heartbeat",
         "run_end", "plan", "shed", "checkpoint", "job_pending",
         "job_start", "job_rejected", "job_done", "job_failed",
         "queue", "alert")


class EventStream:
    """Collects and fans out structured telemetry events.

    Args:
        sink: Optional writable text file object; each event is written
            as one JSON line and flushed immediately.
        max_events: Size of the in-memory ring buffer (older events are
            dropped from memory, never from the sink).
    """

    enabled = True

    def __init__(self, sink=None, max_events: int = 10_000) -> None:
        self._sink = sink
        self._subscribers: list = []
        self.events: deque[dict] = deque(maxlen=max_events)
        self._seq = 0
        self._epoch = time.monotonic()
        self.emit("stream_start", schema=SCHEMA,
                  wall_time=round(time.time(), 3))

    def subscribe(self, callback) -> None:
        """Register ``callback(event_dict)`` for every future event."""
        self._subscribers.append(callback)

    def emit(self, kind: str, **fields) -> dict:
        """Record one event; returns the complete event dict."""
        self._seq += 1
        event = {"seq": self._seq,
                 "t": round(time.monotonic() - self._epoch, 6),
                 "kind": kind}
        event.update(fields)
        self.events.append(event)
        if self._sink is not None:
            self._sink.write(json.dumps(event, default=str) + "\n")
            self._sink.flush()
        for callback in self._subscribers:
            callback(event)
        return event

    def close(self) -> None:
        """Flush and close the sink (if the stream owns one)."""
        if self._sink is not None:
            with contextlib.suppress(ValueError, OSError):
                self._sink.flush()
            self._sink = None

    def of_kind(self, kind: str) -> list[dict]:
        """In-memory events of one kind, in emission order."""
        return [event for event in self.events if event["kind"] == kind]

    def last(self, kind: str) -> dict | None:
        """Most recent in-memory event of one kind, or None."""
        for event in reversed(self.events):
            if event["kind"] == kind:
                return event
        return None


class NullEventStream(EventStream):
    """Disabled stream: drops every event."""

    enabled = False

    def __init__(self) -> None:
        self.events = deque(maxlen=0)
        self._sink = None
        self._subscribers = []
        self._seq = 0
        self._epoch = 0.0

    def emit(self, kind: str, **fields) -> dict:
        return {}

    def subscribe(self, callback) -> None:
        pass


#: Shared disabled stream -- the library-wide default.
NULL_EVENTS = NullEventStream()


class JsonlEventStream(EventStream):
    """An :class:`EventStream` that owns a JSONL file it opened."""

    def __init__(self, path: str, max_events: int = 10_000) -> None:
        self._handle = open(path, "w", encoding="utf-8")
        super().__init__(sink=self._handle, max_events=max_events)

    def close(self) -> None:
        super().close()
        with contextlib.suppress(OSError):
            self._handle.close()


def open_jsonl(path: str, max_events: int = 10_000) -> JsonlEventStream:
    """An event stream appending JSON lines to ``path`` (truncates)."""
    return JsonlEventStream(path, max_events=max_events)


def load_events(path: str, strict: bool = False,
                ) -> tuple[list[dict], int]:
    """Load an events file; blank lines are skipped.

    A live run's file usually ends in a partially written line (the
    writer is mid-``write`` or the reader raced the flush), so by
    default a *final* line that fails to parse is skipped and counted
    instead of raised; returns ``(events, skipped)``. Malformed lines
    *before* the last one mean real corruption and always raise.
    ``strict=True`` raises on any malformed line, final or not.

    Raises:
        OSError: the file cannot be read.
        ValueError: a malformed line (see above).
    """
    events: list[dict] = []
    bad: list[tuple[int, str]] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
                if not isinstance(event, dict):
                    raise ValueError("event is not a JSON object")
            except (json.JSONDecodeError, ValueError) as exc:
                message = getattr(exc, "msg", None) or str(exc)
                bad.append((lineno, message))
                continue
            if bad:
                # A malformed line *followed by* a good one is not a
                # truncated tail -- the file is corrupt.
                lineno, message = bad[0]
                raise ValueError(
                    f"{path}:{lineno}: not a JSON event line "
                    f"({message})")
            events.append(event)
    if bad and (strict or len(bad) > 1):
        # Only a single unparsable *final* line reads as a truncated
        # tail; anything more is corruption even in tolerant mode.
        lineno, message = bad[0]
        raise ValueError(
            f"{path}:{lineno}: not a JSON event line ({message})")
    return events, len(bad)


def read_jsonl(path: str, strict: bool = False) -> list[dict]:
    """:func:`load_events` without the skipped-line count."""
    return load_events(path, strict=strict)[0]


def summarize(events: list[dict]) -> dict:
    """Digest an event list into the ``repro top`` dashboard fields.

    Tolerates unknown kinds, partial files (a live run's tail) and
    streams from older/newer schema revisions.
    """
    by_kind: dict[str, int] = {}
    for event in events:
        kind = str(event.get("kind", "?"))
        by_kind[kind] = by_kind.get(kind, 0) + 1

    def last(kind: str) -> dict | None:
        for event in reversed(events):
            if event.get("kind") == kind:
                return event
        return None

    progress = last("progress")
    heartbeat = last("heartbeat")
    quarantines = [e for e in events if e.get("kind") == "quarantine"]
    return {
        "events": len(events),
        "by_kind": dict(sorted(by_kind.items())),
        "duration_s": float(events[-1].get("t", 0.0)) if events else 0.0,
        "schema": next((e.get("schema") for e in events
                        if e.get("kind") == "stream_start"), None),
        "progress": progress,
        "heartbeat": heartbeat,
        "quarantines": quarantines,
        "run_start": last("run_start") or last("batch_start"),
        "run_end": last("run_end") or last("batch_end"),
    }
