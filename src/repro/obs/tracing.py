"""Span tracing in simulated cycles, exported as Chrome trace events.

The SMX-2D simulation is a discrete-event model, so every interesting
interval -- a job on a worker, a supertile's load/compute/store phase,
an engine issue slot -- has exact start/end times *in simulated
cycles*. This module records those intervals as spans and serializes
them in the Chrome trace-event format (the ``traceEvents`` JSON that
Perfetto and ``chrome://tracing`` load), mapping **1 simulated cycle to
1 trace microsecond** so a coprocessor run renders as a real timeline.

Host-side (wall-clock) work can be recorded too, on its own process
track, via the :meth:`Tracer.host_span` context manager.

Tracks: a span lives on a ``(process, thread)`` track obtained from
:meth:`Tracer.track`; process/thread *names* are mapped to stable
integer pids/tids and emitted as metadata events so the UI shows the
names.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field

#: Trace category names used by the instrumented layers.
CAT_SIM = "sim"
CAT_ENGINE = "engine"
CAT_MEMORY = "memory"
CAT_JOB = "job"
CAT_HOST = "host"

#: Keys every exported duration event carries.
REQUIRED_EVENT_KEYS = ("ph", "ts", "dur", "name", "pid", "tid")


@dataclass(frozen=True)
class Track:
    """One timeline row: a (process, thread) id pair."""

    pid: int
    tid: int


@dataclass
class TraceEvent:
    """One complete ("X") duration event."""

    name: str
    cat: str
    ts: float
    dur: float
    pid: int
    tid: int
    args: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        event = {"name": self.name, "cat": self.cat, "ph": "X",
                 "ts": self.ts, "dur": self.dur, "pid": self.pid,
                 "tid": self.tid}
        if self.args:
            event["args"] = self.args
        return event


class Tracer:
    """Collects spans and exports Chrome trace-event JSON.

    Args:
        max_events: Hard cap on recorded spans; once reached, further
            spans are counted in :attr:`dropped_events` instead of
            stored, so tracing a huge run degrades gracefully rather
            than exhausting memory.
    """

    enabled = True

    def __init__(self, max_events: int = 1_000_000) -> None:
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.dropped_events = 0
        self._pids: dict[str, int] = {}
        self._tids: dict[tuple[str, str], int] = {}
        self._tracks: dict[tuple[str, str], Track] = {}
        self._epoch = time.perf_counter()

    # -- tracks -------------------------------------------------------------

    def track(self, process: str, thread: str) -> Track:
        """The (stable) track for a process/thread name pair."""
        key = (process, thread)
        existing = self._tracks.get(key)
        if existing is not None:
            return existing
        pid = self._pids.setdefault(process, len(self._pids) + 1)
        tid = self._tids.setdefault(key, len(self._tids) + 1)
        track = Track(pid=pid, tid=tid)
        self._tracks[key] = track
        return track

    def now_us(self) -> float:
        """Current timestamp on this tracer's timeline (microseconds
        since the tracer was created)."""
        return (time.perf_counter() - self._epoch) * 1e6

    # -- recording ----------------------------------------------------------

    def complete(self, name: str, track: Track, ts: float, dur: float,
                 cat: str = CAT_SIM, **args: object) -> None:
        """Record a finished span: ``[ts, ts + dur)`` in cycles."""
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(TraceEvent(name=name, cat=cat, ts=float(ts),
                                      dur=float(dur), pid=track.pid,
                                      tid=track.tid,
                                      args=dict(args) if args else {}))

    @contextlib.contextmanager
    def host_span(self, name: str, thread: str = "main", **args: object):
        """Wall-clock span on the ``host`` process track (microseconds
        since this tracer was created)."""
        track = self.track("host", thread)
        start = (time.perf_counter() - self._epoch) * 1e6
        try:
            yield self
        finally:
            end = (time.perf_counter() - self._epoch) * 1e6
            self.complete(name, track, ts=start, dur=end - start,
                          cat=CAT_HOST, **args)

    # -- cross-process state ------------------------------------------------

    def export_spans(self, offset_us: float = 0.0) -> dict:
        """Pickle/JSON-safe spans with *resolved* track names, shifted
        by ``offset_us`` onto the receiving tracer's timeline -- the
        worker half of cross-process trace stitching (see
        :mod:`repro.obs.tracectx`)."""
        names = {(track.pid, track.tid): key
                 for key, track in self._tracks.items()}
        spans = []
        for event in self.events:
            process, thread = names.get((event.pid, event.tid),
                                        ("host", "main"))
            spans.append({"name": event.name, "cat": event.cat,
                          "ts": event.ts + offset_us, "dur": event.dur,
                          "process": process, "thread": thread,
                          "args": dict(event.args)})
        return {"spans": spans, "dropped": self.dropped_events}

    def merge_spans(self, state: dict | None,
                    process_map: dict[str, str] | None = None,
                    **extra_args: object) -> None:
        """Fold a worker's :meth:`export_spans` into this tracer.

        ``process_map`` renames worker process tracks on the way in
        (the worker's own ``host`` track becomes its shard/unit label);
        ``extra_args`` are stamped onto every merged span (run_id).
        """
        if not state:
            return
        for span in state.get("spans") or []:
            process = span.get("process", "host")
            if process_map:
                process = process_map.get(process, process)
            track = self.track(process, span.get("thread", "main"))
            args = dict(span.get("args") or {})
            if extra_args:
                args.update(extra_args)
            self.complete(span["name"], track, ts=span["ts"],
                          dur=span["dur"], cat=span.get("cat", CAT_HOST),
                          **args)
        self.dropped_events += int(state.get("dropped", 0))

    # -- export -------------------------------------------------------------

    def to_chrome(self) -> dict:
        """The Chrome trace-event document (a JSON-serializable dict).

        Events are sorted by start time (ties: longer span first) so
        timestamps are monotone and nested spans appear inside their
        parent, as the trace viewers expect.
        """
        events: list[dict] = []
        for (process, thread), track in sorted(self._tracks.items(),
                                               key=lambda kv: (kv[1].pid,
                                                               kv[1].tid)):
            events.append({"name": "process_name", "ph": "M", "ts": 0,
                           "pid": track.pid, "tid": track.tid,
                           "args": {"name": process}})
            events.append({"name": "thread_name", "ph": "M", "ts": 0,
                           "pid": track.pid, "tid": track.tid,
                           "args": {"name": thread}})
        spans = sorted(self.events, key=lambda e: (e.ts, -e.dur))
        events.extend(event.to_json() for event in spans)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "1 simulated cycle = 1 us",
                "dropped_events": self.dropped_events,
            },
        }

    def write(self, path: str) -> str:
        """Atomically write the trace JSON to ``path``."""
        from repro.core.atomicio import atomic_write_json
        return atomic_write_json(path, self.to_chrome(), indent=None)


class NullTracer(Tracer):
    """Disabled tracer: records nothing, exports an empty trace."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(max_events=0)
        self._null_track = Track(pid=0, tid=0)

    def track(self, process: str, thread: str) -> Track:
        return self._null_track

    def complete(self, name: str, track: Track, ts: float, dur: float,
                 cat: str = CAT_SIM, **args: object) -> None:
        pass

    @contextlib.contextmanager
    def host_span(self, name: str, thread: str = "main", **args: object):
        yield self

    def export_spans(self, offset_us: float = 0.0) -> dict:
        return {"spans": [], "dropped": 0}

    def merge_spans(self, state: dict | None,
                    process_map: dict[str, str] | None = None,
                    **extra_args: object) -> None:
        pass


#: Shared disabled tracer -- the library-wide default.
NULL_TRACER = NullTracer()
