"""Fleet telemetry: a fixed-interval ring of windowed metric windows.

Every observability surface before this module was point-in-time: a
metrics snapshot, a latency digest, an SLO report -- one number per
run. A *fleet* needs retained history: per-tenant throughput and tail
latency **over time**, so the capacity planner has a signal to size
from and the anomaly detector has a baseline to compare against.

:class:`TimeSeriesStore` samples a
:class:`~repro.obs.metrics.MetricsRegistry` on a fixed interval grid
(the daemon calls :meth:`~TimeSeriesStore.tick` every loop; the store
decides when a window boundary was crossed) and seals one
:class:`Window` per elapsed interval:

- **counters** become *deltas* over the window (and therefore rates:
  ``delta / interval``);
- **gauges** keep their last-observed value;
- **distributions** carry the window's own
  :class:`~repro.obs.digest.LatencyDigest` -- drained from the
  registry's per-distribution window accumulator, so a window's
  p50/p90/p99 cover exactly the samples observed (or merged in from
  workers) inside that window, and merging windows during
  downsampling stays **exact and order-invariant** (digest bucket
  counts are integers that simply add).

Retention is two-tier: the newest ``retention`` windows stay at full
resolution; older windows are downsampled ``coarse_factor``-to-one
into a second ring of ``coarse_retention`` merged windows (counters
add, digests merge exactly, gauges keep the latest value), so an
hour of 1 s windows costs the memory of minutes.

Determinism: the store never reads a wall clock itself -- all series
math runs off the injected ``clock`` callable (default
``time.monotonic``), so tests drive window sealing with a simulated
clock and every window index is reproducible. Persistence is
write-then-rename via :mod:`repro.core.atomicio`
(``smx-timeseries/1``), so a SIGKILL'd daemon leaves the previous
complete history, never a torn file.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Iterable

from repro.core.atomicio import atomic_write_json
from repro.obs.digest import LatencyDigest
from repro.obs.metrics import MetricsRegistry, parse_metric_key

#: Schema tag of a persisted store document.
SCHEMA = "smx-timeseries/1"

#: Quantiles a window reports for each digest series.
QUANTILES = (0.5, 0.9, 0.99)


class Window:
    """One sealed sampling interval: deltas, gauges, window digests.

    Attributes:
        index: Interval number on the store's fixed grid (gaps mean
            nothing happened -- idle intervals are not materialized).
        start / end: Interval bounds in clock seconds (``end - start``
            spans ``merged`` base intervals after downsampling).
        merged: How many base windows this window absorbed (1 = fine).
        counters: Counter key -> delta observed inside the window.
        gauges: Gauge key -> last value sampled in the window.
        digests: Distribution key -> digest ``export_state`` of the
            samples observed inside the window.
    """

    __slots__ = ("index", "start", "end", "merged", "counters",
                 "gauges", "digests")

    def __init__(self, index: int, start: float, end: float, *,
                 merged: int = 1,
                 counters: dict[str, float] | None = None,
                 gauges: dict[str, float] | None = None,
                 digests: dict[str, dict] | None = None) -> None:
        self.index = int(index)
        self.start = float(start)
        self.end = float(end)
        self.merged = int(merged)
        self.counters = counters or {}
        self.gauges = gauges or {}
        self.digests = digests or {}

    @property
    def duration_s(self) -> float:
        return self.end - self.start

    def rate(self, key: str) -> float:
        """Counter delta per second over the window (0 when absent)."""
        duration = self.duration_s
        if duration <= 0:
            return 0.0
        return self.counters.get(key, 0.0) / duration

    def digest(self, key: str) -> LatencyDigest | None:
        state = self.digests.get(key)
        return LatencyDigest.from_state(state) if state else None

    def quantile(self, key: str, q: float) -> float | None:
        digest = self.digest(key)
        return digest.quantile(q) if digest is not None else None

    def percentiles(self, key: str) -> dict | None:
        """``{count, p50, p90, p99, min, max}`` for one digest series."""
        digest = self.digest(key)
        return digest.summary() if digest is not None else None

    def merge(self, other: "Window") -> None:
        """Absorb a later window (downsampling): counters add, gauges
        keep the later value, digests merge exactly (bucket counts are
        integers, so the merged percentiles are bit-identical to a
        single window observing both sample streams)."""
        if other.start < self.start:
            raise ValueError("windows must merge in time order")
        self.end = max(self.end, other.end)
        self.merged += other.merged
        for key, delta in other.counters.items():
            self.counters[key] = self.counters.get(key, 0.0) + delta
        self.gauges.update(other.gauges)
        for key, state in other.digests.items():
            mine = self.digests.get(key)
            if mine is None:
                self.digests[key] = dict(state)
                continue
            digest = LatencyDigest.from_state(mine)
            digest.merge_state(state)
            self.digests[key] = digest.export_state()

    def to_dict(self) -> dict:
        return {"index": self.index, "start": self.start,
                "end": self.end, "merged": self.merged,
                "counters": dict(sorted(self.counters.items())),
                "gauges": dict(sorted(self.gauges.items())),
                "digests": {k: self.digests[k]
                            for k in sorted(self.digests)}}

    @classmethod
    def from_dict(cls, document: dict) -> "Window":
        return cls(index=int(document["index"]),
                   start=float(document["start"]),
                   end=float(document["end"]),
                   merged=int(document.get("merged", 1)),
                   counters={str(k): float(v) for k, v in
                             (document.get("counters") or {}).items()},
                   gauges={str(k): float(v) for k, v in
                           (document.get("gauges") or {}).items()},
                   digests={str(k): dict(v) for k, v in
                            (document.get("digests") or {}).items()})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Window(index={self.index}, merged={self.merged}, "
                f"counters={len(self.counters)}, "
                f"digests={len(self.digests)})")


class TimeSeriesStore:
    """Fixed-interval windowed history of one metrics registry.

    Args:
        interval_s: Base window length in (injected-clock) seconds.
        retention: Fine windows kept at full resolution.
        coarse_factor: Fine windows merged into one coarse window when
            they age out of the fine ring (0 disables downsampling --
            aged-out windows are simply dropped).
        coarse_retention: Coarse windows kept after downsampling.
        clock: Monotonic-seconds callable; **the only time source the
            series math ever reads** (default ``time.monotonic``).
            Tests inject a simulated clock for determinism.
    """

    def __init__(self, interval_s: float = 1.0, *, retention: int = 240,
                 coarse_factor: int = 8, coarse_retention: int = 120,
                 clock: Callable[[], float] | None = None) -> None:
        if interval_s <= 0:
            raise ValueError(
                f"interval_s must be > 0, got {interval_s}")
        if retention < 1:
            raise ValueError(f"retention must be >= 1, got {retention}")
        if coarse_factor < 0:
            raise ValueError(
                f"coarse_factor must be >= 0, got {coarse_factor}")
        self.interval_s = float(interval_s)
        self.retention = int(retention)
        self.coarse_factor = int(coarse_factor)
        self.coarse_retention = int(coarse_retention)
        self._clock = clock if clock is not None else time.monotonic
        self.windows: deque[Window] = deque()
        self.coarse: deque[Window] = deque(maxlen=coarse_retention)
        self._pending_coarse: Window | None = None
        self._epoch: float | None = None
        self._open_index = 0
        self._last_counters: dict[str, float] = {}
        self.sealed_total = 0

    # -- sampling -----------------------------------------------------------

    def _boundary(self, index: int) -> float:
        assert self._epoch is not None
        return self._epoch + index * self.interval_s

    def tick(self, registry: MetricsRegistry,
             now: float | None = None) -> list[Window]:
        """Sample the registry; seal the open window when its boundary
        passed. Returns the (possibly empty) list of windows sealed by
        this call, oldest first.

        Activity is attributed to the window that was open when the
        boundary was crossed: a tick arriving several intervals late
        (the daemon was busy running a long job) seals one window
        carrying everything since the previous seal, then jumps the
        open index to the interval containing ``now`` -- idle
        intervals are never materialized.
        """
        if now is None:
            now = self._clock()
        now = float(now)
        if self._epoch is None:
            self._epoch = now
            self._last_counters = self._counter_values(registry)
            return []
        if now < self._boundary(self._open_index + 1):
            return []
        window = self._seal(registry, self._open_index)
        # Jump to the interval containing `now` (idle gap compression).
        self._open_index = max(
            self._open_index + 1,
            int((now - self._epoch) // self.interval_s))
        return [window]

    def _counter_values(self, registry: MetricsRegistry) -> dict[str, float]:
        state = registry.export_state()
        return dict(state.get("counters") or {})

    def _seal(self, registry: MetricsRegistry, index: int) -> Window:
        state = registry.export_state()
        counters = dict(state.get("counters") or {})
        deltas = {}
        for key, value in counters.items():
            delta = value - self._last_counters.get(key, 0.0)
            if delta:
                deltas[key] = delta
        self._last_counters = counters
        window = Window(
            index=index,
            start=self._boundary(index),
            end=self._boundary(index + 1),
            counters=deltas,
            gauges=dict(state.get("gauges") or {}),
            digests=registry.drain_windows())
        self._append(window)
        return window

    def _append(self, window: Window) -> None:
        self.windows.append(window)
        self.sealed_total += 1
        while len(self.windows) > self.retention:
            self._downsample(self.windows.popleft())

    def _downsample(self, aged: Window) -> None:
        if self.coarse_factor <= 0:
            return
        pending = self._pending_coarse
        if pending is None:
            self._pending_coarse = aged
        else:
            pending.merge(aged)
        pending = self._pending_coarse
        if pending is not None and pending.merged >= self.coarse_factor:
            self.coarse.append(pending)
            self._pending_coarse = None

    # -- queries ------------------------------------------------------------

    def latest(self) -> Window | None:
        """The newest sealed window, or None before the first seal."""
        return self.windows[-1] if self.windows else None

    def all_windows(self) -> list[Window]:
        """Every retained window, oldest first (coarse, then pending
        coarse accumulator, then fine)."""
        out = list(self.coarse)
        if self._pending_coarse is not None:
            out.append(self._pending_coarse)
        out.extend(self.windows)
        return out

    def series(self, key: str, field: str = "rate",
               windows: Iterable[Window] | None = None,
               ) -> list[tuple[int, float]]:
        """``(window index, value)`` points for one metric across the
        retained history.

        ``field`` selects the reading: ``"rate"`` / ``"delta"`` for
        counters, ``"gauge"`` for gauges, ``"p50"``/``"p90"``/
        ``"p99"``/``"count"`` for distribution windows. Windows
        without the key are skipped.
        """
        if field not in ("rate", "delta", "gauge",
                         "p50", "p90", "p99", "count"):
            raise ValueError(f"unknown series field {field!r}")
        points: list[tuple[int, float]] = []
        for window in (self.all_windows() if windows is None
                       else windows):
            value: float | None = None
            if field == "rate":
                if key in window.counters:
                    value = window.rate(key)
            elif field == "delta":
                value = window.counters.get(key)
            elif field == "gauge":
                value = window.gauges.get(key)
            elif field in ("p50", "p90", "p99", "count"):
                digest = window.digest(key)
                if digest is not None:
                    if field == "count":
                        value = float(digest.count)
                    else:
                        value = digest.quantile(
                            float(field[1:]) / 100.0)
            if value is not None:
                points.append((window.index, float(value)))
        return points

    def tenants(self) -> list[str]:
        """Every tenant label value seen across retained windows."""
        seen: set[str] = set()
        for window in self.all_windows():
            for mapping in (window.counters, window.gauges,
                            window.digests):
                for key in mapping:
                    _, labels = parse_metric_key(key)
                    for name, value in labels:
                        if name == "tenant":
                            seen.add(value)
        return sorted(seen)

    # -- persistence --------------------------------------------------------

    def to_document(self) -> dict:
        return {
            "schema": SCHEMA,
            "interval_s": self.interval_s,
            "retention": self.retention,
            "coarse_factor": self.coarse_factor,
            "coarse_retention": self.coarse_retention,
            "epoch": self._epoch,
            "open_index": self._open_index,
            "sealed_total": self.sealed_total,
            "last_counters": dict(sorted(self._last_counters.items())),
            "windows": [w.to_dict() for w in self.windows],
            "coarse": [w.to_dict() for w in self.coarse],
            "pending_coarse": (self._pending_coarse.to_dict()
                               if self._pending_coarse is not None
                               else None),
        }

    def save(self, path: str) -> str:
        """Atomically persist the whole retained history."""
        return atomic_write_json(path, self.to_document(), indent=None)

    @classmethod
    def from_document(cls, document: dict,
                      clock: Callable[[], float] | None = None,
                      ) -> "TimeSeriesStore":
        if not isinstance(document, dict) or \
                document.get("schema") != SCHEMA:
            raise ValueError(
                f"not an {SCHEMA} document "
                f"(schema={document.get('schema') if isinstance(document, dict) else None!r})")
        store = cls(
            interval_s=float(document.get("interval_s", 1.0)),
            retention=int(document.get("retention", 240)),
            coarse_factor=int(document.get("coarse_factor", 8)),
            coarse_retention=int(document.get("coarse_retention", 120)),
            clock=clock)
        epoch = document.get("epoch")
        store._epoch = float(epoch) if epoch is not None else None
        store._open_index = int(document.get("open_index", 0))
        store.sealed_total = int(document.get("sealed_total", 0))
        store._last_counters = {
            str(k): float(v) for k, v in
            (document.get("last_counters") or {}).items()}
        store.windows = deque(Window.from_dict(w)
                              for w in document.get("windows") or [])
        store.coarse = deque(
            (Window.from_dict(w) for w in document.get("coarse") or []),
            maxlen=store.coarse_retention)
        pending = document.get("pending_coarse")
        store._pending_coarse = (Window.from_dict(pending)
                                 if pending else None)
        return store

    @classmethod
    def load(cls, path: str,
             clock: Callable[[], float] | None = None,
             ) -> "TimeSeriesStore":
        """Restore a persisted store (``ValueError`` when malformed)."""
        import json
        with open(path, encoding="utf-8") as handle:
            try:
                document = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}: not valid JSON ({exc.msg})") from None
        return cls.from_document(document, clock=clock)
