"""Machine-readable run reports (the ``results/<exp>.json`` schema).

Every benchmark and CLI run can emit a structured report next to its
human-readable output, so perf trajectories can be built by diffing
JSON instead of scraping markdown. One schema everywhere:

.. code-block:: json

    {
      "schema": "smx-run-report/1",
      "name": "fig10_utilization",
      "created": "2026-08-06T12:34:56+00:00",
      "git_sha": "c760e2b...",          // null outside a git checkout
      "params": {"scale": 0.2, ...},    // experiment inputs
      "metrics": {"coproc.tiles_computed": 8192, ...},
      "timings": [{"name": "smx-score", "cycles": 1.2e6, ...}, ...],
      "tables": {...}                   // experiment-specific rows
    }

``metrics`` is a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
(or a diff of two); ``timings`` rows come from
:func:`timing_row` applied to :class:`~repro.sim.stats.RunTiming` /
:class:`~repro.core.system.WorkloadTiming` objects.
"""

from __future__ import annotations

import datetime
import functools
import json
import subprocess
from typing import Any, Iterable

from repro.core.atomicio import atomic_write_json

SCHEMA = "smx-run-report/1"


@functools.lru_cache(maxsize=1)
def git_sha() -> str | None:
    """The current checkout's commit hash, or None when unavailable."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True,
            text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def timing_row(timing: Any) -> dict:
    """Serialize a RunTiming / WorkloadTiming-like object to a dict.

    Duck-typed on the shared fields so both timing containers (and any
    future one with ``name``/``cycles``) serialize without this module
    importing the simulator layers.
    """
    row = {"name": timing.name}
    for attr in ("cycles", "total_cycles", "core_cycles", "cells",
                 "alignments", "frequency_ghz", "seconds", "gcups",
                 "alignments_per_second", "engine_utilization",
                 "core_busy_fraction"):
        value = getattr(timing, attr, None)
        if value is not None:
            row[attr] = value
    extra = getattr(timing, "extra", None)
    if extra:
        row["extra"] = {k: v for k, v in extra.items()
                        if isinstance(v, (int, float, str, bool))}
    return row


def run_report(name: str, *, params: dict | None = None,
               metrics: dict | None = None,
               timings: Iterable[Any] | None = None,
               tables: dict | None = None,
               extra: dict | None = None) -> dict:
    """Assemble one schema-conformant report document."""
    rows = []
    for timing in timings or ():
        rows.append(timing if isinstance(timing, dict)
                    else timing_row(timing))
    report = {
        "schema": SCHEMA,
        "name": name,
        "created": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "git_sha": git_sha(),
        "params": dict(params or {}),
        "metrics": dict(metrics or {}),
        "timings": rows,
        "tables": dict(tables or {}),
    }
    if extra:
        report.update(extra)
    return report


def write_json(document: dict, path: str) -> str:
    """Atomically serialize ``document`` to ``path`` (temp + replace)."""
    return atomic_write_json(path, document)


def load_report(path: str) -> dict:
    """Read and sanity-check a run report written by this module."""
    with open(path) as handle:
        report = json.load(handle)
    if not isinstance(report, dict) or "schema" not in report:
        raise ValueError(f"{path} is not an SMX run report (no schema key)")
    if not str(report["schema"]).startswith("smx-run-report/"):
        raise ValueError(
            f"{path} has unknown schema {report['schema']!r}")
    return report


def format_metrics(snapshot: dict, indent: str = "") -> str:
    """Pretty-print a metrics snapshot for terminal output."""
    if not snapshot:
        return f"{indent}(no metrics recorded)"
    lines = []
    width = max(len(key) for key in snapshot)
    for key in sorted(snapshot):
        value = snapshot[key]
        if isinstance(value, dict):
            rendered = (f"count={value.get('count', 0):,} "
                        f"mean={value.get('mean', 0.0):,.1f} "
                        f"min={value.get('min')} max={value.get('max')}")
            if value.get("p50") is not None:
                rendered += (f" p50={value['p50']:,.1f}"
                             f" p90={value.get('p90', 0.0):,.1f}"
                             f" p99={value.get('p99', 0.0):,.1f}")
        elif isinstance(value, float) and not value.is_integer():
            rendered = f"{value:,.2f}"
        else:
            rendered = f"{int(value):,}"
        lines.append(f"{indent}{key:<{width}}  {rendered}")
    return "\n".join(lines)
