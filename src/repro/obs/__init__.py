"""Unified observability: metrics, simulated-time tracing, logging.

Three concerns, one handle. An :class:`Observability` context bundles a
:class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.tracing.Tracer`; instrumented layers accept one as
an optional argument and default to the process-global context, which
starts *disabled* (shared no-op instruments) so the library costs
nothing unless a caller opts in::

    from repro import obs

    ctx = obs.Observability.enabled()
    sim = CoprocessorSim(params, obs=ctx)
    sim.run(jobs)
    ctx.tracer.write("trace.json")        # Perfetto-loadable
    print(ctx.metrics.snapshot())

Logging is orthogonal: ``SMX_LOG=debug`` (or ``info``/``warning``/...)
turns on stderr logging for the ``repro`` logger hierarchy;
:func:`get_logger` hands layers their named child logger.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass, field

from repro.obs.digest import LatencyDigest
from repro.obs.events import (
    EventStream,
    NULL_EVENTS,
    NullEventStream,
)
from repro.obs.metrics import (
    Counter,
    Distribution,
    Gauge,
    LabeledRegistry,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    ScopedRegistry,
)
from repro.obs.prof import (
    CostModel,
    NULL_PROFILER,
    NullProfiler,
    PairCost,
    Profiler,
)
from repro.obs.tracectx import TraceContext, child_context, new_run_id
from repro.obs.tracing import (
    CAT_ENGINE,
    CAT_HOST,
    CAT_JOB,
    CAT_MEMORY,
    CAT_SIM,
    NULL_TRACER,
    NullTracer,
    Tracer,
    Track,
)
from repro.obs import reports

__all__ = [
    "Observability", "get_obs", "set_obs", "configure_logging",
    "get_logger", "MetricsRegistry", "NullRegistry", "ScopedRegistry",
    "LabeledRegistry",
    "Counter", "Gauge", "Distribution", "LatencyDigest", "Tracer",
    "NullTracer", "Track", "TraceContext", "child_context", "new_run_id",
    "Profiler", "NullProfiler", "CostModel", "PairCost", "EventStream",
    "NullEventStream", "reports", "CAT_SIM", "CAT_ENGINE", "CAT_MEMORY",
    "CAT_JOB", "CAT_HOST",
]

_LOG_LEVELS = {"debug": logging.DEBUG, "info": logging.INFO,
               "warning": logging.WARNING, "error": logging.ERROR,
               "critical": logging.CRITICAL, "off": logging.CRITICAL + 10}


@dataclass
class Observability:
    """One run's observability context: metrics, tracing, profiling,
    and the live event stream."""

    metrics: MetricsRegistry = field(default_factory=lambda: NULL_REGISTRY)
    tracer: Tracer = field(default_factory=lambda: NULL_TRACER)
    profiler: Profiler = field(default_factory=lambda: NULL_PROFILER)
    events: EventStream = field(default_factory=lambda: NULL_EVENTS)

    @property
    def enabled(self) -> bool:
        return (self.metrics.enabled or self.tracer.enabled
                or self.profiler.enabled or self.events.enabled)

    @classmethod
    def enabled_context(cls, max_trace_events: int = 1_000_000,
                        profile: bool = False,
                        events: EventStream | None = None,
                        ) -> "Observability":
        """A fresh, fully enabled context (live registry + tracer).

        ``profile=True`` also attaches a work-unit
        :class:`~repro.obs.prof.Profiler` (mirroring its phase stack
        into the tracer); pass an :class:`EventStream` as ``events``
        to collect live telemetry.
        """
        tracer = Tracer(max_events=max_trace_events)
        profiler = Profiler(tracer=tracer) if profile else NULL_PROFILER
        return cls(metrics=MetricsRegistry(), tracer=tracer,
                   profiler=profiler, events=events or NULL_EVENTS)

    # Short aliases used throughout the codebase.
    enabled_ctx = enabled_context

    @classmethod
    def disabled(cls) -> "Observability":
        """The shared no-op context."""
        return _DISABLED

    # -- cross-process transfer ---------------------------------------------

    @property
    def collecting(self) -> bool:
        """Whether worker processes should collect state on our behalf."""
        return (self.metrics.enabled or self.profiler.enabled
                or self.tracer.enabled)

    @classmethod
    def collector(cls, trace: TraceContext | None = None,
                  ) -> "Observability":
        """A worker-side context paired with :meth:`merge_state`: live
        metrics + profiler, no events (those stay parent-side).

        With a :class:`~repro.obs.tracectx.TraceContext`, the worker
        also gets a tracer (the profiler mirrors its phase stack into
        it) whose spans export pre-shifted onto the parent timeline, so
        the parent's :meth:`merge_state` stitches them into one trace.
        """
        if trace is None:
            return cls(metrics=MetricsRegistry(), profiler=Profiler())
        tracer = Tracer()
        ctx = cls(metrics=MetricsRegistry(), tracer=tracer,
                  profiler=Profiler(tracer=tracer))
        ctx._trace_ctx = trace
        ctx._trace_offset_us = trace.offset_us()
        return ctx

    def export_state(self) -> dict:
        """Pickle-safe snapshot of metrics + profile (+ trace, for
        collectors created with a trace context) for the parent."""
        state = {"metrics": self.metrics.export_state(),
                 "profile": self.profiler.export_state()}
        trace_ctx = getattr(self, "_trace_ctx", None)
        if trace_ctx is not None and self.tracer.enabled:
            trace = self.tracer.export_spans(
                offset_us=getattr(self, "_trace_offset_us", 0.0))
            trace["context"] = trace_ctx.to_dict()
            state["trace"] = trace
        return state

    def merge_state(self, state: dict | None,
                    extra_labels: dict[str, object] | None = None) -> None:
        """Fold a worker context's :meth:`export_state` into this one.

        ``extra_labels`` relabel every merged metric key that does not
        already carry them (tenant attribution of worker state)."""
        if not state:
            return
        self.metrics.merge_state(state.get("metrics") or {},
                                 extra_labels=extra_labels)
        self.profiler.merge_state(state.get("profile") or {})
        trace = state.get("trace")
        if trace and self.tracer.enabled:
            context = trace.get("context") or {}
            worker = context.get("worker") or "worker"
            extra = {}
            if context.get("run_id"):
                extra["run_id"] = context["run_id"]
            self.tracer.merge_spans(trace, process_map={"host": worker},
                                    **extra)


_DISABLED = Observability()
_current: Observability = _DISABLED


def get_obs() -> Observability:
    """The process-global observability context (disabled by default)."""
    return _current


def set_obs(obs: Observability | None) -> Observability:
    """Install ``obs`` as the global context; returns the previous one
    so callers (fixtures, CLI) can restore it."""
    global _current
    previous = _current
    _current = obs if obs is not None else _DISABLED
    return previous


def get_logger(name: str) -> logging.Logger:
    """A child of the ``repro`` logger hierarchy (``repro.<name>``)."""
    return logging.getLogger(f"repro.{name}")


def configure_logging(level: str | int | None = None,
                      stream=None) -> logging.Logger:
    """Configure the ``repro`` logger from ``level`` or ``SMX_LOG``.

    With no level and no ``SMX_LOG`` in the environment, logging stays
    off (a ``NullHandler`` keeps the hierarchy silent). Returns the
    root ``repro`` logger either way. Repeated calls reconfigure
    instead of stacking handlers.
    """
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    if level is None:
        level = os.environ.get("SMX_LOG")
    if level is None:
        logger.addHandler(logging.NullHandler())
        logger.setLevel(logging.NOTSET)
        logger.propagate = True
        return logger
    if isinstance(level, str):
        resolved = _LOG_LEVELS.get(level.lower())
        if resolved is None:
            try:
                resolved = int(level)
            except ValueError:
                raise ValueError(
                    f"unknown SMX_LOG level {level!r}; expected one of "
                    f"{sorted(_LOG_LEVELS)} or a numeric level") from None
        level = resolved
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter(
        "[%(levelname)s] %(name)s: %(message)s"))
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger
