"""Deterministic work-unit profiler: where time, cells and bytes go.

The metrics registry answers *how much* happened; this module answers
*where*. A :class:`Profiler` maintains a per-thread **phase stack**
(``exec.vector -> bucket[512x512] -> linear.global[int32]``) and
attributes four units to the innermost open phase:

- ``wall_s``   -- host wall-clock self time of the phase,
- ``cycles``   -- simulated cycles (from the discrete-event models),
- ``cells``    -- DP cell updates (the paper's universal work unit),
- ``bytes_moved`` -- modeled memory traffic of those updates.

Cells and bytes are *deterministic*: the instrumented layers compute
them from sequence lengths and dtype widths, never from sampling, so
two runs of the same batch produce identical totals and the profiler's
cell counts reconcile exactly with the ``exec.cells`` metric counters.

Exports: :meth:`Profiler.collapsed` emits folded-stack flamegraph text
(``a;b;c 123`` -- feed to ``flamegraph.pl`` or speedscope),
:meth:`Profiler.table` a per-phase cost table, and
:meth:`Profiler.export_state` / :meth:`Profiler.merge_state` carry a
worker process's profile back to the parent.

:class:`CostModel` turns an enabled run's profile into per-pair cost
estimates (``estimate(pair)`` -> cells / seconds / bytes), the hook the
ROADMAP's load-shedding item needs.

Disabled mode: :data:`NULL_PROFILER` records nothing; its ``phase``
context manager and ``work`` calls are no-ops so instrumented paths
cost one attribute lookup when profiling is off.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass

#: Units a collapsed-stack export can be folded by.
UNITS = ("wall_us", "cells", "bytes_moved", "cycles")


@dataclass
class PhaseStat:
    """Accumulated self-cost of one phase path."""

    calls: int = 0
    wall_s: float = 0.0
    cycles: float = 0.0
    cells: int = 0
    bytes_moved: int = 0

    def add(self, *, calls: int = 0, wall_s: float = 0.0,
            cycles: float = 0.0, cells: int = 0,
            bytes_moved: int = 0) -> None:
        self.calls += calls
        self.wall_s += wall_s
        self.cycles += cycles
        self.cells += cells
        self.bytes_moved += bytes_moved

    def to_dict(self) -> dict:
        return {"calls": self.calls, "wall_s": self.wall_s,
                "cycles": self.cycles, "cells": self.cells,
                "bytes_moved": self.bytes_moved}

    @classmethod
    def from_dict(cls, data: dict) -> "PhaseStat":
        return cls(calls=int(data.get("calls", 0)),
                   wall_s=float(data.get("wall_s", 0.0)),
                   cycles=float(data.get("cycles", 0.0)),
                   cells=int(data.get("cells", 0)),
                   bytes_moved=int(data.get("bytes_moved", 0)))


def _as_path(path) -> tuple[str, ...]:
    if isinstance(path, str):
        return tuple(path.split(";"))
    return tuple(path)


class Profiler:
    """Phase-stack profiler with deterministic work-unit attribution.

    Args:
        tracer: Optional :class:`~repro.obs.tracing.Tracer`; when set,
            every phase is mirrored as a host span so the phase stack
            shows up (correctly nested) in the Perfetto timeline.
    """

    enabled = True

    def __init__(self, tracer=None) -> None:
        self._clock = time.perf_counter
        self._lock = threading.Lock()
        self._stats: dict[tuple[str, ...], PhaseStat] = {}
        self._local = threading.local()
        self._tracer = tracer if tracer is not None and tracer.enabled \
            else None

    # -- recording ----------------------------------------------------------

    def _frames(self) -> list:
        frames = getattr(self._local, "frames", None)
        if frames is None:
            frames = self._local.frames = []
        return frames

    @contextlib.contextmanager
    def phase(self, name: str):
        """Open a phase: nested ``phase``/``work`` calls attribute to
        it; its *self* wall time (total minus children) is recorded on
        exit. Each frame carries ``[name, child_wall]`` so self time is
        ``total - child_wall`` without a second clock read per child."""
        frames = self._frames()
        frames.append([name, 0.0])
        span = (self._tracer.host_span(name, thread="profile")
                if self._tracer is not None else None)
        if span is not None:
            span.__enter__()
        start = self._clock()
        try:
            yield self
        finally:
            total = self._clock() - start
            if span is not None:
                span.__exit__(None, None, None)
            _, child_wall = frames.pop()
            path = tuple(frame[0] for frame in frames) + (name,)
            self._record(path, calls=1,
                         wall_s=max(total - child_wall, 0.0))
            if frames:
                frames[-1][1] += total

    def _record(self, path: tuple[str, ...], **units) -> None:
        with self._lock:
            stat = self._stats.get(path)
            if stat is None:
                stat = self._stats[path] = PhaseStat()
            stat.add(**units)

    def work(self, *, cells: int = 0, bytes_moved: int = 0,
             cycles: float = 0.0) -> None:
        """Attribute work units to the innermost open phase (or the
        ``(unattributed)`` root when none is open)."""
        frames = self._frames()
        path = (tuple(frame[0] for frame in frames)
                or ("(unattributed)",))
        self._record(path, cells=cells, bytes_moved=bytes_moved,
                     cycles=cycles)

    def add(self, path, *, calls: int = 0, wall_s: float = 0.0,
            cycles: float = 0.0, cells: int = 0,
            bytes_moved: int = 0) -> None:
        """Attribute units to an absolute path (``"a;b"`` or tuple),
        independent of the current stack -- used by the discrete-event
        simulators whose phases interleave."""
        self._record(_as_path(path), calls=calls, wall_s=wall_s,
                     cycles=cycles, cells=cells, bytes_moved=bytes_moved)

    # -- queries ------------------------------------------------------------

    @property
    def stacks(self) -> dict[tuple[str, ...], PhaseStat]:
        with self._lock:
            return dict(self._stats)

    def total(self, unit: str = "cells") -> float:
        """Sum of one unit across every recorded path."""
        attr = "wall_s" if unit == "wall_us" else unit
        with self._lock:
            value = sum(getattr(stat, attr) for stat in
                        self._stats.values())
        return value * 1e6 if unit == "wall_us" else value

    # -- exports ------------------------------------------------------------

    def collapsed(self, unit: str = "wall_us") -> str:
        """Folded-stack flamegraph text: one ``a;b;c VALUE`` line per
        path with a nonzero value of ``unit``."""
        if unit not in UNITS:
            raise ValueError(f"unknown unit {unit!r}; choose from {UNITS}")
        lines = []
        for path, stat in sorted(self.stacks.items()):
            if unit == "wall_us":
                value = int(round(stat.wall_s * 1e6))
            else:
                value = getattr(stat, unit)
                value = int(value) if float(value).is_integer() else value
            if value:
                lines.append(f"{';'.join(path)} {value}")
        return "\n".join(lines)

    def write_collapsed(self, path: str, unit: str = "wall_us") -> str:
        """Atomically write :meth:`collapsed` output to ``path``."""
        from repro.core.atomicio import atomic_write_text
        body = self.collapsed(unit)
        return atomic_write_text(path, body + ("\n" if body else ""))

    def table(self) -> list[dict]:
        """Per-phase cost rows (depth-first path order)."""
        rows = []
        for path, stat in sorted(self.stacks.items()):
            row = {"phase": ";".join(path), "depth": len(path)}
            row.update(stat.to_dict())
            rows.append(row)
        return rows

    def format_table(self, indent: str = "") -> str:
        """Human-readable per-phase table for terminal output."""
        rows = self.table()
        if not rows:
            return f"{indent}(no phases recorded)"
        width = max(len(row["phase"]) for row in rows)
        lines = [f"{indent}{'phase':<{width}}  {'calls':>6} "
                 f"{'wall ms':>10} {'cells':>14} {'bytes':>14} "
                 f"{'cycles':>12}"]
        for row in rows:
            lines.append(
                f"{indent}{row['phase']:<{width}}  {row['calls']:>6,} "
                f"{row['wall_s'] * 1e3:>10.2f} {row['cells']:>14,} "
                f"{row['bytes_moved']:>14,} {row['cycles']:>12,.0f}")
        return "\n".join(lines)

    # -- cross-process state ------------------------------------------------

    def export_state(self) -> dict:
        """JSON/pickle-safe snapshot for carrying a worker's profile
        back to the parent process."""
        return {";".join(path): stat.to_dict()
                for path, stat in self.stacks.items()}

    def merge_state(self, state: dict) -> None:
        """Fold an :meth:`export_state` snapshot into this profiler."""
        for key, data in (state or {}).items():
            self._record(_as_path(key), **PhaseStat.from_dict(data)
                         .to_dict())


class NullProfiler(Profiler):
    """Disabled profiler: records nothing, exports empty state."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    @contextlib.contextmanager
    def phase(self, name: str):
        yield self

    def work(self, *, cells: int = 0, bytes_moved: int = 0,
             cycles: float = 0.0) -> None:
        pass

    def add(self, path, **units) -> None:
        pass

    def merge_state(self, state: dict) -> None:
        pass


#: Shared disabled profiler -- the library-wide default.
NULL_PROFILER = NullProfiler()


# ----------------------------------------------------------------------
# Per-pair cost estimation
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PairCost:
    """Predicted cost of aligning one (query, reference) pair."""

    cells: int
    seconds: float
    bytes_moved: int


@dataclass(frozen=True)
class CostModel:
    """Per-pair cost estimates calibrated from a profiled run.

    ``seconds_per_cell`` / ``bytes_per_cell`` come straight from an
    enabled :class:`Profiler`'s ``exec`` subtree (observed wall time
    and modeled traffic divided by deterministic cell counts), so the
    model predicts *this machine's, this configuration's* throughput.
    The supervised engine's load-shedding policy (ROADMAP) can rank
    pairs by :meth:`estimate` before a deadline is at risk.

    Attributes:
        seconds_per_cell: Observed wall seconds per DP cell update.
        bytes_per_cell: Modeled bytes moved per DP cell update.
        matrices_per_cell: DP matrices per logical cell (3 for affine).
    """

    seconds_per_cell: float
    bytes_per_cell: float = 8.0
    matrices_per_cell: int = 1

    #: Conservative fallback when a profile recorded no exec work
    #: (roughly a NumPy-sweep cell rate on one laptop core).
    DEFAULT_SECONDS_PER_CELL = 1e-8

    @classmethod
    def from_profile(cls, profiler: Profiler, prefix: str = "exec",
                     matrices_per_cell: int = 1) -> "CostModel":
        """Calibrate from every profiled path rooted at ``prefix``."""
        wall = 0.0
        cells = 0
        nbytes = 0
        for path, stat in profiler.stacks.items():
            if not path or not path[0].startswith(prefix):
                continue
            wall += stat.wall_s
            cells += stat.cells
            nbytes += stat.bytes_moved
        if cells <= 0:
            return cls(seconds_per_cell=cls.DEFAULT_SECONDS_PER_CELL,
                       matrices_per_cell=matrices_per_cell)
        return cls(seconds_per_cell=wall / cells,
                   bytes_per_cell=nbytes / cells,
                   matrices_per_cell=matrices_per_cell)

    def estimate(self, pair) -> PairCost:
        """Predicted cost of one pair: ``(query, reference)`` sequences
        (anything with ``len``) or an ``(n, m)`` length tuple."""
        first, second = pair
        n = first if isinstance(first, int) else len(first)
        m = second if isinstance(second, int) else len(second)
        cells = self.matrices_per_cell * n * m
        return PairCost(cells=cells,
                        seconds=cells * self.seconds_per_cell,
                        bytes_moved=int(cells * self.bytes_per_cell))

    def estimate_batch(self, pairs) -> list[PairCost]:
        return [self.estimate(pair) for pair in pairs]

    def cost_table(self, pairs) -> list[dict]:
        """JSON-ready per-pair cost rows, in submission order."""
        rows = []
        for index, pair in enumerate(pairs):
            cost = self.estimate(pair)
            rows.append({"index": index, "cells": cost.cells,
                         "seconds": cost.seconds,
                         "bytes_moved": cost.bytes_moved})
        return rows
