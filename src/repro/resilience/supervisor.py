"""Supervised batch execution: retry, bisect, degrade, quarantine.

:class:`SupervisedEngine` wraps :class:`~repro.exec.engine.BatchEngine`
with the fault-tolerance policy of the execution layer:

1. The batch is cut into contiguous shards (one per worker) and run as
   a parallel wave, each shard guarded by a wall-clock timeout
   (``shard_timeout_s``) and the overall call deadline.
2. A failed shard is retried whole once (clearing transient faults),
   then **bisected**: halves re-run independently, recursively, until
   the failure is narrowed to single pairs. Unaffected pairs keep their
   bit-identical results; only the shrinking failed region re-runs.
   Exceptions that carry a ``pair_index`` short-circuit bisection and
   isolate the poison pair immediately.
3. A single failing pair gets bounded retries with exponential backoff,
   then walks the degradation ladder (:mod:`repro.resilience.ladder`):
   wide-dtype for range/overflow trips, scalar for vector-path faults,
   the exact aligner for heuristic failures.
4. Whatever still fails is quarantined as a typed
   :class:`~repro.resilience.failures.PairFailure`; the batch always
   returns a full :class:`~repro.resilience.failures.BatchOutcome`
   (unless ``raise_on_failure`` asks for the exception).

Two backends: worker *processes* (``batch.workers > 1``; an injected
crash genuinely kills a worker and surfaces as ``BrokenProcessPool``)
or worker *threads* (single-worker batches, restricted sandboxes, or
``backend="thread"``; deterministic, with crashes modelled as raised
:class:`~repro.resilience.chaos.InjectedCrash`). Hang detection needs a
``shard_timeout_s`` (or deadline) -- a stuck worker cannot announce
itself. After a timeout or pool break the tainted executor is replaced
so stuck workers cannot starve later recovery work.

Every fault, retry, bisection, ladder rung, and quarantine is counted
both in ``repro.obs`` metrics (``resilience.*``) and in the outcome's
``counters`` dict, which chaos tests reconcile against the injector's
ground-truth log.

Crash safety: with a ``checkpoint_path``, :meth:`SupervisedEngine.run`
writes an ``smx-outcome/1`` document (write-then-rename, see
:mod:`repro.resilience.outcome_io`) after *every settled unit* --
completed results, quarantine list, counters, plus the recovery queue
and the not-yet-absorbed wave units at their exact attempt counts. A
SIGKILL'd run restarted with ``resume=`` re-executes only the
checkpoint's unfinished remainder, and because every decision in this
engine is deterministic in (pair content, attempt), the resumed union
is bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field, replace

from repro.algorithms.base import AlignerResult
from repro.config import AlignmentConfig
from repro.errors import (
    AlignmentError,
    ConfigurationError,
    DeadlineExceeded,
    PoisonPairError,
    RangeError,
)
from repro.exec.engine import BatchConfig, BatchEngine, _as_pairs
from repro.exec.sharding import shard_spans
from repro.obs import (
    LabeledRegistry,
    Observability,
    child_context,
    get_logger,
    get_obs,
    new_run_id,
)
from repro.obs.prof import CostModel
from repro.resilience import chaos, ladder, outcome_io
from repro.resilience.deadline import Deadline
from repro.resilience.failures import BatchOutcome, PairFailure

log = get_logger("resilience")

BACKENDS = ("auto", "thread", "process")


@dataclass(frozen=True)
class ResilienceConfig:
    """Policy knobs for :class:`SupervisedEngine`.

    Attributes:
        max_retries: Plain re-executions granted to a failing unit
            before bisection stops and the ladder/quarantine begins.
        shard_timeout_s: Wall-clock guard per shard execution; a shard
            still running after this long is treated as hung and its
            executor replaced. ``None`` disables hang detection.
        deadline_s: Overall budget for one supervised call; pairs whose
            work would start after expiry become ``"deadline"``
            failures (structured, not raised).
        backoff_base_s / backoff_factor / backoff_max_s: Exponential
            backoff slept before retry attempt ``k``:
            ``min(max, base * factor**(k-1))``.
        validate: Re-check finished results -- CIGAR rescoring for
            traceback batches, a clean redundant recompute for
            score-only batches -- and treat mismatches as ``"bitflip"``
            faults. The only way silent datapath corruption is caught.
        degrade: Allow the degradation ladder (wide-dtype / scalar /
            exact rungs) after retries are exhausted.
        exact_fallback: Promote heuristic no-result outcomes (banded
            band too narrow, X-drop pruned) to the exact aligner, as a
            ``"exact"`` ladder rung. Requires ``degrade``.
        raise_on_failure: Raise (:class:`DeadlineExceeded` or
            :class:`PoisonPairError`) instead of returning an outcome
            with failures.
        backend: ``"auto"`` (processes when ``workers > 1``),
            ``"thread"``, or ``"process"``.
        shed: Deadline-aware load shedding: before a unit starts, rank
            its pairs by :meth:`CostModel.estimate` and shed the
            predicted-cost tail that cannot finish inside the remaining
            budget as structured ``"deadline"``/``LoadShed`` failures
            -- so the clock never expires mid-shard on work that was
            doomed from the start. Needs a bounded deadline to act.
        shed_safety: Headroom multiplier on predicted cost (predictions
            are optimistic on cold caches); 1.0 trusts the estimate.
        cost_model: Cost model used for shedding; ``None`` calibrates
            from the live profiler (falling back to the built-in
            per-cell default when no profile exists). Tests inject a
            pessimistic model here to exercise shedding determinately.
        max_unit_pairs: Cap on pairs per schedulable unit. By default
            the batch is cut into one shard per worker; a cap cuts it
            finer, which bounds the work lost to a crash between
            checkpoints (the service daemon's knob) and narrows
            bisection's starting point. ``None`` keeps per-worker
            shards.
    """

    max_retries: int = 2
    shard_timeout_s: float | None = None
    deadline_s: float | None = None
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 1.0
    validate: bool = False
    degrade: bool = True
    exact_fallback: bool = True
    raise_on_failure: bool = False
    backend: str = "auto"
    shed: bool = True
    shed_safety: float = 1.5
    cost_model: CostModel | None = None
    max_unit_pairs: int | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.max_unit_pairs is not None and self.max_unit_pairs < 1:
            raise ConfigurationError(
                f"max_unit_pairs must be >= 1, got "
                f"{self.max_unit_pairs}")
        for name in ("shard_timeout_s", "deadline_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(
                    f"{name} must be > 0 seconds, got {value}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigurationError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}")
        if self.shed_safety < 1.0:
            raise ConfigurationError(
                f"shed_safety must be >= 1.0, got {self.shed_safety}")


@dataclass
class _Unit:
    """One schedulable piece of the batch: a span of pair positions."""

    indices: list[int]
    attempt: int = 0
    #: Degradation rung this unit runs on (None = the base config).
    rung: str | None = None
    config: BatchConfig | None = None
    #: Ladder rungs already consumed on the way here.
    rungs: tuple[str, ...] = ()
    #: Last classified fault, steering the ladder.
    fault: str | None = None
    error: BaseException | None = field(default=None, repr=False)


def _pool_worker(config: AlignmentConfig, batch: BatchConfig, pairs,
                 plan, attempt: int, collect: bool = False, trace=None):
    """Run one unit inside a worker process (module-level: pickles).

    Returns ``(results, fired, state)`` so the parent can merge both
    the worker's injection log into the supervisor-side ground truth
    and -- when ``collect`` -- the worker's metric/profile snapshot
    into the parent registry (worker-side counters otherwise die with
    the process). A :class:`~repro.obs.tracectx.TraceContext` as
    ``trace`` additionally stitches the worker's spans onto the parent
    timeline.
    """
    from repro.exec.engine import BatchEngine as Engine
    worker_obs = Observability.collector(trace=trace) if collect else None
    if plan is not None:
        chaos.install(plan, attempt, in_worker=True)
    try:
        results = Engine(config, batch, obs=worker_obs).run(pairs)
    finally:
        chaos.deactivate()
    return (results,
            list(plan.fired) if plan is not None else [],
            worker_obs.export_state() if worker_obs is not None else None)


def _classify(exc: BaseException) -> str:
    """Map an exception to the supervisor's fault vocabulary."""
    if isinstance(exc, FuturesTimeoutError):
        return "hang"
    if isinstance(exc, (BrokenExecutor, chaos.InjectedCrash)):
        return "crash"
    if isinstance(exc, DeadlineExceeded):
        return "deadline"
    if isinstance(exc, RangeError):
        return "rangeerror"
    if isinstance(exc, AlignmentError):
        return "alignment"
    if isinstance(exc, OSError):
        return "oserror"
    return "error"


class SupervisedEngine:
    """Fault-tolerant front end over :class:`BatchEngine`.

    Args:
        config: The alignment problem (alphabet + scoring model).
        batch: Execution policy; sharding width comes from
            ``batch.workers`` exactly as in the plain engine.
        resilience: Supervision policy (defaults to
            :class:`ResilienceConfig` defaults).
        obs: Observability context.
        plan: Optional :class:`~repro.resilience.chaos.ChaosPlan` to
            inject faults into every execution this engine launches.
        tenant: Attribute every metric this run touches -- parent-side
            ``resilience.*`` / ``exec.*`` counters, latency
            distributions, *and* worker-process snapshots merged back
            in :meth:`_wait` -- to one tenant via a
            :class:`~repro.obs.metrics.LabeledRegistry` view, so the
            fleet telemetry layer can split series per tenant without
            any engine call site knowing about tenancy.
    """

    def __init__(self, config: AlignmentConfig,
                 batch: BatchConfig | None = None,
                 resilience: ResilienceConfig | None = None,
                 obs: Observability | None = None,
                 plan: chaos.ChaosPlan | None = None,
                 tenant: str | None = None) -> None:
        self.config = config
        self.batch = batch or BatchConfig()
        self.resilience = resilience or ResilienceConfig()
        self.obs = obs or get_obs()
        self.tenant = tenant
        if tenant is not None:
            base = self.obs
            self.obs = Observability(
                metrics=LabeledRegistry(base.metrics, tenant=tenant),
                tracer=base.tracer, profiler=base.profiler,
                events=base.events)
        self.plan = plan
        #: Per-unit engine config: single worker (the supervisor owns
        #: parallelism) and no engine deadline (the supervisor owns the
        #: clock).
        self._inner = replace(self.batch, workers=1, deadline_s=None)
        backend = self.resilience.backend
        self._use_processes = (self.batch.workers > 1
                               if backend == "auto"
                               else backend == "process")
        self._width = max(1, min(self.batch.workers, 8))
        self._executor = None
        self._generation = 0
        self._charged_generations: set[int] = set()
        #: Checkpoint plumbing; rebound by every :meth:`run`.
        self._ckpt_path: str | None = None
        self._digest: str | None = None
        self._units_settled = 0
        self._wave_pending: list[_Unit] = []
        #: Regenerated by every :meth:`run`; stamps events and stitched
        #: trace spans so one run's artifacts correlate.
        self.run_id = new_run_id()

    # -- executor management ----------------------------------------------

    def _make_executor(self, width: int):
        if self._use_processes:
            try:
                return ProcessPoolExecutor(max_workers=width)
            except (OSError, PermissionError, RuntimeError) as exc:
                log.warning("process pool unavailable (%s); supervising "
                            "threads instead", exc)
                self._use_processes = False
        return ThreadPoolExecutor(
            max_workers=width,
            thread_name_prefix="repro-supervised")

    def _executor_for(self, width: int):
        if self._executor is None:
            self._executor = self._make_executor(width)
        return self._executor

    def _taint_executor(self) -> None:
        """Replace an executor holding hung or dead workers."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        self._executor = None
        self._generation += 1

    def _shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # -- unit execution ----------------------------------------------------

    def _unit_config(self, unit: _Unit) -> BatchConfig:
        return unit.config or self._inner

    def _submit(self, unit: _Unit, width: int) -> Future:
        pool = self._executor_for(width)
        pairs = [self._pairs[i] for i in unit.indices]
        if self._use_processes:
            label = (f"u{unit.indices[0]}-{unit.indices[-1]}"
                     f".a{unit.attempt}")
            return pool.submit(_pool_worker, self.config,
                               self._unit_config(unit), pairs, self.plan,
                               unit.attempt, self.obs.collecting,
                               child_context(self.obs.tracer, self.run_id,
                                             label,
                                             parent_span="resilience.run"))
        engine = BatchEngine(self.config, self._unit_config(unit),
                             self.obs)
        plan, attempt = self.plan, unit.attempt

        def call():
            # Threads share the parent's instruments: no state to merge.
            if plan is None:
                return engine.run(pairs), [], None
            with chaos.scoped(plan, attempt, in_worker=False):
                return engine.run(pairs), [], None

        return pool.submit(call)

    def _wait(self, unit: _Unit, future: Future,
              deadline: Deadline) -> list[AlignerResult]:
        """Collect one unit's results, enforcing timeout + deadline."""
        timeout = deadline.clamp(self.resilience.shard_timeout_s)
        try:
            results, fired, state = future.result(timeout=timeout)
        except FuturesTimeoutError:
            self._taint_executor()
            if deadline.expired:
                raise DeadlineExceeded(
                    "supervised batch exceeded its deadline") from None
            raise
        if fired and self.plan is not None:
            # Pool workers run on an unpickled plan copy: merge their
            # injection log back into the supervisor-side ground truth.
            with self.plan._lock:
                self.plan.fired.extend(fired)
        self.obs.merge_state(state)
        return results

    # -- policy ------------------------------------------------------------

    def _emit(self, kind: str, **fields) -> None:
        """Telemetry event, dropped for free when events are off."""
        events = self.obs.events
        if events.enabled:
            events.emit(kind, **fields)

    def _charge(self, outcome: BatchOutcome, unit: _Unit,
                fault: str) -> None:
        outcome.bump(f"faults.{fault}")
        self.obs.metrics.counter("resilience.faults", fault=fault).inc()
        self._emit("fault", fault=fault, pairs=len(unit.indices),
                   attempt=unit.attempt)

    def _requeue_retry(self, queue: deque, outcome: BatchOutcome,
                       unit: _Unit) -> None:
        outcome.bump("retries")
        self.obs.metrics.counter("resilience.retries").inc()
        self._emit("retry", pairs=len(unit.indices),
                   attempt=unit.attempt + 1)
        queue.append(replace_unit(unit, attempt=unit.attempt + 1))

    def _backoff(self, unit: _Unit, deadline: Deadline) -> None:
        if unit.attempt <= 0:
            return
        policy = self.resilience
        delay = min(policy.backoff_max_s,
                    policy.backoff_base_s
                    * policy.backoff_factor ** (unit.attempt - 1))
        delay = min(delay, deadline.remaining())
        if delay > 0:
            time.sleep(delay)

    def _quarantine(self, outcome: BatchOutcome, unit: _Unit) -> None:
        index = unit.indices[0]
        fault = unit.fault or "error"
        error = unit.error
        error_type = ("Timeout" if fault == "hang"
                      else "Validation" if fault == "bitflip" and
                      isinstance(error, AlignmentError)
                      else type(error).__name__ if error is not None
                      else "Error")
        failure = PairFailure(
            index=index, fault=fault, error_type=error_type,
            message=str(error) if error is not None else "",
            attempts=unit.attempt + 1, rungs=unit.rungs)
        outcome.failures.append(failure)
        outcome.bump(f"quarantined.{fault}")
        self.obs.metrics.counter("resilience.quarantined",
                                 fault=fault).inc()
        self._emit("quarantine", index=index, fault=fault,
                   error_type=error_type, attempts=unit.attempt + 1,
                   rungs=list(unit.rungs))
        log.warning("quarantined %s", failure)

    def _enqueue_rung(self, queue: deque, outcome: BatchOutcome,
                      unit: _Unit) -> bool:
        """Queue the next untried ladder rung for a single-pair unit."""
        if not self.resilience.degrade:
            return False
        candidates = ladder.plan_rungs(self.batch, unit.fault or "error")
        for rung, config in candidates:
            if rung in unit.rungs:
                continue
            if rung == "exact" and not self.resilience.exact_fallback:
                continue
            outcome.bump(f"degraded.{rung}")
            self.obs.metrics.counter("resilience.degraded",
                                     rung=rung).inc()
            self._emit("degrade", index=unit.indices[0], rung=rung,
                       fault=unit.fault or "error")
            queue.append(replace_unit(
                unit, attempt=unit.attempt + 1, rung=rung, config=config,
                rungs=unit.rungs + (rung,)))
            return True
        return False

    def _dispose(self, queue: deque, outcome: BatchOutcome, unit: _Unit,
                 exc: BaseException, charge: bool = True) -> None:
        """Decide what happens to a unit whose execution failed."""
        fault = _classify(exc)
        unit = replace_unit(unit, fault=fault, error=exc)
        if charge:
            self._charge(outcome, unit, fault)
        if fault == "deadline":
            self._fail_unit(outcome, unit, exc)
            return
        # A pair-targeted exception isolates the poison pair at once.
        local = getattr(exc, "pair_index", None)
        if (local is not None and len(unit.indices) > 1
                and 0 <= local < len(unit.indices)):
            poison = unit.indices[local]
            rest = [i for i in unit.indices if i != poison]
            outcome.bump("isolations")
            queue.append(replace_unit(unit, indices=[poison],
                                      attempt=unit.attempt + 1))
            queue.append(replace_unit(unit, indices=rest, fault=None,
                                      error=None))
            return
        if len(unit.indices) == 1:
            if unit.rung is None and unit.attempt < \
                    self.resilience.max_retries:
                self._requeue_retry(queue, outcome, unit)
            elif not self._enqueue_rung(queue, outcome, unit):
                self._quarantine(outcome, unit)
            return
        if unit.attempt == 0:
            # One whole-shard retry clears every transient fault cheaply.
            self._requeue_retry(queue, outcome, unit)
            return
        mid = len(unit.indices) // 2
        outcome.bump("bisections")
        self.obs.metrics.counter("resilience.bisections").inc()
        self._emit("bisect", pairs=len(unit.indices), fault=fault)
        queue.append(replace_unit(unit, indices=unit.indices[:mid],
                                  attempt=unit.attempt + 1))
        queue.append(replace_unit(unit, indices=unit.indices[mid:],
                                  attempt=unit.attempt + 1))

    def _fail_unit(self, outcome: BatchOutcome, unit: _Unit,
                   exc: BaseException | None) -> None:
        """Terminal deadline failure for every pair still in a unit."""
        for index in unit.indices:
            outcome.failures.append(PairFailure(
                index=index, fault="deadline",
                error_type="DeadlineExceeded",
                message=str(exc) if exc is not None
                else "work not started before the deadline",
                attempts=unit.attempt, rungs=unit.rungs))
        outcome.bump("quarantined.deadline", len(unit.indices))
        self.obs.metrics.counter("resilience.quarantined",
                                 fault="deadline").inc(len(unit.indices))

    # -- load shedding -----------------------------------------------------

    def _shed_unit(self, outcome: BatchOutcome, unit: _Unit,
                   deadline: Deadline) -> _Unit | None:
        """Trim a unit to the pairs predicted to finish in the budget.

        When the cost model says the whole unit cannot complete inside
        ``deadline.remaining() / shed_safety``, the predicted-cost tail
        is shed up front as structured ``"deadline"`` failures (error
        type ``LoadShed``) instead of letting the clock expire mid-run.
        Returns the trimmed unit in original pair order, or ``None``
        when every pair was shed. No-op without a bounded deadline.
        """
        if not self.resilience.shed:
            return unit
        remaining = deadline.remaining()
        if remaining == float("inf"):
            return unit
        safety = self.resilience.shed_safety
        costs = [self._shed_model.estimate(self._pairs[index]).seconds
                 for index in unit.indices]
        predicted = sum(costs)
        if predicted * safety <= remaining:
            return unit
        budget = remaining / safety
        keep: list[int] = []
        acc = 0.0
        for local in sorted(range(len(costs)),
                            key=lambda one: (costs[one], one)):
            if acc + costs[local] > budget:
                break
            acc += costs[local]
            keep.append(local)
        kept = sorted(keep)
        shed = sorted(set(range(len(costs))) - set(kept))
        self._shed_pairs(outcome, unit,
                         [unit.indices[local] for local in shed])
        self._emit("shed", pairs=len(shed), kept=len(kept),
                   budget_s=round(budget, 6),
                   predicted_s=round(predicted, 6))
        if not kept:
            return None
        return replace_unit(
            unit, indices=[unit.indices[local] for local in kept])

    def _shed_pairs(self, outcome: BatchOutcome, unit: _Unit,
                    indices: list[int]) -> None:
        """Record shed pairs as structured deadline failures."""
        for index in indices:
            outcome.failures.append(PairFailure(
                index=index, fault="deadline", error_type="LoadShed",
                message="shed: predicted cost exceeds the remaining "
                        "deadline",
                attempts=unit.attempt, rungs=unit.rungs))
        outcome.bump("shed.pairs", len(indices))
        self.obs.metrics.counter("exec.shed.pairs").inc(len(indices))

    # -- validation --------------------------------------------------------

    def _validate_unit(self, unit: _Unit,
                       results: list[AlignerResult]) -> list[int]:
        """Local indices whose results fail integrity checks."""
        if not self.resilience.validate:
            return []
        model = self.config.model
        flagged: list[int] = []
        if self.batch.traceback:
            for local, result in enumerate(results):
                alignment = result.alignment
                if alignment is None:
                    continue
                q_codes, r_codes = self._pairs[unit.indices[local]]
                try:
                    alignment.validate(q_codes, r_codes, model)
                except AlignmentError:
                    flagged.append(local)
            return flagged
        # Score-only batches carry no CIGAR to rescore: compare against
        # a clean redundant recompute (injection suppressed so even a
        # globally installed plan cannot corrupt the reference).
        engine = BatchEngine(self.config, self._unit_config(unit),
                             self.obs)
        with chaos.suppressed():
            clean = engine.run([self._pairs[i] for i in unit.indices])
        for local, (got, want) in enumerate(zip(results, clean)):
            if got.score != want.score:
                flagged.append(local)
        return flagged

    def _absorb(self, queue: deque, outcome: BatchOutcome, unit: _Unit,
                results: list[AlignerResult]) -> None:
        """Bank a unit's results; peel off corrupt / promotable pairs."""
        flagged = set(self._validate_unit(unit, results))
        for local in sorted(flagged):
            corrupt = replace_unit(
                unit, indices=[unit.indices[local]],
                attempt=unit.attempt + 1, fault="bitflip",
                error=AlignmentError("result failed validation"))
            self._charge(outcome, corrupt, "bitflip")
            if corrupt.attempt <= self.resilience.max_retries and \
                    corrupt.rung is None:
                self._requeue_retry(queue, outcome,
                                    replace_unit(corrupt,
                                                 attempt=unit.attempt))
            elif not self._enqueue_rung(queue, outcome, corrupt):
                self._quarantine(outcome, corrupt)
        for local, result in enumerate(results):
            if local in flagged:
                continue
            index = unit.indices[local]
            if (result.failed and self.resilience.degrade
                    and self.resilience.exact_fallback
                    and self.batch.algorithm in
                    ladder.HEURISTIC_ALGORITHMS
                    and "exact" not in unit.rungs):
                # Heuristic gave up (band too narrow / path pruned):
                # promote this pair to the exact aligner.
                promoted = replace_unit(
                    unit, indices=[index], attempt=unit.attempt,
                    fault="alignment",
                    error=AlignmentError(result.failure_reason or
                                         "heuristic failed"))
                if self._enqueue_rung(queue, outcome, promoted):
                    continue
            outcome.results[index] = result
            if unit.rungs:
                outcome.degraded[index] = unit.rungs

    # -- checkpoint / resume ----------------------------------------------

    def _unit_spans(self, n: int) -> list[tuple[int, int]]:
        """Contiguous unit spans: per-worker shards, or capped units."""
        cap = self.resilience.max_unit_pairs
        if cap is None:
            return shard_spans(n, self.batch.workers)
        return [(start, min(start + cap, n))
                for start in range(0, n, cap)]

    def _unit_doc(self, unit: _Unit) -> dict:
        """Serialize a unit's replayable state (errors stay behind:
        every restored unit re-executes before any terminal decision,
        so a fresh exception replaces the lost one)."""
        return {"indices": [int(i) for i in unit.indices],
                "attempt": int(unit.attempt), "rung": unit.rung,
                "rungs": list(unit.rungs), "fault": unit.fault}

    def _unit_from_doc(self, doc: dict) -> _Unit:
        rung = doc.get("rung")
        fault = doc.get("fault")
        config = None
        if rung is not None:
            # The rung's degraded BatchConfig is a pure function of
            # (base batch config, fault) -- rebuild instead of storing.
            for name, candidate in ladder.plan_rungs(
                    self.batch, fault or "error"):
                if name == rung:
                    config = candidate
                    break
        return _Unit(indices=[int(i) for i in doc["indices"]],
                     attempt=int(doc.get("attempt", 0)), rung=rung,
                     config=config,
                     rungs=tuple(doc.get("rungs") or ()), fault=fault)

    def _write_checkpoint(self, outcome: BatchOutcome, queue: deque,
                          complete: bool) -> None:
        if self._ckpt_path is None:
            return
        document = outcome_io.to_document(
            outcome, pairs=len(self._pairs), complete=complete,
            queue=[self._unit_doc(unit) for unit in queue],
            remaining=[list(unit.indices)
                       for unit in self._wave_pending],
            digest=self._digest)
        outcome_io.write(self._ckpt_path, document)
        self._emit("checkpoint", done=outcome.completed(),
                   failures=len(outcome.failures), queued=len(queue),
                   complete=complete)

    def _settle(self, outcome: BatchOutcome, queue: deque) -> None:
        """One unit reached a decision: heartbeat, checkpoint, and --
        under a kill-at-unit chaos plan -- die like a SIGKILL would,
        *after* the checkpoint rename so only in-flight work is lost."""
        self._heartbeat(outcome, queue)
        self._units_settled += 1
        self._write_checkpoint(outcome, queue, complete=False)
        if self.plan is not None and \
                self.plan.should_kill(self._units_settled):
            self.plan.record_kill(self._units_settled)
            self._emit("fault", fault="kill",
                       units_settled=self._units_settled)
            raise chaos.InjectedKill(
                f"injected supervisor kill after unit "
                f"{self._units_settled}")

    def _load_resume(self, resume) -> "outcome_io.Checkpoint":
        checkpoint = (outcome_io.load(resume)
                      if isinstance(resume, str) else resume)
        if checkpoint.pairs != len(self._pairs):
            raise ConfigurationError(
                f"checkpoint describes {checkpoint.pairs} pair(s) but "
                f"{len(self._pairs)} were submitted")
        if checkpoint.digest and self._digest and \
                checkpoint.digest != self._digest:
            raise ConfigurationError(
                "checkpoint was written for a different batch "
                "(pair content digest mismatch)")
        return checkpoint

    # -- main loop ---------------------------------------------------------

    def run(self, pairs, *, checkpoint_path: str | None = None,
            resume=None) -> BatchOutcome:
        """Supervise one batch end to end; never raises for per-pair
        trouble unless ``raise_on_failure`` is set.

        Args:
            pairs: The full submitted batch (also on resume: a resumed
                run receives the *original* pairs; the checkpoint names
                which indices still need work).
            checkpoint_path: Write an ``smx-outcome/1`` document here
                (write-then-rename) after every settled unit, and a
                final ``complete`` document when the run finishes.
            resume: A :class:`~repro.resilience.outcome_io.Checkpoint`
                (or path to one) from a killed run: completed results,
                quarantines, and counters are kept bit-identical, and
                only the checkpoint's unfinished remainder re-runs.
        """
        self._pairs = _as_pairs(pairs)
        self._ckpt_path = checkpoint_path
        self._units_settled = 0
        self._wave_pending: list[_Unit] = []
        self._digest = (outcome_io.pairs_digest(self._pairs)
                        if (checkpoint_path is not None
                            or resume is not None) else None)
        queue: deque[_Unit] = deque()
        if resume is not None:
            checkpoint = self._load_resume(resume)
            outcome = checkpoint.outcome
            queue.extend(self._unit_from_doc(doc)
                         for doc in checkpoint.queue)
            wave = [_Unit(indices=list(indices))
                    for indices in checkpoint.remaining]
        else:
            outcome = BatchOutcome(results=[None] * len(self._pairs))
            wave = [_Unit(indices=list(range(start, stop)))
                    for start, stop in
                    self._unit_spans(len(self._pairs))]
        if not self._pairs:
            self._write_checkpoint(outcome, queue, complete=True)
            return outcome
        deadline = Deadline.after(self.resilience.deadline_s
                                  or self.batch.deadline_s)
        self._shed_model = (self.resilience.cost_model
                            or CostModel.from_profile(self.obs.profiler))
        self._width = max(1, min(self.batch.workers,
                                 max(1, len(wave))))
        self.run_id = new_run_id()
        self._emit("run_start", pairs=len(self._pairs), shards=len(wave),
                   backend="process" if self._use_processes else "thread",
                   run_id=self.run_id, resumed=resume is not None,
                   completed=outcome.completed(), queued=len(queue))
        try:
            with self.obs.tracer.host_span(
                    "resilience.run", pairs=len(self._pairs),
                    shards=len(wave), run_id=self.run_id):
                self._run_wave(wave, queue, outcome, deadline)
                self._run_recovery(queue, outcome, deadline)
        finally:
            self._shutdown()
        if self.plan is not None:
            with self.plan._lock:
                outcome.injections = list(self.plan.fired)
        outcome.failures.sort(key=lambda failure: failure.index)
        self.obs.metrics.counter("resilience.batches").inc()
        self._write_checkpoint(outcome, queue, complete=True)
        self._emit("run_end", pairs=len(self._pairs),
                   failures=len(outcome.failures),
                   counters=dict(outcome.counters), run_id=self.run_id)
        if outcome.failures and self.resilience.raise_on_failure:
            first = outcome.failures[0]
            if all(f.fault == "deadline" for f in outcome.failures):
                raise DeadlineExceeded(
                    f"{len(outcome.failures)} pair(s) missed the "
                    f"deadline (first: pair {first.index})")
            raise PoisonPairError(str(first), pair_index=first.index,
                                  fault=first.fault)
        return outcome

    def _run_wave(self, wave: list[_Unit], queue: deque,
                  outcome: BatchOutcome, deadline: Deadline) -> None:
        """Initial parallel pass: one shard per worker (or finer, under
        ``max_unit_pairs``), absorbed in submission order."""
        if not wave:
            return
        if deadline.expired:
            for unit in wave:
                self._fail_unit(outcome, unit, None)
            self._settle(outcome, queue)
            return
        width = max(1, min(self.batch.workers, len(wave)))
        submitted = []
        for shard_id, unit in enumerate(wave):
            trimmed = self._shed_unit(outcome, unit, deadline)
            if trimmed is None:
                continue
            unit = trimmed
            self._emit("shard_start", shard=shard_id,
                       pairs=len(unit.indices))
            submitted.append((unit, self._submit(unit, width),
                              self._generation, shard_id,
                              time.perf_counter()))
        # Units not yet absorbed: a checkpoint taken mid-wave records
        # them verbatim so a resumed run re-executes exactly these at
        # attempt 0 (their in-flight executions die with the process).
        self._wave_pending = [entry[0] for entry in submitted]
        for unit, future, generation, shard_id, started in submitted:
            try:
                results = self._wait(unit, future, deadline)
            except BrokenExecutor as exc:
                self._taint_executor()
                # One unit killed this pool generation; its shardmates'
                # futures break too, through no fault of their own --
                # those requeue uncharged at the same attempt.
                if generation in self._charged_generations:
                    queue.append(replace_unit(unit, fault=None,
                                              error=None))
                else:
                    self._charged_generations.add(generation)
                    self._dispose(queue, outcome, unit, exc)
            except CancelledError:
                # Lost to an executor taint before it started; re-run
                # as if never submitted.
                queue.append(replace_unit(unit, fault=None, error=None))
            except Exception as exc:  # noqa: BLE001 - classified below
                self._dispose(queue, outcome, unit, exc)
            else:
                elapsed = time.perf_counter() - started
                self._absorb(queue, outcome, unit, results)
                self.obs.metrics.distribution(
                    "resilience.unit_latency_us").observe(elapsed * 1e6)
                self._emit("shard_done", shard=shard_id,
                           pairs=len(unit.indices),
                           elapsed_s=round(elapsed, 6))
            self._wave_pending.pop(0)
            self._settle(outcome, queue)

    def _heartbeat(self, outcome: BatchOutcome, queue: deque) -> None:
        if not self.obs.events.enabled:
            return
        done = sum(result is not None for result in outcome.results)
        self.obs.events.emit("heartbeat", done=done,
                             total=len(outcome.results),
                             failures=len(outcome.failures),
                             queued=len(queue))

    def _run_recovery(self, queue: deque, outcome: BatchOutcome,
                      deadline: Deadline) -> None:
        """Sequential, deterministic drain of the recovery queue."""
        while queue:
            unit = queue.popleft()
            if deadline.expired:
                self._fail_unit(outcome, unit, None)
                self._settle(outcome, queue)
                continue
            trimmed = self._shed_unit(outcome, unit, deadline)
            if trimmed is None:
                self._settle(outcome, queue)
                continue
            unit = trimmed
            self._backoff(unit, deadline)
            started = time.perf_counter()
            try:
                future = self._submit(unit, self._width)
                results = self._wait(unit, future, deadline)
            except BrokenExecutor as exc:
                self._taint_executor()
                self._dispose(queue, outcome, unit, exc)
            except Exception as exc:  # noqa: BLE001 - classified below
                self._dispose(queue, outcome, unit, exc)
            else:
                elapsed = time.perf_counter() - started
                self._absorb(queue, outcome, unit, results)
                self.obs.metrics.distribution(
                    "resilience.unit_latency_us").observe(elapsed * 1e6)
                self._emit("unit_done", pairs=len(unit.indices),
                           attempt=unit.attempt, rung=unit.rung,
                           elapsed_s=round(elapsed, 6))
            self._settle(outcome, queue)


def replace_unit(unit: _Unit, **changes) -> _Unit:
    """``dataclasses.replace`` for units (fresh lists, shared pairs)."""
    merged = {"indices": list(unit.indices), "attempt": unit.attempt,
              "rung": unit.rung, "config": unit.config,
              "rungs": unit.rungs, "fault": unit.fault,
              "error": unit.error}
    merged.update(changes)
    return _Unit(**merged)
