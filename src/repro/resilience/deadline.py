"""Per-call deadlines/budgets for the execution layer.

A :class:`Deadline` is a monotonic-clock budget threaded through the
supervised engine (and cooperatively honoured by
:class:`~repro.exec.BatchEngine` via ``BatchConfig.deadline_s``): work
that would start after expiry is skipped and reported as structured
per-pair failures rather than raising, unless the caller asked for
exceptions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import ConfigurationError, DeadlineExceeded


@dataclass(frozen=True)
class Deadline:
    """A wall-clock budget anchored to the monotonic clock.

    ``expires_at`` is a :func:`time.monotonic` timestamp; ``None``
    means unbounded (every query answers "plenty of time left").
    """

    expires_at: float | None

    @classmethod
    def after(cls, seconds: float | None) -> "Deadline":
        """A deadline ``seconds`` from now (``None`` = unbounded)."""
        if seconds is None:
            return cls(expires_at=None)
        if seconds <= 0:
            raise ConfigurationError(
                f"deadline must be > 0 seconds, got {seconds}")
        return cls(expires_at=time.monotonic() + seconds)

    @classmethod
    def unbounded(cls) -> "Deadline":
        return cls(expires_at=None)

    @property
    def bounded(self) -> bool:
        return self.expires_at is not None

    @property
    def expired(self) -> bool:
        return (self.expires_at is not None
                and time.monotonic() >= self.expires_at)

    def remaining(self) -> float:
        """Seconds left (``inf`` when unbounded, never negative)."""
        if self.expires_at is None:
            return float("inf")
        return max(0.0, self.expires_at - time.monotonic())

    def clamp(self, seconds: float | None) -> float | None:
        """The tighter of ``seconds`` and the remaining budget, as a
        wait timeout (``None`` = wait forever)."""
        if self.expires_at is None:
            return seconds
        left = self.remaining()
        return left if seconds is None else min(seconds, left)

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired:
            raise DeadlineExceeded(f"{what} exceeded its deadline")
