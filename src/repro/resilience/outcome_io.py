"""Stable on-disk ``smx-outcome/1`` format: checkpoint and resume.

A :class:`~repro.resilience.failures.BatchOutcome` -- completed
results, quarantine list, shed/failure records, counters, degradation
map -- serializes to one JSON document the supervised engine writes
incrementally (write-then-rename, see :mod:`repro.core.atomicio`)
after every settled shard wave. The same document doubles as

- the **checkpoint** a SIGKILL'd run resumes from (``complete`` false;
  the ``queue`` and ``remaining`` sections carry the supervisor's
  in-flight recovery units and not-yet-absorbed wave units, at their
  exact attempt counts, so the resumed run replays the identical
  decision sequence), and
- the **final outcome** a finished run leaves behind (``complete``
  true, empty queue), which ``repro stats`` and the service daemon's
  ``done/`` spool consume.

Serialization is *bit-stable*: every value is coerced to plain JSON
scalars (NumPy integers become ``int``), keys are emitted sorted, and
``to_document(from_document(doc)) == doc`` holds exactly -- the
property the kill/resume chaos tests lean on when they assert a
resumed union is indistinguishable from an uninterrupted run.

Scrooge's memory-frugality argument (PAPERS.md) shapes the format:
results are stored as flat per-pair rows keyed by index, so a
checkpoint can be written and merged without materialising anything
beyond the outcome the engine already holds, and a resumed run only
ever loads the remainder it still has to execute.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import AlignerResult, DPStats
from repro.core.atomicio import atomic_write_json
from repro.dp.alignment import Alignment
from repro.resilience.failures import BatchOutcome, PairFailure

SCHEMA = "smx-outcome/1"


def _clean(value):
    """Coerce to bit-stable plain-JSON values (NumPy scalars -> int/
    float, tuples -> lists, dict keys -> str)."""
    if isinstance(value, (bool, str)) or value is None:
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_clean(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _clean(item) for key, item in value.items()}
    return str(value)


# ----------------------------------------------------------------------
# Per-record serialization
# ----------------------------------------------------------------------

def result_to_dict(result: AlignerResult) -> dict:
    """One completed pair's row (alignment inlined when present)."""
    row: dict = {"score": _clean(result.score)}
    if result.alignment is not None:
        alignment = result.alignment
        row["alignment"] = {
            "score": _clean(alignment.score),
            "cigar": [[int(count), op] for count, op in alignment.cigar],
            "query_len": int(alignment.query_len),
            "ref_len": int(alignment.ref_len),
        }
        if alignment.meta:
            row["alignment"]["meta"] = _clean(alignment.meta)
    stats = result.stats
    if stats.cells_computed or stats.cells_stored or stats.blocks:
        row["stats"] = {"cells_computed": int(stats.cells_computed),
                        "cells_stored": int(stats.cells_stored),
                        "blocks": int(stats.blocks)}
    if result.failed:
        row["failed"] = True
        row["failure_reason"] = result.failure_reason
    if result.meta:
        row["meta"] = _clean(result.meta)
    return row


def result_from_dict(row: dict) -> AlignerResult:
    alignment = None
    if "alignment" in row:
        doc = row["alignment"]
        alignment = Alignment(
            score=doc["score"],
            cigar=[(count, op) for count, op in doc["cigar"]],
            query_len=doc["query_len"], ref_len=doc["ref_len"],
            meta=dict(doc.get("meta") or {}))
    stats_doc = row.get("stats") or {}
    return AlignerResult(
        alignment=alignment, score=row.get("score"),
        stats=DPStats(cells_computed=stats_doc.get("cells_computed", 0),
                      cells_stored=stats_doc.get("cells_stored", 0),
                      blocks=stats_doc.get("blocks", 0)),
        failed=bool(row.get("failed", False)),
        failure_reason=row.get("failure_reason", ""),
        meta=dict(row.get("meta") or {}))


def failure_to_dict(failure: PairFailure) -> dict:
    return {"index": int(failure.index), "fault": failure.fault,
            "error_type": failure.error_type,
            "message": failure.message,
            "attempts": int(failure.attempts),
            "rungs": list(failure.rungs)}


def failure_from_dict(row: dict) -> PairFailure:
    return PairFailure(index=row["index"], fault=row["fault"],
                       error_type=row["error_type"],
                       message=row.get("message", ""),
                       attempts=row.get("attempts", 1),
                       rungs=tuple(row.get("rungs") or ()))


# ----------------------------------------------------------------------
# Whole-document round trip
# ----------------------------------------------------------------------

@dataclass
class Checkpoint:
    """An ``smx-outcome/1`` document, deserialized.

    Attributes:
        outcome: The reconstructed partial (or complete) outcome;
            ``results`` is padded to ``pairs`` entries with ``None`` at
            every position not yet completed.
        pairs: Total pairs in the run the document describes.
        complete: True for a finished run (empty queue/remaining).
        queue: Supervisor recovery units still pending, as plain dicts
            (``{"indices": [...], "attempt": n, "rung": ..., "rungs":
            [...], "fault": ...}``) in FIFO order.
        remaining: Wave units not yet absorbed when the checkpoint was
            taken (pair-index lists, attempt 0).
        digest: Content hash of the submitted pairs (resume guard).
    """

    outcome: BatchOutcome
    pairs: int
    complete: bool = False
    queue: list[dict] = field(default_factory=list)
    remaining: list[list[int]] = field(default_factory=list)
    digest: str | None = None

    def unsettled(self) -> list[int]:
        """Pair indices the checkpointed run had not finished."""
        pending = set()
        for unit in self.queue:
            pending.update(unit["indices"])
        for indices in self.remaining:
            pending.update(indices)
        return sorted(pending)


def pairs_digest(pairs) -> str:
    """Order-sensitive content hash of an encoded pair list.

    Guards ``--resume`` against being pointed at a checkpoint from a
    different batch: same pairs in the same order, same digest.
    """
    digest = hashlib.blake2b(digest_size=16)
    for q_codes, r_codes in pairs:
        digest.update(np.asarray(q_codes, dtype=np.uint8).tobytes())
        digest.update(b"|")
        digest.update(np.asarray(r_codes, dtype=np.uint8).tobytes())
        digest.update(b";")
    return digest.hexdigest()


def to_document(outcome: BatchOutcome, *, pairs: int,
                complete: bool = True, queue: list[dict] = (),
                remaining: list[list[int]] = (),
                digest: str | None = None) -> dict:
    """Serialize an outcome (plus supervisor state) to one document."""
    results = {str(index): result_to_dict(result)
               for index, result in enumerate(outcome.results)
               if result is not None}
    document = {
        "schema": SCHEMA,
        "pairs": int(pairs),
        "complete": bool(complete),
        "completed": len(results),
        "results": results,
        "failures": [failure_to_dict(f) for f in sorted(
            outcome.failures, key=lambda f: f.index)],
        "counters": {key: int(outcome.counters[key])
                     for key in sorted(outcome.counters)},
        "degraded": {str(index): list(outcome.degraded[index])
                     for index in sorted(outcome.degraded)},
        "queue": [_clean(unit) for unit in queue],
        "remaining": [[int(i) for i in indices]
                      for indices in remaining],
    }
    if digest is not None:
        document["pairs_digest"] = digest
    return document


def from_document(document: dict) -> Checkpoint:
    """Parse one document back; raises ``ValueError`` when malformed."""
    if not isinstance(document, dict) or "schema" not in document:
        raise ValueError("not an SMX outcome (no schema key)")
    schema = str(document["schema"])
    if not schema.startswith("smx-outcome/"):
        raise ValueError(f"unknown schema {schema!r} "
                         f"(expected {SCHEMA})")
    try:
        pairs = int(document["pairs"])
        results: list[AlignerResult | None] = [None] * pairs
        for key, row in (document.get("results") or {}).items():
            index = int(key)
            if not 0 <= index < pairs:
                raise ValueError(f"result index {index} outside "
                                 f"0..{pairs - 1}")
            results[index] = result_from_dict(row)
        outcome = BatchOutcome(
            results=results,
            failures=[failure_from_dict(row)
                      for row in document.get("failures") or []],
            counters={str(key): int(value) for key, value in
                      (document.get("counters") or {}).items()},
            degraded={int(key): tuple(value) for key, value in
                      (document.get("degraded") or {}).items()})
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed smx-outcome document: {exc}") \
            from None
    return Checkpoint(
        outcome=outcome, pairs=pairs,
        complete=bool(document.get("complete", True)),
        queue=[dict(unit) for unit in document.get("queue") or []],
        remaining=[list(map(int, indices))
                   for indices in document.get("remaining") or []],
        digest=document.get("pairs_digest"))


def write(path: str, document: dict) -> str:
    """Atomically write one document (write-then-rename)."""
    return atomic_write_json(path, document, sort_keys=True)


def load_document(path: str) -> dict:
    """Read and schema-check a document; ``ValueError`` on anything
    that is not a well-formed ``smx-outcome/1`` file."""
    with open(path, encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc.msg})") \
                from None
    if not isinstance(document, dict) or "schema" not in document:
        raise ValueError(f"{path} is not an SMX outcome "
                         f"(no schema key)")
    if not str(document["schema"]).startswith("smx-outcome/"):
        raise ValueError(f"{path} has unknown schema "
                         f"{document['schema']!r}")
    return document


def load(path: str) -> Checkpoint:
    """Read, schema-check, and deserialize a checkpoint file."""
    document = load_document(path)
    try:
        return from_document(document)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None


def summarize(document: dict) -> dict:
    """Digest rows for the ``stats``/``top`` CLI renderers."""
    pairs = int(document.get("pairs") or 0)
    completed = len(document.get("results") or {})
    failures = document.get("failures") or []
    by_fault: dict[str, int] = {}
    shed = 0
    for row in failures:
        fault = row.get("fault", "error")
        by_fault[fault] = by_fault.get(fault, 0) + 1
        if row.get("error_type") == "LoadShed":
            shed += 1
    unsettled = set()
    for unit in document.get("queue") or []:
        unsettled.update(unit.get("indices") or [])
    for indices in document.get("remaining") or []:
        unsettled.update(indices)
    return {
        "pairs": pairs,
        "completed": completed,
        "fraction": completed / pairs if pairs else 0.0,
        "complete": bool(document.get("complete", True)),
        "failures": len(failures),
        "quarantined_by_fault": dict(sorted(by_fault.items())),
        "shed": shed,
        "unsettled": len(unsettled),
        "counters": dict(document.get("counters") or {}),
    }
