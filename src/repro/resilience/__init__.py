"""Fault-tolerant execution layer for the batch engine.

``repro.resilience`` wraps :class:`repro.exec.BatchEngine` in a
supervisor that shards work, enforces per-shard timeouts and per-call
deadlines, retries and bisects failing shards down to the poison pairs,
walks a degradation ladder of slower-but-safer configurations, and
returns structured partial results instead of raising. A deterministic
seeded fault injector (:mod:`repro.resilience.chaos`) exercises all of
it.

Import note: :mod:`repro.exec.engine` imports the (dependency-light)
``chaos`` and ``deadline`` modules from this package, while the
supervisor and ladder import the engine back. The heavyweight names are
therefore exposed lazily (PEP 562) so the package can be imported from
either direction without a cycle.
"""

from __future__ import annotations

from repro.resilience.chaos import (
    ChaosPlan,
    InjectedKill,
    InjectionEvent,
    parse_rates,
)
from repro.resilience.deadline import Deadline
from repro.resilience.failures import FAULTS, BatchOutcome, PairFailure

_LAZY = {
    "ResilienceConfig": "repro.resilience.supervisor",
    "SupervisedEngine": "repro.resilience.supervisor",
    "HEURISTIC_ALGORITHMS": "repro.resilience.ladder",
    "plan_rungs": "repro.resilience.ladder",
    "exact_config": "repro.resilience.ladder",
    "Checkpoint": "repro.resilience.outcome_io",
}

__all__ = [
    "BatchOutcome",
    "ChaosPlan",
    "Checkpoint",
    "Deadline",
    "FAULTS",
    "InjectedKill",
    "InjectionEvent",
    "PairFailure",
    "ResilienceConfig",
    "SupervisedEngine",
    "outcome_io",
    "parse_rates",
    "plan_rungs",
]


def __getattr__(name: str):
    import importlib
    if name == "outcome_io":
        value = importlib.import_module("repro.resilience.outcome_io")
        globals()[name] = value
        return value
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
