"""The degradation ladder: slower-but-safer execution paths.

When a pair (or shard) keeps failing, the supervisor does not just give
up -- it walks a ladder of progressively more conservative
configurations until one succeeds or the ladder runs dry:

=============  ========================================================
rung            meaning
=============  ========================================================
``wide-dtype``  Re-run with the vectorized kernels forced to int64
                rows (``BatchConfig.wide_dtype``): the answer to an
                overflow-guard trip / :class:`~repro.errors.RangeError`
                where the int-narrowed fast path left its proven range.
``scalar``      Re-run through the per-pair scalar aligners (the
                reference path): the answer to any fault inside the
                vectorized engine.
``exact``       Re-run a *failed heuristic* (banded band too narrow,
                X-drop pruned the true path) with the exact
                full-matrix aligner: trades the heuristic's speed for a
                guaranteed answer.
=============  ========================================================

Every rung actually engaged is recorded in ``repro.obs`` metrics
(``resilience.degraded`` with a ``rung`` label), in the
:class:`~repro.resilience.failures.BatchOutcome` counters, and -- for
pairs that still fail -- in the ``rungs`` field of their
:class:`~repro.resilience.failures.PairFailure`.
"""

from __future__ import annotations

from dataclasses import replace

from repro.exec.engine import BatchConfig

#: Heuristic algorithms the ``exact`` rung can promote.
HEURISTIC_ALGORITHMS = ("banded", "xdrop")

#: Engines with a vectorized fast path the ``scalar`` rung can leave
#: (the adaptive ``auto``, batched ``wavefront`` and ``bitparallel``
#: engines degrade the same way the plain vector engine does; a
#: degraded bitparallel batch is score-only, so the scalar rung's
#: ``compute_score`` path answers it exactly).
VECTORIZED_ENGINES = ("vector", "wavefront", "bitparallel", "auto")


def exact_config(batch: BatchConfig) -> BatchConfig:
    """The exact scalar configuration equivalent to a heuristic batch."""
    return BatchConfig(engine="scalar", mode=batch.mode,
                       algorithm="full", traceback=batch.traceback,
                       workers=1)


def plan_rungs(batch: BatchConfig,
               fault: str) -> list[tuple[str, BatchConfig]]:
    """Ordered ``(rung name, degraded config)`` candidates for a fault.

    The returned configs are single-worker (the ladder only ever runs
    on an isolated pair or a small quarantine probe) and strip any
    engine deadline -- the supervisor owns the clock.
    """
    base = replace(batch, workers=1, deadline_s=None)
    rungs: list[tuple[str, BatchConfig]] = []
    if fault == "alignment":
        if batch.algorithm in HEURISTIC_ALGORITHMS:
            rungs.append(("exact", exact_config(batch)))
        elif batch.engine in VECTORIZED_ENGINES:
            rungs.append(("scalar", replace(base, engine="scalar")))
        return rungs
    if fault == "rangeerror":
        if not base.wide_dtype:
            rungs.append(("wide-dtype", replace(base, wide_dtype=True)))
        if base.engine in VECTORIZED_ENGINES:
            rungs.append(("scalar", replace(base, engine="scalar",
                                            wide_dtype=True)))
        return rungs
    # Generic computation faults: drop off the vectorized fast path.
    if base.engine in VECTORIZED_ENGINES and fault not in (
            "hang", "crash", "oserror", "deadline"):
        rungs.append(("scalar", replace(base, engine="scalar")))
    return rungs
