"""Deterministic, seeded fault injection for the execution layer.

A :class:`ChaosPlan` decides -- purely from a seed and the *content* of
each (query, reference) pair -- whether that pair is poisoned with a
given fault class. Content-based decisions make the injection invariant
under sharding, bucketing, and bisection: however the supervisor
regroups the batch, the same pairs misbehave, which is exactly what a
poison-pair quarantine test needs. Every decision is a keyed BLAKE2
hash, so two runs with the same seed inject the identical fault set.

Fault classes (``CLASSES``):

``crash``
    The worker dies. Inside a real pool worker process this is
    ``os._exit`` (the parent sees ``BrokenProcessPool``, the honest
    signature of a crashed worker); inline / in a thread it raises
    :class:`InjectedCrash`.
``hang``
    The worker sleeps ``hang_s`` seconds (default far beyond any
    reasonable shard timeout) before returning, modelling a stuck
    kernel; supervision must detect it via timeouts.
``oserror``
    A transient I/O failure (:class:`InjectedOSError`), the class of
    error a retry is expected to clear.
``bitflip``
    A single bit is XOR-ed into the pair's computed score (and its
    alignment's stored score), modelling silent datapath corruption.
    Only result *validation* can catch this one.
``rangeerror``
    A synthetic :class:`repro.errors.RangeError` -- the SMX ISA's
    hardware-invariant violation (a delta left its proven [0, theta]
    range), the paper's principled "the accelerator lied" signal.

Each poisoned (pair, class) is further classified **transient**
(fires only on attempt 0 -- one retry clears it) or **persistent**
(fires on every attempt -- only quarantine ends it) by another seeded
hash; :meth:`ChaosPlan.ground_truth` exposes the full decision table so
tests can check the supervisor's accounting against the injector's.

Plans are installed per-execution by the supervised worker functions
(:func:`install` / :func:`deactivate`), and every *fired* injection is
appended to the plan's thread-safe ``fired`` log.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import os
import struct
import threading
import time
from dataclasses import dataclass, field, fields

import numpy as np

from repro.errors import ConfigurationError, RangeError

#: Injectable fault classes, in priority order (one aborting fault per
#: execution: the first poisoned pair's highest-priority class wins).
CLASSES = ("crash", "hang", "oserror", "bitflip", "rangeerror")

#: Aborting classes (the execution raises / dies); ``bitflip`` instead
#: corrupts results silently and ``hang`` delays before returning.
RAISING = ("crash", "oserror", "rangeerror")


class InjectedCrash(RuntimeError):
    """Inline stand-in for a worker process dying mid-shard."""


class InjectedKill(BaseException):
    """The whole *supervisor* dying (SIGKILL stand-in), not a worker.

    Raised by the supervised engine when a plan's ``kill_at_unit``
    fires: derives from ``BaseException`` so no recovery path can
    swallow it -- exactly like the real signal, everything in memory is
    lost and only the last write-then-rename checkpoint survives.
    """


class InjectedOSError(OSError):
    """An injected transient I/O failure."""


class InjectedRangeError(RangeError):
    """An injected SMX hardware-invariant violation."""


@dataclass
class InjectionEvent:
    """One fired injection, as recorded in the ground-truth log."""

    cls: str
    digest: int
    attempt: int
    persistent: bool


@dataclass
class ChaosPlan:
    """Seeded fault-injection policy (rates are per pair, per class)."""

    seed: int = 0
    crash: float = 0.0
    hang: float = 0.0
    oserror: float = 0.0
    bitflip: float = 0.0
    rangeerror: float = 0.0
    #: Fraction of poisoned (pair, class) combos that fire on *every*
    #: attempt instead of only the first.
    persistent_fraction: float = 0.5
    #: Injected hang duration; keep it far above the shard timeout so a
    #: "hang" can never be outrun by a slow supervisor.
    hang_s: float = 30.0
    #: Which score bit a ``bitflip`` toggles.
    flip_bit: int = 6
    #: Kill the *supervisor process* (SIGKILL model) right after it has
    #: settled -- absorbed or disposed of, checkpoint included -- this
    #: many units. ``None`` never kills. Unlike the content-keyed
    #: classes above this is positional: "die after shard N", the fault
    #: the checkpoint/resume layer exists to survive.
    kill_at_unit: int | None = None
    fired: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        for name in CLASSES + ("persistent_fraction",):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"chaos rate {name}={rate} outside [0, 1]")
        if self.hang_s <= 0:
            raise ConfigurationError(f"hang_s must be > 0, got "
                                     f"{self.hang_s}")
        if self.kill_at_unit is not None and self.kill_at_unit < 1:
            raise ConfigurationError(
                f"kill_at_unit must be >= 1 (units settled before the "
                f"kill), got {self.kill_at_unit}")
        self._lock = threading.Lock()

    def should_kill(self, units_settled: int) -> bool:
        """Does the supervisor die after settling this many units?"""
        return (self.kill_at_unit is not None
                and units_settled == self.kill_at_unit)

    def record_kill(self, units_settled: int) -> None:
        """Log the kill in the fired ledger (digest = unit ordinal)."""
        event = InjectionEvent(cls="kill", digest=units_settled,
                               attempt=0, persistent=False)
        with self._lock:
            self.fired.append(event)

    # Locks do not pickle; pool workers get a fresh one. The fired log
    # stays behind too: each worker starts an empty log and ships only
    # its own events back (see the supervisor's result merging).
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_lock", None)
        state["fired"] = []
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- seeded decisions --------------------------------------------------

    def _unit(self, salt: str, digest: int) -> float:
        """Deterministic uniform in [0, 1) keyed on (seed, salt, pair)."""
        raw = hashlib.blake2b(
            struct.pack("<qq", self.seed, digest) + salt.encode(),
            digest_size=8).digest()
        return struct.unpack("<Q", raw)[0] / 2.0 ** 64

    @staticmethod
    def pair_digest(q_codes: np.ndarray, r_codes: np.ndarray) -> int:
        """Content hash identifying a pair across shards and retries."""
        raw = hashlib.blake2b(
            np.asarray(q_codes, dtype=np.uint8).tobytes()
            + b"|" + np.asarray(r_codes, dtype=np.uint8).tobytes(),
            digest_size=8).digest()
        return struct.unpack("<q", raw)[0]

    def poisoned(self, cls: str, digest: int) -> bool:
        return self._unit(f"rate:{cls}", digest) < getattr(self, cls)

    def persistent(self, cls: str, digest: int) -> bool:
        return (self._unit(f"persist:{cls}", digest)
                < self.persistent_fraction)

    def fires(self, cls: str, digest: int, attempt: int) -> bool:
        """Does class ``cls`` fire for this pair on this attempt?"""
        if not self.poisoned(cls, digest):
            return False
        return attempt == 0 or self.persistent(cls, digest)

    def ground_truth(self, pairs) -> list[dict[str, str]]:
        """Per-pair poison table: ``{cls: "transient"|"persistent"}``."""
        table = []
        for q_codes, r_codes in pairs:
            digest = self.pair_digest(q_codes, r_codes)
            entry = {}
            for cls in CLASSES:
                if self.poisoned(cls, digest):
                    entry[cls] = ("persistent"
                                  if self.persistent(cls, digest)
                                  else "transient")
            table.append(entry)
        return table

    # -- firing ------------------------------------------------------------

    def _record(self, cls: str, digest: int, attempt: int) -> None:
        event = InjectionEvent(cls=cls, digest=digest, attempt=attempt,
                               persistent=self.persistent(cls, digest))
        with self._lock:
            self.fired.append(event)

    def apply(self, pairs, results, attempt: int,
              in_worker: bool) -> None:
        """Inject this plan's faults into one finished execution.

        Called by :meth:`BatchEngine.run <repro.exec.BatchEngine.run>`
        after computing ``results`` (injecting after the compute keeps
        the hook at one site while being observationally identical for
        the supervisor). Bit-flips corrupt results in place; the first
        pair poisoned with an aborting class raises (or kills the
        worker), and a hang sleeps once before returning.
        """
        abort: tuple[str, int] | None = None
        for (q_codes, r_codes), result in zip(pairs, results):
            digest = self.pair_digest(q_codes, r_codes)
            if self.fires("bitflip", digest, attempt) and result is not None:
                self._record("bitflip", digest, attempt)
                flip = 1 << self.flip_bit
                if result.score is not None:
                    result.score ^= flip
                if result.alignment is not None:
                    result.alignment.score ^= flip
            if abort is None:
                for cls in ("crash", "hang", "oserror", "rangeerror"):
                    if self.fires(cls, digest, attempt):
                        abort = (cls, digest)
                        break
        if abort is None:
            return
        cls, digest = abort
        self._record(cls, digest, attempt)
        if cls == "hang":
            time.sleep(self.hang_s)
        elif cls == "crash":
            if in_worker:
                os._exit(17)
            raise InjectedCrash("injected worker crash")
        elif cls == "oserror":
            raise InjectedOSError("injected transient I/O failure")
        else:
            raise InjectedRangeError(
                "injected: delta left the proven [0, theta] range")

    def corrupt_borders(self, store, q_codes: np.ndarray,
                        r_codes: np.ndarray, attempt: int = 0) -> bool:
        """Kernel bit-flip hook for the SMX functional model.

        Flips one bit of one stored tile-border element in a
        :class:`~repro.core.traceback.TileBorderStore` when this pair is
        bitflip-poisoned. Returns whether a flip happened.
        """
        digest = self.pair_digest(q_codes, r_codes)
        if not self.fires("bitflip", digest, attempt):
            return False
        self._record("bitflip", digest, attempt)
        strip = int(self._unit("flip:strip", digest)
                    * len(store.dvp_cols))
        tiles = store.dvp_cols[strip]
        col = int(self._unit("flip:col", digest) * len(tiles))
        border = tiles[col]
        element = int(self._unit("flip:elem", digest) * len(border))
        border[element] ^= 1
        return True

    def spec(self) -> dict:
        """The plan's declarative part (for run-report params)."""
        return {f.name: getattr(self, f.name) for f in fields(self)
                if f.name != "fired"}


def parse_rates(text: str, seed: int = 0, **kwargs) -> ChaosPlan:
    """Build a plan from a CLI-style ``cls=rate[,cls=rate...]`` string.

    Besides the rate classes, ``kill=N`` sets ``kill_at_unit=N`` (kill
    the supervisor after N settled units -- pair with ``--checkpoint``
    to demo crash-safe resume from the command line).
    """
    rates: dict[str, float] = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        name, _, value = item.partition("=")
        name = name.strip()
        if name == "kill":
            try:
                kwargs["kill_at_unit"] = int(value)
            except ValueError:
                raise ConfigurationError(
                    f"bad kill unit {value!r} (expected an integer)"
                ) from None
            continue
        if name not in CLASSES:
            raise ConfigurationError(
                f"unknown chaos class {name!r}; choose from "
                f"{CLASSES + ('kill',)}")
        try:
            rates[name] = float(value)
        except ValueError:
            raise ConfigurationError(
                f"bad chaos rate {value!r} for class {name!r}") from None
    return ChaosPlan(seed=seed, **rates, **kwargs)


# ----------------------------------------------------------------------
# Installation: a process-global plan plus a context-local overlay.
#
# The supervisor's thread backend runs several shard executions
# concurrently in one process, each with its own attempt counter, so
# the per-execution activation lives in a ContextVar (thread-isolated);
# pool worker processes and the CLI install process-globally.
# ----------------------------------------------------------------------

_Activation = tuple[ChaosPlan, int, bool]  # (plan, attempt, in_worker)
_GLOBAL: _Activation | None = None
_LOCAL: contextvars.ContextVar[_Activation | None] = \
    contextvars.ContextVar("repro_chaos_local", default=None)


def install(plan: ChaosPlan | None, attempt: int = 0,
            in_worker: bool = False) -> None:
    """Activate ``plan`` process-globally (pool workers, CLI demos).

    ``attempt`` is the supervisor's retry counter for the execution
    about to run (transient faults only fire at attempt 0);
    ``in_worker`` marks a pool worker process, where an injected crash
    genuinely kills the process.
    """
    global _GLOBAL
    _GLOBAL = None if plan is None else (plan, attempt, in_worker)


def deactivate() -> None:
    install(None)


@contextlib.contextmanager
def scoped(plan: ChaosPlan, attempt: int = 0, in_worker: bool = False):
    """Context-local activation for one in-process execution."""
    token = _LOCAL.set((plan, attempt, in_worker))
    try:
        yield plan
    finally:
        _LOCAL.reset(token)


@contextlib.contextmanager
def suppressed():
    """Context-locally disable injection even if a plan is installed
    globally -- used for clean reference recomputes (validation)."""
    token = _LOCAL.set(_OFF)
    try:
        yield
    finally:
        _LOCAL.reset(token)


#: Context-local sentinel: injection explicitly off, ignoring _GLOBAL.
_OFF: object = object()


def _current() -> _Activation | None:
    local = _LOCAL.get()
    if local is _OFF:
        return None
    return local or _GLOBAL


def active() -> ChaosPlan | None:
    current = _current()
    return current[0] if current else None


def is_active() -> bool:
    return _current() is not None


def apply_to_results(pairs, results) -> None:
    """Engine-side hook: inject the active plan's faults, if any."""
    current = _current()
    if current is not None:
        plan, attempt, in_worker = current
        plan.apply(pairs, results, attempt, in_worker)


def corrupt_tile_borders(store, q_codes, r_codes) -> None:
    """SMX-functional-model hook (see ChaosPlan.corrupt_borders)."""
    current = _current()
    if current is not None:
        plan, attempt, _ = current
        plan.corrupt_borders(store, q_codes, r_codes, attempt)
