"""Structured partial results: per-pair failures and batch outcomes.

The supervised engine never lets one bad pair abort a batch: every
submitted pair ends either as a normal
:class:`~repro.algorithms.base.AlignerResult` or as a typed
:class:`PairFailure`, and the two are zipped back into submission order
inside a :class:`BatchOutcome`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms.base import AlignerResult

#: Fault vocabulary used across failures, metrics labels, and the
#: chaos injector: the five injectable classes plus the supervisor's
#: own classifications.
FAULTS = ("crash", "hang", "oserror", "bitflip", "rangeerror",
          "alignment", "deadline", "error")


@dataclass(frozen=True)
class PairFailure:
    """One pair's terminal failure, after all recovery was exhausted.

    Attributes:
        index: Position of the pair in the submitted batch.
        fault: Classified fault kind (one of :data:`FAULTS`).
        error_type: Name of the underlying exception class (or
            ``"Timeout"`` for hangs, ``"Validation"`` for corruption
            caught by result validation).
        message: Human-readable detail from the last attempt.
        attempts: Executions that touched this pair and failed.
        rungs: Degradation-ladder rungs that were tried on the way down.
    """

    index: int
    fault: str
    error_type: str
    message: str
    attempts: int = 1
    rungs: tuple[str, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - display helper
        detail = f" after {self.attempts} attempts" if self.attempts else ""
        return (f"pair {self.index}: {self.fault} "
                f"({self.error_type}: {self.message}){detail}")


@dataclass
class BatchOutcome:
    """Everything the supervised engine knows about one batch run.

    ``results`` holds one entry per submitted pair, in submission
    order: an :class:`AlignerResult` for pairs that completed (possibly
    via a degraded path) and ``None`` for pairs listed in ``failures``.
    """

    results: list[AlignerResult | None]
    failures: list[PairFailure] = field(default_factory=list)
    #: Flat supervisor accounting, e.g. ``{"faults.crash": 2,
    #: "retries": 3, "degraded.wide-dtype": 1, "quarantined.crash": 1}``.
    counters: dict[str, int] = field(default_factory=dict)
    #: Degradation-ladder rungs actually engaged, per pair index.
    degraded: dict[int, tuple[str, ...]] = field(default_factory=dict)
    #: Injection events observed in-process (chaos runs only).
    injections: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def failure_index(self) -> dict[int, PairFailure]:
        return {failure.index: failure for failure in self.failures}

    def completed(self) -> int:
        return sum(result is not None for result in self.results)

    def merged(self) -> list:
        """``results`` with each ``None`` replaced by its PairFailure
        record -- the "AlignerResult-order partial results" view."""
        by_index = self.failure_index
        return [by_index[i] if result is None else result
                for i, result in enumerate(self.results)]

    def alignments(self) -> list:
        """Per-pair :class:`~repro.dp.alignment.Alignment` objects,
        with :class:`PairFailure` records at failed positions."""
        return [entry if isinstance(entry, PairFailure)
                else entry.alignment for entry in self.merged()]

    def scores(self) -> list:
        """Per-pair scores, with :class:`PairFailure` records at
        failed positions (``None`` stays for pruned heuristics)."""
        return [entry if isinstance(entry, PairFailure)
                else entry.score for entry in self.merged()]

    def bump(self, key: str, amount: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount
