"""E06 / Figure 12 (right): core vs. SMX-engine work balance.

For each SMX-accelerated workload, the fraction of time the core is
busy and the SMX-engine utilization. Expected shape (paper Sec. 9.2):
Hirschberg keeps both sides active (less core on longer ONT reads);
X-drop keeps core *and* engine busy (drop checks + block dispatch);
protein leaves the core nearly idle while the engine saturates.
"""

from repro.analysis.reporting import format_table
from repro.config import dna_edit_config, dna_gap_config, protein_config
from repro.core.pipelines import (
    SmxHirschbergPipeline,
    SmxProteinFullPipeline,
    SmxXdropPipeline,
)
from repro.core.system import SmxSystem
from repro.workloads.datasets import ont_like, pacbio_like, uniprot_like


def experiment(scale: float):
    pacbio = pacbio_like(n_pairs=6, scale=scale)
    ont = ont_like(n_pairs=6, scale=scale)
    uniprot = uniprot_like(n_pairs=16)
    runs = [
        ("hirschberg", SmxHirschbergPipeline(
            SmxSystem(dna_edit_config(), max_sim_tiles=60_000)),
         [pacbio, ont]),
        ("xdrop", SmxXdropPipeline(
            SmxSystem(dna_gap_config(), max_sim_tiles=60_000)),
         [pacbio, ont]),
        ("protein-full", SmxProteinFullPipeline(
            SmxSystem(protein_config(), max_sim_tiles=60_000)),
         [uniprot]),
    ]
    rows = []
    for name, pipeline, datasets in runs:
        for dataset in datasets:
            timing = pipeline.timing(dataset)
            rows.append([
                name, dataset.name,
                f"{timing.smx.core_busy_fraction:.0%}",
                f"{timing.smx.engine_utilization:.0%}",
            ])
    table = format_table(
        ["algorithm", "dataset", "core busy", "engine utilization"],
        rows,
        title="Figure 12 (right) -- core / SMX-engine work balance")
    notes = (
        "Paper shape: Hirschberg alternates coordination and traceback "
        "on the core (less core time on longer ONT reads than PacBio); "
        "X-drop keeps both units busy; protein leaves the core almost "
        "idle (only redsum reductions) while the engine saturates.")
    return "fig12_balance", [table, notes]


def test_fig12_right(run_experiment, scale):
    run_experiment(experiment, scale)
