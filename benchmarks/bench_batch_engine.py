"""Batched execution engine: vector-vs-scalar software throughput.

Unlike the paper-figure benchmarks (which report *simulated* SMX
cycles), this one measures the repository's own software speed: real
wall-clock pairs/second of ``repro.exec`` in both engines, on the
candidate-verification shape the apps produce (many independent pairs
of similar length). The vector engine sweeps whole length-buckets per
NumPy operation and must beat the scalar per-pair loop by >= 5x in
score mode at the reference size (256 pairs of length 512 at the
default ``SMX_BENCH_SCALE=0.2``); results are bit-identical by the
conformance suite, so this benchmark only records speed.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.config import standard_configs
from repro.exec import BatchConfig, BatchEngine
from repro.workloads.synthetic import ErrorProfile, mutate

LENGTH = 512
BASE_PAIRS = 256
BASE_SCALE = 0.2


def _make_pairs(config, n_pairs: int, length: int, seed: int = 7):
    rng = np.random.default_rng(seed)
    profile = ErrorProfile(substitution=0.05, insertion=0.025,
                           deletion=0.025)
    pairs = []
    for _ in range(n_pairs):
        reference = config.alphabet.random(length, rng)
        query, _ = mutate(reference, profile, config.alphabet, rng)
        pairs.append((query, reference))
    return pairs


def _timed_run(config, batch, pairs):
    engine = BatchEngine(config, batch)
    started = time.perf_counter()
    results = engine.run(pairs)
    elapsed = time.perf_counter() - started
    assert len(results) == len(pairs)
    return elapsed, len(pairs) / elapsed


def experiment(scale: float):
    n_pairs = max(8, round(BASE_PAIRS * scale / BASE_SCALE))
    rows = []
    timing_rows = []
    speedups = {}
    for config_name in ("dna-edit", "protein"):
        config = standard_configs()[config_name]
        pairs = _make_pairs(config, n_pairs, LENGTH)
        for mode, traceback in (("score", False), ("align", True)):
            rates = {}
            for engine_name in ("scalar", "vector"):
                batch = BatchConfig(engine=engine_name, mode="global",
                                    traceback=traceback)
                elapsed, rate = _timed_run(config, batch, pairs)
                rates[engine_name] = rate
                timing_rows.append({
                    "name": f"{config_name}-{mode}-{engine_name}",
                    "config": config_name, "mode": mode,
                    "engine": engine_name, "pairs": n_pairs,
                    "length": LENGTH, "elapsed_s": elapsed,
                    "pairs_per_sec": rate,
                    "cells": n_pairs * LENGTH * LENGTH,
                })
            speedup = rates["vector"] / rates["scalar"]
            speedups[(config_name, mode)] = speedup
            rows.append([config_name, mode, n_pairs, LENGTH,
                         f"{rates['scalar']:,.1f}",
                         f"{rates['vector']:,.1f}",
                         f"{speedup:.1f}x"])
    sections = [format_table(
        ["config", "mode", "pairs", "length", "scalar pairs/s",
         "vector pairs/s", "speedup"],
        rows,
        title="Batched engine -- vector over scalar (wall clock)")]
    headline = min(speedups[(c, "score")] for c in ("dna-edit", "protein"))
    sections.append(
        f"Headline: score-mode vector speedup >= {headline:.1f}x over "
        f"the scalar loop on {n_pairs} pairs of length {LENGTH} "
        "(acceptance floor: 5x). Align mode is lower because the "
        "traceback walk stays per-pair scalar.")
    payload = {
        "params": {"pairs": n_pairs, "length": LENGTH},
        "timings": timing_rows,
        "tables": {"speedups": [
            {"config": c, "mode": m, "speedup": s}
            for (c, m), s in sorted(speedups.items())]},
    }
    return "bench_batch_engine", sections, payload


def test_batch_engine(run_experiment, scale):
    result = run_experiment(experiment, scale)
    speedups = {(row["config"], row["mode"]): row["speedup"]
                for row in result[2]["tables"]["speedups"]}
    # The acceptance floor: batching must pay for itself decisively.
    assert speedups[("dna-edit", "score")] >= 5.0
    assert speedups[("protein", "score")] >= 5.0
