"""E02 / Figure 9: throughput of SIMD / SMX-1D / SMX-2D / SMX.

The paper's central performance grid: DP-blocks per second for block
sizes 100/1K/10K under the four configurations, computing either the
score only or the full alignment. Expected shape: SMX-1D gives a
single-digit-to-~20x boost over SIMD; SMX-2D/SMX reach two-to-three
orders of magnitude on large blocks; SMX-2D alone lags SMX on small
blocks and in alignment mode (core-side traceback bottleneck).
"""

from repro.analysis.reporting import format_table
from repro.config import standard_configs
from repro.core.system import IMPLEMENTATIONS, SmxSystem

SIZES = (100, 1_000, 10_000)


def experiment():
    sections = []
    timing_rows = []
    for mode in ("score", "align"):
        rows = []
        for name, config in standard_configs().items():
            system = SmxSystem(config, max_sim_tiles=60_000)
            for size in SIZES:
                timings = {
                    impl: system.implementation_timing(size, size, mode,
                                                       impl)
                    for impl in IMPLEMENTATIONS
                }
                base = timings["simd"].cycles
                for impl, timing in timings.items():
                    timing_rows.append({
                        "name": timing.name, "config": name,
                        "block": size, "mode": mode, "impl": impl,
                        "cycles": timing.cycles, "gcups": timing.gcups,
                        "speedup_over_simd": base / timing.cycles,
                    })
                rows.append([
                    name, size,
                    f"{timings['simd'].alignments_per_second:,.0f}",
                    f"{base / timings['smx1d'].cycles:.1f}x",
                    f"{base / timings['smx2d'].cycles:.1f}x",
                    f"{base / timings['smx'].cycles:.1f}x",
                    f"{timings['smx'].gcups:.0f}",
                ])
        sections.append(format_table(
            ["config", "block", "SIMD blocks/s", "SMX-1D", "SMX-2D",
             "SMX", "SMX GCUPS"],
            rows,
            title=f"Figure 9 ({mode}) -- speedup over the SIMD baseline"))
    notes = (
        "Paper shape: score-only speedups grow with block size "
        "(SMX-1D ~6-23x; SMX up to three orders of magnitude); in "
        "alignment mode SMX-2D alone is held back by core-side "
        "traceback (even losing to SIMD at 100x100) while full SMX "
        "recovers it with SMX-1D recompute; protein shows the largest "
        "SIMD gap.")
    payload = {"params": {"sizes": list(SIZES)}, "timings": timing_rows}
    return "fig09_throughput", sections + [notes], payload


def test_fig09(run_experiment):
    run_experiment(experiment)
