"""E09 / Table 3: peak GCUPS per processing unit and per mm^2.

Published rows are data; SMX rows are computed from the engine model
(VL^2 cells/cycle at 1 GHz) and the calibrated 0.34 mm^2 area. The
headline to reproduce: SMX delivers 15.5-18.6x more peak GCUPS per
added mm^2 than the best published DSAs while covering all four model
classes.
"""

from repro.analysis.area import scale_area
from repro.analysis.reporting import format_table
from repro.baselines.sota import SOTA_TABLE, smx_table_rows


def _flags(entry):
    return "".join(flag if ok else "-" for flag, ok in
                   (("E", entry.edit), ("G", entry.gap),
                    ("P", entry.protein), ("T", entry.traceback)))


def experiment():
    rows = []
    entries = []
    for entry in list(SOTA_TABLE) + smx_table_rows():
        entries.append({
            "name": entry.name, "device": entry.device,
            "flags": _flags(entry),
            "processing_units": entry.processing_units,
            "peak_gcups_per_pu": entry.peak_gcups_per_pu,
            "area_mm2_per_pu": entry.area_mm2_per_pu,
            "gcups_per_mm2": entry.gcups_per_mm2,
        })
    for entry in list(SOTA_TABLE) + smx_table_rows():
        per_area = (f"{entry.gcups_per_mm2:,.0f}"
                    if entry.gcups_per_mm2 else "-")
        rows.append([
            entry.name, entry.device, _flags(entry),
            entry.processing_units,
            f"{entry.peak_gcups_per_pu:,.1f}",
            f"{entry.area_mm2_per_pu:.2f}" if entry.area_mm2_per_pu
            else "-",
            per_area,
        ])
    table = format_table(
        ["study", "device", "EGPT", "PUs", "peak GCUPS/PU", "mm^2/PU",
         "GCUPS/mm^2"],
        rows, title="Table 3 -- peak GCUPS per processing unit")

    smx_edit = smx_table_rows()[0]
    genasm = next(e for e in SOTA_TABLE if e.name == "GenASM")
    darwin = next(e for e in SOTA_TABLE if e.name == "DARWIN")
    darwin_22nm = darwin.peak_gcups_per_pu / scale_area(
        darwin.area_mm2_per_pu, 40, 22)
    ratio_rows = [
        ["vs GenASM (as published)",
         f"{smx_edit.gcups_per_mm2 / genasm.gcups_per_mm2:.1f}x"],
        ["vs DARWIN (as published)",
         f"{smx_edit.gcups_per_mm2 / darwin.gcups_per_mm2:.1f}x"],
        ["vs DARWIN (area scaled to 22nm)",
         f"{smx_edit.gcups_per_mm2 / darwin_22nm:.1f}x"],
    ]
    ratios = format_table(["SMX DNA-edit GCUPS/mm^2 ratio", "value"],
                          ratio_rows,
                          title="Peak-performance-per-area headline "
                                "(paper: 15.5-18.6x)")
    notes = (
        "SMX is the only entry covering edit+gap+protein+traceback with "
        "a single sub-0.4 mm^2 design; its per-area peak comes from the "
        "narrow-width encoding packing 1024 PEs into 0.34 mm^2.")
    payload = {"tables": {
        "entries": entries,
        "ratios": [{"comparison": label, "value": value}
                   for label, value in ratio_rows],
    }}
    return "table3_gcups", [table, ratios, notes], payload


def test_table3(run_experiment):
    run_experiment(experiment)
