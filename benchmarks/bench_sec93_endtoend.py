"""E10 / Sec. 9.3: end-to-end Minimap2 and DIAMOND speedups.

Measures the SMX kernel speedups with the pipelines, then applies the
paper's published phase breakdowns (alignment is 70-76% of Minimap2 on
PacBio, ~99% of DIAMOND). Expected: Minimap2 ~3.3-4.1x end to end,
DIAMOND ~88x.
"""

from repro.analysis.metrics import (
    diamond_endtoend_speedup,
    minimap2_endtoend_speedups,
)
from repro.analysis.reporting import format_table
from repro.config import dna_gap_config, protein_config
from repro.core.pipelines import SmxProteinFullPipeline, SmxXdropPipeline
from repro.core.system import SmxSystem
from repro.workloads.datasets import pacbio_like, uniprot_like


def experiment(scale: float):
    # Minimap2's alignment kernel: DNA-gap banded X-drop on PacBio.
    minimap_kernel = SmxXdropPipeline(
        SmxSystem(dna_gap_config(), max_sim_tiles=60_000)).timing(
            pacbio_like(n_pairs=6, scale=scale))
    low, high = minimap2_endtoend_speedups(minimap_kernel.speedup)

    # DIAMOND's kernel: full protein scoring on UniProt-like pairs.
    diamond_kernel = SmxProteinFullPipeline(
        SmxSystem(protein_config(), max_sim_tiles=60_000)).timing(
            uniprot_like(n_pairs=16))
    diamond = diamond_endtoend_speedup(diamond_kernel.speedup)

    rows = [
        ["Minimap2 (PacBio)", "DNA-gap banded X-drop", "70-76%",
         f"{minimap_kernel.speedup:.0f}x", f"{low:.1f}-{high:.1f}x",
         "3.3-4.1x"],
        ["DIAMOND (UniProt)", "protein + BLOSUM full", "99%",
         f"{diamond_kernel.speedup:.0f}x", f"{diamond:.1f}x", "88.3x"],
    ]
    table = format_table(
        ["application", "accelerated kernel", "phase share",
         "kernel speedup", "end-to-end (measured)", "end-to-end (paper)"],
        rows, title="Sec. 9.3 -- end-to-end application speedups")
    notes = (
        "Amdahl projection over the paper's published phase shares; the "
        "Minimap2 kernel speedup depends on `scale` (the paper's 274x "
        "is at full 15 kbp PacBio length) but the end-to-end number is "
        "insensitive once the kernel exceeds ~50x.")
    return "sec93_endtoend", [table, notes]


def test_sec93(run_experiment, scale):
    run_experiment(experiment, scale)
