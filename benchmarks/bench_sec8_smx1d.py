"""E11 / Sec. 8 text: SMX-1D speedups over the SIMD baseline.

The ISA-only implementation at 1Kx1K blocks (where everything is
cache-resident). Paper anchors: score-only up to 23x / 11x / 16x / 6x
and full-alignment 18x / 12x / 8x / 7x for DNA-edit / DNA-gap /
protein / ASCII. Expected shape: speedup grows with VL (narrower
elements pack more lanes per instruction), and protein gains extra
from the hardware submat memory vs. the SIMD gather.
"""

from repro.analysis.reporting import format_table
from repro.config import standard_configs
from repro.core.system import SmxSystem

PAPER_SCORE = {"dna-edit": 23, "dna-gap": 11, "protein": 16, "ascii": 6}
PAPER_ALIGN = {"dna-edit": 18, "dna-gap": 12, "protein": 8, "ascii": 7}


def experiment():
    rows = []
    for name, config in standard_configs().items():
        system = SmxSystem(config)
        entry = [name, config.vl]
        for mode, anchors in (("score", PAPER_SCORE),
                              ("align", PAPER_ALIGN)):
            simd = system.implementation_timing(1000, 1000, mode, "simd")
            smx1d = system.implementation_timing(1000, 1000, mode, "smx1d")
            entry.append(f"{simd.cycles / smx1d.cycles:.1f}x")
            entry.append(f"{anchors[name]}x")
        rows.append(entry)
    table = format_table(
        ["config", "VL", "score speedup", "paper", "align speedup",
         "paper"],
        rows,
        title="Sec. 8 -- SMX-1D over SIMD at 1Kx1K blocks")
    notes = (
        "Shape to hold: single-digit to ~20x, increasing with VL, with "
        "protein boosted by the submat unit. Absolute values track how "
        "aggressively the SIMD baseline is modelled.")
    return "sec8_smx1d", [table, notes]


def test_sec8(run_experiment):
    run_experiment(experiment)
