"""E13 (extension): ablations of the SMX-2D design choices.

DESIGN.md calls out the knobs behind the paper's design point; this
bench quantifies each with the cycle-level simulator:

- **worker prefetch** -- overlapping the next supertile's loads with
  compute recovers part of a single worker's memory wait (multiple
  workers already hide it, which is the paper's chosen mechanism);
- **L2 latency** -- worker count keeps utilization flat across a wide
  latency range (the decoupling argument for the L2-attached design);
- **engine pipeline depth** -- deeper pipelines stretch the
  dependency chains along tile antidiagonals; workers fill the bubbles.
"""

from repro.analysis.reporting import format_table
from repro.core.coprocessor import CoprocParams, CoprocessorSim
from repro.core.engine import DEFAULT_PIPELINE_LATENCY, EngineParams
from repro.core.worker import BlockJob


def _run(params: CoprocParams, ew: int = 2, size: int = 1500,
         jobs: int = 8):
    batch = [BlockJob(n=size, m=size, ew=ew, job_id=i)
             for i in range(jobs)]
    return CoprocessorSim(params).run(batch)


def experiment():
    prefetch_rows = []
    for workers in (1, 2, 4):
        for prefetch in (False, True):
            report = _run(CoprocParams(n_workers=workers,
                                       prefetch=prefetch))
            prefetch_rows.append([workers, "on" if prefetch else "off",
                                  f"{report.engine_utilization:.0%}",
                                  f"{report.total_cycles:,}"])
    prefetch_table = format_table(
        ["workers", "prefetch", "engine utilization", "cycles"],
        prefetch_rows, title="Ablation A -- supertile load prefetch")

    latency_rows = []
    for l2 in (10, 20, 40, 80):
        cells = []
        for workers in (1, 4):
            report = _run(CoprocParams(n_workers=workers, l2_latency=l2))
            cells.append(f"{report.engine_utilization:.0%}")
        latency_rows.append([l2] + cells)
    latency_table = format_table(
        ["L2 latency (cycles)", "1 worker", "4 workers"],
        latency_rows, title="Ablation B -- sensitivity to L2 latency")

    depth_rows = []
    for factor in (1, 2, 4):
        latencies = {ew: lat * factor
                     for ew, lat in DEFAULT_PIPELINE_LATENCY.items()}
        engine = EngineParams(pipeline_latency=latencies)
        cells = []
        for workers in (1, 4):
            report = _run(CoprocParams(n_workers=workers, engine=engine))
            cells.append(f"{report.engine_utilization:.0%}")
        depth_rows.append([f"{factor}x ({latencies[2]} cyc @EW2)"] + cells)
    depth_table = format_table(
        ["pipeline depth", "1 worker", "4 workers"],
        depth_rows, title="Ablation C -- engine pipeline depth")

    notes = (
        "Takeaways matching the paper's design: multiple workers are "
        "the robust mechanism -- with 4 of them, utilization stays "
        "near-peak across prefetch settings, a 8x L2-latency range, "
        "and 4x deeper pipelines, so the simple (no-prefetch, "
        "4-worker) design point is justified.")
    return "ablation_design", [prefetch_table, latency_table, depth_table,
                               notes]


def test_ablation(run_experiment):
    run_experiment(experiment)
