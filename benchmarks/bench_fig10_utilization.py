"""E03 / Figure 10: SMX-engine utilization vs. worker count.

Score-only DP-blocks through the cycle-level SMX-2D simulation with
1/2/4/8 workers. Expected shape (paper Sec. 8.1): a single worker
reaches only 30-45% on large blocks, 4 workers ~90%+, beyond 4 the
gains are marginal; tiny 100x100 blocks stay communication-bound.
"""

from repro.analysis.reporting import format_table
from repro.core.coprocessor import CoprocParams, CoprocessorSim
from repro.core.worker import BlockJob

WORKERS = (1, 2, 4, 8)
SIZES = (100, 1_000, 4_000)
CONFIG_EWS = {"dna-edit": 2, "dna-gap": 4, "protein": 6, "ascii": 8}


def experiment():
    rows = []
    grid = []
    for name, ew in CONFIG_EWS.items():
        for size in SIZES:
            cells = []
            for workers in WORKERS:
                sim = CoprocessorSim(CoprocParams(n_workers=workers))
                jobs = [BlockJob(n=size, m=size, ew=ew, job_id=i)
                        for i in range(max(8, 2 * workers))]
                report = sim.run(jobs)
                cells.append(f"{report.engine_utilization:.0%}")
                grid.append({
                    "config": name, "ew": ew, "block": size,
                    "workers": workers,
                    "engine_utilization": report.engine_utilization,
                    "port_occupancy": report.port_occupancy,
                    "total_cycles": report.total_cycles,
                })
            rows.append([name, size] + cells)
    table = format_table(
        ["config", "block"] + [f"{w} worker{'s' if w > 1 else ''}"
                               for w in WORKERS],
        rows,
        title="Figure 10 -- SMX-engine utilization by worker count")
    notes = (
        "Paper shape: ~30-45% with one worker on large blocks, ~90% at "
        "4 workers, marginal gains beyond 4 (the area argument for the "
        "4-worker design point); 100x100 blocks stay low regardless.")
    payload = {"params": {"workers": list(WORKERS),
                          "sizes": list(SIZES)},
               "tables": {"utilization": grid}}
    return "fig10_utilization", [table, notes], payload


def test_fig10(run_experiment):
    run_experiment(experiment)
