"""E08 / Figure 14 + Sec. 11: comparison against the state of the art.

Alignments/s and recall for SMX running Hirschberg (H), banded X-drop
(X), and the GACT window heuristic (W) against GMX, DPX and GACT on
ONT-like DNA; plus the socket-level CUDASW++ protein comparison.
Expected shape: SMX(H) ~5.9x GMX and ~400x DPX; GACT beats SMX on its
own window heuristic but scores zero recall on long noisy reads, while
SMX's flexibility buys 90-100% recall at moderate cost; a 72-core SMX
socket tops an H100 running CUDASW++ by ~1.7x on protein.
"""

from repro.algorithms import (
    BandedAligner,
    FullAligner,
    WindowAligner,
    XdropAligner,
)
from repro.analysis.metrics import RecallStats
from repro.analysis.reporting import format_table
from repro.baselines.dpx import dpx_params
from repro.baselines.gact import GactParams, gact_alignment_timing
from repro.baselines.gmx import gmx_block_timing
from repro.baselines.ksw2 import ksw2_alignment_timing, ksw2_score_timing
from repro.baselines.sota import cudasw_socket_gcups, smx_socket_gcups
from repro.config import dna_edit_config
from repro.core.pipelines import SmxHirschbergPipeline, SmxXdropPipeline
from repro.core.system import SmxSystem
from repro.workloads.datasets import ont_like


def _recall(dataset, aligner, model, max_pairs=4):
    gold = FullAligner()
    stats = RecallStats()
    for pair in dataset.pairs[:max_pairs]:
        optimal = gold.compute_score(pair.q_codes, pair.r_codes,
                                     model).score
        result = aligner.align(pair.q_codes, pair.r_codes, model)
        stats.record(None if result.failed else result.score, optimal)
    return stats.recall


def experiment(scale: float):
    config = dna_edit_config()
    system = SmxSystem(config, max_sim_tiles=60_000)
    timing_ds = ont_like(n_pairs=4, scale=scale)
    recall_ds = ont_like(n_pairs=5, scale=min(scale, 0.08), seed=77,
                         sv_prob=0.6)
    freq = 1e9
    gact_params = GactParams()

    # --- throughputs (alignments/s at 1 GHz) -----------------------------
    hirschberg = SmxHirschbergPipeline(system)
    smx_h = hirschberg.timing(timing_ds)
    xdrop_system = SmxSystem(dna_edit_config(), max_sim_tiles=60_000)
    smx_x = SmxXdropPipeline(xdrop_system).timing(timing_ds)

    # SMX running the window heuristic: one align-mode block per window.
    advance = gact_params.window - gact_params.overlap
    window_shapes = []
    for pair in timing_ds:
        windows = max(1, -(-max(pair.n, pair.m) // advance))
        window_shapes.extend([(gact_params.window, gact_params.window)]
                             * windows)
    smx_w = system.coproc_workload_timing(window_shapes, mode="align",
                                          impl="smx", name="smx-window")

    gmx_cycles = 0.0
    dpx_cycles = 0.0
    for pair in timing_ds:
        for rows, cols, is_leaf in hirschberg.block_shapes(pair.n, pair.m):
            gmx_cycles += gmx_block_timing(rows, cols, system.core).cycles
            timing_fn = (ksw2_alignment_timing if is_leaf
                         else ksw2_score_timing)
            dpx_cycles += timing_fn(rows, cols, system.core,
                                    params=dpx_params()).cycles
    gact_cycles = sum(gact_alignment_timing(p.n, p.m, gact_params).cycles
                      for p in timing_ds)
    pairs = len(timing_ds)

    # --- recalls (functional heuristics on shorter gold-checkable reads) -
    recalls = {
        "H": 1.0,  # Hirschberg is exact by construction (tested)
        "X": _recall(recall_ds, XdropAligner(fraction=0.08), config.model),
        "B": _recall(recall_ds, BandedAligner(fraction=0.10), config.model),
        "W": _recall(recall_ds, WindowAligner(gact_params.window,
                                              gact_params.overlap),
                     config.model),
    }

    def aps(cycles):
        return pairs / (cycles / freq)

    rows = [
        ["SMX (H) Hirschberg", f"{aps(smx_h.smx.total_cycles):,.0f}",
         f"{recalls['H']:.0%}"],
        ["SMX (X) banded+xdrop", f"{aps(smx_x.smx.total_cycles):,.0f}",
         f"{recalls['X']:.0%}"],
        ["SMX (W) window", f"{aps(smx_w.total_cycles):,.0f}",
         f"{recalls['W']:.0%}"],
        ["GMX (H) ISA ext.", f"{aps(gmx_cycles):,.0f}", f"{recalls['H']:.0%}"],
        ["DPX (H) SIMD", f"{aps(dpx_cycles):,.0f}", f"{recalls['H']:.0%}"],
        ["GACT (W) DSA", f"{aps(gact_cycles):,.0f}", f"{recalls['W']:.0%}"],
    ]
    table = format_table(
        ["implementation", "alignments/s", "recall"],
        rows,
        title=f"Figure 14 -- SotA comparison on ONT-like DNA "
              f"(~{timing_ds.mean_length:,.0f} bp)")

    ratio_rows = [
        ["SMX(H) / GMX(H)", f"{gmx_cycles / smx_h.smx.total_cycles:.1f}x",
         "5.9x"],
        ["SMX(H) / DPX(H)", f"{dpx_cycles / smx_h.smx.total_cycles:.0f}x",
         "411x"],
        ["GACT(W) / SMX(W)",
         f"{smx_w.total_cycles / gact_cycles:.1f}x", "2.4x"],
        ["GACT(W) / SMX(X)",
         f"{smx_x.smx.total_cycles / gact_cycles:.1f}x", "5.2x"],
        ["GACT(W) / SMX(H)",
         f"{smx_h.smx.total_cycles / gact_cycles:.1f}x", "22.7x"],
        ["SMX socket / CUDASW++ H100 (protein GCUPS)",
         f"{smx_socket_gcups() / cudasw_socket_gcups():.1f}x", "1.7x"],
    ]
    ratios = format_table(["ratio", "measured", "paper"], ratio_rows,
                          title="Headline ratios vs. the paper")
    notes = (
        "GACT wins raw throughput with its fixed window but its recall "
        "collapses once reads carry structural variants or enough noise "
        "(0% at full ONT length in the paper). SMX trades throughput "
        "for guaranteed (H) or near-full (X) recall -- the flexibility "
        "argument of Sec. 11. NOTE: GACT's cost is linear in read "
        "length while (H)/(X) are quadratic, so the GACT-vs-SMX ratios "
        "only approach the paper's values at full 50 kbp scale "
        "(SMX_BENCH_SCALE=1.0).")
    return "fig14_sota", [table, ratios, notes]


def test_fig14(run_experiment, scale):
    run_experiment(experiment, scale)
