#!/usr/bin/env python
"""Service-daemon kill/resume smoke test (CI `service-smoke` job).

Proves the crash-safety headline end to end, with a *real* SIGKILL
rather than the in-process chaos fault:

1. build a deterministic workload and compute its reference outcome
   in-process with the same supervised engine the daemon uses;
2. enqueue it into a fresh spool and start ``repro serve`` as a
   subprocess;
3. poll the job's incremental checkpoint until it shows partial
   progress, then SIGKILL the daemon mid-run;
4. restart the daemon, which must auto-resume the orphaned job from
   its checkpoint;
5. assert the final settled outcome (results, failures, counters) is
   bit-identical to the uninterrupted in-process reference.

Exit 0 on success, 1 with a diagnostic on any mismatch. Knobs via
environment: ``SMX_SMOKE_PAIRS`` / ``SMX_SMOKE_LEN`` size the workload
(default 160 x 96bp on the scalar engine, slow enough on any machine
to catch mid-run), ``SMX_SMOKE_TIMEOUT`` bounds each wait.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

import numpy as np  # noqa: E402

from repro.config import standard_configs  # noqa: E402
from repro.exec.engine import BatchConfig  # noqa: E402
from repro.resilience import (  # noqa: E402
    ResilienceConfig,
    SupervisedEngine,
    outcome_io,
)
from repro.service import JobSpec, JobSpool  # noqa: E402

N_PAIRS = int(os.environ.get("SMX_SMOKE_PAIRS", "160"))
LENGTH = int(os.environ.get("SMX_SMOKE_LEN", "96"))
TIMEOUT_S = float(os.environ.get("SMX_SMOKE_TIMEOUT", "120"))
ENGINE = "scalar"  # slow on purpose: the kill must land mid-run
UNIT = 4
JOB_ID = "job-smoke"


def fail(message: str) -> "None":
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def build_pairs():
    rng = np.random.default_rng(0x5E41)
    alphabet = np.array(list("ACGT"))
    return [("".join(rng.choice(alphabet, LENGTH)),
             "".join(rng.choice(alphabet, LENGTH)))
            for _ in range(N_PAIRS)]


def reference_document(pairs):
    config = standard_configs()["dna-edit"]
    encoded = [(config.encode(q), config.encode(r)) for q, r in pairs]
    outcome = SupervisedEngine(
        config, BatchConfig(engine=ENGINE, workers=1),
        ResilienceConfig(max_unit_pairs=UNIT)).run(encoded)
    return outcome_io.to_document(outcome, pairs=len(encoded))


def spawn_daemon(spool_root: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--spool", spool_root,
         "--max-jobs", "1", "--idle-exit", "10", "--poll", "0.05",
         "--max-unit-pairs", str(UNIT)],
        env=env, cwd=REPO)


def wait_for(predicate, what: str, timeout_s: float = TIMEOUT_S,
             poll_s: float = 0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(poll_s)
    fail(f"timed out after {timeout_s:.0f}s waiting for {what}")


def checkpoint_progress(path: str) -> int:
    """Completed pairs recorded in the checkpoint (0 if unreadable)."""
    try:
        with open(path, encoding="utf-8") as handle:
            return int(json.load(handle).get("completed", 0))
    except (OSError, ValueError):
        return 0


def main() -> int:
    pairs = build_pairs()
    print(f"[smoke] workload: {N_PAIRS} pairs x {LENGTH}bp, "
          f"engine={ENGINE}, unit={UNIT}")
    reference = reference_document(pairs)
    print(f"[smoke] reference computed: "
          f"{reference['completed']}/{N_PAIRS} completed")

    workdir = tempfile.mkdtemp(prefix="smx-service-smoke-")
    spool = JobSpool(os.path.join(workdir, "spool"))
    spool.submit(JobSpec(job_id=JOB_ID, pairs=pairs, engine=ENGINE))
    checkpoint = spool.checkpoint_path(JOB_ID)
    outcome_path = spool.outcome_path(JOB_ID)

    daemon = spawn_daemon(spool.root)
    try:
        # Kill only once the checkpoint proves partial progress.
        wait_for(lambda: checkpoint_progress(checkpoint) > 0,
                 "first checkpoint")
        progress = checkpoint_progress(checkpoint)
        if os.path.exists(outcome_path) or progress >= N_PAIRS:
            fail("job finished before the kill landed; raise "
                 "SMX_SMOKE_PAIRS/SMX_SMOKE_LEN so the run is slower")
        daemon.send_signal(signal.SIGKILL)
        daemon.wait(timeout=30)
        print(f"[smoke] SIGKILL'd daemon at "
              f"{progress}/{N_PAIRS} pairs completed")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=30)

    if not os.path.exists(checkpoint):
        fail("kill left no checkpoint in running/")
    if os.path.exists(outcome_path):
        fail("job settled despite the kill")

    survivor = spawn_daemon(spool.root)
    try:
        wait_for(lambda: os.path.exists(outcome_path),
                 "auto-resumed outcome")
        survivor.wait(timeout=TIMEOUT_S)
    finally:
        if survivor.poll() is None:
            survivor.kill()
            survivor.wait(timeout=30)

    final = outcome_io.load_document(outcome_path)
    if not final.get("complete"):
        fail("settled outcome is not marked complete")
    mismatches = [key for key in ("results", "failures", "counters",
                                  "degraded", "completed")
                  if final.get(key) != reference.get(key)]
    if mismatches:
        fail(f"resumed outcome differs from uninterrupted reference "
             f"in: {', '.join(mismatches)}")
    print(f"[smoke] OK: resumed outcome bit-identical to reference "
          f"({final['completed']}/{N_PAIRS} pairs); "
          f"events at {os.path.join(spool.root, 'events.jsonl')}")
    print(spool.root)  # consumed by the CI step for repro monitor
    return 0


if __name__ == "__main__":
    sys.exit(main())
