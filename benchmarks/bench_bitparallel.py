"""Bit-parallel Myers kernel: divergence/length sweep (E22).

Measures the repository's own software speed: the batched bit-parallel
edit kernel (``engine="bitparallel"``, 64 DP rows per uint64 lane,
vectorized across pairs) against the batched wavefront engine. The two
kernels trade places along the divergence axis -- wavefront work
scales with edit distance squared while the bit-parallel sweep always
pays n*m/64 block steps -- so the sweep shows the crossover the
adaptive planner exploits: wavefront near identity, bit-parallel on
divergent score-only batches.

Scores are bit-identical by the conformance suite, so this benchmark
only records speed. Two headline series are appended to
``results/BENCH_HISTORY.json`` under the same names ``repro bench``
uses (one continuous gated series each):

- ``kernel.bitparallel.dna.cups`` -- kernel-level CUPS on the fixed
  95%-identity long-read batch (the shape behind
  ``kernel.wavefront.dna.cups``; acceptance floor: 5x that series);
- ``engine.bitparallel.vs_wavefront.speedup`` -- engine-level win on
  uniformly random equal-length pairs (the high-divergence regime the
  planner routes to bit-parallel).
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.reporting import format_table, results_dir
from repro.config import dna_edit_config
from repro.exec import BatchConfig, BatchEngine, bucketize
from repro.exec.bitparallel import sweep_bitparallel
from repro.exec.wavefront import sweep_wavefront
from repro.obs import bench

LENGTH = 1024
BASE_PAIRS = 64
BASE_SCALE = 0.2

#: Per-base error rates of the kernel-level identity sweep.
ERRORS = (0.02, 0.05, 0.10, 0.25)
FLOOR_ERROR = 0.05

#: Engine-level length sweep on uniformly random pairs.
LENGTHS = (256, 512, 1024)

#: Acceptance floor: kernel CUPS ratio on the 95%-identity shape.
CUPS_FLOOR = 5.0


def _timed(fn, repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def experiment(scale: float):
    n_pairs = max(8, round(BASE_PAIRS * scale / BASE_SCALE))
    config = dna_edit_config()

    # Kernel-level identity sweep: both kernels on the same buckets.
    kernel_rows = []
    identity_sweep = []
    timing_rows = []
    floor_ratio = None
    for error in ERRORS:
        pairs = bench._mutated_pairs(config, n_pairs, LENGTH, error)
        buckets = list(bucketize(pairs, 2 * LENGTH))
        cells = sum(len(q) * len(r) for q, r in pairs)
        t_bp = _timed(lambda: [sweep_bitparallel(b) for b in buckets])
        wf_cells = sum(int(np.sum(sweep_wavefront(b, config.model).cells))
                       for b in buckets)
        t_wf = _timed(lambda: [sweep_wavefront(b, config.model)
                               for b in buckets])
        bp_cups = cells / t_bp
        wf_cups = wf_cells / t_wf
        ratio = bp_cups / wf_cups
        if error == FLOOR_ERROR:
            floor_ratio = ratio
        identity_sweep.append({
            "identity": 1.0 - error, "bitparallel_cups": bp_cups,
            "wavefront_cups": wf_cups, "cups_ratio": ratio,
            "wall_speedup": t_wf / t_bp,
        })
        timing_rows.append({
            "name": f"kernel-identity{100 - round(100 * error)}",
            "pairs": n_pairs, "length": LENGTH, "error": error,
            "bitparallel_s": t_bp, "wavefront_s": t_wf,
        })
        kernel_rows.append([
            f"{100 * (1 - error):.0f}%", f"{bp_cups / 1e6:,.0f}M",
            f"{wf_cups / 1e6:,.1f}M", f"{ratio:.1f}x",
            f"{t_wf / t_bp:.2f}x"])

    # Engine-level length sweep on uniformly random pairs: the
    # divergence regime the planner routes to bit-parallel.
    engine_rows = []
    length_sweep = []
    speedup_1024 = None
    for length in LENGTHS:
        pairs = bench._bench_pairs(n_pairs, length, 4, seed=29)
        cells = n_pairs * length * length
        rates = {}
        for engine_name in ("bitparallel", "wavefront"):
            batch = BatchConfig(engine=engine_name, traceback=False)
            engine = BatchEngine(config, batch)
            elapsed = _timed(lambda: engine.run(pairs))
            rates[engine_name] = elapsed
            timing_rows.append({
                "name": f"engine-len{length}-{engine_name}",
                "engine": engine_name, "pairs": n_pairs,
                "length": length, "elapsed_s": elapsed,
                "pairs_per_sec": n_pairs / elapsed,
            })
        speedup = rates["wavefront"] / rates["bitparallel"]
        if length == LENGTH:
            speedup_1024 = speedup
        length_sweep.append({
            "length": length, "speedup": speedup,
            "bitparallel_cups": cells / rates["bitparallel"],
        })
        engine_rows.append([
            str(length), f"{cells / rates['bitparallel'] / 1e6:,.0f}M",
            f"{n_pairs / rates['bitparallel']:,.1f}",
            f"{n_pairs / rates['wavefront']:,.1f}", f"{speedup:.2f}x"])

    sections = [
        format_table(
            ["identity", "bitparallel", "wavefront", "cups ratio",
             "wall speedup"],
            kernel_rows,
            title="Kernel CUPS -- bit-parallel vs wavefront "
                  f"({n_pairs} pairs, length {LENGTH})"),
        format_table(
            ["length", "bp CUPS", "bp pairs/s", "wf pairs/s", "speedup"],
            engine_rows,
            title="Engine speedup -- random (divergent) pairs, "
                  "score-only"),
        f"Headline: {floor_ratio:.1f}x kernel CUPS over wavefront on "
        f"the 95%-identity batch (floor: {CUPS_FLOOR:.0f}x); "
        f"{speedup_1024:.2f}x end-to-end over the wavefront engine on "
        f"random length-{LENGTH} pairs. Wavefront keeps the wall-clock "
        "win near identity (its work scales with d^2, not n*m), which "
        "is exactly the planner's routing split.",
    ]
    payload = {
        "params": {"pairs": n_pairs, "length": LENGTH,
                   "errors": list(ERRORS), "lengths": list(LENGTHS)},
        "timings": timing_rows,
        "tables": {"identity_sweep": identity_sweep,
                   "length_sweep": length_sweep},
    }
    return "bench_bitparallel", sections, payload


def test_bitparallel_kernel(run_experiment, scale):
    result = run_experiment(experiment, scale)
    tables = result[2]["tables"]
    by_identity = {round(entry["identity"], 2): entry
                   for entry in tables["identity_sweep"]}
    floor_row = by_identity[round(1.0 - FLOOR_ERROR, 2)]
    # Acceptance floor: the packed uint64 lanes must beat the
    # wavefront kernel's CUPS decisively on the shared bench shape.
    assert floor_row["cups_ratio"] >= CUPS_FLOOR
    by_length = {entry["length"]: entry
                 for entry in tables["length_sweep"]}
    # On divergent long reads the engine-level win must be real too.
    assert by_length[LENGTH]["speedup"] > 1.0
    # Feed the regression gate the same series `repro bench` records.
    import os
    history = os.path.join(results_dir(), "BENCH_HISTORY.json")
    bench.append_record(history, {
        "created": bench._now(),
        "git_sha": bench._git_sha(),
        "quick": False,
        "source": "bench_bitparallel",
        "params": result[2]["params"],
        "metrics": {
            "kernel.bitparallel.dna.cups":
                floor_row["bitparallel_cups"],
            "engine.bitparallel.vs_wavefront.speedup":
                by_length[LENGTH]["speedup"],
        },
    })
