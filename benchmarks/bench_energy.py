"""E14 (extension): energy-efficiency projections.

Decomposes the paper's single power figure (0.342 mW @ 20% activity,
Sec. 10) into per-component and per-DP-cell energies, and compares
against the SIMD-on-big-core baseline -- quantifying the
flexibility-vs-efficiency frontier the paper's case study discusses.
"""

from repro.analysis.energy import (
    efficiency_gain,
    energy_per_cell_pj,
    smx_component_power_mw,
)
from repro.analysis.reporting import format_table
from repro.baselines.ksw2 import ksw2_score_timing
from repro.sim.cpu import CoreModel

CONFIG_EWS = {"dna-edit": 2, "dna-gap": 4, "protein": 6, "ascii": 8}


def experiment():
    power = smx_component_power_mw(activity=1.0)
    power_rows = [[name, f"{value * 1000:.1f}"]
                  for name, value in power.items()]
    power_table = format_table(
        ["component", "active power (uW @1GHz)"],
        power_rows,
        title="SMX power split (area-proportional from the 0.342 mW "
              "anchor)")

    core = CoreModel()
    simd = ksw2_score_timing(2000, 2000, core)
    simd_rate = simd.cells / simd.cycles
    energy_rows = []
    for name, ew in CONFIG_EWS.items():
        smx_pj = energy_per_cell_pj(ew)
        gain = efficiency_gain(ew, simd_cells_per_cycle=simd_rate)
        energy_rows.append([
            name, f"{smx_pj * 1000:.2f}",
            f"{250.0 / simd_rate:.0f}",
            f"{gain:,.0f}x",
        ])
    energy_table = format_table(
        ["config", "SMX fJ/cell", "SIMD pJ/cell (250 mW core)",
         "energy advantage"],
        energy_rows,
        title="Energy per DP-cell: SMX-2D vs SIMD software")
    notes = (
        "Model outputs, not measurements: power splits by area at equal "
        "activity; the SIMD side charges a 250 mW-class OoO core at its "
        "achieved cells/cycle. The 4-5 orders of magnitude reflect the "
        "compounding of the throughput gap with the power gap -- why a "
        "0.34 mm^2 add-on delivers DSA-class efficiency.")
    return "energy", [power_table, energy_table, notes]


def test_energy(run_experiment):
    run_experiment(experiment)
