"""E05 / Figure 12 (left): multicore scalability of SMX algorithms.

Each core pairs with its own SMX-2D behind the private L2; the SoC
model shares only LLC/DRAM. Expected shape (paper Sec. 9.1): all three
workloads scale near-linearly to 8 cores, with X-drop slightly less
efficient due to its higher core-coprocessor traffic.
"""

from repro.analysis.reporting import format_table
from repro.config import dna_edit_config, dna_gap_config, protein_config
from repro.core.pipelines import (
    SmxHirschbergPipeline,
    SmxProteinFullPipeline,
    SmxXdropPipeline,
)
from repro.core.system import SmxSystem
from repro.sim.soc import multicore_scaling
from repro.workloads.datasets import ont_like, uniprot_like

CORES = [1, 2, 4, 8]


def experiment(scale: float):
    ont = ont_like(n_pairs=8, scale=scale)
    uniprot = uniprot_like(n_pairs=24)
    workloads = [
        ("hirschberg/ont",
         SmxHirschbergPipeline(SmxSystem(dna_edit_config(),
                                         max_sim_tiles=60_000)), ont),
        ("xdrop/ont",
         SmxXdropPipeline(SmxSystem(dna_gap_config(),
                                    max_sim_tiles=60_000)), ont),
        ("protein/uniprot",
         SmxProteinFullPipeline(SmxSystem(protein_config(),
                                          max_sim_tiles=60_000)), uniprot),
    ]
    rows = []
    for name, pipeline, dataset in workloads:
        timing = pipeline.timing(dataset)
        points = multicore_scaling(
            timing.smx.total_cycles,
            timing.smx.extra.get("bytes_transferred", 0.0),
            core_counts=CORES)
        rows.append([name] + [f"{p.speedup:.2f}x" for p in points]
                    + [f"{points[-1].efficiency:.0%}"])
    table = format_table(
        ["workload"] + [f"{c} core{'s' if c > 1 else ''}" for c in CORES]
        + ["efficiency@8"],
        rows,
        title="Figure 12 (left) -- multicore scaling of SMX algorithms")
    notes = (
        "Paper shape: near-linear scaling for all workloads (private "
        "caches hold the working sets); X-drop is the least efficient "
        "scaler because of its communication overheads.")
    return "fig12_scalability", [table, notes]


def test_fig12_left(run_experiment, scale):
    run_experiment(experiment, scale)
