"""Shared benchmark glue.

Every benchmark regenerates one paper table/figure: it runs the
experiment once (pytest-benchmark measures the harness itself), prints
the paper-style table, and writes it to ``results/<exp>.md``. Scale is
controlled by ``SMX_BENCH_SCALE`` (default 0.2: sequence lengths are
20% of the paper's nominal sizes so the suite finishes on a laptop;
set 1.0 for full-size runs).
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import bench_scale, write_report


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture()
def run_experiment(benchmark, capsys):
    """Run an experiment once under pytest-benchmark and publish it.

    The experiment function returns ``(report_name, sections)``; the
    sections are printed and written to ``results/<report_name>.md``.
    """

    def runner(experiment, *args, **kwargs):
        result = benchmark.pedantic(experiment, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        name, sections = result
        path = write_report(name, sections)
        with capsys.disabled():
            print()
            for section in sections:
                print(section)
                print()
            print(f"[report written to {path}]")
        return result

    return runner
