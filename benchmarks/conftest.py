"""Shared benchmark glue.

Every benchmark regenerates one paper table/figure: it runs the
experiment once (pytest-benchmark measures the harness itself), prints
the paper-style table, and writes it to ``results/<exp>.md`` plus a
machine-readable ``results/<exp>.json`` sibling (run-report schema:
params, metrics diff, timing rows, git SHA). Scale is controlled by
``SMX_BENCH_SCALE`` (default 0.2: sequence lengths are 20% of the
paper's nominal sizes so the suite finishes on a laptop; set 1.0 for
full-size runs).

Experiments return ``(report_name, sections)`` or, to enrich the JSON
report, ``(report_name, sections, payload)`` where ``payload`` may
carry ``params`` / ``timings`` / ``tables`` entries. The metrics in
the JSON are always the registry *diff* across the experiment, so each
report reflects only its own run even within one pytest session.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.analysis.reporting import (
    bench_scale,
    write_json_report,
    write_report,
)


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session", autouse=True)
def _obs_session():
    """Enable metrics for the whole benchmark session.

    The simulator layers default to the global observability context;
    installing an enabled one here means every benchmark's JSON report
    gets real coprocessor/memory/scheduler counters for free.
    """
    ctx = obs.Observability.enabled_context()
    previous = obs.set_obs(ctx)
    try:
        yield ctx
    finally:
        obs.set_obs(previous)


@pytest.fixture()
def run_experiment(benchmark, capsys, _obs_session):
    """Run an experiment once under pytest-benchmark and publish it.

    The experiment function returns ``(report_name, sections)`` (plus
    an optional payload dict); the sections are printed and written to
    ``results/<report_name>.md``, and a JSON run report is written to
    ``results/<report_name>.json``.
    """

    def runner(experiment, *args, **kwargs):
        before = _obs_session.metrics.snapshot()
        result = benchmark.pedantic(experiment, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        name, sections = result[0], result[1]
        payload = result[2] if len(result) > 2 else {}
        path = write_report(name, sections)
        params = {"scale": bench_scale()}
        params.update(payload.get("params", {}))
        json_path = write_json_report(
            name, params=params,
            metrics=_obs_session.metrics.diff(before),
            timings=payload.get("timings"),
            tables=payload.get("tables"))
        with capsys.disabled():
            print()
            for section in sections:
                print(section)
                print()
            print(f"[report written to {path}]")
            print(f"[json report written to {json_path}]")
        return result

    return runner
