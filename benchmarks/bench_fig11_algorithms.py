"""E04 / Figure 11: throughput of SMX-accelerated practical algorithms.

Hirschberg (PacBio/ONT DNA), banded X-drop (PacBio/ONT DNA), and full
protein alignment (UniProt), each versus its own SIMD software
implementation. Expected shape (paper Sec. 9): Hirschberg ~390x,
X-drop ~256x (lower -- smaller blocks mean more core/coprocessor
communication), protein full ~744x (the SIMD substitution gather is
the weakest baseline). Absolute ratios depend on the SIMD model;
ordering and magnitudes are the reproduction target.
"""

from repro.analysis.reporting import format_table
from repro.config import dna_edit_config, dna_gap_config, protein_config
from repro.core.pipelines import (
    SmxHirschbergPipeline,
    SmxProteinFullPipeline,
    SmxXdropPipeline,
)
from repro.core.system import SmxSystem
from repro.workloads.datasets import ont_like, pacbio_like, uniprot_like


def experiment(scale: float):
    pacbio = pacbio_like(n_pairs=6, scale=scale)
    ont = ont_like(n_pairs=6, scale=scale)
    uniprot = uniprot_like(n_pairs=16)
    runs = [
        (SmxHirschbergPipeline(SmxSystem(dna_edit_config(),
                                         max_sim_tiles=80_000)),
         [pacbio, ont]),
        (SmxXdropPipeline(SmxSystem(dna_gap_config(),
                                    max_sim_tiles=80_000)),
         [pacbio, ont]),
        (SmxProteinFullPipeline(SmxSystem(protein_config(),
                                          max_sim_tiles=80_000)),
         [uniprot]),
    ]
    rows = []
    for pipeline, datasets in runs:
        for dataset in datasets:
            timing = pipeline.timing(dataset)
            rows.append([
                pipeline.name, dataset.name,
                f"{dataset.mean_length:,.0f}",
                f"{timing.baseline_alignments_per_second:,.0f}",
                f"{timing.smx_alignments_per_second:,.0f}",
                f"{timing.speedup:.0f}x",
            ])
    table = format_table(
        ["algorithm", "dataset", "mean length", "SIMD aln/s", "SMX aln/s",
         "speedup"],
        rows,
        title=f"Figure 11 -- SMX-accelerated algorithms "
              f"(scale={scale:g} of nominal lengths)")
    notes = (
        "Paper anchors (full scale): Hirschberg ~390x, banded X-drop "
        "~256x, protein full ~744x. X-drop trails Hirschberg because "
        "its supertile-width blocks add CPU-coprocessor communication; "
        "speedups shrink with `scale` since overheads amortize over "
        "fewer cells.")
    return "fig11_algorithms", [table, notes]


def test_fig11(run_experiment, scale):
    run_experiment(experiment, scale)
