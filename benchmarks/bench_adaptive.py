"""Adaptive planner: identity sweep of ``engine="auto"`` (E18).

Measures the repository's own software speed, like
``bench_batch_engine``: wall-clock throughput of ``repro.exec`` with
the adaptive planner (``engine="auto"``) against the fixed full-vector
engine, across a sweep of per-base identities on a synthetic long-read
batch. Near-identical pairs ride the batched wavefront kernel (work
scales with edit distance, not matrix area), so the planner's win
grows with identity; at high divergence the planner routes everything
to the full kernel and the two engines converge. Results are
bit-identical by the conformance suite, so this benchmark only records
speed.

The headline metric -- the score-mode speedup on the >= 95%-identity
batch -- is appended to ``results/BENCH_HISTORY.json`` under the same
``engine.adaptive.identity95.speedup`` name ``repro bench`` uses, so
the regression gate sees one continuous series.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.reporting import format_table, results_dir
from repro.config import dna_edit_config
from repro.exec import BatchConfig, BatchEngine
from repro.exec.planner import PlannerPolicy, plan_routes
from repro.obs import bench
from repro.workloads.synthetic import ErrorProfile, mutate

LENGTH = 1024
BASE_PAIRS = 64
BASE_SCALE = 0.2

#: Per-base error rates of the sweep; identity is ``1 - error``. The
#: 0.05 row (95% identity) carries the acceptance floor.
ERRORS = (0.02, 0.05, 0.10, 0.25, 0.45)
FLOOR_ERROR = 0.05


def _make_pairs(config, n_pairs: int, length: int, error: float,
                seed: int = 13):
    rng = np.random.default_rng(seed)
    profile = ErrorProfile(substitution=0.5 * error,
                           insertion=0.25 * error,
                           deletion=0.25 * error)
    pairs = []
    for _ in range(n_pairs):
        reference = config.alphabet.random(length, rng)
        query, _ = mutate(reference, profile, config.alphabet, rng)
        pairs.append((query, reference))
    return pairs


def _timed_run(config, batch, pairs, repeats: int = 2):
    engine = BatchEngine(config, batch)
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        results = engine.run(pairs)
        best = min(best, time.perf_counter() - started)
    assert len(results) == len(pairs)
    return best, len(pairs) / best


def experiment(scale: float):
    n_pairs = max(8, round(BASE_PAIRS * scale / BASE_SCALE))
    config = dna_edit_config()
    policy = PlannerPolicy()
    rows = []
    timing_rows = []
    sweep = []
    for error in ERRORS:
        pairs = _make_pairs(config, n_pairs, LENGTH, error)
        routes, _ = plan_routes(pairs, config.model, policy)
        mix = {route: routes.count(route)
               for route in ("wavefront", "banded", "full")}
        rates = {}
        for engine_name in ("vector", "auto"):
            batch = BatchConfig(engine=engine_name, mode="global",
                                traceback=False)
            elapsed, rate = _timed_run(config, batch, pairs)
            rates[engine_name] = rate
            timing_rows.append({
                "name": f"identity{100 - round(100 * error)}-{engine_name}",
                "engine": engine_name, "error": error,
                "pairs": n_pairs, "length": LENGTH,
                "elapsed_s": elapsed, "pairs_per_sec": rate,
            })
        speedup = rates["auto"] / rates["vector"]
        sweep.append({"identity": 1.0 - error, "routes": mix,
                      "speedup": speedup})
        rows.append([f"{100 * (1 - error):.0f}%",
                     f"{mix['wavefront']}/{mix['banded']}/{mix['full']}",
                     f"{rates['vector']:,.1f}", f"{rates['auto']:,.1f}",
                     f"{speedup:.1f}x"])
    sections = [format_table(
        ["identity", "routes w/b/f", "vector pairs/s", "auto pairs/s",
         "speedup"],
        rows,
        title="Adaptive planner -- auto over fixed vector (score mode)")]
    headline = next(entry["speedup"] for entry, error
                    in zip(sweep, ERRORS) if error == FLOOR_ERROR)
    sections.append(
        f"Headline: engine=auto is {headline:.1f}x the fixed vector "
        f"engine on {n_pairs} pairs of length {LENGTH} at 95% identity "
        "(acceptance floor: 3x). The win shrinks toward 1x as identity "
        "drops and the planner routes pairs back to the full kernel.")
    payload = {
        "params": {"pairs": n_pairs, "length": LENGTH,
                   "errors": list(ERRORS)},
        "timings": timing_rows,
        "tables": {"identity_sweep": sweep},
    }
    return "bench_adaptive", sections, payload


def test_adaptive_planner(run_experiment, scale):
    result = run_experiment(experiment, scale)
    sweep = result[2]["tables"]["identity_sweep"]
    by_identity = {round(entry["identity"], 2): entry for entry in sweep}
    floor_row = by_identity[round(1.0 - FLOOR_ERROR, 2)]
    # The acceptance floor: the planner must pay for itself decisively
    # on the near-identical long-read shape it was built for.
    assert floor_row["speedup"] >= 3.0
    # High-identity batches must actually ride the wavefront kernel.
    assert floor_row["routes"]["wavefront"] > 0
    # Feed the regression gate the same series `repro bench` records.
    import os
    history = os.path.join(results_dir(), "BENCH_HISTORY.json")
    bench.append_record(history, {
        "created": bench._now(),
        "git_sha": bench._git_sha(),
        "quick": False,
        "source": "bench_adaptive",
        "params": result[2]["params"],
        "metrics": {
            "engine.adaptive.identity95.speedup": floor_row["speedup"],
        },
    })
