"""Seeded chaos sweep: supervised recovery across fault classes/rates.

Runs the supervised engine over one fixed 128-pair batch while the
deterministic injector poisons it with each fault class at increasing
rates, and reports what the resilience layer did about it: how many
poisoned pairs were transient (cleared by the retry/bisection path,
returning bit-identical results), how many were persistent (quarantined
as typed failures after the ladder), and what the recovery cost in
retries, bisections, degradation rungs and wall clock.

Everything is keyed on a fixed seed and pair *content*, so the sweep is
exactly reproducible: re-running it must produce the identical table
(``results/chaos_sweep.{md,json}``). The sweep itself doubles as an
end-to-end check -- each cell asserts that the quarantine set equals
the injector's persistent ground truth and that every untouched pair's
score matches the fault-free baseline.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.config import standard_configs
from repro.exec import BatchConfig, BatchEngine
from repro.resilience import ChaosPlan, ResilienceConfig, SupervisedEngine
from repro.workloads.synthetic import ErrorProfile, mutate

BASE_PAIRS = 128
BASE_SCALE = 0.2
LENGTH = 48
RATES = (0.05, 0.15, 0.30)
SEED = 0xFA17


def _make_pairs(config, n_pairs: int, seed: int = 11):
    rng = np.random.default_rng(seed)
    profile = ErrorProfile(substitution=0.06, insertion=0.03,
                           deletion=0.03)
    pairs = []
    for _ in range(n_pairs):
        reference = config.alphabet.random(LENGTH, rng)
        query, _ = mutate(reference, profile, config.alphabet, rng)
        pairs.append((query, reference))
    return pairs


def _sweep_cell(config, pairs, baseline, cls: str, rate: float):
    plan_kwargs = {cls: rate}
    if cls == "hang":
        # A real 30 s hang per poisoned shard would dominate the sweep.
        # The hang must still exceed the *sum* of every staggered
        # timeout wait, or a late wave shard's sleeping execution could
        # finish before the supervisor gets around to waiting on it.
        plan_kwargs["hang_s"] = 2.0
    plan = ChaosPlan(seed=SEED, **plan_kwargs)
    policy = ResilienceConfig(
        backend="thread", backoff_base_s=0.0, validate=True,
        shard_timeout_s=0.05 if cls == "hang" else None)
    started = time.perf_counter()
    outcome = SupervisedEngine(config, BatchConfig(workers=8),
                               policy, plan=plan).run(pairs)
    elapsed = time.perf_counter() - started
    table = plan.ground_truth(pairs)
    poisoned = {i for i, entry in enumerate(table) if cls in entry}
    persistent = {i for i, entry in enumerate(table)
                  if entry.get(cls) == "persistent"}
    # The sweep is also a check: recovery must be exact.
    failed = {f.index for f in outcome.failures}
    assert failed == persistent, (cls, rate, failed, persistent)
    for i, result in enumerate(outcome.results):
        if i not in persistent:
            assert result.score == baseline[i].score, (cls, rate, i)
    counters = outcome.counters
    degraded = sum(v for k, v in counters.items()
                   if k.startswith("degraded."))
    return {
        "class": cls, "rate": rate, "pairs": len(pairs),
        "poisoned": len(poisoned),
        "recovered": len(poisoned) - len(persistent),
        "quarantined": len(persistent),
        "injections": len(outcome.injections),
        "retries": counters.get("retries", 0),
        "bisections": counters.get("bisections", 0),
        "degraded": degraded,
        "elapsed_s": elapsed,
    }


def experiment(scale: float):
    n_pairs = max(32, round(BASE_PAIRS * scale / BASE_SCALE))
    config = standard_configs()["dna-gap"]
    pairs = _make_pairs(config, n_pairs)
    baseline = BatchEngine(config, BatchConfig(traceback=True)).run(pairs)
    clean_started = time.perf_counter()
    clean_outcome = SupervisedEngine(
        config, BatchConfig(workers=8),
        ResilienceConfig(backend="thread", validate=True)).run(pairs)
    clean_s = time.perf_counter() - clean_started
    assert not clean_outcome.failures
    cells = []
    for cls in ("oserror", "crash", "rangeerror", "bitflip", "hang"):
        for rate in RATES:
            cells.append(_sweep_cell(config, pairs, baseline, cls, rate))
    rows = [[c["class"], f"{c['rate']:.2f}", c["poisoned"],
             c["recovered"], c["quarantined"], c["injections"],
             c["retries"], c["bisections"], c["degraded"],
             f"{c['elapsed_s'] / clean_s:.1f}x"]
            for c in cells]
    sections = [format_table(
        ["fault", "rate", "poisoned", "recovered", "quarantined",
         "injections", "retries", "bisections", "degraded",
         "overhead"],
        rows,
        title=f"Chaos sweep -- supervised recovery on {n_pairs} pairs "
              f"(seed {SEED:#x})")]
    total_poisoned = sum(c["poisoned"] for c in cells)
    total_recovered = sum(c["recovered"] for c in cells)
    sections.append(
        f"Headline: {total_recovered}/{total_poisoned} poisoned "
        "(pair, class) combos across the sweep were transient and "
        "recovered to bit-identical results; every persistent one was "
        "quarantined as a typed PairFailure -- zero silent corruption, "
        "zero lost pairs. Overhead is wall clock relative to a "
        f"fault-free supervised run ({clean_s * 1e3:.0f} ms).")
    payload = {
        "params": {"pairs": n_pairs, "length": LENGTH, "seed": SEED,
                   "rates": list(RATES), "clean_elapsed_s": clean_s},
        "tables": {"sweep": cells},
    }
    return "chaos_sweep", sections, payload


def test_chaos_sweep(run_experiment, scale):
    result = run_experiment(experiment, scale)
    cells = result[2]["tables"]["sweep"]
    # Every poisoned pair is either recovered or quarantined -- the
    # sweep's cell assertions already checked exactness per class.
    for cell in cells:
        assert cell["recovered"] + cell["quarantined"] == \
            cell["poisoned"]
