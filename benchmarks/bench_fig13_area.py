"""E07 / Figure 13b + Sec. 10: area breakdown and power.

The calibrated physical-design model: component areas at 22 nm, their
share of the processor, and the power estimate. Expected values are
the paper's own post-PnR numbers (SMX-1D 0.0152 mm^2 = 1.37%, SMX-2D
0.3280 mm^2 = 29.66%, SMX total 0.34 mm^2, 0.342 mW at 20% activity).
"""

from repro.analysis.area import smx_area_breakdown, smx_power_mw
from repro.analysis.reporting import format_table


def experiment():
    breakdown = smx_area_breakdown()
    rows = [[name, f"{area:.4f}", f"{percent:.2f}%"]
            for name, area, percent in breakdown.rows()]
    table = format_table(
        ["component", "area (mm^2 @ 22nm)", "% of processor"],
        rows, title="Figure 13b -- SMX area breakdown (4 workers)")

    ablation_rows = []
    for workers in (1, 2, 4, 8):
        alt = smx_area_breakdown(n_workers=workers)
        ablation_rows.append([workers, f"{alt.smx2d:.4f}",
                              f"{alt.smx_total:.4f}",
                              f"{alt.smx2d_fraction:.1%}"])
    ablation = format_table(
        ["workers", "SMX-2D mm^2", "SMX total mm^2", "SMX-2D share"],
        ablation_rows,
        title="Worker-count area ablation (engine fixed)")

    power = (f"Power at 20% gate activity: {smx_power_mw():.3f} mW "
             f"(paper: 0.342 mW); at 50%: {smx_power_mw(0.5):.3f} mW.")
    notes = (
        "Anchors reproduced exactly by calibration: SMX-1D 1.37% of the "
        "in-order core (comparable to a 2-cycle 64-bit multiplier), "
        "SMX-2D 29.66% (~2.13x the 32 KB L1D).")
    return "fig13_area", [table, ablation, power, notes]


def test_fig13(run_experiment):
    run_experiment(experiment)
