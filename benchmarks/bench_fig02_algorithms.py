"""E01 / Figure 2: DP-elements computed, stored, and recall per algorithm.

Paper series: full, banded, X-drop, window (GACT-style), Hirschberg on
ONT DNA reads -- showing the compute/memory/accuracy trade-off that
motivates a flexible accelerator. Expected shape: full/Hirschberg at
100% recall (Hirschberg ~2x compute, ~0 storage), banded/X-drop compute
a fraction of the matrix at high recall, the window heuristic loses
recall as reads get longer and noisier.
"""

from repro.algorithms import (
    BandedAligner,
    FullAligner,
    HirschbergAligner,
    WavefrontAligner,
    WindowAligner,
    XdropAligner,
)
from repro.analysis.metrics import RecallStats
from repro.analysis.reporting import format_table
from repro.config import dna_edit_config
from repro.workloads.datasets import ont_like


def experiment(scale: float):
    config = dna_edit_config()
    # Fig. 2 uses ONT reads; full-matrix gold limits the length here.
    # Half the reads carry a long structural deletion, the events that
    # separate the heuristics' recall.
    dataset = ont_like(n_pairs=6, scale=min(scale, 0.06), sv_prob=0.75,
                       seed=20250711)
    gold = FullAligner()
    algorithms = [
        FullAligner(),
        BandedAligner(fraction=0.10),
        XdropAligner(fraction=0.08),
        WindowAligner(window=320, overlap=128),
        HirschbergAligner(),
        WavefrontAligner(),
    ]
    rows = []
    for algorithm in algorithms:
        recall = RecallStats()
        computed = stored = 0.0
        for pair in dataset:
            optimal = gold.compute_score(pair.q_codes, pair.r_codes,
                                         config.model).score
            result = algorithm.align(pair.q_codes, pair.r_codes,
                                     config.model)
            recall.record(None if result.failed else result.score, optimal)
            frac_c, frac_s = result.stats.fractions_of(pair.n, pair.m)
            computed += frac_c / len(dataset)
            stored += frac_s / len(dataset)
        rows.append([algorithm.name, f"{computed:.1%}", f"{stored:.1%}",
                     f"{recall.recall:.0%}"])
    table = format_table(
        ["algorithm", "DP-elements computed", "DP-elements stored",
         "recall"],
        rows,
        title=f"Figure 2 -- algorithm trade-offs on ONT-like reads "
              f"(~{dataset.mean_length:.0f} bp, {len(dataset)} pairs)")
    notes = (
        "Paper shape: exact algorithms (full, Hirschberg) reach 100% "
        "recall, Hirschberg trades ~2x compute for ~0 storage; banded/"
        "X-drop compute a fraction of the matrix; the fixed-window "
        "heuristic loses recall on long noisy reads.")
    return "fig02_algorithms", [table, notes]


def test_fig02(run_experiment, scale):
    run_experiment(experiment, scale)
