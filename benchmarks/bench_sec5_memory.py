"""E12 / Sec. 5: memory-footprint reduction and L2-port pressure.

Two claims: (1) SMX-2D's border-only storage cuts traceback memory up
to 32x vs. SMX-1D's full delta field and up to 256x vs. 32-bit
software; (2) even at full engine occupancy the coprocessor uses only
~25% of the shared L2 request port (CPU traffic unaffected).
"""

from repro.analysis.reporting import format_table
from repro.core.coprocessor import CoprocParams, CoprocessorSim
from repro.core.worker import BlockJob, memory_footprint_bytes
from repro.encoding.packing import lanes_for

CONFIG_EWS = {"dna-edit": 2, "dna-gap": 4, "protein": 6, "ascii": 8}


def experiment():
    size = 10_000
    rows = []
    for name, ew in CONFIG_EWS.items():
        job = BlockJob(n=size, m=size, ew=ew, store_tile_borders=True)
        software = job.cells * 4                      # 32-bit elements
        smx1d = job.cells * 2 * ew // 8               # full delta field
        smx2d = memory_footprint_bytes(job)           # tile borders
        rows.append([
            name, f"{software / 2**20:,.0f} MiB",
            f"{smx1d / 2**20:,.0f} MiB", f"{smx2d / 2**20:.1f} MiB",
            f"{software / smx1d:.0f}x", f"{smx1d / smx2d:.0f}x",
            f"{software / smx2d:.0f}x",
        ])
    footprint = format_table(
        ["config", "software 32-bit", "SMX-1D deltas", "SMX-2D borders",
         "1D vs sw", "2D vs 1D", "2D vs sw"],
        rows,
        title=f"Sec. 5 -- traceback memory footprint for a "
              f"{size:,}x{size:,} DP-block")

    port_rows = []
    for name, ew in CONFIG_EWS.items():
        sim = CoprocessorSim(CoprocParams(n_workers=4))
        vl = lanes_for(ew)
        edge = min(size, 125 * vl)  # cap the event count per config
        jobs = [BlockJob(n=edge, m=edge, ew=ew, job_id=i)
                for i in range(8)]
        report = sim.run(jobs)
        port_rows.append([
            name, f"{report.engine_utilization:.0%}",
            f"{report.port_occupancy:.0%}",
            f"{report.bytes_transferred / 2**20:.1f} MiB",
        ])
    port = format_table(
        ["config", "engine utilization", "L2-port occupancy",
         "traffic"],
        port_rows,
        title="Sec. 5.1 -- shared L2 port pressure at full occupancy")
    notes = (
        "Paper anchors: up to 32x reduction vs SMX-1D, 256x vs 32-bit "
        "software (exact at EW=2); port occupancy stays ~<=25% even "
        "with the engine saturated, leaving the CPU's L2 bandwidth "
        "intact -- the property that lets SMX scale in a multi-"
        "accelerator SoC.")
    return "sec5_memory", [footprint, port, notes]


def test_sec5(run_experiment):
    run_experiment(experiment)
