"""Tests for the SMX-PE borrow-bit datapath (paper Fig. 5)."""

import itertools

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pe import (
    pe_column,
    pe_datapath,
    pe_datapath_vec,
    pe_reference,
)
from repro.encoding.packing import element_mask
from repro.errors import RangeError


class TestDatapathEquivalence:
    @pytest.mark.parametrize("ew", [2, 4])
    def test_exhaustive_small_widths(self, ew):
        """Every EW-bit input triple: the 4-subtractor/2-mux datapath
        equals the max-form reference."""
        mask = element_mask(ew)
        for dv, dh, s in itertools.product(range(mask + 1), repeat=3):
            assert pe_datapath(dv, dh, s, ew) == pe_reference(dv, dh, s)

    @pytest.mark.parametrize("ew", [6, 8])
    def test_sampled_large_widths(self, ew, rng):
        mask = element_mask(ew)
        for _ in range(3000):
            dv, dh, s = (int(x) for x in rng.integers(0, mask + 1, 3))
            assert pe_datapath(dv, dh, s, ew) == pe_reference(dv, dh, s)

    @given(dv=st.integers(0, 255), dh=st.integers(0, 255),
           s=st.integers(0, 255))
    def test_property_ew8(self, dv, dh, s):
        assert pe_datapath(dv, dh, s, 8) == pe_reference(dv, dh, s)

    def test_outputs_fit_element_width(self):
        """Closure: valid inputs always give valid EW-bit outputs."""
        for ew in (2, 4):
            mask = element_mask(ew)
            for dv, dh, s in itertools.product(range(mask + 1), repeat=3):
                dv_out, dh_out = pe_datapath(dv, dh, s, ew)
                assert 0 <= dv_out <= mask
                assert 0 <= dh_out <= mask


class TestInputValidation:
    def test_scalar_range_check(self):
        with pytest.raises(RangeError, match="exceed"):
            pe_datapath(4, 0, 0, 2)

    def test_negative_rejected(self):
        with pytest.raises(RangeError):
            pe_datapath(-1, 0, 0, 4)

    def test_vector_range_check(self):
        with pytest.raises(RangeError):
            pe_datapath_vec(np.array([0, 70]), np.array([0, 0]),
                            np.array([0, 0]), 6)


class TestVectorized:
    @pytest.mark.parametrize("ew", [2, 4, 6, 8])
    def test_matches_scalar(self, ew, rng):
        mask = element_mask(ew)
        dv = rng.integers(0, mask + 1, 200)
        dh = rng.integers(0, mask + 1, 200)
        s = rng.integers(0, mask + 1, 200)
        out_v, out_h = pe_datapath_vec(dv, dh, s, ew)
        for k in range(200):
            sv, sh = pe_datapath(int(dv[k]), int(dh[k]), int(s[k]), ew)
            assert out_v[k] == sv and out_h[k] == sh


class TestPeColumn:
    def test_chains_dh_downward(self):
        """PE k's dh output feeds PE k+1 (paper Fig. 6 left)."""
        ew = 4
        dv = [1, 2, 3]
        s = [5, 5, 5]
        dv_out, dh_out = pe_column(dv, 2, s, ew)
        dh = 2
        expected_v = []
        for lane in range(3):
            v, dh = pe_reference(dv[lane], dh, s[lane])
            expected_v.append(v)
        assert dv_out == expected_v
        assert dh_out == dh

    def test_empty_column(self):
        dv_out, dh_out = pe_column([], 3, [], 4)
        assert dv_out == [] and dh_out == 3

    def test_length_mismatch_rejected(self):
        with pytest.raises(RangeError):
            pe_column([1, 2], 0, [1], 4)

    def test_oversized_column_rejected(self):
        with pytest.raises(RangeError):
            pe_column([0] * 33, 0, [0] * 33, 2)
