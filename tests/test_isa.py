"""Tests for SMX-1D instruction semantics (paper Sec. 4.2)."""

import numpy as np
import pytest

from repro.config import standard_configs
from repro.core.isa import (
    Smx1D,
    broadcast_code,
    smx1d_block_borders,
    smx1d_block_score,
)
from repro.core.registers import SmxState
from repro.dp.delta import block_border_deltas
from repro.dp.dense import nw_score
from repro.encoding.packing import pack_word, unpack_word
from repro.errors import EncodingError, RangeError
from tests.conftest import make_pair


def make_unit(name: str) -> Smx1D:
    return Smx1D(SmxState.for_config(standard_configs()[name]))


class TestSmxVH:
    @pytest.mark.parametrize("name", ["dna-edit", "dna-gap", "protein",
                                      "ascii"])
    def test_column_against_delta_kernel(self, configs, name, rng):
        """One smx.v/smx.h column equals the shifted recurrence."""
        config = configs[name]
        unit = make_unit(name)
        vl, ew = config.vl, config.ew
        theta = config.model.theta
        q = config.alphabet.random(vl, rng)
        r_char = int(config.alphabet.random(1, rng)[0])
        dvp_in = rng.integers(0, theta + 1, vl)
        dhp_in = int(rng.integers(0, theta + 1))

        unit.write_csr("smx_query", pack_word(q, ew))
        unit.write_csr("smx_reference", broadcast_code(r_char, ew))
        rs1 = pack_word(dvp_in, ew)
        rd_v = unit.smx_v(rs1, dhp_in)
        rd_h = unit.smx_h(rs1, dhp_in)

        block = block_border_deltas(
            q, np.array([r_char], dtype=np.uint8), config.model,
            dvp_in=dvp_in, dhp_in=np.array([dhp_in]))
        assert unpack_word(rd_v, ew, vl) == list(block[0])
        assert rd_h == int(block[1][0])

    def test_partial_lanes(self, configs, rng):
        config = configs["dna-edit"]
        unit = make_unit("dna-edit")
        q = config.alphabet.random(5, rng)
        unit.write_csr("smx_query", pack_word(q, 2))
        unit.write_csr("smx_reference", broadcast_code(1, 2))
        rd = unit.smx_v(pack_word([0] * 5, 2), 0, lanes=5)
        assert len(unpack_word(rd, 2, 5)) == 5

    def test_counters_increment(self, rng):
        unit = make_unit("dna-edit")
        unit.write_csr("smx_query", 0)
        unit.write_csr("smx_reference", 0)
        unit.smx_v(0, 0)
        unit.smx_h(0, 0)
        unit.smx_redsum(0)
        assert unit.counters.smx_v == 1
        assert unit.counters.smx_h == 1
        assert unit.counters.smx_redsum == 1
        assert unit.counters.csr_writes == 2
        assert unit.counters.smx_total == 5
        unit.counters.reset()
        assert unit.counters.smx_total == 0


class TestRedsum:
    def test_sums_lanes(self):
        unit = make_unit("dna-gap")
        word = pack_word([1, 2, 3, 4], 4)
        assert unit.smx_redsum(word, lanes=4) == 10

    def test_full_vector(self):
        unit = make_unit("dna-edit")
        word = pack_word([3] * 32, 2)
        assert unit.smx_redsum(word) == 96

    def test_partial_lanes_ignore_rest(self):
        unit = make_unit("ascii")
        word = pack_word([10, 20, 99], 8)
        assert unit.smx_redsum(word, lanes=2) == 30


class TestSmxPack:
    def test_dna_packing(self):
        unit = make_unit("dna-edit")
        raw = int.from_bytes(b"ACGTACGT", "little")
        packed = unit.smx_pack(raw)
        assert unpack_word(packed, 2, 8) == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_dna_lowercase(self):
        unit = make_unit("dna-gap")
        raw = int.from_bytes(b"acgtacgt", "little")
        assert unpack_word(unit.smx_pack(raw), 4, 8) == [0, 1, 2, 3] * 2

    def test_protein_packing(self):
        unit = make_unit("protein")
        raw = int.from_bytes(b"AZWYACDE", "little")
        packed = unit.smx_pack(raw)
        assert unpack_word(packed, 6, 8) == [0, 25, 22, 24, 0, 2, 3, 4]

    def test_ascii_identity(self):
        unit = make_unit("ascii")
        raw = int.from_bytes(b"Hello!!?", "little")
        assert unpack_word(unit.smx_pack(raw), 8, 8) == list(b"Hello!!?")

    def test_invalid_dna_byte(self):
        unit = make_unit("dna-edit")
        with pytest.raises(EncodingError, match="not a DNA"):
            unit.smx_pack(int.from_bytes(b"ACGNACGT", "little"))

    def test_invalid_protein_byte(self):
        unit = make_unit("protein")
        with pytest.raises(EncodingError, match="not a letter"):
            unit.smx_pack(int.from_bytes(b"A1CDEFGH", "little"))


class TestBlockKernel:
    @pytest.mark.parametrize("name", ["dna-edit", "dna-gap", "protein",
                                      "ascii"])
    @pytest.mark.parametrize("n,m", [(7, 9), (32, 20), (45, 33)])
    def test_borders_match_gold(self, configs, name, n, m, rng):
        """The instruction-level sweep equals the numpy delta kernel."""
        config = configs[name]
        unit = make_unit(name)
        q, r = make_pair(config, n, 0.25, rng, m=m)
        dvp, dhp = smx1d_block_borders(unit, q, r)
        gold_v, gold_h = block_border_deltas(q, r, config.model)
        assert np.array_equal(dvp, gold_v)
        assert np.array_equal(dhp, gold_h)

    @pytest.mark.parametrize("name", ["dna-edit", "protein"])
    def test_score_kernel(self, configs, name, rng):
        config = configs[name]
        unit = make_unit(name)
        q, r = make_pair(config, 26, 0.2, rng, m=31)
        assert smx1d_block_score(unit, q, r) == nw_score(q, r, config.model)

    def test_instruction_count(self, configs, rng):
        """Strips x columns x (smx.v + smx.h): the 8-32x instruction
        reduction claim of paper Sec. 4."""
        config = configs["dna-edit"]
        unit = make_unit("dna-edit")
        q, r = make_pair(config, 64, 0.2, rng, m=50)
        smx1d_block_borders(unit, q, r)
        strips = 2  # 64 rows / VL=32
        assert unit.counters.smx_v == strips * 50
        assert unit.counters.smx_h == strips * 50

    def test_border_range_check(self, configs, rng):
        config = configs["dna-edit"]
        unit = make_unit("dna-edit")
        q, r = make_pair(config, 8, 0.2, rng)
        with pytest.raises(RangeError):
            smx1d_block_borders(unit, q, r,
                                dvp_in=np.full(8, 100), dhp_in=np.zeros(8))


class TestBroadcast:
    @pytest.mark.parametrize("ew,vl", [(2, 32), (4, 16), (6, 10), (8, 8)])
    def test_fills_all_lanes(self, ew, vl):
        word = broadcast_code(1, ew)
        assert unpack_word(word, ew) == [1] * vl
