"""Tests for the SMX-accelerated algorithm pipelines (paper Sec. 9)."""

import pytest

from repro.config import dna_edit_config, dna_gap_config, protein_config
from repro.core.pipelines import (
    SmxHirschbergPipeline,
    SmxProteinFullPipeline,
    SmxXdropPipeline,
)
from repro.core.system import SmxSystem
from repro.errors import ConfigurationError
from repro.workloads.datasets import ont_like, pacbio_like, uniprot_like


@pytest.fixture(scope="module")
def ont():
    return ont_like(n_pairs=4, scale=0.05)


@pytest.fixture(scope="module")
def pacbio():
    return pacbio_like(n_pairs=4, scale=0.05)


@pytest.fixture(scope="module")
def uniprot():
    return uniprot_like(n_pairs=8)


class TestHirschbergPipeline:
    def test_large_speedup(self, ont):
        pipeline = SmxHirschbergPipeline(SmxSystem(dna_edit_config()))
        timing = pipeline.timing(ont)
        assert timing.speedup > 50

    def test_block_shapes_cover_twice_the_matrix(self):
        pipeline = SmxHirschbergPipeline(SmxSystem(dna_edit_config()))
        n = m = 4096
        shapes = pipeline.block_shapes(n, m)
        cells = sum(r * c for r, c, _ in shapes)
        assert 1.3 * n * m < cells < 2.6 * n * m

    def test_leaves_bounded(self):
        pipeline = SmxHirschbergPipeline(SmxSystem(dna_edit_config()),
                                         leaf_cells=1024)
        shapes = pipeline.block_shapes(2000, 2000)
        for rows, cols, is_leaf in shapes:
            if is_leaf:
                assert rows * cols <= 1024 or rows == 1

    def test_functional_exact(self, pacbio):
        config = dna_edit_config()
        pipeline = SmxHirschbergPipeline(SmxSystem(config))
        pair = pacbio.pairs[0]
        result = pipeline.functional(pair, config.model)
        from repro.dp.dense import nw_score
        assert result.score == nw_score(pair.q_codes, pair.r_codes,
                                        config.model)


class TestXdropPipeline:
    def test_speedup_positive_but_below_hirschberg(self, ont):
        """Fig. 11 ordering: Xdrop < Hirschberg (communication cost)."""
        hirschberg = SmxHirschbergPipeline(SmxSystem(dna_edit_config()))
        xdrop = SmxXdropPipeline(SmxSystem(dna_gap_config()))
        t_h = hirschberg.timing(ont)
        t_x = xdrop.timing(ont)
        assert t_x.speedup > 3
        assert t_x.speedup < t_h.speedup

    def test_chunk_width_is_supertile(self):
        pipeline = SmxXdropPipeline(SmxSystem(dna_gap_config()))
        assert pipeline.chunk_cols() == 8 * 16  # span x VL at EW=4

    def test_block_shapes_tile_the_band(self):
        pipeline = SmxXdropPipeline(SmxSystem(dna_gap_config()),
                                    band_fraction=0.1)
        shapes = pipeline.block_shapes(2000, 2000)
        assert sum(cols for _, cols in shapes) == 2000
        band = shapes[0][0]
        assert 150 <= band <= 300

    def test_band_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            SmxXdropPipeline(SmxSystem(dna_gap_config()), band_fraction=0)

    def test_high_core_utilization(self, ont):
        """Fig. 12 right: Xdrop keeps both core and engine busy."""
        pipeline = SmxXdropPipeline(SmxSystem(dna_gap_config()))
        timing = pipeline.timing(ont)
        assert timing.smx.core_busy_fraction > 0.5


class TestProteinPipeline:
    def test_largest_speedup(self, uniprot, ont):
        """Fig. 11: protein-full shows the biggest win (~744x)."""
        protein = SmxProteinFullPipeline(SmxSystem(protein_config()))
        timing = protein.timing(uniprot)
        assert timing.speedup > 300

    def test_core_nearly_idle(self, uniprot):
        """Fig. 12 right: protein runs leave the core underutilized."""
        protein = SmxProteinFullPipeline(SmxSystem(protein_config()))
        timing = protein.timing(uniprot)
        assert timing.smx.core_busy_fraction < 0.3
        assert timing.smx.engine_utilization > 0.7

    def test_requires_submat_config(self):
        with pytest.raises(ConfigurationError, match="substitution"):
            SmxProteinFullPipeline(SmxSystem(dna_edit_config()))

    def test_functional_score(self, uniprot):
        config = protein_config()
        pipeline = SmxProteinFullPipeline(SmxSystem(config))
        pair = uniprot.pairs[0]
        result = pipeline.functional(pair, config.model)
        from repro.dp.dense import nw_score
        assert result.score == nw_score(pair.q_codes, pair.r_codes,
                                        config.model)


class TestPipelineTimingFields:
    def test_alignments_per_second(self, pacbio):
        pipeline = SmxHirschbergPipeline(SmxSystem(dna_edit_config()))
        timing = pipeline.timing(pacbio)
        assert timing.pairs == len(pacbio)
        assert timing.smx_alignments_per_second > 0
        assert (timing.smx_alignments_per_second
                > timing.baseline_alignments_per_second)
