"""Tests for the application pipelines: read mapper and protein search."""

import numpy as np
import pytest

from repro.apps.dbsearch import ProteinSearch, build_database
from repro.apps.readmapper import ReadMapper
from repro.errors import ConfigurationError
from repro.workloads.genome import random_genome, sample_reads
from repro.workloads.synthetic import (
    ONT_NANOPORE,
    PACBIO_HIFI,
    PERFECT,
    random_protein_pair,
)


@pytest.fixture(scope="module")
def genome():
    return random_genome(40_000, seed=9)


class TestReadMapper:
    def test_perfect_reads_map_exactly(self, genome):
        reads = sample_reads(genome, 10, 400, PERFECT, seed=3)
        mapper = ReadMapper(genome)
        report = mapper.map_all(reads, tolerance=0)
        assert report.mapped_fraction == 1.0
        assert report.accuracy(reads) == 1.0

    def test_noisy_reads_map_accurately(self, genome):
        reads = sample_reads(genome, 10, 600, ONT_NANOPORE, seed=4)
        mapper = ReadMapper(genome)
        report = mapper.map_all(reads, tolerance=30)
        assert report.accuracy(reads) >= 0.9

    def test_pacbio_profile(self, genome):
        reads = sample_reads(genome, 8, 800, PACBIO_HIFI, seed=5)
        report = ReadMapper(genome).map_all(reads, tolerance=20)
        assert report.accuracy(reads) == 1.0

    def test_unrelated_read_unmapped(self, genome):
        mapper = ReadMapper(genome)
        foreign = random_genome(500, seed=777)
        mapping = mapper.map_read(foreign)
        assert not mapping.mapped
        assert mapping.seed_votes < mapper.min_votes

    def test_mapping_scores_reflect_errors(self, genome):
        clean = sample_reads(genome, 5, 400, PERFECT, seed=6)
        noisy = sample_reads(genome, 5, 400, ONT_NANOPORE, seed=6)
        mapper = ReadMapper(genome)
        clean_scores = [mapper.map_read(r.codes).score
                        for r in clean.reads]
        noisy_scores = [mapper.map_read(r.codes).score
                        for r in noisy.reads]
        assert min(clean_scores) == 0          # edit model, exact reads
        assert max(noisy_scores) < 0

    def test_smx_extension_speedup(self, genome):
        reads = sample_reads(genome, 6, 500, ONT_NANOPORE, seed=8)
        mapper = ReadMapper(genome)
        assert mapper.smx_extension_speedup(reads) > 5

    def test_k_validation(self, genome):
        with pytest.raises(ConfigurationError):
            ReadMapper(genome, k=2)

    def test_kmer_keys_short_read(self, genome):
        mapper = ReadMapper(genome)
        assert len(mapper._kmer_keys(genome[:5])) == 0


class TestGenomeWorkloads:
    def test_reads_within_genome(self, genome):
        reads = sample_reads(genome, 20, 300, PERFECT, seed=1)
        for read in reads.reads:
            assert 0 <= read.true_position <= len(genome) - 300
            assert np.array_equal(
                read.codes,
                genome[read.true_position:read.true_end])

    def test_read_length_validation(self, genome):
        with pytest.raises(ConfigurationError):
            sample_reads(genome, 1, len(genome) + 1, PERFECT)

    def test_genome_validation(self):
        with pytest.raises(ConfigurationError):
            random_genome(0)

    def test_determinism(self):
        a = random_genome(1000, seed=5)
        b = random_genome(1000, seed=5)
        assert np.array_equal(a, b)


class TestProteinSearch:
    @pytest.fixture(scope="class")
    def planted(self):
        rng = np.random.default_rng(5)
        query = random_protein_pair(300, 0.0, rng).r_codes
        database, homolog = build_database(25, homolog_of=query,
                                           divergence=0.3, seed=6)
        return query, database, homolog

    def test_homolog_ranked_first(self, planted):
        query, database, homolog = planted
        report = ProteinSearch(database).search(query)
        assert report.rank_of(homolog) == 1

    def test_filter_discards_most(self, planted):
        query, database, _ = planted
        report = ProteinSearch(database).search(query)
        assert report.filtered_fraction > 0.7

    def test_filter_never_discards_identity(self, planted):
        query, database, _ = planted
        search = ProteinSearch(database)
        assert search.filter_score(query, query) \
            >= search.filter_threshold

    def test_distant_homolog_found_with_lower_threshold(self):
        rng = np.random.default_rng(11)
        query = random_protein_pair(400, 0.0, rng).r_codes
        database, homolog = build_database(15, homolog_of=query,
                                           divergence=0.45, seed=12)
        report = ProteinSearch(database,
                               filter_threshold=40).search(query)
        assert report.rank_of(homolog) == 1

    def test_smx_speedup_large(self, planted):
        query, database, _ = planted
        search = ProteinSearch(database)
        report = search.search(query)
        assert search.smx_speedup(query, report) > 50

    def test_empty_database_rejected(self):
        with pytest.raises(ConfigurationError):
            ProteinSearch([])

    def test_requires_protein_config(self, planted):
        from repro.config import dna_edit_config
        _, database, _ = planted
        with pytest.raises(ConfigurationError, match="substitution"):
            ProteinSearch(database, config=dna_edit_config())

    def test_no_homolog_database(self):
        database, homolog = build_database(10, seed=3)
        assert homolog == -1
        rng = np.random.default_rng(30)
        query = random_protein_pair(200, 0.0, rng).r_codes
        report = ProteinSearch(database).search(query)
        assert report.candidates <= 2  # unrelated targets mostly filtered
