"""Tests for the baseline timing models (KSW2, GMX, DPX, GACT, SotA)."""

import pytest

from repro.baselines.dpx import (
    DPX_KERNEL_SPEEDUP,
    dpx_params,
    dpx_score_timing,
)
from repro.baselines.gact import (
    GactParams,
    gact_alignment_timing,
    gact_peak_gcups,
)
from repro.baselines.gmx import GmxParams, gmx_block_timing
from repro.baselines.ksw2 import (
    Ksw2Params,
    ksw2_alignment_timing,
    ksw2_score_timing,
)
from repro.baselines.sota import (
    SMX_AREA_MM2,
    SOTA_TABLE,
    cudasw_socket_gcups,
    smx_socket_gcups,
    smx_table_rows,
)
from repro.sim.cpu import CoreModel


@pytest.fixture()
def core():
    return CoreModel()


class TestKsw2:
    def test_peak_rate_matches_table3(self, core):
        """KSW2's peak is ~1.8 GCUPS (Table 3): 16 lanes / 9 SIMD ops."""
        timing = ksw2_score_timing(1000, 1000, core)
        assert 1.2 < timing.gcups < 2.2

    def test_alignment_slower_than_score(self, core):
        score = ksw2_score_timing(2000, 2000, core)
        align = ksw2_alignment_timing(2000, 2000, core)
        assert align.cycles > score.cycles

    def test_protein_much_slower(self, core):
        """The substitution-matrix gather wrecks SIMD (paper Sec. 8/9)."""
        dna = ksw2_score_timing(1000, 1000, core, uses_submat=False)
        protein = ksw2_score_timing(1000, 1000, core, uses_submat=True)
        assert protein.cycles > 5 * dna.cycles

    def test_alignment_degrades_at_scale(self, core):
        """The direction matrix spills to DRAM for long sequences."""
        small = ksw2_alignment_timing(1000, 1000, core)
        large = ksw2_alignment_timing(10_000, 10_000, core)
        assert large.gcups < small.gcups

    def test_traceback_breakdown_reported(self, core):
        timing = ksw2_alignment_timing(500, 500, core)
        assert timing.extra["sweep_cycles"] > 0
        assert timing.extra["traceback_cycles"] > 0

    def test_custom_params(self, core):
        fast = Ksw2Params(simd_ops_per_vector=4.5)
        base = ksw2_score_timing(1000, 1000, core)
        tuned = ksw2_score_timing(1000, 1000, core, params=fast)
        assert tuned.cycles < base.cycles


class TestDpx:
    def test_kernel_speedup_matches_paper(self, core):
        """Paper Sec. 11: DPX gives only ~1.07x over KSW2."""
        base = ksw2_score_timing(2000, 2000, core)
        dpx = dpx_score_timing(2000, 2000, core)
        assert base.cycles / dpx.cycles == pytest.approx(
            DPX_KERNEL_SPEEDUP, rel=0.05)

    def test_params_shrink_simd_only(self):
        base = Ksw2Params()
        tuned = dpx_params(base)
        assert tuned.simd_ops_per_vector < base.simd_ops_per_vector
        assert tuned.loads_per_vector == base.loads_per_vector


class TestGmx:
    def test_low_tile_occupancy(self, core):
        """Paper Sec. 11: GMX reaches ~11% tile occupancy on the core."""
        timing = gmx_block_timing(10_000, 10_000, core)
        assert 0.08 < timing.extra["tile_occupancy"] < 0.20

    def test_faster_than_simd(self, core):
        simd = ksw2_score_timing(5000, 5000, core)
        gmx = gmx_block_timing(5000, 5000, core)
        assert gmx.cycles < simd.cycles

    def test_tile_count(self, core):
        timing = gmx_block_timing(64, 64, core)
        assert timing.extra["tiles"] == 4

    def test_custom_latency(self, core):
        slow = gmx_block_timing(1000, 1000, core,
                                params=GmxParams(tile_latency=20))
        fast = gmx_block_timing(1000, 1000, core,
                                params=GmxParams(tile_latency=4))
        assert slow.cycles > fast.cycles


class TestGact:
    def test_linear_in_length(self):
        """Window heuristic cost is linear, not quadratic."""
        short = gact_alignment_timing(10_000, 10_000)
        long = gact_alignment_timing(50_000, 50_000)
        ratio = long.cycles / short.cycles
        assert 4.0 < ratio < 6.0

    def test_window_count(self):
        params = GactParams()
        timing = gact_alignment_timing(50_000, 50_000, params)
        advance = params.window - params.overlap
        assert timing.extra["windows"] == -(-50_000 // advance)

    def test_peak_gcups(self):
        assert gact_peak_gcups() == 64.0

    def test_faster_than_smx_per_window_workload(self):
        """Paper Fig. 14: GACT beats SMX on its own (W) heuristic."""
        from repro.config import dna_gap_config
        from repro.core.system import SmxSystem

        system = SmxSystem(dna_gap_config())
        n = 20_000
        gact = gact_alignment_timing(n, n)
        params = GactParams()
        advance = params.window - params.overlap
        windows = -(-n // advance)
        shapes = [(params.window, params.window)] * windows
        smx = system.coproc_workload_timing(shapes, mode="align",
                                            impl="smx")
        assert gact.cycles < smx.total_cycles


class TestSotaTable:
    def test_known_rows_present(self):
        names = {entry.name for entry in SOTA_TABLE}
        assert {"KSW2", "GMX", "GenASM", "DARWIN", "GenDP",
                "CUDASW++4"} <= names

    def test_smx_rows_peaks(self):
        rows = {row.name: row for row in smx_table_rows()}
        assert rows["SMX DNA-edit"].peak_gcups_per_pu == 1024.0
        assert rows["SMX Protein"].peak_gcups_per_pu == 100.0
        assert all(row.area_mm2_per_pu == SMX_AREA_MM2
                   for row in rows.values())

    def test_gcups_per_area_advantage(self):
        """Paper key result: 15.5-18.6x higher GCUPS/mm^2 than the best
        published DSAs."""
        smx_edit = smx_table_rows()[0]
        genasm = next(e for e in SOTA_TABLE if e.name == "GenASM")
        ratio = smx_edit.gcups_per_mm2 / genasm.gcups_per_mm2
        assert 14.0 < ratio < 20.0

    def test_cudasw_socket_comparison(self):
        """Paper Sec. 11: 72-core SMX Grace ~1.7x an H100 on protein."""
        ratio = smx_socket_gcups() / cudasw_socket_gcups()
        assert 1.4 < ratio < 2.0

    def test_traceback_support_flags(self):
        cudasw = next(e for e in SOTA_TABLE if e.name == "CUDASW++4")
        assert not cudasw.traceback
        gmx = next(e for e in SOTA_TABLE if e.name == "GMX")
        assert gmx.traceback and not gmx.protein
