"""Tests for the area model, metrics, and report formatting."""

import os

import pytest

from repro.analysis.area import (
    SMX1D_AREA_MM2,
    SMX2D_AREA_MM2,
    scale_area,
    smx_area_breakdown,
    smx_power_mw,
)
from repro.analysis.metrics import (
    RecallStats,
    amdahl_speedup,
    diamond_endtoend_speedup,
    gcups,
    minimap2_endtoend_speedups,
)
from repro.analysis.reporting import format_table, write_report
from repro.errors import ConfigurationError


class TestAreaBreakdown:
    def test_paper_anchors(self):
        """Sec. 10: SMX-1D 0.0152 mm^2, SMX-2D 0.3280 mm^2."""
        breakdown = smx_area_breakdown()
        assert breakdown.smx1d == SMX1D_AREA_MM2
        assert breakdown.smx2d == pytest.approx(SMX2D_AREA_MM2)

    def test_fractions_match_paper(self):
        """SMX-2D = 29.66% and SMX-1D = 1.37% of the processor."""
        breakdown = smx_area_breakdown()
        assert breakdown.smx2d_fraction == pytest.approx(0.2966, abs=1e-4)
        assert breakdown.smx1d_fraction == pytest.approx(0.0137, abs=5e-4)

    def test_smx_total_is_034(self):
        """Abstract: minimal area overhead of 0.34 mm^2."""
        assert smx_area_breakdown().smx_total == pytest.approx(0.343,
                                                               abs=0.01)

    def test_worker_scaling(self):
        two = smx_area_breakdown(n_workers=2)
        eight = smx_area_breakdown(n_workers=8)
        assert eight.smx2d > two.smx2d
        assert eight.engine == two.engine

    def test_rows_render(self):
        rows = smx_area_breakdown().rows()
        assert rows[-1][0] == "Processor total"
        assert rows[-1][2] == 100.0

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            smx_area_breakdown(0)


class TestTechnologyScaling:
    def test_gact_example(self):
        """Paper Sec. 11: GACT 1.34 mm^2 @40 nm ~= 0.3 mm^2 @22 nm."""
        assert scale_area(1.34, 40, 22) == pytest.approx(0.30, abs=0.01)

    def test_identity(self):
        assert scale_area(5.0, 22, 22) == 5.0

    def test_unknown_node(self):
        with pytest.raises(ConfigurationError):
            scale_area(1.0, 33, 22)

    def test_power_linear_in_activity(self):
        assert smx_power_mw(0.20) == pytest.approx(0.342)
        assert smx_power_mw(0.40) == pytest.approx(0.684)

    def test_power_range_check(self):
        with pytest.raises(ConfigurationError):
            smx_power_mw(1.5)


class TestMetrics:
    def test_gcups(self):
        assert gcups(10 ** 9, 1e9) == pytest.approx(1.0)
        assert gcups(100, 0) == 0.0

    def test_recall_counting(self):
        stats = RecallStats()
        stats.record(-10, -10)
        stats.record(None, -5)
        stats.record(-20, -10)
        assert stats.total == 3
        assert stats.exact == 1
        assert stats.failed == 1
        assert stats.suboptimal == 1
        assert stats.recall == pytest.approx(1 / 3)

    def test_recall_rejects_impossible_score(self):
        stats = RecallStats()
        with pytest.raises(ConfigurationError, match="gold reference"):
            stats.record(-5, -10)

    def test_amdahl_minimap2(self):
        """Paper Sec. 9.3: 274x kernel -> 3.3-4.1x end to end."""
        low, high = minimap2_endtoend_speedups(274.0)
        assert low == pytest.approx(3.3, abs=0.1)
        assert high == pytest.approx(4.1, abs=0.1)

    def test_amdahl_diamond(self):
        """Paper Sec. 9.3: 744x kernel -> 88.3x end to end."""
        assert diamond_endtoend_speedup(744.0) == pytest.approx(88.3,
                                                                abs=1.0)

    def test_amdahl_validation(self):
        with pytest.raises(ConfigurationError):
            amdahl_speedup(1.5, 10)
        with pytest.raises(ConfigurationError):
            amdahl_speedup(0.5, 0)


class TestReporting:
    def test_format_table_markdown(self):
        table = format_table(["a", "bb"], [[1, 2.5], ["x", 1234.0]],
                             title="T")
        lines = table.splitlines()
        assert lines[0] == "### T"
        assert lines[2].startswith("| a")
        assert "1,234" in table

    def test_write_report(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SMX_RESULTS_DIR", str(tmp_path))
        path = write_report("unit", ["hello", "world"])
        assert os.path.exists(path)
        with open(path) as handle:
            assert "hello" in handle.read()
