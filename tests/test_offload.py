"""Tests for the register-level SMX-2D offload interface."""

import numpy as np
import pytest

from repro.core.offload import (
    MODE_SCORE,
    Memory,
    Smx2DDevice,
    WorkerStatus,
    offload_score,
)
from repro.dp.dense import nw_score
from repro.errors import OffloadError, SimulationError
from tests.conftest import make_pair


class TestMemory:
    def test_load_store_roundtrip(self):
        memory = Memory()
        memory.store(0x100, 0xDEADBEEF)
        assert memory.load(0x100) == 0xDEADBEEF

    def test_unwritten_reads_zero(self):
        assert Memory().load(0x0) == 0

    def test_alignment_enforced(self):
        with pytest.raises(SimulationError, match="aligned"):
            Memory().load(3)
        with pytest.raises(SimulationError, match="aligned"):
            Memory().store(-8, 0)

    def test_store_masks_to_64bit(self):
        memory = Memory()
        memory.store(0, 1 << 70)
        assert memory.load(0) == 0

    def test_packed_roundtrip(self, configs, rng):
        config = configs["protein"]
        memory = Memory()
        codes = config.alphabet.random(45, rng)
        end = memory.store_packed(0x1000, codes, config.ew)
        assert end > 0x1000
        assert np.array_equal(memory.load_packed(0x1000, 45, config.ew),
                              codes)


class TestDeviceProtocol:
    def test_register_roundtrip(self, configs):
        device = Smx2DDevice(configs["dna-edit"], Memory())
        device.write_register(0, "query_len", 128)
        assert device.read_register(0, "query_len") == 128

    def test_unknown_register(self, configs):
        device = Smx2DDevice(configs["dna-edit"], Memory())
        with pytest.raises(OffloadError, match="unknown worker register"):
            device.write_register(0, "flux_capacitor", 1)

    def test_worker_id_range(self, configs):
        device = Smx2DDevice(configs["dna-edit"], Memory(), n_workers=2)
        with pytest.raises(OffloadError, match="out of range"):
            device.poll(5)

    def test_zero_workers_rejected(self, configs):
        with pytest.raises(OffloadError):
            Smx2DDevice(configs["dna-edit"], Memory(), n_workers=0)

    def test_bad_shape_errors_worker(self, configs):
        device = Smx2DDevice(configs["dna-edit"], Memory())
        with pytest.raises(OffloadError, match="bad block shape"):
            device.start(0)
        assert device.poll(0) == WorkerStatus.ERROR

    def test_status_lifecycle(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 40, 0.2, rng)
        score = offload_score(config, q, r)
        del score
        device = Smx2DDevice(config, Memory())
        assert device.poll(0) == WorkerStatus.IDLE
        device.clear(0)
        assert device.poll(0) == WorkerStatus.IDLE


class TestEndToEndOffload:
    @pytest.mark.parametrize("name", ["dna-edit", "dna-gap", "protein",
                                      "ascii"])
    def test_offload_score_matches_gold(self, configs, name, rng):
        """Sequences -> packed memory -> device -> redsum identity: the
        full driver flow is bit-exact for every configuration."""
        config = configs[name]
        q, r = make_pair(config, 77, 0.25, rng, m=53)
        assert offload_score(config, q, r) == nw_score(q, r, config.model)

    def test_multiple_workers_independent(self, configs, rng):
        config = configs["dna-edit"]
        for worker_id in range(3):
            q, r = make_pair(config, 30 + worker_id, 0.2, rng)
            assert offload_score(config, q, r, worker_id=worker_id) \
                == nw_score(q, r, config.model)
