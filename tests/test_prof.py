"""Tests for the work-unit profiler, cost model, and their wiring
into the batch engine (flamegraph/counter reconciliation)."""

import json

import numpy as np
import pytest

from repro.config import dna_gap_config
from repro.exec.engine import BatchConfig, BatchEngine
from repro.obs import Observability, Tracer
from repro.obs.prof import (
    CostModel,
    NULL_PROFILER,
    PhaseStat,
    Profiler,
    UNITS,
)


def _pairs(count, length=48, seed=3):
    rng = np.random.default_rng(seed)
    return [(rng.integers(0, 4, length, dtype=np.uint8),
             rng.integers(0, 4, length, dtype=np.uint8))
            for _ in range(count)]


class TestProfilerPhases:
    def test_nested_phases_record_full_paths(self):
        prof = Profiler()
        with prof.phase("outer"):
            with prof.phase("inner"):
                pass
        assert ("outer",) in prof.stacks
        assert ("outer", "inner") in prof.stacks
        assert prof.stacks[("outer", "inner")].calls == 1

    def test_self_time_excludes_children(self):
        prof = Profiler()
        clock = iter([0.0, 1.0, 9.0, 10.0])  # inner spans [1, 9]
        prof._clock = lambda: next(clock)
        with prof.phase("outer"):
            with prof.phase("inner"):
                pass
        stacks = prof.stacks
        assert stacks[("outer", "inner")].wall_s == pytest.approx(8.0)
        # outer total was 10s; 8s belong to the child.
        assert stacks[("outer",)].wall_s == pytest.approx(2.0)

    def test_work_attributes_to_innermost_phase(self):
        prof = Profiler()
        with prof.phase("a"):
            with prof.phase("b"):
                prof.work(cells=100, bytes_moved=800)
        assert prof.stacks[("a", "b")].cells == 100
        assert prof.stacks[("a", "b")].bytes_moved == 800
        assert prof.stacks[("a",)].cells == 0

    def test_work_outside_any_phase_goes_to_unattributed(self):
        prof = Profiler()
        prof.work(cells=5)
        assert prof.stacks[("(unattributed)",)].cells == 5

    def test_add_records_absolute_paths(self):
        prof = Profiler()
        with prof.phase("live"):
            prof.add("sim.coproc;compute", cycles=1000, cells=64)
        assert prof.stacks[("sim.coproc", "compute")].cycles == 1000
        assert prof.stacks[("sim.coproc", "compute")].cells == 64

    def test_total_sums_across_paths(self):
        prof = Profiler()
        prof.add("a", cells=3)
        prof.add("a;b", cells=4)
        assert prof.total("cells") == 7


class TestCollapsedExport:
    def test_collapsed_format(self):
        prof = Profiler()
        prof.add("exec.vector;bucket", cells=123)
        assert prof.collapsed("cells") == "exec.vector;bucket 123"

    def test_collapsed_drops_zero_paths(self):
        prof = Profiler()
        prof.add("a", cells=10)   # no wall time
        assert prof.collapsed("wall_us") == ""

    def test_collapsed_rejects_unknown_unit(self):
        with pytest.raises(ValueError, match="unknown unit"):
            Profiler().collapsed("joules")

    def test_write_collapsed_round_trip(self, tmp_path):
        prof = Profiler()
        prof.add("a;b", cells=7)
        prof.add("a", cells=2)
        out = tmp_path / "flame.folded"
        prof.write_collapsed(str(out), "cells")
        lines = out.read_text().strip().splitlines()
        assert lines == ["a 2", "a;b 7"]
        # Every line parses as "semicolon-path SPACE integer".
        for line in lines:
            path, value = line.rsplit(" ", 1)
            assert path and int(value) > 0

    def test_all_units_exportable(self):
        prof = Profiler()
        prof.add("x", wall_s=0.001, cells=1, bytes_moved=8, cycles=9.0)
        for unit in UNITS:
            assert "x" in prof.collapsed(unit)

    def test_table_and_format(self):
        prof = Profiler()
        prof.add("a;b", calls=2, cells=10)
        rows = prof.table()
        assert rows[0]["phase"] == "a;b"
        assert rows[0]["depth"] == 2
        assert "a;b" in prof.format_table()


class TestStateTransfer:
    def test_export_merge_round_trip(self):
        worker = Profiler()
        worker.add("exec.vector;bucket", calls=1, wall_s=0.5, cells=100,
                   bytes_moved=800, cycles=7.0)
        parent = Profiler()
        parent.add("exec.vector;bucket", cells=50)
        parent.merge_state(worker.export_state())
        stat = parent.stacks[("exec.vector", "bucket")]
        assert stat.cells == 150
        assert stat.wall_s == pytest.approx(0.5)
        assert stat.calls == 1
        assert stat.bytes_moved == 800
        assert stat.cycles == pytest.approx(7.0)

    def test_state_is_json_safe(self):
        prof = Profiler()
        prof.add("a;b", cells=3)
        state = json.loads(json.dumps(prof.export_state()))
        fresh = Profiler()
        fresh.merge_state(state)
        assert fresh.stacks[("a", "b")].cells == 3

    def test_phase_stat_dict_round_trip(self):
        stat = PhaseStat(calls=2, wall_s=1.5, cycles=3.0, cells=4,
                         bytes_moved=5)
        assert PhaseStat.from_dict(stat.to_dict()) == stat

    def test_null_profiler_records_nothing(self):
        with NULL_PROFILER.phase("x"):
            NULL_PROFILER.work(cells=999)
        NULL_PROFILER.add("y", cells=1)
        assert NULL_PROFILER.stacks == {}
        assert NULL_PROFILER.export_state() == {}
        assert not NULL_PROFILER.enabled


class TestCostModel:
    def test_from_profile_calibrates_from_exec_subtree(self):
        prof = Profiler()
        prof.add("exec.vector;bucket", wall_s=1.0, cells=1_000_000,
                 bytes_moved=4_000_000)
        prof.add("sharding.pool", wall_s=100.0)  # must be excluded
        model = CostModel.from_profile(prof)
        assert model.seconds_per_cell == pytest.approx(1e-6)
        assert model.bytes_per_cell == pytest.approx(4.0)

    def test_from_profile_falls_back_without_cells(self):
        model = CostModel.from_profile(Profiler())
        assert model.seconds_per_cell == \
            CostModel.DEFAULT_SECONDS_PER_CELL

    def test_estimate_accepts_sequences_and_lengths(self):
        model = CostModel(seconds_per_cell=1e-6, bytes_per_cell=4.0)
        by_seq = model.estimate((np.zeros(10), np.zeros(20)))
        by_len = model.estimate((10, 20))
        assert by_seq == by_len
        assert by_len.cells == 200
        assert by_len.seconds == pytest.approx(2e-4)
        assert by_len.bytes_moved == 800

    def test_affine_matrices_scale_cells(self):
        model = CostModel(seconds_per_cell=1e-6, matrices_per_cell=3)
        assert model.estimate((10, 10)).cells == 300

    def test_cost_table_rows(self):
        model = CostModel(seconds_per_cell=1e-6)
        rows = model.cost_table([(4, 4), (8, 8)])
        assert [row["index"] for row in rows] == [0, 1]
        assert [row["cells"] for row in rows] == [16, 64]


class TestEngineReconciliation:
    """The acceptance criterion: flamegraph cell totals reconcile
    exactly with the ``exec.cells`` metric counters."""

    def _cells_counter_total(self, ctx):
        return sum(value for key, value
                   in ctx.metrics.snapshot().items()
                   if key.startswith("exec.cells"))

    @pytest.mark.parametrize("engine", ["vector", "scalar"])
    def test_profile_cells_match_counters(self, engine):
        config = dna_gap_config()
        pairs = _pairs(64)
        ctx = Observability.enabled_context(profile=True)
        BatchEngine(config, BatchConfig(engine=engine),
                    obs=ctx).run(pairs)
        cells = ctx.profiler.total("cells")
        assert cells > 0
        assert cells == self._cells_counter_total(ctx)
        # The collapsed export folds to the same total.
        folded = sum(int(line.rsplit(" ", 1)[1]) for line
                     in ctx.profiler.collapsed("cells").splitlines())
        assert folded == cells

    def test_sharded_profile_merges_from_workers(self):
        config = dna_gap_config()
        pairs = _pairs(16)
        inline = Observability.enabled_context(profile=True)
        BatchEngine(config, BatchConfig(), obs=inline).run(pairs)
        sharded = Observability.enabled_context(profile=True)
        BatchEngine(config, BatchConfig(workers=2),
                    obs=sharded).run(pairs)
        assert sharded.profiler.total("cells") == \
            inline.profiler.total("cells")
        assert sharded.profiler.total("cells") == \
            self._cells_counter_total(sharded)
        # Pairs are counted exactly once despite the worker fan-out.
        total_pairs = sum(value for key, value
                          in sharded.metrics.snapshot().items()
                          if key.startswith("exec.pairs{"))
        assert total_pairs == len(pairs)

    def test_profiled_results_identical_to_unprofiled(self):
        config = dna_gap_config()
        pairs = _pairs(12)
        plain = BatchEngine(config, BatchConfig()).run(pairs)
        ctx = Observability.enabled_context(profile=True)
        profiled = BatchEngine(config, BatchConfig(), obs=ctx).run(pairs)
        assert [r.score for r in plain] == [r.score for r in profiled]
        assert [r.alignment.cigar_string for r in plain] == \
            [r.alignment.cigar_string for r in profiled]


class TestPerfettoRoundTrip:
    def test_phase_stack_mirrors_into_chrome_trace(self, tmp_path):
        ctx = Observability.enabled_context(profile=True)
        with ctx.profiler.phase("outer"):
            with ctx.profiler.phase("inner"):
                ctx.profiler.work(cells=1)
        path = tmp_path / "trace.json"
        ctx.tracer.write(str(path))
        trace = json.loads(path.read_text())
        spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        outer = next(e for e in spans if e["name"] == "outer")
        inner = next(e for e in spans if e["name"] == "inner")
        # Same track, and the child nests inside the parent interval.
        assert (outer["pid"], outer["tid"]) == \
            (inner["pid"], inner["tid"])
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= \
            outer["ts"] + outer["dur"] + 1e-6

    def test_engine_trace_contains_profile_spans(self, tmp_path):
        config = dna_gap_config()
        ctx = Observability.enabled_context(profile=True)
        BatchEngine(config, BatchConfig(), obs=ctx).run(_pairs(4))
        path = tmp_path / "trace.json"
        ctx.tracer.write(str(path))
        trace = json.loads(path.read_text())
        names = {e["name"] for e in trace["traceEvents"]
                 if e.get("ph") == "X"}
        assert "exec.vector" in names
        assert any(name.startswith("bucket[") for name in names)
        assert any(name.startswith("linear.") for name in names)

    def test_standalone_profiler_without_tracer(self):
        tracer = Tracer()
        prof = Profiler(tracer=tracer)
        with prof.phase("solo"):
            pass
        assert any(e.name == "solo" for e in tracer.events)
