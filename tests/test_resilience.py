"""Fault-tolerant execution layer: deadlines, supervision, sharding.

The chaos-driven end-to-end suite lives in ``test_chaos.py`` (marked
``chaos``); this file covers the deterministic building blocks --
:class:`Deadline`, configuration validation, conformance of the
supervised engine to the plain engine, structured deadline partials,
result validation, the degradation ladder, and the sharding layer's
infra-vs-computation error split.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.base import AlignerResult
from repro.config import standard_configs
from repro.errors import (
    AlignmentError,
    ConfigurationError,
    DeadlineExceeded,
    PoisonPairError,
    RangeError,
    ResilienceError,
    SmxError,
)
from repro.exec.engine import BatchConfig, BatchEngine
from repro.exec.sharding import run_sharded, shard_spans
from repro.obs import get_obs
from repro.resilience import (
    BatchOutcome,
    Deadline,
    PairFailure,
    ResilienceConfig,
    SupervisedEngine,
)
from repro.resilience import ladder
from tests.conftest import make_pair


def _pairs(config, rng, count=24, n=40, error=0.1):
    return [make_pair(config, n + int(rng.integers(0, 24)), error, rng)
            for _ in range(count)]


def _boom_worker(config, batch, pairs, collect=False, obs=None,
                 trace=None):
    """Module-level (picklable) stand-in for a computation error
    raised inside a pool worker."""
    raise RangeError("delta out of range")


THREAD = dict(backend="thread", backoff_base_s=0.0)


class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline.unbounded()
        assert not deadline.bounded
        assert not deadline.expired
        assert deadline.remaining() == float("inf")
        deadline.check()  # no raise

    def test_bounded_expires_and_raises(self):
        deadline = Deadline(expires_at=0.0)  # epoch of monotonic: past
        assert deadline.expired
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceeded):
            deadline.check("unit test")

    def test_after_validates_budget(self):
        with pytest.raises(ConfigurationError):
            Deadline.after(0.0)
        with pytest.raises(ConfigurationError):
            Deadline.after(-1.0)
        assert Deadline.after(None).expires_at is None

    def test_clamp_takes_the_tighter_bound(self):
        assert Deadline.unbounded().clamp(5.0) == 5.0
        assert Deadline.unbounded().clamp(None) is None
        bounded = Deadline.after(100.0)
        assert bounded.clamp(5.0) == 5.0
        assert bounded.clamp(None) <= 100.0

    def test_exception_hierarchy(self):
        assert issubclass(DeadlineExceeded, ResilienceError)
        assert issubclass(PoisonPairError, ResilienceError)
        assert issubclass(ResilienceError, SmxError)


class TestConfigValidation:
    def test_rejects_bad_retries_and_timeouts(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(max_retries=-1)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(shard_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(deadline_s=-2.0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(backend="fibers")

    def test_batchconfig_deadline_validation(self):
        with pytest.raises(ConfigurationError):
            BatchConfig(deadline_s=0.0)
        assert BatchConfig(deadline_s=1.5).deadline_s == 1.5

    def test_wide_dtype_flag_round_trips(self):
        assert BatchConfig(wide_dtype=True).wide_dtype
        assert not BatchConfig().wide_dtype


class TestSupervisedConformance:
    """Without faults, supervision must be an invisible wrapper."""

    @pytest.mark.parametrize("engine", ["vector", "scalar"])
    def test_bit_identical_to_plain_engine(self, configs, rng, engine):
        config = configs["dna-gap"]
        pairs = _pairs(config, rng)
        batch = BatchConfig(engine=engine, traceback=True)
        plain = BatchEngine(config, batch).run(pairs)
        outcome = SupervisedEngine(
            config, batch, ResilienceConfig(**THREAD)).run(pairs)
        assert outcome.ok
        assert outcome.completed() == len(pairs)
        for want, got in zip(plain, outcome.results):
            assert want.score == got.score
            assert want.alignment.cigar == got.alignment.cigar

    def test_score_only_and_empty_batch(self, configs, rng):
        config = configs["dna-edit"]
        pairs = _pairs(config, rng, count=8)
        batch = BatchConfig(traceback=False)
        plain = [r.score for r in BatchEngine(config, batch).run(pairs)]
        sup = SupervisedEngine(config, batch,
                               ResilienceConfig(**THREAD))
        outcome = sup.run(pairs)
        assert [r.score for r in outcome.results] == plain
        empty = SupervisedEngine(config, batch,
                                 ResilienceConfig(**THREAD)).run([])
        assert empty.ok and empty.results == []

    def test_wide_dtype_engine_matches_narrow(self, configs, rng):
        config = configs["dna-gap"]
        pairs = _pairs(config, rng, count=12)
        narrow = BatchEngine(config, BatchConfig(traceback=False))
        wide = BatchEngine(config, BatchConfig(traceback=False,
                                               wide_dtype=True))
        assert [r.score for r in narrow.run(pairs)] == \
               [r.score for r in wide.run(pairs)]

    def test_wide_dtype_traceback_matches(self, configs, rng):
        config = configs["protein"]
        pairs = _pairs(config, rng, count=6)
        narrow = BatchEngine(config, BatchConfig(traceback=True))
        wide = BatchEngine(config, BatchConfig(traceback=True,
                                               wide_dtype=True))
        for a, b in zip(narrow.run(pairs), wide.run(pairs)):
            assert a.score == b.score
            assert a.alignment.cigar == b.alignment.cigar


class TestEngineDeadline:
    def test_plain_engine_raises_on_expiry(self, configs, rng):
        config = configs["dna-edit"]
        pairs = _pairs(config, rng, count=64, n=120)
        batch = BatchConfig(deadline_s=1e-6)
        with pytest.raises(DeadlineExceeded):
            BatchEngine(config, batch).run(pairs)

    def test_supervised_returns_structured_partials(self, configs, rng):
        config = configs["dna-edit"]
        pairs = _pairs(config, rng, count=48, n=100)
        outcome = SupervisedEngine(
            config, BatchConfig(),
            ResilienceConfig(deadline_s=1e-6, **THREAD)).run(pairs)
        assert not outcome.ok
        assert outcome.completed() + len(outcome.failures) == len(pairs)
        for failure in outcome.failures:
            assert failure.fault == "deadline"
            assert failure.error_type == "DeadlineExceeded"
        merged = outcome.merged()
        assert len(merged) == len(pairs)
        assert all(isinstance(entry, (AlignerResult, PairFailure))
                   for entry in merged)

    def test_raise_on_failure_promotes_deadline(self, configs, rng):
        config = configs["dna-edit"]
        pairs = _pairs(config, rng, count=48, n=100)
        policy = ResilienceConfig(deadline_s=1e-6,
                                  raise_on_failure=True, **THREAD)
        with pytest.raises(DeadlineExceeded):
            SupervisedEngine(config, BatchConfig(), policy).run(pairs)


class TestValidation:
    def test_validation_catches_planted_corruption(self, configs, rng):
        """A corrupted stored score must be repaired by re-execution,
        not returned."""
        config = configs["dna-gap"]
        pairs = _pairs(config, rng, count=6)

        class CorruptingEngine(SupervisedEngine):
            flips = 0

            def _validate_unit(self, unit, results):
                if CorruptingEngine.flips == 0 and results:
                    CorruptingEngine.flips = 1
                    results[0].score ^= 64
                    results[0].alignment.score ^= 64
                return super()._validate_unit(unit, results)

        plain = BatchEngine(config, BatchConfig()).run(pairs)
        outcome = CorruptingEngine(
            config, BatchConfig(),
            ResilienceConfig(validate=True, **THREAD)).run(pairs)
        assert outcome.ok
        assert outcome.counters.get("faults.bitflip", 0) >= 1
        for want, got in zip(plain, outcome.results):
            assert want.score == got.score

    def test_alignment_error_carries_pair_index(self, configs, rng):
        err = AlignmentError("boom")
        assert err.pair_index is None
        err.pair_index = 7
        assert err.pair_index == 7


class TestLadder:
    def test_rangeerror_plans_wide_then_scalar(self):
        batch = BatchConfig(engine="vector")
        rungs = ladder.plan_rungs(batch, "rangeerror")
        names = [name for name, _ in rungs]
        assert names == ["wide-dtype", "scalar"]
        for _, cfg in rungs:
            assert cfg.workers == 1 and cfg.deadline_s is None
        assert rungs[0][1].wide_dtype
        assert rungs[1][1].engine == "scalar"

    def test_heuristic_alignment_fault_promotes_to_exact(self):
        batch = BatchConfig(algorithm="banded", band_width=4)
        rungs = ladder.plan_rungs(batch, "alignment")
        assert [name for name, _ in rungs] == ["exact"]
        assert rungs[0][1].algorithm == "full"
        assert rungs[0][1].engine == "scalar"

    def test_infra_faults_get_no_rungs(self):
        batch = BatchConfig(engine="vector")
        for fault in ("crash", "hang", "oserror", "deadline"):
            assert ladder.plan_rungs(batch, fault) == []

    def test_banded_failure_promoted_to_exact_result(self, configs, rng):
        """A pair the band excludes gets an exact answer under
        supervision (heuristic -> exact aligner rung)."""
        config = configs["dna-gap"]
        rng2 = np.random.default_rng(1)
        # A long insertion drives the path far off-diagonal, out of a
        # narrow band.
        q = config.alphabet.random(60, rng2)
        r = np.concatenate([q[:20], config.alphabet.random(40, rng2),
                            q[20:]])
        easy = make_pair(config, 50, 0.05, rng)
        batch = BatchConfig(algorithm="banded", band_width=4)
        plain = BatchEngine(config, batch).run([easy, (q, r)])
        assert plain[1].failed  # sanity: the band really excludes it
        outcome = SupervisedEngine(
            config, batch, ResilienceConfig(**THREAD)).run(
                [easy, (q, r)])
        assert outcome.ok
        assert outcome.results[1].alignment is not None
        assert outcome.degraded[1] == ("exact",)
        assert outcome.counters.get("degraded.exact") == 1
        # The easy pair keeps its (identical) banded result.
        assert outcome.results[0].score == plain[0].score

    def test_exact_fallback_can_be_disabled(self, configs, rng):
        config = configs["dna-gap"]
        rng2 = np.random.default_rng(1)
        q = config.alphabet.random(60, rng2)
        r = np.concatenate([q[:20], config.alphabet.random(40, rng2),
                            q[20:]])
        batch = BatchConfig(algorithm="banded", band_width=4)
        outcome = SupervisedEngine(
            config, batch,
            ResilienceConfig(exact_fallback=False, **THREAD)).run(
                [(q, r)])
        assert outcome.ok
        assert outcome.results[0].failed


class TestBatchOutcome:
    def test_merged_and_accessors(self):
        result = AlignerResult(alignment=None, score=5, stats=None)
        failure = PairFailure(index=1, fault="crash",
                              error_type="Boom", message="x")
        outcome = BatchOutcome(results=[result, None],
                               failures=[failure])
        assert not outcome.ok
        assert outcome.completed() == 1
        merged = outcome.merged()
        assert merged[0] is result and merged[1] is failure
        assert outcome.scores() == [5, failure]
        outcome.bump("retries")
        outcome.bump("retries", 2)
        assert outcome.counters["retries"] == 3


class TestShardingFailureSplit:
    """Satellite: pool-infra failures fall back; computation errors
    re-raise."""

    def test_computation_error_reraises(self, configs, rng, monkeypatch):
        config = configs["dna-edit"]
        pairs = _pairs(config, rng, count=8)
        batch = BatchConfig(workers=2)

        import repro.exec.sharding as sharding
        monkeypatch.setattr(sharding, "_shard_worker", _boom_worker)
        # A worker-side computation error must NOT be silently re-run
        # inline (the old behaviour); it propagates.
        with pytest.raises(RangeError):
            run_sharded(config, batch, pairs, get_obs())

    def test_pool_creation_failure_runs_inline(self, configs, rng,
                                               monkeypatch):
        config = configs["dna-edit"]
        pairs = _pairs(config, rng, count=8)
        batch = BatchConfig(workers=2)
        plain = BatchEngine(config, BatchConfig()).run(pairs)

        import repro.exec.sharding as sharding

        def no_pool(*args, **kwargs):
            raise OSError("no /dev/shm")

        monkeypatch.setattr(sharding, "ProcessPoolExecutor", no_pool)
        results = run_sharded(config, batch, pairs, get_obs())
        assert [r.score for r in results] == [r.score for r in plain]

    def test_broken_pool_reruns_only_unfinished_shards(
            self, configs, rng, monkeypatch):
        """After a worker dies, completed shards keep their results and
        only the rest run inline."""
        from concurrent.futures.process import BrokenProcessPool

        config = configs["dna-edit"]
        pairs = _pairs(config, rng, count=9)
        batch = BatchConfig(workers=3)
        plain = BatchEngine(config, BatchConfig()).run(pairs)
        spans = shard_spans(len(pairs), 3)

        import repro.exec.sharding as sharding
        real_worker = sharding._shard_worker
        inline_calls: list[int] = []

        class FakeFuture:
            def __init__(self, shard_id, work):
                self.shard_id = shard_id
                self._work = work

            def result(self):
                if self.shard_id > 0:
                    raise BrokenProcessPool("worker died")
                return self._work()

        class FakePool:
            def __init__(self, max_workers):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, fn, config, inner, shard_pairs,
                       collect=False, obs=None, trace=None):
                shard_id = next(
                    i for i, (start, stop) in enumerate(spans)
                    if len(shard_pairs) == stop - start
                    and np.array_equal(shard_pairs[0][0],
                                       pairs[start][0]))
                return FakeFuture(
                    shard_id,
                    lambda: fn(config, inner, shard_pairs, collect))

        def tracking_worker(config, inner, shard_pairs, collect=False,
                            obs=None):
            inline_calls.append(len(shard_pairs))
            return real_worker(config, inner, shard_pairs, collect,
                               obs=obs)

        monkeypatch.setattr(sharding, "ProcessPoolExecutor", FakePool)
        monkeypatch.setattr(sharding, "_shard_worker", tracking_worker)
        results = run_sharded(config, batch, pairs, get_obs())
        assert [r.score for r in results] == [r.score for r in plain]
        # Shard 0 completed through the (fake) pool; only shards 1 and
        # 2 were re-run inline after the break.
        spans_sizes = [stop - start for start, stop in spans]
        assert sorted(inline_calls[-2:]) == sorted(spans_sizes[1:])


class TestProcessBackendFallback:
    def test_supervisor_falls_back_to_threads(self, configs, rng,
                                              monkeypatch):
        config = configs["dna-edit"]
        pairs = _pairs(config, rng, count=8)
        batch = BatchConfig(workers=2)

        import repro.resilience.supervisor as supervisor

        def no_pool(*args, **kwargs):
            raise OSError("no process pools here")

        monkeypatch.setattr(supervisor, "ProcessPoolExecutor", no_pool)
        plain = BatchEngine(config, BatchConfig()).run(pairs)
        outcome = SupervisedEngine(config, batch,
                                   ResilienceConfig()).run(pairs)
        assert outcome.ok
        assert [r.score for r in outcome.results] == \
               [r.score for r in plain]


class TestApiResilience:
    def test_align_batch_deadline_partials(self):
        from repro.api import align_batch
        pairs = [("GATTACA" * 30, "GATTTACA" * 26)] * 24
        out = align_batch(pairs, deadline_s=1e-6)
        assert len(out) == len(pairs)
        assert all(isinstance(entry, PairFailure) for entry in out)
        assert all(entry.fault == "deadline" for entry in out)

    def test_align_batch_resilient_matches_plain(self):
        from repro.api import align_batch
        pairs = [("GATTACA", "GATTTACA"), ("ACGT", "ACGA")]
        plain = align_batch(pairs)
        supervised = align_batch(
            pairs, resilience=ResilienceConfig(**THREAD))
        assert [a.cigar for a in plain] == [a.cigar for a in supervised]

    def test_score_batch_resilient(self):
        from repro.api import score_batch
        pairs = [("GATTACA", "GATTTACA"), ("ACGT", "ACGA")]
        assert score_batch(pairs) == score_batch(
            pairs, resilience=ResilienceConfig(**THREAD))


class TestAppsResilience:
    def test_readmapper_supervised_matches_plain(self, rng):
        from repro.apps.readmapper import ReadMapper
        from repro.workloads.genome import random_genome, sample_reads
        from repro.workloads.synthetic import ErrorProfile
        genome = random_genome(4000, seed=9)
        read_set = sample_reads(genome, 10, 200,
                                ErrorProfile(0.01, 0.005, 0.005),
                                seed=5)
        plain = ReadMapper(genome).map_all(read_set)
        supervised = ReadMapper(
            genome,
            resilience=ResilienceConfig(**THREAD)).map_all(read_set)
        assert [m.position for m in plain.mappings] == \
               [m.position for m in supervised.mappings]
        assert [m.score for m in plain.mappings] == \
               [m.score for m in supervised.mappings]

    def test_dbsearch_supervised_matches_plain(self, rng):
        from repro.apps.dbsearch import ProteinSearch, build_database
        from repro.config import protein_config
        config = protein_config()
        query = config.alphabet.random(120, np.random.default_rng(3))
        database, homolog = build_database(12, homolog_of=query,
                                           divergence=0.2)
        plain = ProteinSearch(database).search(query)
        supervised = ProteinSearch(
            database,
            resilience=ResilienceConfig(**THREAD)).search(query)
        assert [h.target_id for h in plain.hits] == \
               [h.target_id for h in supervised.hits]
        assert [h.score for h in plain.hits] == \
               [h.score for h in supervised.hits]
        assert supervised.rank_of(homolog) == plain.rank_of(homolog)
