"""Smoke tests for the benchmark experiment functions.

The benchmarks are the deliverable that regenerates the paper's tables;
these tests run each experiment function at a tiny scale so a refactor
that breaks one fails in `pytest tests/` rather than only at
benchmark time. Structural properties of the outputs (row counts, the
headline orderings) are asserted where cheap.
"""

import importlib.util
import os
import sys

import pytest

_BENCH_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                          "benchmarks")


def _load(name: str):
    path = os.path.join(_BENCH_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


TINY = 0.02


def _unpack(result):
    """Experiments return (name, sections) or (name, sections, payload)."""
    name, sections = result[0], result[1]
    payload = result[2] if len(result) > 2 else {}
    return name, sections, payload


class TestExperimentFunctions:
    def test_fig02(self):
        name, sections = _load("bench_fig02_algorithms").experiment(TINY)
        assert name == "fig02_algorithms"
        table = sections[0]
        assert "wavefront" in table and "recall" in table

    def test_fig10(self):
        module = _load("bench_fig10_utilization")
        module.SIZES = (100, 320)  # shrink for test speed
        name, sections, payload = _unpack(module.experiment())
        assert name == "fig10_utilization"
        assert "4 workers" in sections[0]
        assert payload["tables"]["utilization"]

    def test_fig11(self):
        name, sections = _load("bench_fig11_algorithms").experiment(TINY)
        assert name == "fig11_algorithms"
        assert "protein-full" in sections[0]

    def test_fig12_left(self):
        name, sections = _load("bench_fig12_scalability").experiment(TINY)
        assert "8 cores" in sections[0]

    def test_fig12_right(self):
        name, sections = _load("bench_fig12_balance").experiment(TINY)
        assert "engine utilization" in sections[0]

    def test_fig13(self):
        name, sections = _load("bench_fig13_area").experiment()
        assert "0.0152" in sections[0]
        assert "29.66" in sections[0]

    def test_fig14(self):
        name, sections = _load("bench_fig14_sota").experiment(TINY)
        assert "GACT" in sections[0]
        assert "paper" in sections[1]

    def test_table3(self):
        name, sections, payload = _unpack(
            _load("bench_table3_gcups").experiment())
        assert "1,024.0" in sections[0] or "1024" in sections[0]
        assert "15.5x" in sections[1]
        assert payload["tables"]["entries"]

    def test_sec93(self):
        name, sections = _load("bench_sec93_endtoend").experiment(TINY)
        assert "DIAMOND" in sections[0]

    def test_sec8(self):
        name, sections = _load("bench_sec8_smx1d").experiment()
        assert "dna-edit" in sections[0]

    def test_sec5(self):
        name, sections = _load("bench_sec5_memory").experiment()
        assert "32x" in sections[0]
        assert "L2-port occupancy" in sections[1]

    def test_ablation(self):
        name, sections = _load("bench_ablation_design").experiment()
        assert "prefetch" in sections[0]

    def test_energy(self):
        name, sections = _load("bench_energy").experiment()
        assert "fJ/cell" in sections[1]

    def test_chaos_sweep(self):
        name, sections, payload = _unpack(
            _load("bench_chaos_sweep").experiment(TINY))
        assert name == "chaos_sweep"
        cells = payload["tables"]["sweep"]
        # 5 fault classes x 3 rates, each cell internally verified
        # (quarantine set == injector ground truth) by the experiment.
        assert len(cells) == 15
        for cell in cells:
            assert cell["recovered"] + cell["quarantined"] == \
                cell["poisoned"]


class TestHeadlineOrderings:
    """The cross-experiment shape claims, asserted numerically."""

    def test_fig09_tiny_grid_orderings(self):
        module = _load("bench_fig09_throughput")
        module.SIZES = (100, 500)
        name, sections, payload = _unpack(module.experiment())
        assert payload["timings"]
        score_table = sections[0]
        # Every SMX column entry ends in 'x' and the table has
        # 4 configs x 2 sizes rows.
        data_rows = [line for line in score_table.splitlines()
                     if line.startswith("| dna") or
                     line.startswith("| protein") or
                     line.startswith("| ascii")]
        assert len(data_rows) == 8

    @pytest.mark.parametrize("module_name", [
        "bench_fig02_algorithms", "bench_fig13_area",
        "bench_table3_gcups", "bench_energy",
    ])
    def test_reports_have_notes(self, module_name):
        module = _load(module_name)
        try:
            result = module.experiment(TINY)
        except TypeError:
            result = module.experiment()
        _, sections, _ = _unpack(result)
        assert isinstance(sections[-1], str)
        assert len(sections[-1]) > 80
