"""Tests for synthetic workload and dataset generation."""

import numpy as np
import pytest

from repro.encoding.alphabet import DNA, PROTEIN
from repro.errors import ConfigurationError
from repro.workloads.datasets import (
    ascii_like,
    fixed_length_pairs,
    ont_like,
    pacbio_like,
    uniprot_like,
)
from repro.workloads.synthetic import (
    ONT_NANOPORE,
    PACBIO_HIFI,
    PERFECT,
    ErrorProfile,
    mutate,
    random_pair,
    random_protein_pair,
)


class TestErrorProfiles:
    def test_profile_totals(self):
        assert PACBIO_HIFI.total == pytest.approx(0.01)
        assert ONT_NANOPORE.total == pytest.approx(0.07)

    def test_invalid_profile(self):
        with pytest.raises(ConfigurationError):
            ErrorProfile(substitution=0.5, insertion=0.4, deletion=0.2)

    def test_perfect_profile_identity(self, rng):
        codes = DNA.random(500, rng)
        mutated, edits = mutate(codes, PERFECT, DNA, rng)
        assert np.array_equal(mutated, codes)
        assert edits == 0


class TestMutate:
    def test_edit_count_tracks_rate(self, rng):
        codes = DNA.random(20_000, rng)
        _, edits = mutate(codes, ONT_NANOPORE, DNA, rng)
        rate = edits / len(codes)
        assert 0.05 < rate < 0.09

    def test_substitutions_always_change(self, rng):
        profile = ErrorProfile(substitution=0.5, insertion=0.0,
                               deletion=0.0)
        codes = DNA.random(2000, rng)
        mutated, edits = mutate(codes, profile, DNA, rng)
        assert len(mutated) == len(codes)
        assert (mutated != codes).sum() == edits

    def test_deletions_shorten(self, rng):
        profile = ErrorProfile(substitution=0.0, insertion=0.0,
                               deletion=0.3)
        codes = DNA.random(2000, rng)
        mutated, _ = mutate(codes, profile, DNA, rng)
        assert len(mutated) < len(codes)

    def test_insertions_lengthen(self, rng):
        profile = ErrorProfile(substitution=0.0, insertion=0.3,
                               deletion=0.0)
        codes = DNA.random(2000, rng)
        mutated, _ = mutate(codes, profile, DNA, rng)
        assert len(mutated) > len(codes)


class TestPairGeneration:
    def test_random_pair_metadata(self, rng):
        pair = random_pair(DNA, 1000, ONT_NANOPORE, rng)
        assert pair.m == 1000
        assert pair.meta["alphabet"] == "dna"
        assert pair.cells == pair.n * pair.m

    def test_length_jitter(self, rng):
        lengths = {random_pair(DNA, 1000, PERFECT, rng,
                               length_jitter=0.3).m for _ in range(10)}
        assert len(lengths) > 1

    def test_protein_pair_uses_amino_acids(self, rng):
        pair = random_protein_pair(500, 0.3, rng)
        from repro.encoding.alphabet import AMINO_ACIDS
        valid = {ord(ch) - 65 for ch in AMINO_ACIDS}
        assert set(np.unique(pair.r_codes)) <= valid
        assert set(np.unique(pair.q_codes)) <= valid
        assert pair.meta["divergence"] == 0.3

    def test_protein_codes_fit_six_bits(self, rng):
        pair = random_protein_pair(300, 0.4, rng)
        assert pair.q_codes.max() < 26
        assert PROTEIN.decode(pair.r_codes[:5]).isalpha()


class TestDatasets:
    def test_deterministic(self):
        a = ont_like(n_pairs=3, scale=0.01)
        b = ont_like(n_pairs=3, scale=0.01)
        assert all(np.array_equal(x.q_codes, y.q_codes)
                   for x, y in zip(a, b))

    def test_scaled_lengths(self):
        ds = pacbio_like(n_pairs=2, scale=0.01)
        assert ds.meta["nominal_length"] == 150

    def test_length_ratio_preserved(self):
        ont = ont_like(n_pairs=2, scale=0.01)
        pac = pacbio_like(n_pairs=2, scale=0.01)
        ratio = ont.meta["nominal_length"] / pac.meta["nominal_length"]
        assert ratio == pytest.approx(50_000 / 15_000, rel=0.01)

    def test_uniprot_lengths(self):
        ds = uniprot_like(n_pairs=10)
        assert all(32 <= pair.m <= 1000 for pair in ds)

    def test_ascii_dataset(self):
        ds = ascii_like(n_pairs=2, length=500)
        assert all(pair.q_codes.max() < 127 for pair in ds)

    def test_fixed_length(self):
        ds = fixed_length_pairs(DNA, 256, 5, error_rate=0.1)
        assert len(ds) == 5
        assert all(pair.m == 256 for pair in ds)

    def test_dataset_aggregates(self):
        ds = fixed_length_pairs(DNA, 100, 4, error_rate=0.05)
        assert ds.total_cells > 0
        assert ds.mean_length == pytest.approx(100.0)
